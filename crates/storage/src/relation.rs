//! Relations: named collections of tuples conforming to a schema.

use std::collections::HashMap;

use pds_common::{AttrId, PdsError, Result, TupleId, Value};
use serde::{Deserialize, Serialize};

use crate::predicate::SelectionQuery;
use crate::schema::Schema;
use crate::stats::AttributeStats;
use crate::tuple::Tuple;

/// An in-memory relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relation {
    name: String,
    schema: Schema,
    tuples: Vec<Tuple>,
    next_id: u64,
}

impl Relation {
    /// Creates an empty relation.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Relation {
            name: name.into(),
            schema,
            tuples: Vec::new(),
            next_id: 0,
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// All tuples in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Inserts a row, assigning it a fresh tuple id; returns the id.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<TupleId> {
        self.schema.validate_row(&values)?;
        let id = TupleId::new(self.next_id);
        self.next_id += 1;
        self.tuples.push(Tuple::new(id, values));
        Ok(id)
    }

    /// Inserts a row with an explicit tuple id (used when partitioning, so
    /// the sensitive/non-sensitive parts keep the original ids).
    pub fn insert_with_id(&mut self, id: TupleId, values: Vec<Value>) -> Result<()> {
        self.schema.validate_row(&values)?;
        if self.tuples.iter().any(|t| t.id == id) {
            return Err(PdsError::Schema(format!("duplicate tuple id {id}")));
        }
        self.next_id = self.next_id.max(id.raw() + 1);
        self.tuples.push(Tuple::new(id, values));
        Ok(())
    }

    /// Bulk insert of many rows; returns the assigned ids.
    pub fn insert_many(&mut self, rows: Vec<Vec<Value>>) -> Result<Vec<TupleId>> {
        let mut ids = Vec::with_capacity(rows.len());
        for row in rows {
            ids.push(self.insert(row)?);
        }
        Ok(ids)
    }

    /// Fetches a tuple by id.
    pub fn get(&self, id: TupleId) -> Option<&Tuple> {
        self.tuples.iter().find(|t| t.id == id)
    }

    /// Deletes a tuple by id; returns whether a tuple was removed.
    pub fn delete(&mut self, id: TupleId) -> bool {
        let before = self.tuples.len();
        self.tuples.retain(|t| t.id != id);
        before != self.tuples.len()
    }

    /// Runs a selection query with a full scan, returning matching tuples
    /// (projected if the query requests it).
    pub fn select(&self, query: &SelectionQuery) -> Vec<Tuple> {
        self.tuples
            .iter()
            .filter(|t| query.predicate.matches(t))
            .map(|t| match &query.projection {
                None => t.clone(),
                Some(attrs) => Tuple::new(t.id, t.project(attrs)),
            })
            .collect()
    }

    /// Shortcut: ids of tuples whose `attr` equals `value`.
    pub fn matching_ids(&self, attr: AttrId, value: &Value) -> Vec<TupleId> {
        self.tuples
            .iter()
            .filter(|t| t.value(attr) == value)
            .map(|t| t.id)
            .collect()
    }

    /// Computes per-value frequency statistics for an attribute.
    pub fn attribute_stats(&self, attr: AttrId) -> AttributeStats {
        let mut counts: HashMap<Value, u64> = HashMap::new();
        for t in &self.tuples {
            *counts.entry(t.value(attr).clone()).or_insert(0) += 1;
        }
        AttributeStats::from_counts(counts)
    }

    /// The distinct values of an attribute, in first-appearance order.
    pub fn distinct_values(&self, attr: AttrId) -> Vec<Value> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for t in &self.tuples {
            let v = t.value(attr);
            if seen.insert(v.clone()) {
                out.push(v.clone());
            }
        }
        out
    }

    /// Total payload size in bytes (for communication cost modelling).
    pub fn size_bytes(&self) -> usize {
        self.tuples.iter().map(Tuple::size_bytes).sum()
    }

    /// Average tuple size in bytes (0 when empty).
    pub fn avg_tuple_bytes(&self) -> usize {
        if self.tuples.is_empty() {
            0
        } else {
            self.size_bytes() / self.tuples.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::schema::DataType;

    fn people() -> Relation {
        let schema =
            Schema::from_pairs(&[("EId", DataType::Text), ("Office", DataType::Int)]).unwrap();
        let mut r = Relation::new("People", schema);
        r.insert(vec![Value::from("E101"), Value::Int(1)]).unwrap();
        r.insert(vec![Value::from("E259"), Value::Int(2)]).unwrap();
        r.insert(vec![Value::from("E259"), Value::Int(6)]).unwrap();
        r.insert(vec![Value::from("E152"), Value::Int(3)]).unwrap();
        r
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let r = people();
        assert_eq!(r.len(), 4);
        let ids: Vec<u64> = r.tuples().iter().map(|t| t.id.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn insert_validates_schema() {
        let mut r = people();
        assert!(r.insert(vec![Value::Int(5), Value::Int(1)]).is_err());
        assert!(r.insert(vec![Value::from("E1")]).is_err());
    }

    #[test]
    fn insert_with_explicit_id() {
        let schema = Schema::from_pairs(&[("A", DataType::Int)]).unwrap();
        let mut r = Relation::new("T", schema);
        r.insert_with_id(TupleId::new(7), vec![Value::Int(1)])
            .unwrap();
        assert!(r
            .insert_with_id(TupleId::new(7), vec![Value::Int(2)])
            .is_err());
        // Fresh inserts continue after the explicit id.
        let id = r.insert(vec![Value::Int(3)]).unwrap();
        assert_eq!(id.raw(), 8);
    }

    #[test]
    fn select_point_query() {
        let r = people();
        let q = SelectionQuery::point(r.schema(), "EId", "E259").unwrap();
        let out = r.select(&q);
        assert_eq!(out.len(), 2);
        assert!(out
            .iter()
            .all(|t| t.value(AttrId::new(0)) == &Value::from("E259")));
    }

    #[test]
    fn select_with_projection() {
        let r = people();
        let q = SelectionQuery::point(r.schema(), "EId", "E101")
            .unwrap()
            .with_projection(r.schema(), &["Office"])
            .unwrap();
        let out = r.select(&q);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values, vec![Value::Int(1)]);
    }

    #[test]
    fn select_true_returns_all() {
        let r = people();
        let q = SelectionQuery::new(Predicate::True);
        assert_eq!(r.select(&q).len(), 4);
    }

    #[test]
    fn get_and_delete() {
        let mut r = people();
        let id = TupleId::new(1);
        assert!(r.get(id).is_some());
        assert!(r.delete(id));
        assert!(r.get(id).is_none());
        assert!(!r.delete(id));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn stats_and_distinct() {
        let r = people();
        let attr = r.schema().attr_id("EId").unwrap();
        let stats = r.attribute_stats(attr);
        assert_eq!(stats.count(&Value::from("E259")), 2);
        assert_eq!(stats.count(&Value::from("E101")), 1);
        assert_eq!(stats.count(&Value::from("nope")), 0);
        assert_eq!(stats.distinct(), 3);
        assert_eq!(stats.total(), 4);
        let distinct = r.distinct_values(attr);
        assert_eq!(distinct.len(), 3);
        assert_eq!(distinct[0], Value::from("E101"));
    }

    #[test]
    fn sizes() {
        let r = people();
        assert!(r.size_bytes() > 0);
        assert!(r.avg_tuple_bytes() > 0);
        let empty = Relation::new("E", Schema::from_pairs(&[("A", DataType::Int)]).unwrap());
        assert_eq!(empty.avg_tuple_bytes(), 0);
    }

    #[test]
    fn matching_ids_shortcut() {
        let r = people();
        let attr = r.schema().attr_id("EId").unwrap();
        assert_eq!(r.matching_ids(attr, &Value::from("E259")).len(), 2);
        assert!(r.matching_ids(attr, &Value::from("E000")).is_empty());
    }
}
