//! Per-attribute value statistics.
//!
//! The DB owner's metadata (§II "the DB owner has to store metadata such as
//! searchable values and their frequency counts") is exactly an
//! [`AttributeStats`] for the searchable attribute of each of `Rs` and
//! `Rns`.  The general-case binning algorithm (§IV-B) consumes these counts
//! to equalise the number of tuples per sensitive bin with fake tuples.

use std::collections::HashMap;

use pds_common::Value;

/// Frequency statistics of one attribute of one relation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttributeStats {
    counts: HashMap<Value, u64>,
    total: u64,
}

impl AttributeStats {
    /// Builds statistics from a value→count map.
    pub fn from_counts(counts: HashMap<Value, u64>) -> Self {
        let total = counts.values().sum();
        AttributeStats { counts, total }
    }

    /// Builds statistics from an iterator of values (counting occurrences).
    pub fn from_values<'a, I: IntoIterator<Item = &'a Value>>(values: I) -> Self {
        let mut counts: HashMap<Value, u64> = HashMap::new();
        for v in values {
            *counts.entry(v.clone()).or_insert(0) += 1;
        }
        Self::from_counts(counts)
    }

    /// Number of tuples having `value` (0 when the value never occurs —
    /// this is the paper's `#s(v) = 0` convention for absent domain values).
    pub fn count(&self, value: &Value) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Number of distinct values.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total number of tuples counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether any value has been counted.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates over `(value, count)` pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (&Value, u64)> {
        self.counts.iter().map(|(v, &c)| (v, c))
    }

    /// The distinct values, sorted by descending count then by value (a
    /// stable order for the greedy packing of §IV-B step (i)).
    pub fn values_by_descending_count(&self) -> Vec<(Value, u64)> {
        let mut v: Vec<(Value, u64)> = self.counts.iter().map(|(v, &c)| (v.clone(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// The maximum per-value count (0 when empty). Heavy hitters drive the
    /// number of fake tuples QB must add.
    pub fn max_count(&self) -> u64 {
        self.counts.values().copied().max().unwrap_or(0)
    }

    /// Average selectivity `ρ` of a point query assuming values are queried
    /// uniformly: `1 / distinct` (0 when empty).
    pub fn uniform_selectivity(&self) -> f64 {
        if self.counts.is_empty() {
            0.0
        } else {
            1.0 / self.counts.len() as f64
        }
    }

    /// Merges another statistics object into this one.
    pub fn merge(&mut self, other: &AttributeStats) {
        for (v, c) in other.iter() {
            *self.counts.entry(v.clone()).or_insert(0) += c;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> AttributeStats {
        let values = [
            Value::from("a"),
            Value::from("b"),
            Value::from("b"),
            Value::from("c"),
            Value::from("c"),
            Value::from("c"),
        ];
        AttributeStats::from_values(values.iter())
    }

    #[test]
    fn counting() {
        let s = stats();
        assert_eq!(s.count(&Value::from("a")), 1);
        assert_eq!(s.count(&Value::from("c")), 3);
        assert_eq!(s.count(&Value::from("zzz")), 0);
        assert_eq!(s.total(), 6);
        assert_eq!(s.distinct(), 3);
        assert_eq!(s.max_count(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn descending_order_is_stable() {
        let s = stats();
        let v = s.values_by_descending_count();
        assert_eq!(v[0], (Value::from("c"), 3));
        assert_eq!(v[1], (Value::from("b"), 2));
        assert_eq!(v[2], (Value::from("a"), 1));
    }

    #[test]
    fn selectivity() {
        let s = stats();
        assert!((s.uniform_selectivity() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(AttributeStats::default().uniform_selectivity(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = stats();
        let b = AttributeStats::from_values([Value::from("a"), Value::from("d")].iter());
        a.merge(&b);
        assert_eq!(a.count(&Value::from("a")), 2);
        assert_eq!(a.count(&Value::from("d")), 1);
        assert_eq!(a.total(), 8);
        assert_eq!(a.distinct(), 4);
    }
}
