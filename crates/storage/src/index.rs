//! Secondary indexes over a relation attribute.
//!
//! The cloud-side back-ends use these: the plaintext (non-sensitive) side is
//! indexed directly on attribute values, while indexable cryptographic
//! techniques (CryptDB-style deterministic tags, Arx-style counter tokens)
//! index ciphertext tags.  Both a hash index (point/IN lookups) and an
//! ordered index (range lookups) are provided.

use std::collections::{BTreeMap, HashMap};

use pds_common::{AttrId, TupleId, Value};

use crate::relation::Relation;

/// A hash index mapping attribute values to the tuple ids holding them.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    map: HashMap<Value, Vec<TupleId>>,
    lookups: std::cell::Cell<u64>,
}

impl HashIndex {
    /// Builds the index over `attr` of `relation`.
    pub fn build(relation: &Relation, attr: AttrId) -> Self {
        let mut map: HashMap<Value, Vec<TupleId>> = HashMap::new();
        for t in relation.tuples() {
            map.entry(t.value(attr).clone()).or_default().push(t.id);
        }
        HashIndex {
            map,
            lookups: std::cell::Cell::new(0),
        }
    }

    /// Inserts a posting (used for incremental maintenance on insert).
    pub fn insert(&mut self, value: Value, id: TupleId) {
        self.map.entry(value).or_default().push(id);
    }

    /// Removes a posting (used on delete); returns whether it was present.
    pub fn remove(&mut self, value: &Value, id: TupleId) -> bool {
        if let Some(ids) = self.map.get_mut(value) {
            let before = ids.len();
            ids.retain(|&i| i != id);
            let removed = ids.len() != before;
            if ids.is_empty() {
                self.map.remove(value);
            }
            removed
        } else {
            false
        }
    }

    /// Tuple ids whose indexed attribute equals `value`.
    pub fn lookup(&self, value: &Value) -> &[TupleId] {
        self.lookups.set(self.lookups.get() + 1);
        self.map.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Tuple ids matching any of `values`, deduplicated, in index order.
    pub fn lookup_many(&self, values: &[Value]) -> Vec<TupleId> {
        let mut out = Vec::new();
        for v in values {
            out.extend_from_slice(self.lookup(v));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of distinct indexed values.
    pub fn distinct(&self) -> usize {
        self.map.len()
    }

    /// Number of lookups performed (for cost accounting in experiments).
    pub fn lookup_count(&self) -> u64 {
        self.lookups.get()
    }
}

/// An ordered index supporting range scans.
#[derive(Debug, Clone, Default)]
pub struct OrderedIndex {
    map: BTreeMap<Value, Vec<TupleId>>,
}

impl OrderedIndex {
    /// Builds the index over `attr` of `relation`.
    pub fn build(relation: &Relation, attr: AttrId) -> Self {
        let mut map: BTreeMap<Value, Vec<TupleId>> = BTreeMap::new();
        for t in relation.tuples() {
            map.entry(t.value(attr).clone()).or_default().push(t.id);
        }
        OrderedIndex { map }
    }

    /// Inserts a posting.
    pub fn insert(&mut self, value: Value, id: TupleId) {
        self.map.entry(value).or_default().push(id);
    }

    /// Tuple ids whose value equals `value`.
    pub fn lookup(&self, value: &Value) -> &[TupleId] {
        self.map.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Tuple ids whose value lies in `[lo, hi]` (inclusive).
    pub fn range(&self, lo: &Value, hi: &Value) -> Vec<TupleId> {
        self.map
            .range(lo.clone()..=hi.clone())
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect()
    }

    /// The smallest and largest indexed values, if any.
    pub fn bounds(&self) -> Option<(&Value, &Value)> {
        let lo = self.map.keys().next()?;
        let hi = self.map.keys().next_back()?;
        Some((lo, hi))
    }

    /// Number of distinct indexed values.
    pub fn distinct(&self) -> usize {
        self.map.len()
    }

    /// Iterates over `(value, ids)` pairs in value order.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, &Vec<TupleId>)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};

    fn rel() -> Relation {
        let schema = Schema::from_pairs(&[("K", DataType::Int), ("P", DataType::Text)]).unwrap();
        let mut r = Relation::new("T", schema);
        for (k, p) in [(5, "a"), (1, "b"), (5, "c"), (3, "d"), (9, "e")] {
            r.insert(vec![Value::Int(k), Value::from(p)]).unwrap();
        }
        r
    }

    #[test]
    fn hash_index_lookup() {
        let r = rel();
        let idx = HashIndex::build(&r, AttrId::new(0));
        assert_eq!(idx.lookup(&Value::Int(5)).len(), 2);
        assert_eq!(idx.lookup(&Value::Int(2)).len(), 0);
        assert_eq!(idx.distinct(), 4);
        assert_eq!(idx.lookup_count(), 2);
    }

    #[test]
    fn hash_index_lookup_many_dedups() {
        let r = rel();
        let idx = HashIndex::build(&r, AttrId::new(0));
        let ids = idx.lookup_many(&[Value::Int(5), Value::Int(5), Value::Int(1)]);
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn hash_index_insert_remove() {
        let r = rel();
        let mut idx = HashIndex::build(&r, AttrId::new(0));
        idx.insert(Value::Int(7), TupleId::new(99));
        assert_eq!(idx.lookup(&Value::Int(7)), &[TupleId::new(99)]);
        assert!(idx.remove(&Value::Int(7), TupleId::new(99)));
        assert!(!idx.remove(&Value::Int(7), TupleId::new(99)));
        assert_eq!(idx.lookup(&Value::Int(7)).len(), 0);
    }

    #[test]
    fn ordered_index_range() {
        let r = rel();
        let idx = OrderedIndex::build(&r, AttrId::new(0));
        let ids = idx.range(&Value::Int(2), &Value::Int(6));
        // keys 3 and 5 (twice) fall in range
        assert_eq!(ids.len(), 3);
        assert_eq!(idx.lookup(&Value::Int(9)).len(), 1);
        let (lo, hi) = idx.bounds().unwrap();
        assert_eq!(lo, &Value::Int(1));
        assert_eq!(hi, &Value::Int(9));
        assert_eq!(idx.distinct(), 4);
    }

    #[test]
    fn ordered_index_empty_bounds() {
        let idx = OrderedIndex::default();
        assert!(idx.bounds().is_none());
        assert!(idx.range(&Value::Int(0), &Value::Int(10)).is_empty());
    }
}
