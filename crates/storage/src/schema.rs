//! Relation schemas: attribute names, types and domains.

use pds_common::{AttrId, Domain, PdsError, Result, Value};
use serde::{Deserialize, Serialize};

/// The declared type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit integers.
    Int,
    /// UTF-8 text.
    Text,
    /// Raw bytes (ciphertexts, opaque payloads).
    Bytes,
    /// Booleans.
    Bool,
}

impl DataType {
    /// Whether a value is admissible for this type (NULL is always allowed).
    pub fn admits(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (DataType::Int, Value::Int(_))
                | (DataType::Text, Value::Text(_))
                | (DataType::Bytes, Value::Bytes(_))
                | (DataType::Bool, Value::Bool(_))
        )
    }
}

/// A named, typed attribute with an optional declared domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name (case-sensitive).
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
    /// Declared domain; defaults to [`Domain::Open`].
    pub domain: Domain,
}

impl Attribute {
    /// Creates an attribute with an open domain.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Attribute {
            name: name.into(),
            data_type,
            domain: Domain::Open,
        }
    }

    /// Sets the declared domain.
    pub fn with_domain(mut self, domain: Domain) -> Self {
        self.domain = domain;
        self
    }
}

/// An ordered collection of attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Creates a schema from a list of attributes.
    ///
    /// # Errors
    /// Fails if two attributes share a name.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self> {
        for i in 0..attributes.len() {
            for j in i + 1..attributes.len() {
                if attributes[i].name == attributes[j].name {
                    return Err(PdsError::Schema(format!(
                        "duplicate attribute name '{}'",
                        attributes[i].name
                    )));
                }
            }
        }
        Ok(Schema { attributes })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Result<Self> {
        Self::new(pairs.iter().map(|(n, t)| Attribute::new(*n, *t)).collect())
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// The attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Looks up an attribute position by name.
    pub fn attr_id(&self, name: &str) -> Result<AttrId> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .map(AttrId::from)
            .ok_or_else(|| PdsError::Schema(format!("unknown attribute '{name}'")))
    }

    /// The attribute at a given position.
    pub fn attribute(&self, id: AttrId) -> Result<&Attribute> {
        self.attributes
            .get(id.index())
            .ok_or_else(|| PdsError::Schema(format!("attribute index {id} out of range")))
    }

    /// Returns a new schema containing only the named attributes, in the
    /// order given (projection).
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut attrs = Vec::with_capacity(names.len());
        for name in names {
            let id = self.attr_id(name)?;
            attrs.push(self.attributes[id.index()].clone());
        }
        Schema::new(attrs)
    }

    /// Validates that a row of values conforms to the schema (arity and
    /// types).
    pub fn validate_row(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.arity() {
            return Err(PdsError::Schema(format!(
                "row arity {} does not match schema arity {}",
                values.len(),
                self.arity()
            )));
        }
        for (attr, value) in self.attributes.iter().zip(values.iter()) {
            if !attr.data_type.admits(value) {
                return Err(PdsError::Schema(format!(
                    "value {value} not admissible for attribute '{}' of type {:?}",
                    attr.name, attr.data_type
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn employee_schema() -> Schema {
        Schema::from_pairs(&[
            ("EId", DataType::Text),
            ("FirstName", DataType::Text),
            ("LastName", DataType::Text),
            ("SSN", DataType::Int),
            ("Office", DataType::Int),
            ("Dept", DataType::Text),
        ])
        .unwrap()
    }

    #[test]
    fn attr_lookup() {
        let s = employee_schema();
        assert_eq!(s.arity(), 6);
        assert_eq!(s.attr_id("SSN").unwrap().index(), 3);
        assert!(s.attr_id("Missing").is_err());
        assert_eq!(s.attribute(AttrId::new(5)).unwrap().name, "Dept");
        assert!(s.attribute(AttrId::new(6)).is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(Schema::from_pairs(&[("A", DataType::Int), ("A", DataType::Text)]).is_err());
    }

    #[test]
    fn projection() {
        let s = employee_schema();
        let p = s.project(&["Dept", "EId"]).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.attributes()[0].name, "Dept");
        assert!(s.project(&["Nope"]).is_err());
    }

    #[test]
    fn row_validation() {
        let s = Schema::from_pairs(&[("A", DataType::Int), ("B", DataType::Text)]).unwrap();
        assert!(s.validate_row(&[Value::Int(1), Value::from("x")]).is_ok());
        assert!(s.validate_row(&[Value::Int(1), Value::Null]).is_ok());
        assert!(s
            .validate_row(&[Value::from("x"), Value::from("y")])
            .is_err());
        assert!(s.validate_row(&[Value::Int(1)]).is_err());
    }

    #[test]
    fn datatype_admits() {
        assert!(DataType::Int.admits(&Value::Int(3)));
        assert!(!DataType::Int.admits(&Value::from("3")));
        assert!(DataType::Bytes.admits(&Value::Bytes(vec![1])));
        assert!(DataType::Bool.admits(&Value::Bool(true)));
        assert!(DataType::Text.admits(&Value::Null));
    }
}
