//! Selection predicates and queries.
//!
//! The paper focuses on single-attribute selection queries (`q(w)` for a
//! predicate value `w`), which Query Binning rewrites into *set* queries
//! (`q(W)` for a bin of values).  Range and conjunctive predicates are also
//! provided because the QB extensions (range queries, §IV of the full
//! version) need them.

use pds_common::{AttrId, PdsError, Result, Value};
use serde::{Deserialize, Serialize};

use crate::schema::Schema;
use crate::tuple::Tuple;

/// A boolean predicate over a tuple.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Predicate {
    /// `attr = value`
    Eq {
        /// Attribute position.
        attr: AttrId,
        /// Value to compare against.
        value: Value,
    },
    /// `attr IN (values)` — this is the shape QB produces: one query for a
    /// whole bin of values.
    InSet {
        /// Attribute position.
        attr: AttrId,
        /// Set of values; a tuple matches if its attribute equals any of them.
        values: Vec<Value>,
    },
    /// `lo <= attr <= hi` (both bounds inclusive).
    Range {
        /// Attribute position.
        attr: AttrId,
        /// Lower inclusive bound.
        lo: Value,
        /// Upper inclusive bound.
        hi: Value,
    },
    /// Conjunction of predicates.
    And(Vec<Predicate>),
    /// Disjunction of predicates.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Matches every tuple.
    True,
}

impl Predicate {
    /// Convenience constructor for an equality predicate by attribute name.
    pub fn eq(schema: &Schema, attr: &str, value: impl Into<Value>) -> Result<Predicate> {
        Ok(Predicate::Eq {
            attr: schema.attr_id(attr)?,
            value: value.into(),
        })
    }

    /// Convenience constructor for an `IN` predicate by attribute name.
    pub fn in_set(schema: &Schema, attr: &str, values: Vec<Value>) -> Result<Predicate> {
        Ok(Predicate::InSet {
            attr: schema.attr_id(attr)?,
            values,
        })
    }

    /// Convenience constructor for a range predicate by attribute name.
    pub fn range(
        schema: &Schema,
        attr: &str,
        lo: impl Into<Value>,
        hi: impl Into<Value>,
    ) -> Result<Predicate> {
        Ok(Predicate::Range {
            attr: schema.attr_id(attr)?,
            lo: lo.into(),
            hi: hi.into(),
        })
    }

    /// Evaluates the predicate on a tuple.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        match self {
            Predicate::Eq { attr, value } => tuple.value(*attr) == value,
            Predicate::InSet { attr, values } => values.contains(tuple.value(*attr)),
            Predicate::Range { attr, lo, hi } => {
                let v = tuple.value(*attr);
                !v.is_null() && v >= lo && v <= hi
            }
            Predicate::And(ps) => ps.iter().all(|p| p.matches(tuple)),
            Predicate::Or(ps) => ps.iter().any(|p| p.matches(tuple)),
            Predicate::Not(p) => !p.matches(tuple),
            Predicate::True => true,
        }
    }

    /// Every attribute position the predicate mentions, sorted and deduped.
    ///
    /// The predicate-pushdown path uses this to enforce its security
    /// invariant owner-side: a predicate travelling in clear inside a wire
    /// frame must only reference non-sensitive attributes, and in
    /// particular never the searchable attribute whose per-value access
    /// pattern Query Binning exists to hide.
    pub fn attrs(&self) -> Vec<AttrId> {
        fn walk(p: &Predicate, out: &mut Vec<AttrId>) {
            match p {
                Predicate::Eq { attr, .. }
                | Predicate::InSet { attr, .. }
                | Predicate::Range { attr, .. } => out.push(*attr),
                Predicate::And(ps) | Predicate::Or(ps) => {
                    for child in ps {
                        walk(child, out);
                    }
                }
                Predicate::Not(child) => walk(child, out),
                Predicate::True => {}
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All equality-searchable values mentioned by the predicate on `attr`
    /// (used by back-ends that answer point/IN queries through an index).
    pub fn point_values(&self, attr: AttrId) -> Vec<Value> {
        match self {
            Predicate::Eq { attr: a, value } if *a == attr => vec![value.clone()],
            Predicate::InSet { attr: a, values } if *a == attr => values.clone(),
            Predicate::And(ps) | Predicate::Or(ps) => {
                ps.iter().flat_map(|p| p.point_values(attr)).collect()
            }
            _ => Vec::new(),
        }
    }
}

/// A selection query: a predicate plus an optional projection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionQuery {
    /// The predicate tuples must satisfy.
    pub predicate: Predicate,
    /// Attribute positions to return; `None` means all attributes.
    pub projection: Option<Vec<AttrId>>,
}

impl SelectionQuery {
    /// Selects whole tuples matching `predicate`.
    pub fn new(predicate: Predicate) -> Self {
        SelectionQuery {
            predicate,
            projection: None,
        }
    }

    /// Point query `attr = value` by attribute name.
    pub fn point(schema: &Schema, attr: &str, value: impl Into<Value>) -> Result<Self> {
        Ok(SelectionQuery::new(Predicate::eq(schema, attr, value)?))
    }

    /// Set query `attr IN values` by attribute name.
    pub fn points(schema: &Schema, attr: &str, values: Vec<Value>) -> Result<Self> {
        Ok(SelectionQuery::new(Predicate::in_set(
            schema, attr, values,
        )?))
    }

    /// Adds a projection by attribute names.
    pub fn with_projection(mut self, schema: &Schema, attrs: &[&str]) -> Result<Self> {
        let ids = attrs
            .iter()
            .map(|a| schema.attr_id(a))
            .collect::<Result<Vec<_>>>()?;
        if ids.is_empty() {
            return Err(PdsError::Query("projection cannot be empty".into()));
        }
        self.projection = Some(ids);
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;
    use pds_common::TupleId;

    fn schema() -> Schema {
        Schema::from_pairs(&[("EId", DataType::Text), ("Office", DataType::Int)]).unwrap()
    }

    fn tuple(eid: &str, office: i64) -> Tuple {
        Tuple::new(TupleId::new(0), vec![Value::from(eid), Value::Int(office)])
    }

    #[test]
    fn eq_and_in_set() {
        let s = schema();
        let p = Predicate::eq(&s, "EId", "E259").unwrap();
        assert!(p.matches(&tuple("E259", 2)));
        assert!(!p.matches(&tuple("E101", 2)));

        let p =
            Predicate::in_set(&s, "EId", vec![Value::from("E101"), Value::from("E259")]).unwrap();
        assert!(p.matches(&tuple("E259", 2)));
        assert!(!p.matches(&tuple("E777", 2)));
    }

    #[test]
    fn range_predicate() {
        let s = schema();
        let p = Predicate::range(&s, "Office", 2, 4).unwrap();
        assert!(p.matches(&tuple("x", 2)));
        assert!(p.matches(&tuple("x", 4)));
        assert!(!p.matches(&tuple("x", 5)));
        assert!(!p.matches(&tuple("x", 1)));
    }

    #[test]
    fn null_never_matches_range() {
        let s = schema();
        let p = Predicate::range(&s, "Office", 0, 100).unwrap();
        let t = Tuple::new(TupleId::new(0), vec![Value::from("x"), Value::Null]);
        assert!(!p.matches(&t));
    }

    #[test]
    fn boolean_combinators() {
        let s = schema();
        let a = Predicate::eq(&s, "EId", "E259").unwrap();
        let b = Predicate::range(&s, "Office", 0, 3).unwrap();
        assert!(Predicate::And(vec![a.clone(), b.clone()]).matches(&tuple("E259", 2)));
        assert!(!Predicate::And(vec![a.clone(), b.clone()]).matches(&tuple("E259", 9)));
        assert!(Predicate::Or(vec![a.clone(), b.clone()]).matches(&tuple("E999", 1)));
        assert!(Predicate::Not(Box::new(a)).matches(&tuple("E999", 1)));
        assert!(Predicate::True.matches(&tuple("anything", 0)));
    }

    #[test]
    fn point_values_extraction() {
        let s = schema();
        let attr = s.attr_id("EId").unwrap();
        let p = Predicate::Or(vec![
            Predicate::eq(&s, "EId", "a").unwrap(),
            Predicate::in_set(&s, "EId", vec![Value::from("b"), Value::from("c")]).unwrap(),
            Predicate::range(&s, "Office", 0, 9).unwrap(),
        ]);
        let vals = p.point_values(attr);
        assert_eq!(
            vals,
            vec![Value::from("a"), Value::from("b"), Value::from("c")]
        );
    }

    #[test]
    fn query_builders() {
        let s = schema();
        let q = SelectionQuery::point(&s, "EId", "E101").unwrap();
        assert!(q.projection.is_none());
        let q = q.with_projection(&s, &["Office"]).unwrap();
        assert_eq!(q.projection.unwrap().len(), 1);
        assert!(SelectionQuery::point(&s, "EId", "x")
            .unwrap()
            .with_projection(&s, &[])
            .is_err());
        assert!(SelectionQuery::point(&s, "Missing", "x").is_err());
    }
}
