//! Sensitivity partitioning: splitting a relation into sensitive and
//! non-sensitive parts (§II of the paper).
//!
//! The paper assumes the DB owner classifies data *before* outsourcing:
//! * **row-level** sensitivity — whole tuples are sensitive (e.g. every
//!   employee of the Defense department), producing `Rs` and `Rns`;
//! * **column-level** sensitivity — some attributes (e.g. `SSN`) are
//!   sensitive for every tuple and are carved out into their own sensitive
//!   relation keyed by a join attribute (Employee1 in Example 1).
//!
//! How the classification is *derived* (inference detection, user-defined
//! rules, ...) is outside the paper's scope and ours; the policy here simply
//! expresses the result of the classification.

use pds_common::{PdsError, Result, Value};

use crate::predicate::Predicate;
use crate::relation::Relation;
use crate::schema::Schema;

/// A sensitivity classification policy.
#[derive(Debug, Clone)]
pub struct SensitivityPolicy {
    /// Rows matching this predicate are sensitive.
    pub row_predicate: Predicate,
    /// Attributes that are sensitive for *every* row (vertical split).
    pub sensitive_attributes: Vec<String>,
    /// The key attribute used to link the vertical split back to the rows.
    pub key_attribute: Option<String>,
}

impl SensitivityPolicy {
    /// Policy with only row-level sensitivity.
    pub fn rows(predicate: Predicate) -> Self {
        SensitivityPolicy {
            row_predicate: predicate,
            sensitive_attributes: Vec::new(),
            key_attribute: None,
        }
    }

    /// Policy that marks no row sensitive (useful as a baseline).
    pub fn nothing_sensitive() -> Self {
        Self::rows(Predicate::Not(Box::new(Predicate::True)))
    }

    /// Policy that marks every row sensitive (the "full encryption" corner).
    pub fn everything_sensitive() -> Self {
        Self::rows(Predicate::True)
    }

    /// Adds a vertical (column-level) split.
    pub fn with_sensitive_attributes(
        mut self,
        key_attribute: impl Into<String>,
        attributes: Vec<String>,
    ) -> Self {
        self.key_attribute = Some(key_attribute.into());
        self.sensitive_attributes = attributes;
        self
    }
}

/// The result of partitioning a relation.
#[derive(Debug, Clone)]
pub struct PartitionedRelation {
    /// `Rs`: the sensitive rows (schema excludes vertically-split columns).
    pub sensitive: Relation,
    /// `Rns`: the non-sensitive rows (same schema as `sensitive`).
    pub nonsensitive: Relation,
    /// The vertical split (e.g. Employee1 with `EId, SSN`), when requested.
    pub sensitive_columns: Option<Relation>,
}

impl PartitionedRelation {
    /// The sensitivity ratio α = |Rs| / (|Rs| + |Rns|) measured in tuples.
    pub fn alpha(&self) -> f64 {
        let s = self.sensitive.len() as f64;
        let ns = self.nonsensitive.len() as f64;
        if s + ns == 0.0 {
            0.0
        } else {
            s / (s + ns)
        }
    }

    /// Total number of tuples across both horizontal parts.
    pub fn total_tuples(&self) -> usize {
        self.sensitive.len() + self.nonsensitive.len()
    }
}

/// Splits relations according to a [`SensitivityPolicy`].
#[derive(Debug, Clone)]
pub struct Partitioner {
    policy: SensitivityPolicy,
}

impl Partitioner {
    /// Creates a partitioner for the given policy.
    pub fn new(policy: SensitivityPolicy) -> Self {
        Partitioner { policy }
    }

    /// Shorthand for a row-level-only partitioner.
    pub fn row_level(predicate: Predicate) -> Self {
        Self::new(SensitivityPolicy::rows(predicate))
    }

    /// Splits `relation` into its sensitive and non-sensitive parts.
    ///
    /// Tuple ids are preserved so that the adversarial view of the original
    /// relation and of the partitioned relations coincide.
    pub fn split(&self, relation: &Relation) -> Result<PartitionedRelation> {
        let schema = relation.schema();

        // Vertical split: project out sensitive attributes (plus the key).
        let (kept_schema, kept_names, vertical) = self.vertical_schemas(schema)?;

        let mut sensitive = Relation::new(format!("{}_s", relation.name()), kept_schema.clone());
        let mut nonsensitive =
            Relation::new(format!("{}_ns", relation.name()), kept_schema.clone());
        let mut sensitive_columns = vertical
            .as_ref()
            .map(|vschema| Relation::new(format!("{}_cols", relation.name()), vschema.clone()));

        let kept_ids = kept_names
            .iter()
            .map(|n| schema.attr_id(n))
            .collect::<Result<Vec<_>>>()?;

        for tuple in relation.tuples() {
            let kept_values: Vec<Value> =
                kept_ids.iter().map(|&a| tuple.value(a).clone()).collect();
            if self.policy.row_predicate.matches(tuple) {
                sensitive.insert_with_id(tuple.id, kept_values)?;
            } else {
                nonsensitive.insert_with_id(tuple.id, kept_values)?;
            }
            if let (Some(cols_rel), Some(key)) = (
                sensitive_columns.as_mut(),
                self.policy.key_attribute.as_ref(),
            ) {
                let key_id = schema.attr_id(key)?;
                let mut row = vec![tuple.value(key_id).clone()];
                for name in &self.policy.sensitive_attributes {
                    row.push(tuple.value(schema.attr_id(name)?).clone());
                }
                cols_rel.insert_with_id(tuple.id, row)?;
            }
        }

        Ok(PartitionedRelation {
            sensitive,
            nonsensitive,
            sensitive_columns,
        })
    }

    /// Computes the horizontal schema (original minus vertically-split
    /// attributes) and, when requested, the vertical schema (key + sensitive
    /// attributes).
    fn vertical_schemas(&self, schema: &Schema) -> Result<(Schema, Vec<String>, Option<Schema>)> {
        if self.policy.sensitive_attributes.is_empty() {
            let names: Vec<String> = schema.attributes().iter().map(|a| a.name.clone()).collect();
            return Ok((schema.clone(), names, None));
        }
        let key = self.policy.key_attribute.as_ref().ok_or_else(|| {
            PdsError::Config("column-level sensitivity requires a key attribute".into())
        })?;
        // Horizontal schema keeps everything except the sensitive attributes.
        let kept: Vec<String> = schema
            .attributes()
            .iter()
            .map(|a| a.name.clone())
            .filter(|n| !self.policy.sensitive_attributes.contains(n))
            .collect();
        if !kept.contains(key) {
            return Err(PdsError::Config(format!(
                "key attribute '{key}' must not itself be a sensitive attribute"
            )));
        }
        let kept_refs: Vec<&str> = kept.iter().map(String::as_str).collect();
        let kept_schema = schema.project(&kept_refs)?;

        let mut vertical_names = vec![key.as_str()];
        for n in &self.policy.sensitive_attributes {
            // Ensure it exists.
            schema.attr_id(n)?;
            vertical_names.push(n.as_str());
        }
        let vertical_schema = schema.project(&vertical_names)?;
        Ok((kept_schema, kept, Some(vertical_schema)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    /// Builds the Employee relation of Figure 1 of the paper.
    pub fn employee_relation() -> Relation {
        let schema = Schema::from_pairs(&[
            ("EId", DataType::Text),
            ("FirstName", DataType::Text),
            ("LastName", DataType::Text),
            ("SSN", DataType::Int),
            ("Office", DataType::Int),
            ("Dept", DataType::Text),
        ])
        .unwrap();
        let mut r = Relation::new("Employee", schema);
        let rows: Vec<(&str, &str, &str, i64, i64, &str)> = vec![
            ("E101", "Adam", "Smith", 111, 1, "Defense"),
            ("E259", "John", "Williams", 222, 2, "Design"),
            ("E199", "Eve", "Smith", 333, 2, "Design"),
            ("E259", "John", "Williams", 222, 6, "Defense"),
            ("E152", "Clark", "Cook", 444, 1, "Defense"),
            ("E254", "David", "Watts", 555, 4, "Design"),
            ("E159", "Lisa", "Ross", 666, 2, "Defense"),
            ("E152", "Clark", "Cook", 444, 3, "Design"),
        ];
        for (eid, fname, lname, ssn, office, dept) in rows {
            r.insert(vec![
                Value::from(eid),
                Value::from(fname),
                Value::from(lname),
                Value::Int(ssn),
                Value::Int(office),
                Value::from(dept),
            ])
            .unwrap();
        }
        r
    }

    #[test]
    fn employee_example_partition() {
        let r = employee_relation();
        let policy = SensitivityPolicy::rows(Predicate::eq(r.schema(), "Dept", "Defense").unwrap())
            .with_sensitive_attributes("EId", vec!["SSN".to_string()]);
        let parts = Partitioner::new(policy).split(&r).unwrap();

        // Employee2: 4 Defense tuples (t1, t4, t5, t7 → ids 0, 3, 4, 6).
        assert_eq!(parts.sensitive.len(), 4);
        let sens_ids: Vec<u64> = parts
            .sensitive
            .tuples()
            .iter()
            .map(|t| t.id.raw())
            .collect();
        assert_eq!(sens_ids, vec![0, 3, 4, 6]);

        // Employee3: 4 Design tuples.
        assert_eq!(parts.nonsensitive.len(), 4);

        // SSN column no longer present in the horizontal parts.
        assert!(parts.sensitive.schema().attr_id("SSN").is_err());
        assert!(parts.nonsensitive.schema().attr_id("SSN").is_err());

        // Employee1: EId + SSN for every tuple.
        let cols = parts.sensitive_columns.as_ref().unwrap();
        assert_eq!(cols.len(), 8);
        assert_eq!(cols.schema().arity(), 2);

        // α = 4/8.
        assert!((parts.alpha() - 0.5).abs() < 1e-12);
        assert_eq!(parts.total_tuples(), 8);
    }

    #[test]
    fn row_level_only_keeps_schema() {
        let r = employee_relation();
        let parts = Partitioner::row_level(Predicate::eq(r.schema(), "Dept", "Defense").unwrap())
            .split(&r)
            .unwrap();
        assert_eq!(parts.sensitive.schema().arity(), 6);
        assert!(parts.sensitive_columns.is_none());
    }

    #[test]
    fn extreme_policies() {
        let r = employee_relation();
        let all = Partitioner::new(SensitivityPolicy::everything_sensitive())
            .split(&r)
            .unwrap();
        assert_eq!(all.sensitive.len(), 8);
        assert_eq!(all.nonsensitive.len(), 0);
        assert!((all.alpha() - 1.0).abs() < 1e-12);

        let none = Partitioner::new(SensitivityPolicy::nothing_sensitive())
            .split(&r)
            .unwrap();
        assert_eq!(none.sensitive.len(), 0);
        assert!((none.alpha()).abs() < 1e-12);
    }

    #[test]
    fn column_policy_requires_key() {
        let r = employee_relation();
        let mut policy =
            SensitivityPolicy::rows(Predicate::eq(r.schema(), "Dept", "Defense").unwrap());
        policy.sensitive_attributes = vec!["SSN".to_string()];
        // key_attribute not set.
        assert!(Partitioner::new(policy).split(&r).is_err());
    }

    #[test]
    fn key_cannot_be_sensitive_attribute() {
        let r = employee_relation();
        let policy = SensitivityPolicy::rows(Predicate::True)
            .with_sensitive_attributes("SSN", vec!["SSN".to_string()]);
        assert!(Partitioner::new(policy).split(&r).is_err());
    }

    #[test]
    fn unknown_sensitive_attribute_errors() {
        let r = employee_relation();
        let policy = SensitivityPolicy::rows(Predicate::True)
            .with_sensitive_attributes("EId", vec!["Nope".to_string()]);
        assert!(Partitioner::new(policy).split(&r).is_err());
    }

    #[test]
    fn alpha_of_empty_relation_is_zero() {
        let schema = Schema::from_pairs(&[("A", DataType::Int)]).unwrap();
        let r = Relation::new("Empty", schema);
        let parts = Partitioner::new(SensitivityPolicy::everything_sensitive())
            .split(&r)
            .unwrap();
        assert_eq!(parts.alpha(), 0.0);
    }
}
