//! # pds-storage
//!
//! A compact in-memory relational storage engine: schemas, tuples, relations,
//! equality/range predicates, hash and ordered indexes, per-attribute value
//! statistics, and — the part specific to this paper — **row-level
//! sensitivity partitioning** that splits a relation `R` into a sensitive
//! part `Rs` and a non-sensitive part `Rns` (§II of the paper).
//!
//! Everything the cloud simulator (`pds-cloud`), the secure back-ends
//! (`pds-systems`) and Query Binning itself (`pds-core`) manipulate is built
//! from the types in this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod partition;
pub mod predicate;
pub mod relation;
pub mod schema;
pub mod stats;
pub mod tuple;

pub use index::{HashIndex, OrderedIndex};
pub use partition::{PartitionedRelation, Partitioner, SensitivityPolicy};
pub use predicate::{Predicate, SelectionQuery};
pub use relation::Relation;
pub use schema::{Attribute, DataType, Schema};
pub use stats::AttributeStats;
pub use tuple::Tuple;
