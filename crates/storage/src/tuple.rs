//! Tuples (rows) of a relation.

use pds_common::{AttrId, TupleId, Value};
use serde::{Deserialize, Serialize};

/// A tuple: a stable identifier plus one value per attribute of the owning
/// relation's schema.
///
/// The identifier is preserved across partitioning (sensitive tuples keep the
/// id they had in the original relation), because the paper's adversarial
/// view is phrased in terms of *which* encrypted tuples the cloud returns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tuple {
    /// Stable identifier of the tuple.
    pub id: TupleId,
    /// Attribute values, in schema order.
    pub values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple.
    pub fn new(id: TupleId, values: Vec<Value>) -> Self {
        Tuple { id, values }
    }

    /// The value of the attribute at `attr`.
    pub fn value(&self, attr: AttrId) -> &Value {
        &self.values[attr.index()]
    }

    /// Mutable access to the value of the attribute at `attr`.
    pub fn value_mut(&mut self, attr: AttrId) -> &mut Value {
        &mut self.values[attr.index()]
    }

    /// Projects the tuple onto the given attribute positions.
    pub fn project(&self, attrs: &[AttrId]) -> Vec<Value> {
        attrs
            .iter()
            .map(|a| self.values[a.index()].clone())
            .collect()
    }

    /// Approximate serialised size in bytes (communication cost modelling).
    pub fn size_bytes(&self) -> usize {
        8 + self.values.iter().map(Value::size_bytes).sum::<usize>()
    }

    /// Stable byte encoding of the whole tuple (what gets encrypted when a
    /// sensitive tuple is outsourced).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size_bytes() + 4 * self.values.len());
        out.extend_from_slice(&self.id.raw().to_be_bytes());
        out.extend_from_slice(&(self.values.len() as u32).to_be_bytes());
        for v in &self.values {
            let enc = v.encode();
            out.extend_from_slice(&(enc.len() as u32).to_be_bytes());
            out.extend_from_slice(&enc);
        }
        out
    }

    /// Decodes a tuple previously produced by [`Tuple::encode`].
    pub fn decode(bytes: &[u8]) -> Option<Tuple> {
        if bytes.len() < 12 {
            return None;
        }
        let id = TupleId::new(u64::from_be_bytes(bytes[..8].try_into().ok()?));
        let count = u32::from_be_bytes(bytes[8..12].try_into().ok()?) as usize;
        let mut values = Vec::with_capacity(count);
        let mut offset = 12;
        for _ in 0..count {
            if bytes.len() < offset + 4 {
                return None;
            }
            let len = u32::from_be_bytes(bytes[offset..offset + 4].try_into().ok()?) as usize;
            offset += 4;
            if bytes.len() < offset + len {
                return None;
            }
            values.push(Value::decode(&bytes[offset..offset + len])?);
            offset += len;
        }
        if offset != bytes.len() {
            return None;
        }
        Some(Tuple { id, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Tuple {
        Tuple::new(
            TupleId::new(4),
            vec![
                Value::from("E259"),
                Value::from("John"),
                Value::Int(222),
                Value::Null,
            ],
        )
    }

    #[test]
    fn value_access_and_projection() {
        let t = sample();
        assert_eq!(t.value(AttrId::new(0)), &Value::from("E259"));
        assert_eq!(
            t.project(&[AttrId::new(2), AttrId::new(0)]),
            vec![Value::Int(222), Value::from("E259")]
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = sample();
        assert_eq!(Tuple::decode(&t.encode()), Some(t));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Tuple::decode(&[]), None);
        assert_eq!(Tuple::decode(&[0u8; 11]), None);
        let mut enc = sample().encode();
        enc.push(0); // trailing junk
        assert_eq!(Tuple::decode(&enc), None);
    }

    #[test]
    fn size_accounts_for_values() {
        let t = sample();
        assert!(t.size_bytes() > 8 + 4 + 4 + 8);
    }

    proptest! {
        #[test]
        fn roundtrip_property(id in any::<u64>(),
                              ints in proptest::collection::vec(any::<i64>(), 0..8),
                              texts in proptest::collection::vec(".{0,12}", 0..8)) {
            let mut values: Vec<Value> = ints.into_iter().map(Value::Int).collect();
            values.extend(texts.into_iter().map(Value::Text));
            let t = Tuple::new(TupleId::new(id), values);
            prop_assert_eq!(Tuple::decode(&t.encode()), Some(t));
        }
    }
}
