//! Metrics registry: counters, gauges, log-bucketed latency histograms.
//!
//! Series are keyed by `(name, sorted labels)` in a `BTreeMap`, so the
//! Prometheus-text rendering is byte-stable for deterministic inputs —
//! the property the `StatsRequest` wire snapshot relies on. Histograms
//! bucket multiplicatively (factor [`HISTOGRAM_GROWTH`] ≈ 1.19), which
//! bounds any reported percentile to within one bucket width of the
//! exact nearest-rank value.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Multiplicative bucket growth factor (2^(1/4)): every reported
/// percentile is within ×1.19 of the exact nearest-rank sample.
pub const HISTOGRAM_GROWTH: f64 = 1.189_207_115_002_721;

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Log-bucketed histogram with nearest-rank percentile estimation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// Bucket index → count. Index `i` covers `(g^i, g^(i+1)]`;
    /// `i64::MIN` is the underflow bucket for values ≤ 0.
    buckets: BTreeMap<i64, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    fn bucket_index(v: f64) -> i64 {
        if v <= 0.0 || !v.is_finite() {
            return i64::MIN;
        }
        (v.ln() / HISTOGRAM_GROWTH.ln()).floor() as i64
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        *self.buckets.entry(Self::bucket_index(v)).or_insert(0) += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Nearest-rank percentile estimate for `p` in `[0, 100]`.
    ///
    /// Returns the upper bound of the bucket holding the nearest-rank
    /// sample, clamped to the observed maximum — so the result `r`
    /// satisfies `exact ≤ r ≤ exact × HISTOGRAM_GROWTH`.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (&idx, &n) in &self.buckets {
            cumulative += n;
            if cumulative >= rank {
                if idx == i64::MIN {
                    return self.min.min(0.0);
                }
                let upper = HISTOGRAM_GROWTH.powi((idx + 1) as i32);
                return upper.min(self.max);
            }
        }
        self.max
    }
}

/// Convenience wrapper for latency summaries in milliseconds —
/// the shared replacement for hand-rolled sorted-vector percentiles.
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    hist: Histogram,
}

impl LatencySummary {
    /// An empty summary.
    pub fn new() -> LatencySummary {
        LatencySummary::default()
    }

    /// Record one latency in milliseconds.
    pub fn observe_ms(&mut self, ms: f64) {
        self.hist.observe(ms);
    }

    /// Number of recorded latencies.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.hist.mean()
    }

    /// Percentile estimate in milliseconds (see [`Histogram::percentile`]).
    pub fn percentile_ms(&self, p: f64) -> f64 {
        self.hist.percentile(p)
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

#[derive(Debug, Clone, PartialEq)]
enum SeriesValue {
    Counter(u64),
    Gauge(f64),
    Hist(Histogram),
}

impl SeriesValue {
    fn type_str(&self) -> &'static str {
        match self {
            SeriesValue::Counter(_) => "counter",
            SeriesValue::Gauge(_) => "gauge",
            SeriesValue::Hist(_) => "summary",
        }
    }
}

/// Which series a snapshot exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsScope {
    /// Every series.
    All,
    /// Series labelled with this tenant id, plus series carrying no
    /// `tenant` label at all (global shard health).
    Tenant(u64),
}

/// Thread-safe registry of named, labelled metric series.
#[derive(Debug, Default)]
pub struct Registry {
    series: Mutex<BTreeMap<SeriesKey, SeriesValue>>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    SeriesKey {
        name: name.to_string(),
        labels,
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add `delta` to a counter, creating it at 0 first if absent.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let mut series = relock(&self.series);
        let entry = series
            .entry(key(name, labels))
            .or_insert(SeriesValue::Counter(0));
        match entry {
            SeriesValue::Counter(c) => *c = c.saturating_add(delta),
            other => *other = SeriesValue::Counter(delta),
        }
    }

    /// Set a counter to an absolute value taken from an external
    /// monotonic source (e.g. a flushed `Metrics` struct). The stored
    /// value never decreases, keeping the series monotonic across
    /// repeated flushes.
    pub fn counter_set(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        let mut series = relock(&self.series);
        let entry = series
            .entry(key(name, labels))
            .or_insert(SeriesValue::Counter(0));
        match entry {
            SeriesValue::Counter(c) => *c = (*c).max(value),
            other => *other = SeriesValue::Counter(value),
        }
    }

    /// Set a gauge.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let mut series = relock(&self.series);
        series.insert(key(name, labels), SeriesValue::Gauge(value));
    }

    /// Record one observation into a histogram series.
    pub fn hist_observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let mut series = relock(&self.series);
        let entry = series
            .entry(key(name, labels))
            .or_insert_with(|| SeriesValue::Hist(Histogram::new()));
        match entry {
            SeriesValue::Hist(h) => h.observe(value),
            other => {
                let mut h = Histogram::new();
                h.observe(value);
                *other = SeriesValue::Hist(h);
            }
        }
    }

    /// Current value of a counter series (0 if absent). For tests and
    /// report plumbing.
    pub fn get_counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match relock(&self.series).get(&key(name, labels)) {
            Some(SeriesValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Current value of a gauge series (`None` if absent).
    pub fn get_gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match relock(&self.series).get(&key(name, labels)) {
            Some(SeriesValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Drop every series. For tests that need a clean global registry.
    pub fn reset(&self) {
        relock(&self.series).clear();
    }

    /// Render the registry as Prometheus text format.
    ///
    /// Series are emitted in sorted `(name, labels)` order with one
    /// `# TYPE` line per metric name, so two registries holding the
    /// same values render byte-identically. Histograms render as
    /// summaries (`quantile` labels + `_count`/`_sum`).
    pub fn render(&self, scope: StatsScope) -> String {
        let series = relock(&self.series);
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (k, v) in series.iter() {
            if !Self::in_scope(k, scope) {
                continue;
            }
            if last_name != Some(k.name.as_str()) {
                out.push_str("# TYPE ");
                out.push_str(&k.name);
                out.push(' ');
                out.push_str(v.type_str());
                out.push('\n');
                last_name = Some(k.name.as_str());
            }
            match v {
                SeriesValue::Counter(c) => {
                    render_sample(&mut out, &k.name, &k.labels, None, &c.to_string());
                }
                SeriesValue::Gauge(g) => {
                    render_sample(
                        &mut out,
                        &k.name,
                        &k.labels,
                        None,
                        &crate::trace::format_f64(*g),
                    );
                }
                SeriesValue::Hist(h) => {
                    for (q, p) in [
                        ("0.5", 50.0),
                        ("0.9", 90.0),
                        ("0.99", 99.0),
                        ("0.999", 99.9),
                    ] {
                        render_sample(
                            &mut out,
                            &k.name,
                            &k.labels,
                            Some(q),
                            &crate::trace::format_f64(h.percentile(p)),
                        );
                    }
                    let count_name = format!("{}_count", k.name);
                    render_sample(
                        &mut out,
                        &count_name,
                        &k.labels,
                        None,
                        &h.count().to_string(),
                    );
                    let sum_name = format!("{}_sum", k.name);
                    render_sample(
                        &mut out,
                        &sum_name,
                        &k.labels,
                        None,
                        &crate::trace::format_f64(h.sum()),
                    );
                }
            }
        }
        out
    }

    fn in_scope(k: &SeriesKey, scope: StatsScope) -> bool {
        match scope {
            StatsScope::All => true,
            StatsScope::Tenant(t) => match k.labels.iter().find(|(name, _)| name == "tenant") {
                None => true,
                Some((_, v)) => *v == t.to_string(),
            },
        }
    }
}

fn render_sample(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    quantile: Option<&str>,
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || quantile.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(v);
            out.push('"');
        }
        if let Some(q) = quantile {
            if !first {
                out.push(',');
            }
            out.push_str("quantile=\"");
            out.push_str(q);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Process-global registry for call sites without a daemon-local one
/// (owner-side caches, planner gauges, bench summaries).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_track_nearest_rank_within_one_bucket() {
        let mut h = Histogram::new();
        let mut samples: Vec<f64> = Vec::new();
        let mut x = 1u64;
        for i in 0..1000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = 0.1 + (x >> 40) as f64 / 1000.0 + (i as f64) * 0.003;
            samples.push(v);
            h.observe(v);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [50.0, 90.0, 99.0, 99.9] {
            let rank = ((p / 100.0) * samples.len() as f64).ceil().max(1.0) as usize;
            let exact = samples[rank - 1];
            let est = h.percentile(p);
            assert!(
                est >= exact - 1e-12 && est <= exact * HISTOGRAM_GROWTH + 1e-12,
                "p{p}: exact {exact}, est {est}"
            );
        }
    }

    #[test]
    fn render_is_sorted_and_scoped() {
        let r = Registry::new();
        r.counter_add("pds_requests_total", &[("tenant", "2"), ("shard", "0")], 3);
        r.counter_add("pds_requests_total", &[("tenant", "1"), ("shard", "0")], 5);
        r.gauge_set("pds_up", &[("shard", "0")], 1.0);
        let all = r.render(StatsScope::All);
        assert!(all.contains("# TYPE pds_requests_total counter"));
        let t1 = r.render(StatsScope::Tenant(1));
        assert!(t1.contains("tenant=\"1\""), "{t1}");
        assert!(!t1.contains("tenant=\"2\""), "{t1}");
        assert!(t1.contains("pds_up"), "global series stay visible: {t1}");
        let t1_again = r.render(StatsScope::Tenant(1));
        assert_eq!(t1, t1_again, "rendering must be byte-stable");
    }

    #[test]
    fn counter_set_is_monotonic() {
        let r = Registry::new();
        r.counter_set("c", &[], 10);
        r.counter_set("c", &[], 7);
        assert_eq!(r.get_counter("c", &[]), 10);
        r.counter_set("c", &[], 12);
        assert_eq!(r.get_counter("c", &[]), 12);
    }
}
