//! `pds-obs` — dependency-free observability substrate for the PDS service.
//!
//! Three pillars, all usable from any crate in the workspace without
//! pulling in external dependencies:
//!
//! 1. **Structured spans** ([`trace`]): RAII [`obs_span`] guards record
//!    `TraceEvent`s (id, parent link, monotonic nanosecond timestamps)
//!    into per-thread bounded ring buffers. A global epoch [`drain`]
//!    collects events from every thread — including threads that have
//!    already exited — for JSON-lines emission. When tracing is
//!    disabled the fast path is a single relaxed atomic load.
//! 2. **Metrics registry** ([`metrics`]): named counters, gauges, and
//!    log-bucketed latency histograms (p50/p90/p99/p999) with sorted
//!    labels, rendered as byte-stable Prometheus text, optionally
//!    scoped to one tenant's series plus unlabelled shard health.
//! 3. **Trace reports** ([`report`]): offline aggregation of a
//!    JSON-lines trace into per-phase self-time totals and a
//!    critical-path breakdown, with a wall-clock coverage gate.
//!
//! Telemetry over an encrypted-outsourcing system is itself an egress
//! channel: no emission site may reference sensitive-plaintext
//! identifiers. That rule is enforced statically by the
//! `telemetry-redaction` pass in `pds-analyze`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod report;
pub mod trace;

pub use metrics::{global, Histogram, LatencySummary, Registry, StatsScope, HISTOGRAM_GROWTH};
pub use report::{analyze_trace, render_report, Report};
pub use trace::{
    drain, now_ns, obs_span, parse_trace_line, record_manual, set_tracing, tracing_enabled,
    DrainResult, SpanGuard, TraceEvent, TraceLine,
};
