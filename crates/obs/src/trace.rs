//! Structured span recording with per-thread bounded ring buffers.
//!
//! Design constraints, in order:
//!
//! - **Near-zero cost when disabled**: [`obs_span`] performs exactly one
//!   relaxed atomic load and returns an inert guard. No allocation, no
//!   clock read, no thread-local touch.
//! - **No cross-thread contention when enabled**: every thread records
//!   into its own ring buffer behind its own mutex; the only shared
//!   state on the record path is a lock-free id counter.
//! - **Events survive thread death**: rings are `Arc`s registered in a
//!   global list, so a global [`drain`] collects events recorded by
//!   worker threads that have already been joined.
//! - **Bounded memory**: each ring holds at most [`RING_CAPACITY`]
//!   events; overflow drops the *oldest* event and counts it, so a
//!   drain can report lossiness instead of hiding it.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Maximum number of buffered events per thread before the oldest are
/// dropped (and counted as dropped).
pub const RING_CAPACITY: usize = 1 << 16;

static TRACING: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

/// One closed span, as recorded in a ring buffer and emitted to traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Unique span id (process-wide, never 0).
    pub id: u64,
    /// Id of the span that was open on the same thread when this span
    /// started, or 0 for a root span.
    pub parent: u64,
    /// Small dense id of the recording thread (assigned on first use).
    pub thread: u64,
    /// Static span name, e.g. `"daemon.dispatch"`. The segment before
    /// the first `.` is the span's *phase*.
    pub name: String,
    /// Start timestamp, nanoseconds since the process trace anchor.
    pub start_ns: u64,
    /// End timestamp, nanoseconds since the process trace anchor.
    pub end_ns: u64,
}

struct ThreadRing {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl ThreadRing {
    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() >= RING_CAPACITY {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

/// Global list of every thread's ring, so drains see rings belonging to
/// threads that have already exited.
static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<ThreadRing>>>>> = OnceLock::new();

fn rings() -> &'static Mutex<Vec<Arc<Mutex<ThreadRing>>>> {
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Recover from mutex poisoning: a panicking recorder thread must not
/// take the whole trace down with it.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct ThreadCtx {
    thread: u64,
    ring: Arc<Mutex<ThreadRing>>,
    /// Ids of spans currently open on this thread, innermost last.
    stack: RefCell<Vec<u64>>,
}

impl ThreadCtx {
    fn new() -> ThreadCtx {
        let ring = Arc::new(Mutex::new(ThreadRing {
            events: VecDeque::new(),
            dropped: 0,
        }));
        relock(rings()).push(Arc::clone(&ring));
        ThreadCtx {
            thread: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
            ring,
            stack: RefCell::new(Vec::new()),
        }
    }
}

thread_local! {
    static CTX: ThreadCtx = ThreadCtx::new();
}

fn anchor() -> &'static Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace anchor (first observability use).
///
/// Public so call sites can timestamp hand-offs that cross threads
/// (e.g. queue enqueue → dequeue) and record them via [`record_manual`].
pub fn now_ns() -> u64 {
    anchor().elapsed().as_nanos() as u64
}

/// Turn span recording on or off process-wide.
///
/// Spans already open keep recording on close, so a disable during a
/// request does not produce half-open trees.
pub fn set_tracing(on: bool) {
    // Initialise the anchor before the first span so early timestamps
    // are well-ordered.
    let _ = now_ns();
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

struct OpenSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
}

/// RAII guard returned by [`obs_span`]; records a [`TraceEvent`] on drop.
pub struct SpanGuard {
    inner: Option<OpenSpan>,
}

impl SpanGuard {
    /// Id of the open span, or 0 when tracing was disabled at open.
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| s.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.inner.take() else {
            return;
        };
        let end_ns = now_ns();
        CTX.with(|ctx| {
            {
                let mut stack = ctx.stack.borrow_mut();
                if let Some(pos) = stack.iter().rposition(|&id| id == open.id) {
                    stack.remove(pos);
                }
            }
            relock(&ctx.ring).push(TraceEvent {
                id: open.id,
                parent: open.parent,
                thread: ctx.thread,
                name: open.name.to_string(),
                start_ns: open.start_ns,
                end_ns,
            });
        });
    }
}

/// Open a span named `name` on the current thread.
///
/// When tracing is disabled this is a single relaxed atomic load — the
/// returned guard is inert. When enabled, the span nests under the
/// innermost span already open on this thread and is recorded into the
/// thread's ring buffer when the guard drops.
#[inline]
pub fn obs_span(name: &'static str) -> SpanGuard {
    if !TRACING.load(Ordering::Relaxed) {
        return SpanGuard { inner: None };
    }
    SpanGuard {
        inner: Some(open_span(name)),
    }
}

fn open_span(name: &'static str) -> OpenSpan {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CTX.with(|ctx| {
        let mut stack = ctx.stack.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        parent
    });
    OpenSpan {
        id,
        parent,
        name,
        start_ns: now_ns(),
    }
}

/// Record an already-measured interval as a root span on the current
/// thread.
///
/// For intervals that cross threads (e.g. time a job spent in the
/// dispatch queue: stamped with [`now_ns`] at enqueue, recorded by the
/// worker at dequeue) where an RAII guard cannot apply. No-op when
/// tracing is disabled.
pub fn record_manual(name: &'static str, start_ns: u64, end_ns: u64) {
    if !TRACING.load(Ordering::Relaxed) {
        return;
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    CTX.with(|ctx| {
        relock(&ctx.ring).push(TraceEvent {
            id,
            parent: 0,
            thread: ctx.thread,
            name: name.to_string(),
            start_ns,
            end_ns: end_ns.max(start_ns),
        });
    });
}

/// Result of one global epoch [`drain`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DrainResult {
    /// All events recorded since the previous drain, across every
    /// thread (including exited ones), sorted by `(start_ns, id)`.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow since the previous drain.
    pub dropped: u64,
}

/// Collect and clear every thread's ring buffer.
///
/// Spans still open at drain time are *not* included; they will appear
/// in a later drain once closed.
pub fn drain() -> DrainResult {
    let mut out = DrainResult::default();
    let rings = relock(rings());
    for ring in rings.iter() {
        let mut ring = relock(ring);
        out.events.extend(ring.events.drain(..));
        out.dropped += ring.dropped;
        ring.dropped = 0;
    }
    out.events.sort_by_key(|e| (e.start_ns, e.id));
    out
}

// ---------------------------------------------------------------------------
// JSON-lines emission and parsing
// ---------------------------------------------------------------------------

/// One parsed line of a JSON-lines trace file.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceLine {
    /// A closed span.
    Event(TraceEvent),
    /// A `{"meta": key, "value": v}` annotation, e.g. `wall_clock_ns`.
    Meta(String, f64),
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl TraceEvent {
    /// Render this event as one JSON-lines record (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96 + self.name.len());
        out.push_str("{\"id\":");
        out.push_str(&self.id.to_string());
        out.push_str(",\"parent\":");
        out.push_str(&self.parent.to_string());
        out.push_str(",\"thread\":");
        out.push_str(&self.thread.to_string());
        out.push_str(",\"name\":\"");
        escape_json(&self.name, &mut out);
        out.push_str("\",\"start_ns\":");
        out.push_str(&self.start_ns.to_string());
        out.push_str(",\"end_ns\":");
        out.push_str(&self.end_ns.to_string());
        out.push('}');
        out
    }
}

/// Render a `{"meta": key, "value": v}` annotation line.
pub fn meta_line(key: &str, value: f64) -> String {
    let mut out = String::from("{\"meta\":\"");
    escape_json(key, &mut out);
    out.push_str("\",\"value\":");
    out.push_str(&format_f64(value));
    out.push('}');
    out
}

pub(crate) fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        format!("{}", v)
    }
}

/// Minimal parser for the flat JSON objects this module emits.
///
/// Returns `None` for blank lines or objects missing required fields;
/// it is not a general JSON parser.
pub fn parse_trace_line(line: &str) -> Option<TraceLine> {
    let line = line.trim();
    if line.is_empty() || !line.starts_with('{') {
        return None;
    }
    let fields = parse_flat_object(line)?;
    let get_str = |k: &str| {
        fields.iter().find_map(|(key, v)| match v {
            JsonValue::Str(s) if key == k => Some(s.clone()),
            _ => None,
        })
    };
    let get_num = |k: &str| {
        fields.iter().find_map(|(key, v)| match v {
            JsonValue::Num(n) if key == k => Some(*n),
            _ => None,
        })
    };
    if let Some(meta) = get_str("meta") {
        return Some(TraceLine::Meta(meta, get_num("value")?));
    }
    Some(TraceLine::Event(TraceEvent {
        id: get_num("id")? as u64,
        parent: get_num("parent")? as u64,
        thread: get_num("thread")? as u64,
        name: get_str("name")?,
        start_ns: get_num("start_ns")? as u64,
        end_ns: get_num("end_ns")? as u64,
    }))
}

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Str(String),
    Num(f64),
}

fn parse_flat_object(line: &str) -> Option<Vec<(String, JsonValue)>> {
    let inner = line.strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::new();
    let mut chars = inner.chars().peekable();
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            None => break,
            Some(',') => {
                chars.next();
                continue;
            }
            Some('"') => {}
            Some(_) => return None,
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return None;
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonValue::Str(parse_string(&mut chars)?),
            Some(_) => {
                let mut num = String::new();
                while let Some(&c) = chars.peek() {
                    if c == ',' || c.is_whitespace() {
                        break;
                    }
                    num.push(c);
                    chars.next();
                }
                JsonValue::Num(num.parse().ok()?)
            }
            None => return None,
        };
        fields.push((key, value));
    }
    Some(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next() != Some('"') {
        return None;
    }
    let mut out = String::new();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = chars.by_ref().take(4).collect();
                    let n = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(n)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing enable/drain state is process-global; tests that touch it
    /// must not interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_span_records_nothing() {
        let _guard = relock(&TEST_LOCK);
        set_tracing(false);
        let before = drain();
        drop(before);
        {
            let _g = obs_span("test.disabled");
        }
        let after = drain();
        assert!(!after.events.iter().any(|e| e.name == "test.disabled"));
    }

    #[test]
    fn json_roundtrip_preserves_event() {
        let ev = TraceEvent {
            id: 7,
            parent: 3,
            thread: 2,
            name: "phase.step \"quoted\"".to_string(),
            start_ns: 123,
            end_ns: 456,
        };
        let line = ev.to_json_line();
        match parse_trace_line(&line) {
            Some(TraceLine::Event(back)) => assert_eq!(back, ev),
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn meta_roundtrip_preserves_value() {
        let line = meta_line("wall_clock_ns", 1.5e9);
        match parse_trace_line(&line) {
            Some(TraceLine::Meta(k, v)) => {
                assert_eq!(k, "wall_clock_ns");
                assert!((v - 1.5e9).abs() < 1e-6);
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn manual_records_clamp_backwards_time() {
        let _guard = relock(&TEST_LOCK);
        set_tracing(true);
        let _ = drain();
        record_manual("test.manual", 100, 50);
        set_tracing(false);
        let got = drain();
        let ev = got
            .events
            .iter()
            .find(|e| e.name == "test.manual")
            .expect("manual event recorded");
        assert_eq!(ev.start_ns, ev.end_ns);
    }
}
