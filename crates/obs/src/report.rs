//! Offline aggregation of a JSON-lines trace into per-phase totals and
//! a critical-path breakdown.
//!
//! A span's *phase* is its name up to the first `.` (`daemon.dispatch`
//! → `daemon`). Totals are **self time** — a span's duration minus the
//! durations of its direct children — so on any single thread the phase
//! totals partition the root spans exactly and sum to the traced
//! wall-clock. That is the 5% coverage gate `experiments trace-report`
//! enforces: main-thread root-span time must match the recorded
//! `wall_clock_ns` meta line.

use crate::trace::{parse_trace_line, TraceEvent, TraceLine};
use std::collections::{BTreeMap, HashMap};

/// Aggregated totals for one span name or phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseTotal {
    /// Span or phase name.
    pub name: String,
    /// Number of spans.
    pub count: u64,
    /// Total inclusive duration (ns), summed across spans.
    pub total_ns: u64,
    /// Total exclusive self time (ns): duration minus direct children.
    pub self_ns: u64,
}

/// One hop on the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalHop {
    /// Span name.
    pub name: String,
    /// Inclusive duration of the chosen span (ns).
    pub total_ns: u64,
    /// Self time of the chosen span (ns).
    pub self_ns: u64,
}

/// Result of analysing a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Per-phase totals (phase = name prefix before the first `.`),
    /// sorted by descending self time.
    pub phases: Vec<PhaseTotal>,
    /// Per-span-name totals, sorted by descending self time.
    pub names: Vec<PhaseTotal>,
    /// Longest root-to-leaf chain by inclusive duration, starting from
    /// the largest root span.
    pub critical_path: Vec<CriticalHop>,
    /// Number of events in the trace.
    pub events: u64,
    /// Events the recorder dropped (from a `dropped` meta line).
    pub dropped: u64,
    /// Wall-clock of the traced region (from a `wall_clock_ns` meta
    /// line), if present.
    pub wall_clock_ns: Option<u64>,
    /// Sum of root-span durations on the busiest thread (ns) — the
    /// quantity gated against `wall_clock_ns`.
    pub main_thread_root_ns: u64,
    /// Main-thread root coverage as a percentage of wall-clock
    /// (0 when no wall-clock meta line is present).
    pub coverage_pct: f64,
}

fn duration(e: &TraceEvent) -> u64 {
    e.end_ns.saturating_sub(e.start_ns)
}

/// Analyse the lines of a JSON-lines trace file.
///
/// Unparseable lines are skipped (a trace may be truncated by a crash);
/// returns an error only when no span events are found at all.
pub fn analyze_trace<'a, I: IntoIterator<Item = &'a str>>(lines: I) -> Result<Report, String> {
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut wall_clock_ns = None;
    let mut dropped = 0u64;
    for line in lines {
        match parse_trace_line(line) {
            Some(TraceLine::Event(e)) => events.push(e),
            Some(TraceLine::Meta(key, value)) => match key.as_str() {
                "wall_clock_ns" => wall_clock_ns = Some(value as u64),
                "dropped" => dropped = value as u64,
                _ => {}
            },
            None => {}
        }
    }
    if events.is_empty() {
        return Err("trace contains no span events".to_string());
    }

    // Self time: duration minus direct children (parent links are
    // recorded per-thread, so children always lie within the parent).
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        if e.parent != 0 {
            *child_ns.entry(e.parent).or_insert(0) += duration(e);
            children.entry(e.parent).or_default().push(i);
        }
    }

    let mut by_name: BTreeMap<String, PhaseTotal> = BTreeMap::new();
    let mut by_phase: BTreeMap<String, PhaseTotal> = BTreeMap::new();
    let mut root_ns_by_thread: BTreeMap<u64, u64> = BTreeMap::new();
    for e in &events {
        let total = duration(e);
        let self_ns = total.saturating_sub(child_ns.get(&e.id).copied().unwrap_or(0));
        let phase = e.name.split('.').next().unwrap_or(&e.name).to_string();
        for (map, key) in [(&mut by_name, e.name.clone()), (&mut by_phase, phase)] {
            let t = map.entry(key.clone()).or_default();
            t.name = key;
            t.count += 1;
            t.total_ns += total;
            t.self_ns += self_ns;
        }
        if e.parent == 0 {
            *root_ns_by_thread.entry(e.thread).or_insert(0) += total;
        }
    }

    let main_thread_root_ns = root_ns_by_thread.values().copied().max().unwrap_or(0);
    let coverage_pct = match wall_clock_ns {
        Some(w) if w > 0 => 100.0 * main_thread_root_ns as f64 / w as f64,
        _ => 0.0,
    };

    // Critical path: start from the largest root span anywhere, then
    // repeatedly descend into the largest direct child.
    let mut critical_path = Vec::new();
    let root = events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.parent == 0)
        .max_by_key(|(_, e)| duration(e))
        .map(|(i, _)| i);
    let mut cursor = root;
    while let Some(i) = cursor {
        let e = &events[i];
        let total = duration(e);
        critical_path.push(CriticalHop {
            name: e.name.clone(),
            total_ns: total,
            self_ns: total.saturating_sub(child_ns.get(&e.id).copied().unwrap_or(0)),
        });
        cursor = children
            .get(&e.id)
            .and_then(|kids| kids.iter().max_by_key(|&&k| duration(&events[k])))
            .copied();
        if critical_path.len() > 1024 {
            break; // malformed (cyclic) parent links — bail out
        }
    }

    let mut phases: Vec<PhaseTotal> = by_phase.into_values().collect();
    phases.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
    let mut names: Vec<PhaseTotal> = by_name.into_values().collect();
    names.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));

    Ok(Report {
        phases,
        names,
        critical_path,
        events: events.len() as u64,
        dropped,
        wall_clock_ns,
        main_thread_root_ns,
        coverage_pct,
    })
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Render a human-readable report.
pub fn render_report(r: &Report) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "trace: {} events, {} dropped\n",
        r.events, r.dropped
    ));
    if let Some(w) = r.wall_clock_ns {
        out.push_str(&format!(
            "wall clock {}, main-thread root spans {} ({:.1}% coverage)\n",
            fmt_ns(w),
            fmt_ns(r.main_thread_root_ns),
            r.coverage_pct
        ));
    }
    out.push_str("\nper-phase self time:\n");
    for p in &r.phases {
        out.push_str(&format!(
            "  {:<12} {:>7} spans  self {:>12}  total {:>12}\n",
            p.name,
            p.count,
            fmt_ns(p.self_ns),
            fmt_ns(p.total_ns)
        ));
    }
    out.push_str("\ntop span names by self time:\n");
    for n in r.names.iter().take(12) {
        out.push_str(&format!(
            "  {:<28} {:>7} spans  self {:>12}\n",
            n.name,
            n.count,
            fmt_ns(n.self_ns)
        ));
    }
    out.push_str("\ncritical path:\n");
    for (depth, hop) in r.critical_path.iter().enumerate() {
        out.push_str(&format!(
            "  {}{} total {} (self {})\n",
            "  ".repeat(depth),
            hop.name,
            fmt_ns(hop.total_ns),
            fmt_ns(hop.self_ns)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64, parent: u64, thread: u64, name: &str, start: u64, end: u64) -> String {
        TraceEvent {
            id,
            parent,
            thread,
            name: name.to_string(),
            start_ns: start,
            end_ns: end,
        }
        .to_json_line()
    }

    #[test]
    fn self_time_partitions_the_root() {
        let lines = [
            ev(1, 0, 1, "episode.run", 0, 1000),
            ev(2, 1, 1, "crypto.encrypt", 100, 400),
            ev(3, 1, 1, "wire.call", 500, 900),
            crate::trace::meta_line("wall_clock_ns", 1000.0),
        ];
        let r = analyze_trace(lines.iter().map(|s| s.as_str())).expect("report");
        let self_sum: u64 = r.phases.iter().map(|p| p.self_ns).sum();
        assert_eq!(self_sum, 1000, "self times partition the root exactly");
        assert_eq!(r.main_thread_root_ns, 1000);
        assert!((r.coverage_pct - 100.0).abs() < 1e-9);
        assert_eq!(r.critical_path[0].name, "episode.run");
        assert_eq!(r.critical_path[1].name, "wire.call");
    }

    #[test]
    fn busiest_thread_wins_the_coverage_gate() {
        let lines = [
            ev(1, 0, 1, "experiment.main", 0, 2000),
            ev(2, 0, 7, "daemon.worker", 0, 100),
            crate::trace::meta_line("wall_clock_ns", 2000.0),
        ];
        let r = analyze_trace(lines.iter().map(|s| s.as_str())).expect("report");
        assert_eq!(r.main_thread_root_ns, 2000);
    }

    #[test]
    fn empty_trace_is_an_error() {
        assert!(analyze_trace(["not json", ""]).is_err());
    }
}
