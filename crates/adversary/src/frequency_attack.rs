//! The frequency-count attack (attack (ii) of §I; Naveed et al. [11]).
//!
//! Deterministic encryption maps equal plaintexts to equal ciphertexts, so
//! the cloud-resident ciphertext (or search-tag) histogram mirrors the
//! plaintext histogram.  An adversary with auxiliary knowledge of the
//! plaintext value distribution sorts both histograms and aligns them,
//! recovering a ciphertext→plaintext mapping for every value whose
//! frequency rank is unambiguous.
//!
//! The attack consumes only adversary-visible material: the search tags
//! stored by the cloud (`CloudServer::encrypted_store`) and a background
//! histogram of plaintext values.

use std::collections::HashMap;

use pds_cloud::EncryptedStore;
use pds_common::Value;

/// Result of the frequency-matching attack.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyAttackOutcome {
    /// The inferred mapping tag → plaintext value.
    pub inferred: HashMap<Vec<u8>, Value>,
    /// Fraction of *tuples* whose searchable value the mapping recovers
    /// correctly, measured against ground truth.
    pub recovery_rate: f64,
    /// Number of distinct tags observed on the cloud.
    pub distinct_tags: usize,
}

/// Frequency-count attack against deterministic / tag-indexed storage.
#[derive(Debug, Default)]
pub struct FrequencyAttack;

impl FrequencyAttack {
    /// Mounts the attack.
    ///
    /// * `store` — the cloud's encrypted store (tags are adversary-visible);
    /// * `auxiliary_histogram` — the adversary's background knowledge: the
    ///   plaintext values and their (approximate) frequencies;
    /// * `ground_truth` — tag → true plaintext value, used only to score the
    ///   attack.
    pub fn run(
        store: &EncryptedStore,
        auxiliary_histogram: &HashMap<Value, u64>,
        ground_truth: &HashMap<Vec<u8>, Value>,
    ) -> FrequencyAttackOutcome {
        // Histogram of tags as stored on the cloud.
        let mut tag_counts: HashMap<Vec<u8>, u64> = HashMap::new();
        for row in store.rows() {
            for tag in &row.search_tags {
                *tag_counts.entry(tag.clone()).or_insert(0) += 1;
            }
        }
        let distinct_tags = tag_counts.len();

        // Sort both sides by descending frequency (ties broken
        // deterministically so the attack is reproducible).
        let mut tags: Vec<(Vec<u8>, u64)> = tag_counts.into_iter().collect();
        tags.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut plain: Vec<(Value, u64)> = auxiliary_histogram
            .iter()
            .map(|(v, &c)| (v.clone(), c))
            .collect();
        plain.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

        let inferred: HashMap<Vec<u8>, Value> = tags
            .iter()
            .zip(plain.iter())
            .map(|((tag, _), (value, _))| (tag.clone(), value.clone()))
            .collect();

        // Score: weight by tuple count so recovering heavy hitters counts
        // proportionally more (as in the inference-attack literature).
        let mut correct_tuples = 0u64;
        let mut total_tuples = 0u64;
        for row in store.rows() {
            for tag in &row.search_tags {
                total_tuples += 1;
                if let (Some(guess), Some(truth)) = (inferred.get(tag), ground_truth.get(tag)) {
                    if guess == truth {
                        correct_tuples += 1;
                    }
                }
            }
        }
        let recovery_rate = if total_tuples == 0 {
            0.0
        } else {
            correct_tuples as f64 / total_tuples as f64
        };

        FrequencyAttackOutcome {
            inferred,
            recovery_rate,
            distinct_tags,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_cloud::{CloudServer, DbOwner, NetworkModel};
    use pds_common::Value;
    use pds_storage::{DataType, Relation, Schema};

    /// Outsources a skewed relation twice: once with deterministic tags
    /// (vulnerable) and once with per-occurrence tags (Arx-style, resistant
    /// to this particular attack since every tag is unique).
    fn outsource(
        deterministic: bool,
    ) -> (CloudServer, HashMap<Value, u64>, HashMap<Vec<u8>, Value>) {
        let schema = Schema::from_pairs(&[("Salary", DataType::Int)]).unwrap();
        let mut rel = Relation::new("Payroll", schema);
        // Value 100 x 6, 200 x 3, 300 x 1 — a skewed, low-entropy column.
        let data = [100i64, 100, 100, 100, 100, 100, 200, 200, 200, 300];
        for v in data {
            rel.insert(vec![Value::Int(v)]).unwrap();
        }
        let attr = rel.schema().attr_id("Salary").unwrap();

        let mut owner = DbOwner::new(77);
        let mut cloud = CloudServer::new(NetworkModel::free());
        let mut truth: HashMap<Vec<u8>, Value> = HashMap::new();
        let mut occurrences: HashMap<Value, u64> = HashMap::new();
        let rows: Vec<_> = rel
            .tuples()
            .iter()
            .map(|t| {
                let v = t.value(attr).clone();
                let tag = if deterministic {
                    owner.det_tag(&v)
                } else {
                    let occ = occurrences.entry(v.clone()).or_insert(0);
                    let tag = owner.counter_tag(&v, *occ);
                    *occ += 1;
                    tag
                };
                truth.insert(tag.clone(), v.clone());
                owner.encrypt_row(t, attr, vec![tag])
            })
            .collect();
        cloud.upload_encrypted(rows).unwrap();

        let mut histogram = HashMap::new();
        for v in data {
            *histogram.entry(Value::Int(v)).or_insert(0u64) += 1;
        }
        (cloud, histogram, truth)
    }

    #[test]
    fn deterministic_tags_fully_recovered() {
        let (cloud, hist, truth) = outsource(true);
        let out = FrequencyAttack::run(cloud.encrypted_store(), &hist, &truth);
        assert_eq!(out.distinct_tags, 3);
        assert_eq!(
            out.recovery_rate, 1.0,
            "skewed deterministic column is fully recovered"
        );
    }

    #[test]
    fn per_occurrence_tags_resist_frequency_matching() {
        let (cloud, hist, truth) = outsource(false);
        let out = FrequencyAttack::run(cloud.encrypted_store(), &hist, &truth);
        assert_eq!(out.distinct_tags, 10, "every occurrence has its own tag");
        // All tags now have frequency 1: alignment is essentially arbitrary,
        // so recovery is far below total.
        assert!(out.recovery_rate < 0.5, "recovery = {}", out.recovery_rate);
    }

    #[test]
    fn empty_store_neutral() {
        let store = EncryptedStore::new();
        let out = FrequencyAttack::run(&store, &HashMap::new(), &HashMap::new());
        assert_eq!(out.recovery_rate, 0.0);
        assert_eq!(out.distinct_tags, 0);
    }
}
