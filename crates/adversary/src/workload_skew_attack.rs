//! The workload-skew attack (attack (iii) of §I).
//!
//! "An adversary, having the knowledge of frequent selection queries by
//! observing many queries, can estimate which encrypted tuples potentially
//! satisfy the frequent selection queries."
//!
//! The adversary cannot read the query values on the sensitive side, but it
//! can fingerprint each episode by *what was retrieved* (the set of
//! encrypted tuple ids plus the set of clear-text request values).  Over a
//! skewed workload the most frequent fingerprint corresponds to the most
//! frequently queried value, so aligning fingerprint frequencies with the
//! (background-knowledge) query-popularity ranking links hot values to the
//! encrypted tuples they touch.  QB blunts the attack because many distinct
//! values map to the same bin pair, so a fingerprint only identifies a
//! *bin*, not a value.

use std::collections::{BTreeSet, HashMap};

use pds_cloud::AdversarialView;
use pds_common::{TupleId, Value};

/// One retrieval fingerprint: what the adversary sees returned.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint {
    /// Sensitive tuple ids returned.
    pub sensitive: BTreeSet<TupleId>,
    /// Clear-text values requested on the non-sensitive side.
    pub nonsensitive: BTreeSet<Value>,
}

/// Result of the workload-skew attack.
#[derive(Debug, Clone)]
pub struct WorkloadSkewOutcome {
    /// Fingerprints ranked by observed frequency (most frequent first).
    pub ranked_fingerprints: Vec<(Fingerprint, u64)>,
    /// The adversary's guess: popularity-ranked query values aligned with
    /// popularity-ranked fingerprints.
    pub inferred: Vec<(Value, Fingerprint)>,
    /// Expected fraction of evaluated queries for which the guessed
    /// fingerprint exactly equals the one actually retrieved for that
    /// value (scored with ground truth).  Alignments through a block of
    /// `k` equally-frequent fingerprints are credited at 1/k — the
    /// adversary's tie-break within the block is a guess, not knowledge.
    pub hit_rate: f64,
    /// Mean number of values sharing each observed fingerprint (ground
    /// truth): 1.0 means fingerprints identify values uniquely; larger means
    /// the adversary only learns bin-level information.
    pub mean_anonymity_set: f64,
}

impl WorkloadSkewOutcome {
    /// The adversary's **linkage advantage**: the exact-linkage hit rate
    /// discounted by the anonymity each fingerprint still provides,
    ///
    /// ```text
    /// advantage = hit_rate / max(mean_anonymity_set, 1)
    /// ```
    ///
    /// A naive (unbinned) deployment under a skewed workload scores 1.0 —
    /// every hot value is linked to exactly its tuples and fingerprints
    /// identify values uniquely.  QB drives the figure down both ways: the
    /// alignment misses (hit rate falls) and even a correct alignment only
    /// identifies a *bin* of values (anonymity set grows).  With no
    /// observed episodes the advantage is 0.
    ///
    /// This is the scalar the cost-based planner thresholds on when
    /// deciding which shards must be served by access-pattern-hiding
    /// back-ends.
    pub fn advantage(&self) -> f64 {
        self.hit_rate / self.mean_anonymity_set.max(1.0)
    }

    /// Whether the linkage advantage strictly exceeds `threshold`.
    pub fn exceeds(&self, threshold: f64) -> bool {
        self.advantage() > threshold
    }
}

/// The workload-skew attack.
#[derive(Debug, Default)]
pub struct WorkloadSkewAttack;

impl WorkloadSkewAttack {
    /// Mounts the attack.
    ///
    /// * `view` — the adversarial view accumulated over a (skewed) workload;
    /// * `popularity` — background knowledge: query values ranked from most
    ///   to least frequently queried;
    /// * `ground_truth_queries` — for evaluation only: the value actually
    ///   queried in each episode, in episode order.
    pub fn run(
        view: &AdversarialView,
        popularity: &[Value],
        ground_truth_queries: &[Value],
    ) -> WorkloadSkewOutcome {
        // Count fingerprints.
        let mut counts: HashMap<Fingerprint, u64> = HashMap::new();
        let mut per_episode: Vec<Fingerprint> = Vec::new();
        for ep in view.episodes() {
            let fp = Fingerprint {
                sensitive: ep.sensitive_returned.iter().copied().collect(),
                nonsensitive: ep.plaintext_request.iter().cloned().collect(),
            };
            *counts.entry(fp.clone()).or_insert(0) += 1;
            per_episode.push(fp);
        }
        let mut ranked: Vec<(Fingerprint, u64)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

        // Align popularity ranking with fingerprint ranking.
        let inferred: Vec<(Value, Fingerprint)> = popularity
            .iter()
            .cloned()
            .zip(ranked.iter().map(|(fp, _)| fp.clone()))
            .collect();

        // Score with ground truth: for each inferred (value, fingerprint),
        // does the fingerprint match what that value's queries actually
        // retrieved?
        let mut true_fp_of_value: HashMap<Value, Fingerprint> = HashMap::new();
        let mut values_per_fp: HashMap<Fingerprint, BTreeSet<Value>> = HashMap::new();
        for (i, fp) in per_episode.iter().enumerate() {
            if let Some(v) = ground_truth_queries.get(i) {
                true_fp_of_value
                    .entry(v.clone())
                    .or_insert_with(|| fp.clone());
                values_per_fp
                    .entry(fp.clone())
                    .or_default()
                    .insert(v.clone());
            }
        }
        // Fingerprints sharing an observed frequency are interchangeable to
        // the adversary: its ordering within such a tie block is an
        // arbitrary guess, so exact linkage through a block of `k` tied
        // fingerprints is credited at the guessing adversary's expected
        // rate 1/k rather than rewarding a lucky deterministic tie-break.
        // A uniform workload (every fingerprint tied) thus scores ~1/n,
        // while genuinely skewed frequencies (singleton blocks) still score
        // full hits.
        let mut block_sizes: HashMap<u64, usize> = HashMap::new();
        for (_, count) in &ranked {
            *block_sizes.entry(*count).or_insert(0) += 1;
        }
        let count_of_fp: HashMap<&Fingerprint, u64> =
            ranked.iter().map(|(fp, count)| (fp, *count)).collect();
        let mut hits = 0.0_f64;
        let mut evaluated = 0usize;
        for (value, fp) in &inferred {
            if let Some(true_fp) = true_fp_of_value.get(value) {
                evaluated += 1;
                let aligned = count_of_fp.get(fp);
                if aligned.is_some() && aligned == count_of_fp.get(true_fp) {
                    let k = aligned
                        .and_then(|c| block_sizes.get(c))
                        .copied()
                        .unwrap_or(1);
                    hits += 1.0 / k.max(1) as f64;
                }
            }
        }
        let hit_rate = if evaluated == 0 {
            0.0
        } else {
            hits / evaluated as f64
        };

        let mean_anonymity_set = if values_per_fp.is_empty() {
            0.0
        } else {
            values_per_fp.values().map(|s| s.len() as f64).sum::<f64>() / values_per_fp.len() as f64
        };

        WorkloadSkewOutcome {
            ranked_fingerprints: ranked,
            inferred,
            hit_rate,
            mean_anonymity_set,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a view + ground truth for a workload where value `v_i` is
    /// queried `freq[i]` times; `binned` controls whether retrieval is
    /// per-value (naive) or shared across pairs of values (QB-like).
    fn workload(freqs: &[(u64, u64)], binned: bool) -> (AdversarialView, Vec<Value>, Vec<Value>) {
        let mut av = AdversarialView::new();
        let mut queries = Vec::new();
        for (value_idx, &(_, count)) in freqs.iter().enumerate() {
            for _ in 0..count {
                av.begin_episode();
                let value = Value::Int(value_idx as i64);
                // Naive: each value retrieves its own tuple and its own cleartext value.
                // Binned: values 0&1 share a fingerprint, values 2&3 share another.
                let (sens, ns): (Vec<TupleId>, Vec<Value>) = if binned {
                    let bin = value_idx / 2;
                    (
                        vec![
                            TupleId::new(2 * bin as u64),
                            TupleId::new(2 * bin as u64 + 1),
                        ],
                        vec![Value::Int(2 * bin as i64), Value::Int(2 * bin as i64 + 1)],
                    )
                } else {
                    (vec![TupleId::new(value_idx as u64)], vec![value.clone()])
                };
                av.observe_plaintext_request(&ns);
                av.observe_sensitive_result(&sens);
                av.end_episode();
                queries.push(value);
            }
        }
        // Popularity ranking: by descending frequency.
        let mut pop: Vec<(usize, u64)> = freqs
            .iter()
            .enumerate()
            .map(|(i, &(_, c))| (i, c))
            .collect();
        pop.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        let popularity: Vec<Value> = pop.into_iter().map(|(i, _)| Value::Int(i as i64)).collect();
        (av, popularity, queries)
    }

    #[test]
    fn skewed_workload_identified_without_binning() {
        // Value 0 queried 10x, value 1 5x, value 2 2x, value 3 once.
        let (av, pop, truth) = workload(&[(0, 10), (1, 5), (2, 2), (3, 1)], false);
        let out = WorkloadSkewAttack::run(&av, &pop, &truth);
        assert_eq!(out.hit_rate, 1.0);
        assert!((out.mean_anonymity_set - 1.0).abs() < 1e-12);
        assert_eq!(out.ranked_fingerprints[0].1, 10);
    }

    #[test]
    fn binning_reduces_attack_to_bin_level() {
        let (av, pop, truth) = workload(&[(0, 10), (1, 5), (2, 2), (3, 1)], true);
        let out = WorkloadSkewAttack::run(&av, &pop, &truth);
        // Fingerprints no longer identify values uniquely...
        assert!(out.mean_anonymity_set > 1.0);
        // ...and there are only as many fingerprints as bins.
        assert_eq!(out.ranked_fingerprints.len(), 2);
    }

    #[test]
    fn uniform_workload_gives_no_ranking_signal() {
        let (av, pop, truth) = workload(&[(0, 3), (1, 3), (2, 3), (3, 3)], false);
        let out = WorkloadSkewAttack::run(&av, &pop, &truth);
        // With ties everywhere, alignment is arbitrary; the attack cannot be
        // reliably perfect — every hit is a 1-in-4 guess.
        assert_eq!(out.ranked_fingerprints.len(), 4);
        assert_eq!(out.inferred.len(), 4);
        assert!((out.hit_rate - 0.25).abs() < 1e-12, "{}", out.hit_rate);
    }

    #[test]
    fn empty_inputs_neutral() {
        let out = WorkloadSkewAttack::run(&AdversarialView::new(), &[], &[]);
        assert_eq!(out.hit_rate, 0.0);
        assert_eq!(out.mean_anonymity_set, 0.0);
        assert!(out.ranked_fingerprints.is_empty());
        assert_eq!(out.advantage(), 0.0);
        assert!(!out.exceeds(0.0));
    }

    #[test]
    fn advantage_separates_naive_from_binned() {
        let freqs = [(0, 10), (1, 5), (2, 2), (3, 1)];
        let (av, pop, truth) = workload(&freqs, false);
        let naive = WorkloadSkewAttack::run(&av, &pop, &truth);
        let (av, pop, truth) = workload(&freqs, true);
        let binned = WorkloadSkewAttack::run(&av, &pop, &truth);
        // Naive: perfect linkage, singleton anonymity sets.
        assert_eq!(naive.advantage(), 1.0);
        assert!(naive.exceeds(0.5));
        // Binned: even a lucky alignment only pins a two-value bin, so the
        // advantage is at most half the hit rate.
        assert!(binned.advantage() <= naive.advantage() / 2.0);
        assert!(!binned.exceeds(0.5));
    }
}
