//! Empirical checker for the **partitioned data security** definition (§III).
//!
//! The definition has two conditions:
//!
//! 1. *Association indistinguishability* — for every encrypted value `e_i`
//!    and non-sensitive value `ns_j`, `Pr[e_i ≐ ns_j | X] =
//!    Pr[e_i ≐ ns_j | X, AV]`: observing query executions must not change
//!    the adversary's belief about which clear-text value an encrypted
//!    tuple carries.
//! 2. *Count-relationship indistinguishability* — for every pair of domain
//!    values, the adversary's belief about the relation (`<`, `=`, `>`)
//!    between their sensitive tuple counts must not change.
//!
//! These are probability statements; the checker verifies the observable
//! symmetry conditions that make them hold for the retrieval mechanisms in
//! this workspace (and that the paper's proofs reduce to):
//!
//! * condition 1 holds when no surviving match is dropped — the bin
//!   co-occurrence graph is complete and every returned encrypted tuple
//!   retains every observed non-sensitive value as a candidate association;
//! * condition 2 holds when every episode returns the same number of
//!   encrypted tuples, so output sizes carry no information about per-value
//!   counts.

use pds_cloud::AdversarialView;

use crate::bipartite::SurvivingMatches;

/// The outcome of checking a view against the security definition.
#[derive(Debug, Clone, PartialEq)]
pub struct SecurityReport {
    /// Condition 1: no association candidate was dropped.
    pub association_indistinguishable: bool,
    /// Condition 2: sensitive output sizes are uniform across episodes.
    pub counts_indistinguishable: bool,
    /// Minimum association ambiguity observed (1.0 = nothing learned).
    pub min_ambiguity: f64,
    /// Distinct sensitive output sizes observed across episodes.
    pub distinct_output_sizes: usize,
    /// Number of dropped surviving matches (bin-pair level).
    pub dropped_matches: usize,
    /// Number of episodes examined.
    pub episodes: usize,
}

impl SecurityReport {
    /// Whether both conditions of partitioned data security hold.
    pub fn is_secure(&self) -> bool {
        self.association_indistinguishable && self.counts_indistinguishable
    }
}

/// Checks an adversarial view against the partitioned data security
/// definition (empirically, as described in the module docs).
pub fn check_partitioned_security(view: &AdversarialView) -> SecurityReport {
    let matches = SurvivingMatches::from_view(view);
    let dropped = matches.dropped_edges().len();
    let min_ambiguity = matches.min_ambiguity();
    let association_indistinguishable = dropped == 0 && (min_ambiguity - 1.0).abs() < 1e-12;

    let mut sizes: Vec<usize> = view
        .episodes()
        .iter()
        .map(|ep| ep.sensitive_output_size())
        .collect();
    sizes.sort_unstable();
    sizes.dedup();
    let distinct_output_sizes = sizes.len();
    // With zero or one episode there is nothing to distinguish.
    let counts_indistinguishable = distinct_output_sizes <= 1;

    SecurityReport {
        association_indistinguishable,
        counts_indistinguishable,
        min_ambiguity,
        distinct_output_sizes,
        dropped_matches: dropped,
        episodes: view.episodes().len(),
    }
}

/// The outcome of checking a sharded deployment: partitioned data security
/// must hold on **every shard's own view** (each shard is itself an
/// honest-but-curious adversary) *and* on the **composed view** (a coalition
/// of all shards pooling their observations).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedSecurityReport {
    /// One report per shard, in shard order.
    pub per_shard: Vec<SecurityReport>,
    /// The report over all shards' episodes merged into one view.
    pub composed: SecurityReport,
}

impl ShardedSecurityReport {
    /// Whether both conditions hold on every shard view and on the composed
    /// view.
    pub fn is_secure(&self) -> bool {
        self.composed.is_secure() && self.per_shard.iter().all(SecurityReport::is_secure)
    }

    /// Indices of shards whose own view violates the definition.
    pub fn insecure_shards(&self) -> Vec<usize> {
        self.per_shard
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_secure())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Checks a sharded deployment's adversarial views — each shard's view
/// separately plus their composition (pass
/// `&pds_cloud::ShardRouter::adversarial_views()`).
///
/// Per-shard security is *not* implied by composed security: a placement
/// that routed the episodes of one sensitive bin to different shards by
/// non-sensitive bin would give each shard an incomplete (Figure 4b)
/// pairing even though the union of episodes is complete.  Conversely the
/// composed check catches leakage only a coalition sees, e.g. output sizes
/// that are uniform within each shard but differ across shards.
pub fn check_sharded_partitioned_security(views: &[&AdversarialView]) -> ShardedSecurityReport {
    let per_shard = views
        .iter()
        .map(|view| check_partitioned_security(view))
        .collect();
    let mut merged = AdversarialView::new();
    for view in views {
        merged.absorb(view);
    }
    ShardedSecurityReport {
        per_shard,
        composed: check_partitioned_security(&merged),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_common::{TupleId, Value};

    fn episode(av: &mut AdversarialView, sids: &[u64], ns: &[&str]) {
        av.begin_episode();
        let values: Vec<Value> = ns.iter().map(|&v| Value::from(v)).collect();
        av.observe_plaintext_request(&values);
        let ids: Vec<TupleId> = sids.iter().map(|&i| TupleId::new(i)).collect();
        av.observe_sensitive_result(&ids);
        av.end_episode();
    }

    #[test]
    fn qb_like_view_is_secure() {
        // Two sensitive bins x two non-sensitive bins, all pairs observed,
        // constant output size.
        let mut av = AdversarialView::new();
        episode(&mut av, &[1, 2], &["a", "b"]);
        episode(&mut av, &[1, 2], &["c", "d"]);
        episode(&mut av, &[3, 4], &["a", "b"]);
        episode(&mut av, &[3, 4], &["c", "d"]);
        let report = check_partitioned_security(&av);
        assert!(report.is_secure(), "{report:?}");
        assert_eq!(report.dropped_matches, 0);
        assert_eq!(report.distinct_output_sizes, 1);
    }

    #[test]
    fn naive_view_violates_both_conditions() {
        let mut av = AdversarialView::new();
        episode(&mut av, &[1], &["E259"]);
        episode(&mut av, &[], &["E199"]);
        episode(&mut av, &[2, 3, 4], &["E101"]);
        let report = check_partitioned_security(&av);
        assert!(!report.association_indistinguishable);
        assert!(!report.counts_indistinguishable);
        assert!(!report.is_secure());
        assert!(report.distinct_output_sizes > 1);
    }

    #[test]
    fn fixed_pairing_violates_condition_one_only() {
        // Output sizes equal, but bins always paired the same way.
        let mut av = AdversarialView::new();
        episode(&mut av, &[1, 2], &["a", "b"]);
        episode(&mut av, &[3, 4], &["c", "d"]);
        let report = check_partitioned_security(&av);
        assert!(!report.association_indistinguishable);
        assert!(report.counts_indistinguishable);
        assert!(!report.is_secure());
    }

    #[test]
    fn empty_view_is_trivially_secure() {
        let report = check_partitioned_security(&AdversarialView::new());
        assert!(report.is_secure());
        assert_eq!(report.episodes, 0);
    }

    #[test]
    fn single_episode_is_secure() {
        let mut av = AdversarialView::new();
        episode(&mut av, &[1, 2], &["a", "b"]);
        let report = check_partitioned_security(&av);
        assert!(report.is_secure());
        assert_eq!(report.episodes, 1);
    }

    #[test]
    fn sharded_views_secure_when_each_shard_is_complete() {
        // Shard 0 hosts sensitive bin {1,2}, shard 1 hosts {3,4}; both see
        // every non-sensitive bin — each view and the composition pass.
        let mut shard0 = AdversarialView::new();
        episode(&mut shard0, &[1, 2], &["a", "b"]);
        episode(&mut shard0, &[1, 2], &["c", "d"]);
        let mut shard1 = AdversarialView::new();
        episode(&mut shard1, &[3, 4], &["a", "b"]);
        episode(&mut shard1, &[3, 4], &["c", "d"]);
        let report = check_sharded_partitioned_security(&[&shard0, &shard1]);
        assert_eq!(report.per_shard.len(), 2);
        assert!(report.is_secure(), "{report:?}");
        assert!(report.insecure_shards().is_empty());
        assert_eq!(report.composed.episodes, 4);
    }

    #[test]
    fn sharded_check_catches_per_shard_incomplete_pairing() {
        // The composed view is the complete rotation, but the episodes were
        // scattered so each shard observes both sensitive groups and both
        // non-sensitive groups with only half of the pairings: each shard
        // drops surviving matches even though the union looks secure.
        let mut shard0 = AdversarialView::new();
        episode(&mut shard0, &[1, 2], &["a", "b"]);
        episode(&mut shard0, &[3, 4], &["c", "d"]);
        let mut shard1 = AdversarialView::new();
        episode(&mut shard1, &[1, 2], &["c", "d"]);
        episode(&mut shard1, &[3, 4], &["a", "b"]);
        let report = check_sharded_partitioned_security(&[&shard0, &shard1]);
        assert!(report.composed.is_secure(), "union is complete");
        assert!(!report.is_secure(), "but each shard's view leaks");
        assert_eq!(report.insecure_shards(), vec![0, 1]);
    }

    #[test]
    fn sharded_check_catches_cross_shard_size_differences() {
        // Uniform output sizes within each shard but not across them: only
        // the composed view exposes the count leakage to the coalition.
        let mut shard0 = AdversarialView::new();
        episode(&mut shard0, &[1, 2], &["a"]);
        let mut shard1 = AdversarialView::new();
        episode(&mut shard1, &[3], &["b"]);
        let report = check_sharded_partitioned_security(&[&shard0, &shard1]);
        assert!(report.per_shard.iter().all(|r| r.counts_indistinguishable));
        assert!(!report.composed.counts_indistinguishable);
        assert!(!report.is_secure());
    }

    #[test]
    fn sharded_check_of_no_views_is_trivially_secure() {
        let report = check_sharded_partitioned_security(&[]);
        assert!(report.is_secure());
        assert!(report.per_shard.is_empty());
        assert_eq!(report.composed.episodes, 0);
    }
}
