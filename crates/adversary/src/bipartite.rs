//! Surviving-matches analysis (§IV, Figure 4 of the paper).
//!
//! Before any query executes, the adversary considers every association
//! between an encrypted sensitive tuple and a clear-text non-sensitive value
//! possible (a complete bipartite graph).  Observing query episodes lets the
//! adversary *drop* candidate associations: a sensitive tuple returned only
//! ever alongside a particular group of non-sensitive values can only be
//! associated with values the owner has requested together with it.
//!
//! Query Binning is secure exactly when no candidate is ever dropped: after
//! queries for every value have been observed, each retrieved sensitive
//! group must have co-occurred with each retrieved non-sensitive group
//! (Figure 4a); a scheme that pairs bins arbitrarily drops edges
//! (Figure 4b) and leaks.

use std::collections::{BTreeMap, BTreeSet};

use pds_cloud::AdversarialView;
use pds_common::{TupleId, Value};

/// A sensitive-side retrieval group: the set of encrypted tuple ids returned
/// together in at least one episode (i.e. one sensitive bin as the adversary
/// perceives it).
pub type SensitiveGroup = BTreeSet<TupleId>;

/// A non-sensitive-side retrieval group: the set of clear-text values
/// requested together in at least one episode (one non-sensitive bin).
pub type NonSensitiveGroup = BTreeSet<Value>;

/// The adversary's surviving-matches state after observing a view.
#[derive(Debug, Clone)]
pub struct SurvivingMatches {
    sensitive_groups: Vec<SensitiveGroup>,
    nonsensitive_groups: Vec<NonSensitiveGroup>,
    /// Edges between group indices that were observed co-retrieved.
    edges: BTreeSet<(usize, usize)>,
    /// For every sensitive tuple id: the set of non-sensitive values that
    /// remain candidate associations.
    value_candidates: BTreeMap<TupleId, BTreeSet<Value>>,
    /// Every clear-text value the adversary has seen requested.
    all_nonsensitive_values: BTreeSet<Value>,
}

impl SurvivingMatches {
    /// Builds the analysis from an adversarial view.
    pub fn from_view(view: &AdversarialView) -> Self {
        let mut sensitive_groups: Vec<SensitiveGroup> = Vec::new();
        let mut nonsensitive_groups: Vec<NonSensitiveGroup> = Vec::new();
        let mut edges = BTreeSet::new();
        let mut value_candidates: BTreeMap<TupleId, BTreeSet<Value>> = BTreeMap::new();
        let mut all_ns_values: BTreeSet<Value> = BTreeSet::new();

        for ep in view.episodes() {
            let s_group: SensitiveGroup = ep.sensitive_returned.iter().copied().collect();
            let ns_group: NonSensitiveGroup = ep.plaintext_request.iter().cloned().collect();
            all_ns_values.extend(ns_group.iter().cloned());
            if s_group.is_empty() && ns_group.is_empty() {
                continue;
            }
            let s_idx = Self::intern(&mut sensitive_groups, s_group.clone());
            let ns_idx = Self::intern(&mut nonsensitive_groups, ns_group.clone());
            edges.insert((s_idx, ns_idx));
            for &tid in &s_group {
                value_candidates
                    .entry(tid)
                    .or_default()
                    .extend(ns_group.iter().cloned());
            }
        }

        SurvivingMatches {
            sensitive_groups,
            nonsensitive_groups,
            edges,
            value_candidates,
            all_nonsensitive_values: all_ns_values,
        }
    }

    fn intern<T: PartialEq>(groups: &mut Vec<T>, group: T) -> usize {
        if let Some(pos) = groups.iter().position(|g| *g == group) {
            pos
        } else {
            groups.push(group);
            groups.len() - 1
        }
    }

    /// The distinct sensitive retrieval groups observed.
    pub fn sensitive_groups(&self) -> &[SensitiveGroup] {
        &self.sensitive_groups
    }

    /// The distinct non-sensitive retrieval groups observed.
    pub fn nonsensitive_groups(&self) -> &[NonSensitiveGroup] {
        &self.nonsensitive_groups
    }

    /// Number of co-occurrence edges observed between groups.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether a particular pair of groups has been observed together.
    pub fn has_edge(&self, sensitive_idx: usize, nonsensitive_idx: usize) -> bool {
        self.edges.contains(&(sensitive_idx, nonsensitive_idx))
    }

    /// Whether the observed bipartite graph is complete: every sensitive
    /// group co-occurred with every non-sensitive group.  This is the
    /// paper's "all surviving matches of the bins are preserved" condition
    /// (Figure 4a).  Vacuously true when either side is empty.
    pub fn is_complete(&self) -> bool {
        self.edges.len() == self.sensitive_groups.len() * self.nonsensitive_groups.len()
    }

    /// Pairs of groups that were *never* observed together — each missing
    /// edge is a dropped surviving match, i.e. information the adversary has
    /// gained (Figure 4b / Example 4 of the paper).
    pub fn dropped_edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for s in 0..self.sensitive_groups.len() {
            for ns in 0..self.nonsensitive_groups.len() {
                if !self.edges.contains(&(s, ns)) {
                    out.push((s, ns));
                }
            }
        }
        out
    }

    /// The candidate non-sensitive values still associable with a given
    /// encrypted tuple (empty set when the tuple was never returned).
    pub fn candidates(&self, id: TupleId) -> BTreeSet<Value> {
        self.value_candidates.get(&id).cloned().unwrap_or_default()
    }

    /// The *association ambiguity* of an encrypted tuple: the fraction of
    /// all observed non-sensitive values that remain candidates.  1.0 means
    /// the adversary learned nothing (every association still possible);
    /// values close to `1/|NS|` mean the tuple is pinned down.
    pub fn ambiguity(&self, id: TupleId) -> f64 {
        if self.all_nonsensitive_values.is_empty() {
            return 1.0;
        }
        self.candidates(id).len() as f64 / self.all_nonsensitive_values.len() as f64
    }

    /// The minimum ambiguity across all returned sensitive tuples — the
    /// adversary's best (most pinned-down) target. 1.0 = no leakage.
    pub fn min_ambiguity(&self) -> f64 {
        self.value_candidates
            .keys()
            .map(|&id| self.ambiguity(id))
            .fold(1.0_f64, f64::min)
    }

    /// All clear-text values the adversary has observed being requested.
    pub fn observed_nonsensitive_values(&self) -> &BTreeSet<Value> {
        &self.all_nonsensitive_values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_cloud::AdversarialView;

    /// Builds a view with the given episodes: (sensitive ids, requested ns values).
    fn view(episodes: &[(&[u64], &[&str])]) -> AdversarialView {
        let mut av = AdversarialView::new();
        for (sids, nsvals) in episodes {
            av.begin_episode();
            let values: Vec<Value> = nsvals.iter().map(|&v| Value::from(v)).collect();
            av.observe_plaintext_request(&values);
            let ids: Vec<TupleId> = sids.iter().map(|&i| TupleId::new(i)).collect();
            av.observe_sensitive_result(&ids);
            // Returned non-sensitive tuples are not needed for this analysis.
            av.end_episode();
        }
        av
    }

    #[test]
    fn complete_graph_when_bins_rotate() {
        // Two sensitive groups, two non-sensitive groups, all four pairs seen.
        let av = view(&[
            (&[1, 2], &["a", "b"]),
            (&[1, 2], &["c", "d"]),
            (&[3, 4], &["a", "b"]),
            (&[3, 4], &["c", "d"]),
        ]);
        let sm = SurvivingMatches::from_view(&av);
        assert_eq!(sm.sensitive_groups().len(), 2);
        assert_eq!(sm.nonsensitive_groups().len(), 2);
        assert_eq!(sm.edge_count(), 4);
        assert!(sm.is_complete());
        assert!(sm.dropped_edges().is_empty());
        // Every sensitive tuple keeps every ns value as a candidate.
        assert_eq!(sm.candidates(TupleId::new(1)).len(), 4);
        assert!((sm.min_ambiguity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dropped_edges_detected_for_fixed_pairing() {
        // SB{1,2} only ever retrieved with {a,b}; SB{3,4} only with {c,d}:
        // the adversary rules out cross associations (Example 4).
        let av = view(&[(&[1, 2], &["a", "b"]), (&[3, 4], &["c", "d"])]);
        let sm = SurvivingMatches::from_view(&av);
        assert!(!sm.is_complete());
        assert_eq!(sm.dropped_edges().len(), 2);
        assert_eq!(sm.candidates(TupleId::new(1)).len(), 2);
        assert!(sm.min_ambiguity() < 1.0);
    }

    #[test]
    fn naive_execution_pins_down_association() {
        // Without binning, a query returns exactly the matching tuple and
        // the matching value: ambiguity collapses to 1/|NS|.
        let av = view(&[(&[7], &["E259"]), (&[8], &["E101"]), (&[], &["E199"])]);
        let sm = SurvivingMatches::from_view(&av);
        assert_eq!(sm.candidates(TupleId::new(7)).len(), 1);
        assert!(sm.ambiguity(TupleId::new(7)) < 0.5);
    }

    #[test]
    fn empty_view_is_vacuously_complete() {
        let sm = SurvivingMatches::from_view(&AdversarialView::new());
        assert!(sm.is_complete());
        assert_eq!(sm.edge_count(), 0);
        assert_eq!(sm.ambiguity(TupleId::new(0)), 1.0);
    }

    #[test]
    fn never_returned_tuple_has_empty_candidates() {
        let av = view(&[(&[1], &["a"])]);
        let sm = SurvivingMatches::from_view(&av);
        assert!(sm.candidates(TupleId::new(99)).is_empty());
    }

    #[test]
    fn observed_values_accumulate() {
        let av = view(&[(&[1], &["a", "b"]), (&[2], &["b", "c"])]);
        let sm = SurvivingMatches::from_view(&av);
        assert_eq!(sm.observed_nonsensitive_values().len(), 3);
    }
}
