//! # pds-adversary
//!
//! The honest-but-curious adversary of §II and the attacks of §I/§VI,
//! implemented against the [`pds_cloud::AdversarialView`] (and, where the
//! paper grants it, against the cloud-resident ciphertext store and
//! auxiliary background knowledge).
//!
//! * [`bipartite`] — the *surviving matches* analysis of §IV: which
//!   sensitive-to-non-sensitive associations remain possible after observing
//!   a sequence of queries (Figure 4 of the paper).
//! * [`size_attack`] — infer per-value sensitive tuple counts from output
//!   sizes (§IV-B's "size attack scenario in the base QB").
//! * [`frequency_attack`] — match ciphertext frequency histograms against an
//!   auxiliary plaintext histogram (Naveed et al. style, §I attack (ii)).
//! * [`workload_skew_attack`] — identify frequently queried values from the
//!   frequency of observed retrieval signatures (§I attack (iii)).
//! * [`security_check`] — an empirical checker for the two conditions of the
//!   **partitioned data security** definition (§III): association
//!   probabilities and count relationships must be unchanged by the
//!   adversarial view.
//!
//! Each attack returns a quantitative success measure so tests and benches
//! can show the paper's qualitative claim: the attacks succeed against the
//! naive partitioned execution and against weak back-ends, and are reduced
//! to guessing once Query Binning is in place.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bipartite;
pub mod frequency_attack;
pub mod security_check;
pub mod size_attack;
pub mod workload_skew_attack;

pub use bipartite::SurvivingMatches;
pub use frequency_attack::FrequencyAttack;
pub use security_check::{
    check_partitioned_security, check_sharded_partitioned_security, SecurityReport,
    ShardedSecurityReport,
};
pub use size_attack::SizeAttack;
pub use workload_skew_attack::WorkloadSkewAttack;
