//! The size attack (attack (i) of §I; §IV-B "size attack scenario").
//!
//! "An adversary having some background knowledge can deduce the
//! full/partial outputs by simply observing the output sizes."
//!
//! Concretely, in the §IV-B scenario the adversary observes, per query
//! episode, how many encrypted tuples were returned.  If different sensitive
//! values have different tuple counts and no padding is used, the output
//! size identifies (or narrows down) the queried value and reveals the
//! count of the sensitive value — e.g. "1000 people in the sensitive
//! relation earn salary ns1".  QB's general case defeats the attack by
//! making every sensitive bin the same size with fake tuples.

use std::collections::HashMap;

use pds_cloud::AdversarialView;
use pds_common::Value;

/// Ground truth used to *evaluate* (not to mount) the attack: which value
/// each episode actually queried and how many sensitive tuples that value
/// has.
#[derive(Debug, Clone, Default)]
pub struct SizeAttackGroundTruth {
    /// For episode `i`, the value the owner actually queried.
    pub queried_values: Vec<Value>,
    /// True number of sensitive tuples per value.
    pub sensitive_counts: HashMap<Value, u64>,
}

/// Result of mounting the size attack.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeAttackOutcome {
    /// Per-episode estimate of the queried value's sensitive tuple count.
    pub estimated_counts: Vec<u64>,
    /// Fraction of episodes whose estimate exactly equals the true count of
    /// the queried value (1.0 = the attack reads counts straight off).
    pub exact_rate: f64,
    /// Number of *distinct* output sizes observed.  A single distinct size
    /// means the adversary cannot distinguish any two queries by size.
    pub distinct_sizes: usize,
    /// Fraction of episode pairs the adversary can distinguish by their
    /// sensitive output size (0.0 = perfectly indistinguishable).
    pub distinguishable_pair_rate: f64,
}

/// The size attack.
#[derive(Debug, Default)]
pub struct SizeAttack;

impl SizeAttack {
    /// Mounts the attack: the adversary's estimate for each episode is
    /// simply the number of encrypted tuples returned in that episode.
    pub fn run(view: &AdversarialView, truth: &SizeAttackGroundTruth) -> SizeAttackOutcome {
        let episodes = view.episodes();
        let estimated_counts: Vec<u64> = episodes
            .iter()
            .map(|ep| ep.sensitive_output_size() as u64)
            .collect();

        let mut exact = 0usize;
        let evaluable = episodes.len().min(truth.queried_values.len());
        for (i, &estimated) in estimated_counts.iter().take(evaluable).enumerate() {
            let true_count = truth
                .sensitive_counts
                .get(&truth.queried_values[i])
                .copied()
                .unwrap_or(0);
            if estimated == true_count {
                exact += 1;
            }
        }
        let exact_rate = if evaluable == 0 {
            0.0
        } else {
            exact as f64 / evaluable as f64
        };

        let mut sizes = estimated_counts.clone();
        sizes.sort_unstable();
        sizes.dedup();
        let distinct_sizes = sizes.len();

        let n = estimated_counts.len();
        let mut distinguishable = 0usize;
        let mut pairs = 0usize;
        for i in 0..n {
            for j in i + 1..n {
                pairs += 1;
                if estimated_counts[i] != estimated_counts[j] {
                    distinguishable += 1;
                }
            }
        }
        let distinguishable_pair_rate = if pairs == 0 {
            0.0
        } else {
            distinguishable as f64 / pairs as f64
        };

        SizeAttackOutcome {
            estimated_counts,
            exact_rate,
            distinct_sizes,
            distinguishable_pair_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_common::TupleId;

    fn view_with_sizes(sizes: &[usize]) -> AdversarialView {
        let mut av = AdversarialView::new();
        let mut next = 0u64;
        for &s in sizes {
            av.begin_episode();
            let ids: Vec<TupleId> = (0..s)
                .map(|_| {
                    next += 1;
                    TupleId::new(next)
                })
                .collect();
            av.observe_sensitive_result(&ids);
            av.end_episode();
        }
        av
    }

    fn truth(values: &[(&str, u64)], queried: &[&str]) -> SizeAttackGroundTruth {
        SizeAttackGroundTruth {
            queried_values: queried.iter().map(|&v| Value::from(v)).collect(),
            sensitive_counts: values.iter().map(|&(v, c)| (Value::from(v), c)).collect(),
        }
    }

    #[test]
    fn attack_succeeds_without_padding() {
        // Three values with counts 5, 2, 1; naive execution returns exactly
        // those many sensitive tuples.
        let av = view_with_sizes(&[5, 2, 1]);
        let t = truth(&[("a", 5), ("b", 2), ("c", 1)], &["a", "b", "c"]);
        let out = SizeAttack::run(&av, &t);
        assert_eq!(out.exact_rate, 1.0);
        assert_eq!(out.distinct_sizes, 3);
        assert_eq!(out.distinguishable_pair_rate, 1.0);
    }

    #[test]
    fn attack_defeated_by_equal_bin_sizes() {
        // QB general case: every episode returns the same number of
        // encrypted tuples (real + fake).
        let av = view_with_sizes(&[6, 6, 6]);
        let t = truth(&[("a", 5), ("b", 2), ("c", 1)], &["a", "b", "c"]);
        let out = SizeAttack::run(&av, &t);
        assert_eq!(out.distinct_sizes, 1);
        assert_eq!(out.distinguishable_pair_rate, 0.0);
        assert!(out.exact_rate < 1.0);
    }

    #[test]
    fn empty_view_yields_neutral_outcome() {
        let out = SizeAttack::run(&AdversarialView::new(), &SizeAttackGroundTruth::default());
        assert_eq!(out.exact_rate, 0.0);
        assert_eq!(out.distinct_sizes, 0);
        assert_eq!(out.distinguishable_pair_rate, 0.0);
    }

    #[test]
    fn partial_ground_truth_only_scores_known_episodes() {
        let av = view_with_sizes(&[3, 4]);
        let t = truth(&[("a", 3)], &["a"]);
        let out = SizeAttack::run(&av, &t);
        assert_eq!(out.exact_rate, 1.0);
        assert_eq!(out.estimated_counts, vec![3, 4]);
    }
}
