//! Discrete-event network simulator for owner↔cloud traffic.
//!
//! The owner talks to `N` shard links.  Each link is FIFO: round trips
//! submitted to the same link serialise (the owner must receive a shard's
//! response before issuing that episode's next request), while round trips
//! on *different* links are in flight concurrently — exactly the overlap a
//! real multi-shard deployment gets from issuing requests to independent
//! machines.  Each round trip on a link costs
//!
//! ```text
//!   latency + (request_bytes + response_bytes) / bandwidth
//! ```
//!
//! matching `NetworkModel::transfer_time` in `pds-cloud`, but — unlike the
//! per-interaction accumulation done there — the event loop interleaves the
//! links on a single virtual clock, so the reported makespan is the
//! wall-clock of the *whole fan-out*, with per-shard latency genuinely
//! overlapped: simulated time for `N` busy links approaches
//! `max`-over-links instead of the sum.
//!
//! The simulator is pure and deterministic: no threads, no wall clock, no
//! randomness.  Frame lengths come from the wire log `pds-cloud` keeps
//! (every logged length is a real encoded frame size), so the simulated
//! seconds are byte-accurate.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use pds_common::{PdsError, Result};

/// One owner↔shard link: fixed per-round-trip latency plus sustained
/// bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Fixed latency charged once per round trip, in seconds.
    pub latency_sec: f64,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

impl LinkSpec {
    /// Seconds one round trip of `up + down` payload bytes occupies the
    /// link.
    pub fn round_trip_time(&self, up_bytes: u64, down_bytes: u64) -> f64 {
        self.latency_sec + (up_bytes + down_bytes) as f64 / self.bandwidth_bytes_per_sec
    }
}

/// One request/response exchange, with both frame lengths measured off the
/// wire (encoded frame bytes, not payload estimates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundTrip {
    /// Encoded bytes of the request frame(s), owner → cloud.
    pub up_bytes: u64,
    /// Encoded bytes of the response frame(s), cloud → owner.
    pub down_bytes: u64,
}

impl RoundTrip {
    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.up_bytes + self.down_bytes
    }
}

/// The outcome of one simulated fan-out.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Virtual seconds until the last link went idle (the simulated
    /// wall-clock of the whole exchange).
    pub makespan_sec: f64,
    /// Per-link completion times, aligned with the submitted traffic.
    pub link_completion_sec: Vec<f64>,
    /// Round trips delivered across all links.
    pub round_trips: usize,
    /// Total bytes moved across all links.
    pub total_bytes: u64,
    /// Events the simulator processed (one response-arrival event per
    /// round trip; request arrival is folded into the same completion
    /// time, since the shard answers instantly — compute is costed by the
    /// separate cost models).
    pub events_processed: usize,
}

/// A response-arrival event on the virtual clock: round trip `index` on
/// `link` finished arriving back at the owner, freeing the link for its
/// next queued round trip.
#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    link: usize,
    index: usize,
}

// BinaryHeap is a max-heap; order events so the *earliest* time pops first.
impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            // Tie-break on (link, index) so the schedule is deterministic
            // even when several events share a timestamp.
            .then_with(|| other.link.cmp(&self.link))
            .then_with(|| other.index.cmp(&self.index))
    }
}

/// The event-driven simulator: `N` FIFO links sharing one virtual clock.
#[derive(Debug, Clone)]
pub struct NetSim {
    links: Vec<LinkSpec>,
}

impl NetSim {
    /// A simulator over the given per-link specifications.
    pub fn new(links: Vec<LinkSpec>) -> Result<Self> {
        if links.is_empty() {
            return Err(PdsError::Config("NetSim needs at least one link".into()));
        }
        for (i, l) in links.iter().enumerate() {
            if l.latency_sec.is_nan() || l.latency_sec < 0.0 {
                return Err(PdsError::Config(format!(
                    "link {i}: latency must be >= 0, got {}",
                    l.latency_sec
                )));
            }
            if l.bandwidth_bytes_per_sec.is_nan() || l.bandwidth_bytes_per_sec <= 0.0 {
                return Err(PdsError::Config(format!(
                    "link {i}: bandwidth must be > 0, got {}",
                    l.bandwidth_bytes_per_sec
                )));
            }
        }
        Ok(NetSim { links })
    }

    /// A simulator over `n` identical links.
    pub fn uniform(n: usize, link: LinkSpec) -> Result<Self> {
        Self::new(vec![link; n])
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Runs the traffic to completion and reports the simulated timings.
    ///
    /// `per_link[i]` is link `i`'s FIFO stream of round trips, all
    /// submitted at virtual time zero (the fan-out dispatches every shard's
    /// first request immediately; later round trips on a link start when
    /// the previous response has arrived).  `per_link` may be shorter than
    /// the link count; missing links simply stay idle.
    pub fn run(&self, per_link: &[Vec<RoundTrip>]) -> Result<SimReport> {
        if per_link.len() > self.links.len() {
            return Err(PdsError::Config(format!(
                "traffic for {} links, simulator has {}",
                per_link.len(),
                self.links.len()
            )));
        }
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut link_completion = vec![0.0_f64; self.links.len()];
        let mut events_processed = 0usize;
        let mut round_trips = 0usize;
        let mut total_bytes = 0u64;

        // Seed the clock: every link's first request departs at t = 0.
        for (link, stream) in per_link.iter().enumerate() {
            if let Some(rt) = stream.first() {
                self.schedule_round_trip(&mut heap, link, 0, 0.0, *rt);
            }
        }

        while let Some(ev) = heap.pop() {
            events_processed += 1;
            let rt = per_link[ev.link][ev.index];
            round_trips += 1;
            total_bytes += rt.total_bytes();
            link_completion[ev.link] = ev.time;
            // The link is free: dispatch its next queued round trip.
            let next = ev.index + 1;
            if let Some(rt) = per_link[ev.link].get(next) {
                self.schedule_round_trip(&mut heap, ev.link, next, ev.time, *rt);
            }
        }

        let makespan_sec = link_completion.iter().fold(0.0_f64, |a, &b| a.max(b));
        Ok(SimReport {
            makespan_sec,
            link_completion_sec: link_completion,
            round_trips,
            total_bytes,
            events_processed,
        })
    }

    fn schedule_round_trip(
        &self,
        heap: &mut BinaryHeap<Event>,
        link: usize,
        index: usize,
        start: f64,
        rt: RoundTrip,
    ) {
        let spec = self.links[link];
        // One fixed latency per round trip plus the byte transfer time of
        // both directions; the shard answers instantly (compute is costed
        // by the separate cost models), so a single response-arrival event
        // captures the whole exchange.
        let response_arrival = start + spec.round_trip_time(rt.up_bytes, rt.down_bytes);
        heap.push(Event {
            time: response_arrival,
            link,
            index,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(latency: f64, bw: f64) -> LinkSpec {
        LinkSpec {
            latency_sec: latency,
            bandwidth_bytes_per_sec: bw,
        }
    }

    fn rt(up: u64, down: u64) -> RoundTrip {
        RoundTrip {
            up_bytes: up,
            down_bytes: down,
        }
    }

    #[test]
    fn one_link_sums_round_trips() {
        let sim = NetSim::uniform(1, link(1.0, 1000.0)).unwrap();
        let report = sim.run(&[vec![rt(500, 500), rt(0, 1000)]]).unwrap();
        // Each round trip: 1s latency + 1000 bytes / 1000 B/s = 2s.
        assert!((report.makespan_sec - 4.0).abs() < 1e-12, "{report:?}");
        assert_eq!(report.round_trips, 2);
        assert_eq!(report.total_bytes, 2000);
        assert_eq!(report.events_processed, 2);
    }

    #[test]
    fn independent_links_overlap_their_latency() {
        // 4 links, one 1s-latency round trip each: the event loop overlaps
        // them, so the makespan is ~1 round trip, not 4.
        let sim = NetSim::uniform(4, link(1.0, 1e9)).unwrap();
        let traffic: Vec<Vec<RoundTrip>> = (0..4).map(|_| vec![rt(100, 100)]).collect();
        let report = sim.run(&traffic).unwrap();
        assert!(report.makespan_sec < 1.1, "{report:?}");
        let serial: f64 = 4.0 * 1.0;
        assert!(
            report.makespan_sec < serial / 2.0,
            "overlap must beat serial: {} vs {serial}",
            report.makespan_sec
        );
    }

    #[test]
    fn spreading_traffic_over_more_links_shrinks_the_makespan() {
        let spec = link(0.05, 1e6);
        let all: Vec<RoundTrip> = (0..16).map(|i| rt(1000 + i, 4000)).collect();
        let one_link = NetSim::uniform(1, spec)
            .unwrap()
            .run(std::slice::from_ref(&all))
            .unwrap();
        let four: Vec<Vec<RoundTrip>> = (0..4)
            .map(|l| all.iter().skip(l).step_by(4).copied().collect())
            .collect();
        let four_links = NetSim::uniform(4, spec).unwrap().run(&four).unwrap();
        assert!(
            four_links.makespan_sec < one_link.makespan_sec / 2.0,
            "4 links {} must overlap well against 1 link {}",
            four_links.makespan_sec,
            one_link.makespan_sec
        );
        assert_eq!(one_link.total_bytes, four_links.total_bytes);
    }

    #[test]
    fn fifo_within_a_link_is_preserved() {
        let sim = NetSim::uniform(2, link(0.0, 100.0)).unwrap();
        let report = sim
            .run(&[vec![rt(100, 0), rt(100, 0)], vec![rt(50, 0)]])
            .unwrap();
        // Link 0: 1s + 1s; link 1: 0.5s.
        assert!((report.link_completion_sec[0] - 2.0).abs() < 1e-12);
        assert!((report.link_completion_sec[1] - 0.5).abs() < 1e-12);
        assert!((report.makespan_sec - 2.0).abs() < 1e-12);
    }

    #[test]
    fn idle_links_are_free() {
        let sim = NetSim::uniform(3, link(1.0, 1.0)).unwrap();
        let report = sim.run(&[vec![], vec![rt(1, 1)]]).unwrap();
        assert_eq!(report.round_trips, 1);
        assert_eq!(report.link_completion_sec[0], 0.0);
        assert_eq!(report.link_completion_sec[2], 0.0);
        // Traffic shorter than the link count is fine; longer is not.
        assert!(sim.run(&[vec![], vec![], vec![], vec![rt(1, 1)]]).is_err());
    }

    #[test]
    fn bad_link_specs_are_rejected() {
        assert!(NetSim::new(vec![]).is_err());
        assert!(NetSim::uniform(1, link(-1.0, 10.0)).is_err());
        assert!(NetSim::uniform(1, link(f64::NAN, 10.0)).is_err());
        assert!(NetSim::uniform(1, link(0.0, 0.0)).is_err());
        assert!(NetSim::uniform(2, link(0.0, f64::INFINITY)).is_ok());
    }

    #[test]
    fn infinite_bandwidth_charges_latency_only() {
        let sim = NetSim::uniform(1, link(0.25, f64::INFINITY)).unwrap();
        let report = sim.run(&[vec![rt(1 << 30, 1 << 30)]]).unwrap();
        assert!((report.makespan_sec - 0.25).abs() < 1e-12);
    }

    #[test]
    fn deterministic_across_runs() {
        let sim = NetSim::uniform(3, link(0.01, 5e5)).unwrap();
        let traffic: Vec<Vec<RoundTrip>> = (0..3)
            .map(|l| (0..5).map(|i| rt(100 * (l as u64 + 1), 50 * i)).collect())
            .collect();
        let a = sim.run(&traffic).unwrap();
        let b = sim.run(&traffic).unwrap();
        assert_eq!(a, b);
    }
}
