//! Thread-local reusable buffer pool for the wire hot path.
//!
//! Every frame that travels — encode side and decode side — needs one
//! contiguous byte buffer.  Before this module existed each of those was a
//! fresh `Vec<u8>` (one in `WireMessage::encode` for the payload, another
//! in `encode_frame` for the frame, a third in `FrameReader::read`), so a
//! daemon serving a pipelined batch paid three allocations per frame.  The
//! pool turns that into a check-out/check-in of recycled buffers:
//!
//! * [`take_buf`] pops a cleared buffer off a **thread-local free list**
//!   (no locks on the hot path — reader threads, worker threads and client
//!   shard threads each recycle their own buffers);
//! * dropping the returned [`PooledBuf`] pushes the buffer back, capacity
//!   intact, so steady-state traffic reaches zero allocations per frame
//!   once each thread's working set is warm;
//! * [`PooledBuf::into_vec`] releases the underlying `Vec` to callers that
//!   must own one (the legacy `encode_frame` signature) — that buffer
//!   leaves the pool for good.
//!
//! Accounting is two-tier: process-wide atomics ([`pool_stats`]) feed the
//! `pds_wire_buf_reuse_total` metrics and the `experiments pipeline` gate,
//! while per-thread counters ([`thread_pool_stats`]) give tests a
//! deterministic view unaffected by concurrent test threads.

use std::cell::{Cell, RefCell};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

/// Buffers retained per thread; excess check-ins are dropped.
pub const POOL_CAPACITY: usize = 16;

/// Capacity ceiling for a retained buffer.  A one-off giant frame must not
/// pin its allocation in the free list forever.
pub const MAX_POOLED_CAPACITY: usize = 1 << 20;

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RETURNS: AtomicU64 = AtomicU64::new(0);
static READER_GROWS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // pds-allow: hot-alloc(const thread-local initializer, evaluated once per thread; Vec::new is allocation-free until first push)
    static FREE_LIST: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
    static TL_HITS: Cell<u64> = const { Cell::new(0) };
    static TL_MISSES: Cell<u64> = const { Cell::new(0) };
    static TL_RETURNS: Cell<u64> = const { Cell::new(0) };
    static TL_READER_GROWS: Cell<u64> = const { Cell::new(0) };
}

/// A snapshot of the pool's reuse counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Check-outs served from the free list (no allocation).
    pub hits: u64,
    /// Check-outs that had to start from an empty buffer.
    pub misses: u64,
    /// Buffers returned to the free list.
    pub returns: u64,
    /// Buffer-capacity growth events inside `FrameReader::read` — the
    /// bounded-realloc witness the hostile-dribble test asserts on.
    pub reader_grows: u64,
}

/// Process-wide pool counters (all threads).
pub fn pool_stats() -> PoolStats {
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        returns: RETURNS.load(Ordering::Relaxed),
        reader_grows: READER_GROWS.load(Ordering::Relaxed),
    }
}

/// This thread's pool counters — deterministic under concurrent tests.
pub fn thread_pool_stats() -> PoolStats {
    PoolStats {
        hits: TL_HITS.with(Cell::get),
        misses: TL_MISSES.with(Cell::get),
        returns: TL_RETURNS.with(Cell::get),
        reader_grows: TL_READER_GROWS.with(Cell::get),
    }
}

/// Records one buffer-capacity growth inside the frame reader's chunked
/// fill loop (called by `FrameReader::read`, not by pool users).
pub(crate) fn note_reader_grow() {
    READER_GROWS.fetch_add(1, Ordering::Relaxed);
    TL_READER_GROWS.with(|c| c.set(c.get() + 1));
}

/// A byte buffer checked out of the thread-local pool.  Dereferences to
/// `Vec<u8>`; dropping it returns the buffer (capacity intact) to the pool.
pub struct PooledBuf {
    buf: Vec<u8>,
}

impl PooledBuf {
    /// Releases the underlying `Vec`, removing it from the pool for good.
    pub fn into_vec(mut self) -> Vec<u8> {
        // Leaves a zero-capacity Vec behind, which Drop declines to pool.
        std::mem::take(&mut self.buf)
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        if buf.capacity() == 0 || buf.capacity() > MAX_POOLED_CAPACITY {
            return;
        }
        FREE_LIST.with(|fl| {
            let mut fl = fl.borrow_mut();
            if fl.len() < POOL_CAPACITY {
                fl.push(buf);
                RETURNS.fetch_add(1, Ordering::Relaxed);
                TL_RETURNS.with(|c| c.set(c.get() + 1));
            }
        });
    }
}

impl Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.buf.len())
            .field("capacity", &self.buf.capacity())
            .finish()
    }
}

impl Clone for PooledBuf {
    fn clone(&self) -> Self {
        let mut out = take_buf();
        out.extend_from_slice(&self.buf);
        out
    }
}

impl PartialEq for PooledBuf {
    fn eq(&self, other: &Self) -> bool {
        self.buf == other.buf
    }
}

impl Eq for PooledBuf {}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Checks a cleared buffer out of this thread's free list, falling back to
/// an empty buffer when the list is dry (cold path — the only allocation
/// site the wire codec is allowed).
pub fn take_buf() -> PooledBuf {
    let recycled = FREE_LIST.with(|fl| fl.borrow_mut().pop());
    match recycled {
        Some(mut buf) => {
            buf.clear();
            HITS.fetch_add(1, Ordering::Relaxed);
            TL_HITS.with(|c| c.set(c.get() + 1));
            PooledBuf { buf }
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            TL_MISSES.with(|c| c.set(c.get() + 1));
            // pds-allow: hot-alloc(pool cold path: the one place the codec may start a fresh buffer; every warm-path frame reuses it through the free list)
            PooledBuf { buf: Vec::new() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_checkin_reuses_capacity() {
        // Drain whatever earlier tests left in this thread's list so the
        // hit/miss deltas below are exact.
        while FREE_LIST.with(|fl| fl.borrow_mut().pop()).is_some() {}
        let before = thread_pool_stats();
        let mut buf = take_buf();
        buf.extend_from_slice(&[7u8; 4096]);
        let cap = buf.capacity();
        drop(buf);
        let reused = take_buf();
        assert!(reused.is_empty(), "pooled buffers come back cleared");
        assert_eq!(reused.capacity(), cap, "capacity survives the round trip");
        let after = thread_pool_stats();
        assert_eq!(after.misses - before.misses, 1);
        assert_eq!(after.hits - before.hits, 1);
        assert_eq!(after.returns - before.returns, 1);
    }

    #[test]
    fn into_vec_removes_the_buffer_from_the_pool() {
        let before = thread_pool_stats();
        let mut buf = take_buf();
        buf.push(1);
        let v = buf.into_vec();
        assert_eq!(v, vec![1]);
        let after = thread_pool_stats();
        assert_eq!(
            after.returns, before.returns,
            "a released buffer must not be returned to the pool"
        );
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let before = thread_pool_stats();
        let mut buf = take_buf();
        buf.reserve(MAX_POOLED_CAPACITY + 1);
        drop(buf);
        let after = thread_pool_stats();
        assert_eq!(
            after.returns, before.returns,
            "a giant buffer must not pin its allocation in the free list"
        );
    }

    #[test]
    fn free_list_is_bounded() {
        let bufs: Vec<PooledBuf> = (0..POOL_CAPACITY * 2)
            .map(|_| {
                let mut b = take_buf();
                b.push(0);
                b
            })
            .collect();
        drop(bufs);
        let len = FREE_LIST.with(|fl| fl.borrow().len());
        assert!(len <= POOL_CAPACITY, "free list holds {len} buffers");
    }

    #[test]
    fn clone_and_eq_follow_contents() {
        let mut a = take_buf();
        a.extend_from_slice(b"abc");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_ref(), b"abc");
        assert_ne!(format!("{a:?}"), "");
    }
}
