//! # pds-proto
//!
//! The **byte-accurate owner↔cloud wire protocol** plus an **event-driven
//! network simulator**.
//!
//! Until this crate existed, every `bytes_uploaded` / `bytes_downloaded`
//! number in the workspace was an *estimate* (`Value::size_bytes` sums) —
//! the serde derives are no-ops and nothing ever serialised.  `pds-proto`
//! closes that gap:
//!
//! * [`frame`] — a versioned, length-delimited, CRC-checked frame layout.
//!   Decoding is total: truncated or corrupted input yields
//!   `Err(PdsError::Wire(..))`, never a panic.
//! * [`messages`] — the typed protocol messages ([`FetchBinRequest`],
//!   [`BinPairRequest`], [`BinPayload`], [`InsertRequest`], [`Ack`],
//!   [`ErrorFrame`], plus an [`WireMessage::Opaque`] escape hatch for
//!   engine-specific token sets).  `pds-cloud` encodes the *actual* traffic
//!   of every owner↔cloud interaction through these and charges the
//!   encoded frame lengths to its metrics, so bytes moved are measured off
//!   the wire.
//! * [`pool`] — a thread-local reusable buffer pool backing both codec
//!   directions, so steady-state wire traffic allocates nothing per frame
//!   (reuse counters feed the `pds_wire_buf_reuse_total` metrics).
//! * [`netsim`] — a deterministic discrete-event simulator over per-shard
//!   FIFO links.  Round trips on different links overlap on one virtual
//!   clock, so the reported makespan shows per-shard latency genuinely
//!   overlapping (`pds_cloud::BinTransport::Simulated` and the
//!   `experiments wire` sweep are built on it).
//!
//! Layering: this crate depends only on `pds-common` (values, errors) and
//! `pds-storage` (tuples).  Ciphertexts travel as opaque byte strings
//! ([`WireRow`]), so no crypto types leak into the protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod messages;
pub mod netsim;
pub mod pool;

pub use frame::{
    crc32, decode_frame, decode_frame_corr, encode_frame, encode_frame_corr, encoded_len,
    read_frame, FrameReader, ReadFrame, FRAME_OVERHEAD, HEADER_LEN, HEADER_LEN_V1, MAX_PAYLOAD_LEN,
    TRAILER_LEN, VERSION, VERSION_V1,
};
pub use messages::{
    error_frame, msg_tag, Ack, BinPairRequest, BinPayload, ErrorFrame, FetchBinRequest, Hello,
    InsertRequest, WireMessage, WireRow,
};
pub use netsim::{LinkSpec, NetSim, RoundTrip, SimReport};
pub use pool::{pool_stats, thread_pool_stats, PoolStats, PooledBuf};
