//! The typed owner↔cloud messages carried inside wire frames.
//!
//! Each variant of [`WireMessage`] has a stable one-byte type tag and a
//! self-delimiting payload encoding built from four primitives: `u8`,
//! big-endian `u32`/`u64`, and length-prefixed byte strings.  Attribute
//! values reuse [`Value::encode`]'s injective tagged encoding and tuples
//! reuse [`Tuple::encode`], so the wire format is exactly the byte form the
//! rest of the workspace already encrypts and hashes.
//!
//! Decoding is total: every read is bounds-checked and malformed payloads
//! yield `Err(PdsError::Wire(..))`, never a panic.  The frame layer's CRC
//! already rejects corrupted-in-flight bytes; the payload decoders defend
//! against malformed-but-checksummed input (a buggy or malicious peer).

use pds_common::{AttrId, PdsError, Result, Value};
use pds_storage::{Predicate, Tuple};

use crate::frame::{be_u32, be_u64, begin_frame, decode_frame_corr, finish_frame};
use crate::pool::{self, PooledBuf};

/// One encrypted row as it travels over the wire.
///
/// Ciphertexts are opaque byte strings at this layer — `pds-cloud` converts
/// its `EncryptedRow` (whose fields are `pds_crypto::Ciphertext`) to and
/// from this struct, keeping the protocol crate free of crypto types.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireRow {
    /// Storage address / tuple id.
    pub id: u64,
    /// Ciphertext of the searchable attribute value (may be empty when the
    /// message only carries full-tuple ciphertexts, and vice versa).
    pub attr_ct: Vec<u8>,
    /// Ciphertext of the full tuple.
    pub tuple_ct: Vec<u8>,
    /// Cloud-side searchable tags.
    pub search_tags: Vec<Vec<u8>>,
}

impl WireRow {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_be_bytes());
        write_bytes(out, &self.attr_ct);
        write_bytes(out, &self.tuple_ct);
        write_u32(out, self.search_tags.len() as u32);
        for tag in &self.search_tags {
            write_bytes(out, tag);
        }
    }

    fn read(r: &mut Reader<'_>) -> Result<Self> {
        let id = r.u64()?;
        let attr_ct = r.bytes()?.to_vec();
        let tuple_ct = r.bytes()?.to_vec();
        let tag_count = r.u32()? as usize;
        let mut search_tags = Vec::with_capacity(tag_count.min(PREALLOC_CAP));
        for _ in 0..tag_count {
            search_tags.push(r.bytes()?.to_vec());
        }
        Ok(WireRow {
            id,
            attr_ct,
            tuple_ct,
            search_tags,
        })
    }
}

/// Owner → cloud: fetch tuples by clear-text values, by storage address,
/// and/or by opaque searchable tags (the three retrieval flavours the
/// simulated cloud serves).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FetchBinRequest {
    /// Clear-text values of one non-sensitive bin (`IN` selection).
    pub values: Vec<Value>,
    /// Storage addresses of encrypted tuples to return.
    pub ids: Vec<u64>,
    /// Opaque searchable tags (deterministic tags / Arx counter tokens).
    pub tags: Vec<Vec<u8>>,
    /// Optional residual predicate pushed below the bin fetch: the cloud
    /// evaluates it on the *clear-text* (non-sensitive) result stream before
    /// the downlink, so non-matching tuples never travel.  The owner must
    /// only place predicates over non-sensitive, non-searchable attributes
    /// here — anything else would leak plaintext structure on the wire.
    pub predicate: Option<Predicate>,
}

/// Owner → cloud: one whole Query Binning episode as a single message —
/// the encrypted tokens of the sensitive bin plus the clear-text values of
/// the non-sensitive bin.  This is the composed single-round-trip form of
/// the protocol; the simulator's live path uses the finer-grained messages
/// (its §V-B back-ends are multi-round by construction), and
/// `benches/wire_overhead.rs` compares the two encodings.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BinPairRequest {
    /// Index of the sensitive bin being retrieved.
    pub sensitive_bin: u32,
    /// Index of the non-sensitive bin being retrieved.
    pub nonsensitive_bin: u32,
    /// Encrypted search tokens, one per value of the sensitive bin.
    pub encrypted_values: Vec<Vec<u8>>,
    /// Clear-text values of the non-sensitive bin.
    pub nonsensitive_values: Vec<Value>,
    /// Optional residual predicate applied to the clear-text non-sensitive
    /// result stream cloud-side (see [`FetchBinRequest::predicate`]).  The
    /// encrypted sensitive stream is never filtered by it.
    pub predicate: Option<Predicate>,
}

/// Cloud → owner: the result stream of a retrieval — clear-text tuples from
/// the non-sensitive side and/or encrypted rows from the sensitive side.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BinPayload {
    /// Clear-text matching tuples.
    pub plain_tuples: Vec<Tuple>,
    /// Encrypted rows (ciphertexts opaque at this layer).
    pub encrypted_rows: Vec<WireRow>,
}

/// Owner → cloud: outsource clear-text tuples and/or encrypted rows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InsertRequest {
    /// Clear-text tuples of the non-sensitive relation.
    pub plain_tuples: Vec<Tuple>,
    /// Encrypted rows of the sensitive relation.
    pub encrypted_rows: Vec<WireRow>,
}

/// Cloud → owner: positive acknowledgement, carrying the number of items
/// the request affected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ack {
    /// Items (tuples, rows, tokens) the acknowledged request covered.
    pub items: u64,
}

/// Either direction: a transported error (the wire form of [`PdsError`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ErrorFrame {
    /// Machine-readable category (mirrors [`PdsError::category`]).
    pub category: String,
    /// Human-readable message.
    pub message: String,
}

impl ErrorFrame {
    /// Converts the transported error back into a typed [`PdsError`],
    /// inverting [`error_frame`] (unknown categories become `Wire` errors).
    pub fn into_error(self) -> PdsError {
        match self.category.as_str() {
            "schema" => PdsError::Schema(self.message),
            "query" => PdsError::Query(self.message),
            "crypto" => PdsError::Crypto(self.message),
            "binning" => PdsError::Binning(self.message),
            "cloud" => PdsError::Cloud(self.message),
            "security" => PdsError::Security(self.message),
            "config" => PdsError::Config(self.message),
            _ => PdsError::Wire(self.message),
        }
    }
}

/// Owner → cloud: the first message of every service connection — names the
/// tenant whose keyspace and bin namespace the connection operates in.  The
/// daemon validates the tenant and echoes the `Hello` back; any other first
/// message (or an unknown tenant) is answered with a typed `Error` frame
/// and a closed connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Hello {
    /// Tenant identifier (one per concurrent `DbOwner`).
    pub tenant: u64,
}

/// The stable one-byte type tags of the wire protocol, as module-level
/// constants so metrics layers can index per-type counters without having a
/// message instance at hand.
pub mod msg_tag {
    /// [`super::FetchBinRequest`].
    pub const FETCH_BIN_REQUEST: u8 = 1;
    /// [`super::BinPairRequest`].
    pub const BIN_PAIR_REQUEST: u8 = 2;
    /// [`super::BinPayload`].
    pub const BIN_PAYLOAD: u8 = 3;
    /// [`super::InsertRequest`].
    pub const INSERT_REQUEST: u8 = 4;
    /// [`super::Ack`].
    pub const ACK: u8 = 5;
    /// [`super::ErrorFrame`].
    pub const ERROR: u8 = 6;
    /// [`super::WireMessage::Opaque`].
    pub const OPAQUE: u8 = 7;
    /// [`super::Hello`].
    pub const HELLO: u8 = 8;
    /// [`super::WireMessage::StatsRequest`].
    pub const STATS_REQUEST: u8 = 9;
    /// [`super::WireMessage::StatsSnapshot`].
    pub const STATS_SNAPSHOT: u8 = 10;
    /// Number of distinct message types (tags are `1..=COUNT`).
    pub const COUNT: usize = 10;

    /// Short human-readable name of a type tag (for experiment output).
    pub fn name(tag: u8) -> &'static str {
        match tag {
            FETCH_BIN_REQUEST => "FetchBinRequest",
            BIN_PAIR_REQUEST => "BinPairRequest",
            BIN_PAYLOAD => "BinPayload",
            INSERT_REQUEST => "InsertRequest",
            ACK => "Ack",
            ERROR => "Error",
            OPAQUE => "Opaque",
            HELLO => "Hello",
            STATS_REQUEST => "StatsRequest",
            STATS_SNAPSHOT => "StatsSnapshot",
            _ => "unknown",
        }
    }
}

/// Every message of the owner↔cloud protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMessage {
    /// Fetch by values / addresses / tags.
    FetchBinRequest(FetchBinRequest),
    /// One composed QB episode request.
    BinPairRequest(BinPairRequest),
    /// Result stream of a retrieval.
    BinPayload(BinPayload),
    /// Outsourcing upload.
    InsertRequest(InsertRequest),
    /// Positive acknowledgement.
    Ack(Ack),
    /// Transported error.
    Error(ErrorFrame),
    /// An opaque body whose structure the protocol does not interpret
    /// (engine-specific token sets such as DPF key shares; the frame still
    /// contributes its real length to the byte accounting).
    Opaque(Vec<u8>),
    /// Tenant handshake (first message of every service connection).
    Hello(Hello),
    /// Ask the shard daemon for a metrics snapshot scoped to the
    /// connection's tenant (own series plus global shard health).
    StatsRequest,
    /// Prometheus-text-format metrics snapshot answering a
    /// [`WireMessage::StatsRequest`].
    StatsSnapshot(String),
}

impl WireMessage {
    /// The one-byte frame tag of this message type.
    pub fn msg_type(&self) -> u8 {
        match self {
            WireMessage::FetchBinRequest(_) => msg_tag::FETCH_BIN_REQUEST,
            WireMessage::BinPairRequest(_) => msg_tag::BIN_PAIR_REQUEST,
            WireMessage::BinPayload(_) => msg_tag::BIN_PAYLOAD,
            WireMessage::InsertRequest(_) => msg_tag::INSERT_REQUEST,
            WireMessage::Ack(_) => msg_tag::ACK,
            WireMessage::Error(_) => msg_tag::ERROR,
            WireMessage::Opaque(_) => msg_tag::OPAQUE,
            WireMessage::Hello(_) => msg_tag::HELLO,
            WireMessage::StatsRequest => msg_tag::STATS_REQUEST,
            WireMessage::StatsSnapshot(_) => msg_tag::STATS_SNAPSHOT,
        }
    }

    /// Short human-readable name of this message type.
    pub fn name(&self) -> &'static str {
        match self {
            WireMessage::FetchBinRequest(_) => "FetchBinRequest",
            WireMessage::BinPairRequest(_) => "BinPairRequest",
            WireMessage::BinPayload(_) => "BinPayload",
            WireMessage::InsertRequest(_) => "InsertRequest",
            WireMessage::Ack(_) => "Ack",
            WireMessage::Error(_) => "Error",
            WireMessage::Opaque(_) => "Opaque",
            WireMessage::Hello(_) => "Hello",
            WireMessage::StatsRequest => "StatsRequest",
            WireMessage::StatsSnapshot(_) => "StatsSnapshot",
        }
    }

    /// Encodes the message into one complete wire frame
    /// (header + payload + CRC trailer) with correlation id 0.
    pub fn encode(&self) -> Result<Vec<u8>> {
        self.encode_framed(0).map(PooledBuf::into_vec)
    }

    /// Encodes the message into one complete wire frame carrying `corr`,
    /// in a pooled buffer: header, payload, and trailer are written into a
    /// single recycled `Vec`, so a warm thread encodes a frame with zero
    /// allocations.  Dropping the returned buffer (e.g. after the bytes
    /// are on the socket) returns it to the pool.
    pub fn encode_framed(&self, corr: u64) -> Result<PooledBuf> {
        let _span = pds_obs::obs_span("frame.encode");
        let mut frame = pool::take_buf();
        begin_frame(&mut frame, self.msg_type(), corr);
        self.write_payload(&mut frame)?;
        finish_frame(&mut frame)?;
        Ok(frame)
    }

    /// Appends this message's payload encoding to `payload` (which already
    /// holds the frame header when called from [`Self::encode_framed`]).
    fn write_payload(&self, payload: &mut Vec<u8>) -> Result<()> {
        match self {
            WireMessage::FetchBinRequest(m) => {
                write_u32(payload, m.values.len() as u32);
                for v in &m.values {
                    write_bytes(payload, &v.encode());
                }
                write_u32(payload, m.ids.len() as u32);
                for id in &m.ids {
                    payload.extend_from_slice(&id.to_be_bytes());
                }
                write_u32(payload, m.tags.len() as u32);
                for tag in &m.tags {
                    write_bytes(payload, tag);
                }
                write_opt_predicate(payload, m.predicate.as_ref())?;
            }
            WireMessage::BinPairRequest(m) => {
                write_u32(payload, m.sensitive_bin);
                write_u32(payload, m.nonsensitive_bin);
                write_u32(payload, m.encrypted_values.len() as u32);
                for ev in &m.encrypted_values {
                    write_bytes(payload, ev);
                }
                write_u32(payload, m.nonsensitive_values.len() as u32);
                for v in &m.nonsensitive_values {
                    write_bytes(payload, &v.encode());
                }
                write_opt_predicate(payload, m.predicate.as_ref())?;
            }
            WireMessage::BinPayload(m) => {
                write_u32(payload, m.plain_tuples.len() as u32);
                for t in &m.plain_tuples {
                    write_bytes(payload, &t.encode());
                }
                write_u32(payload, m.encrypted_rows.len() as u32);
                for row in &m.encrypted_rows {
                    row.write(payload);
                }
            }
            WireMessage::InsertRequest(m) => {
                write_u32(payload, m.plain_tuples.len() as u32);
                for t in &m.plain_tuples {
                    write_bytes(payload, &t.encode());
                }
                write_u32(payload, m.encrypted_rows.len() as u32);
                for row in &m.encrypted_rows {
                    row.write(payload);
                }
            }
            WireMessage::Ack(m) => {
                payload.extend_from_slice(&m.items.to_be_bytes());
            }
            WireMessage::Error(m) => {
                write_bytes(payload, m.category.as_bytes());
                write_bytes(payload, m.message.as_bytes());
            }
            WireMessage::Opaque(body) => {
                payload.extend_from_slice(body);
            }
            WireMessage::Hello(m) => {
                payload.extend_from_slice(&m.tenant.to_be_bytes());
            }
            WireMessage::StatsRequest => {}
            WireMessage::StatsSnapshot(text) => {
                write_bytes(payload, text.as_bytes());
            }
        }
        Ok(())
    }

    /// Decodes one complete wire frame back into a message, discarding the
    /// correlation id (lock-step callers pair request and response by
    /// position, so the id is redundant for them).
    pub fn decode(frame: &[u8]) -> Result<WireMessage> {
        Self::decode_corr(frame).map(|(_, msg)| msg)
    }

    /// Decodes one complete wire frame back into a message plus the
    /// correlation id its header carried (0 for legacy v1 frames).
    pub fn decode_corr(frame: &[u8]) -> Result<(u64, WireMessage)> {
        let (msg_type, corr, payload) = decode_frame_corr(frame)?;
        let mut r = Reader::new(payload);
        let msg = match msg_type {
            1 => {
                let value_count = r.u32()? as usize;
                let mut values = Vec::with_capacity(value_count.min(PREALLOC_CAP));
                for _ in 0..value_count {
                    values.push(r.value()?);
                }
                let id_count = r.u32()? as usize;
                let mut ids = Vec::with_capacity(id_count.min(PREALLOC_CAP));
                for _ in 0..id_count {
                    ids.push(r.u64()?);
                }
                let tag_count = r.u32()? as usize;
                let mut tags = Vec::with_capacity(tag_count.min(PREALLOC_CAP));
                for _ in 0..tag_count {
                    tags.push(r.bytes()?.to_vec());
                }
                let predicate = read_opt_predicate(&mut r)?;
                WireMessage::FetchBinRequest(FetchBinRequest {
                    values,
                    ids,
                    tags,
                    predicate,
                })
            }
            2 => {
                let sensitive_bin = r.u32()?;
                let nonsensitive_bin = r.u32()?;
                let ev_count = r.u32()? as usize;
                let mut encrypted_values = Vec::with_capacity(ev_count.min(PREALLOC_CAP));
                for _ in 0..ev_count {
                    encrypted_values.push(r.bytes()?.to_vec());
                }
                let v_count = r.u32()? as usize;
                let mut nonsensitive_values = Vec::with_capacity(v_count.min(PREALLOC_CAP));
                for _ in 0..v_count {
                    nonsensitive_values.push(r.value()?);
                }
                let predicate = read_opt_predicate(&mut r)?;
                WireMessage::BinPairRequest(BinPairRequest {
                    sensitive_bin,
                    nonsensitive_bin,
                    encrypted_values,
                    nonsensitive_values,
                    predicate,
                })
            }
            3 => {
                let (plain_tuples, encrypted_rows) = read_tuples_and_rows(&mut r)?;
                WireMessage::BinPayload(BinPayload {
                    plain_tuples,
                    encrypted_rows,
                })
            }
            4 => {
                let (plain_tuples, encrypted_rows) = read_tuples_and_rows(&mut r)?;
                WireMessage::InsertRequest(InsertRequest {
                    plain_tuples,
                    encrypted_rows,
                })
            }
            5 => WireMessage::Ack(Ack { items: r.u64()? }),
            6 => {
                let category = r.string()?;
                let message = r.string()?;
                WireMessage::Error(ErrorFrame { category, message })
            }
            7 => WireMessage::Opaque(r.rest().to_vec()),
            8 => WireMessage::Hello(Hello { tenant: r.u64()? }),
            9 => WireMessage::StatsRequest,
            10 => WireMessage::StatsSnapshot(r.string()?),
            other => {
                return Err(PdsError::Wire(format!("unknown message type tag {other}")));
            }
        };
        r.finish()?;
        Ok((corr, msg))
    }

    /// Convenience: the encoded frame length of this message in bytes.
    pub fn encoded_len(&self) -> Result<usize> {
        Ok(self.encode()?.len())
    }
}

/// Builds the wire form of a [`PdsError`].
pub fn error_frame(err: &PdsError) -> ErrorFrame {
    ErrorFrame {
        category: err.category().to_string(),
        message: err.message().to_string(),
    }
}

fn read_tuples_and_rows(r: &mut Reader<'_>) -> Result<(Vec<Tuple>, Vec<WireRow>)> {
    let tuple_count = r.u32()? as usize;
    let mut plain_tuples = Vec::with_capacity(tuple_count.min(PREALLOC_CAP));
    for _ in 0..tuple_count {
        plain_tuples.push(r.tuple()?);
    }
    let row_count = r.u32()? as usize;
    let mut encrypted_rows = Vec::with_capacity(row_count.min(PREALLOC_CAP));
    for _ in 0..row_count {
        encrypted_rows.push(WireRow::read(r)?);
    }
    Ok((plain_tuples, encrypted_rows))
}

/// Cap on speculative `Vec::with_capacity` from untrusted count fields: a
/// forged count cannot force a large allocation before its items fail to
/// parse.
const PREALLOC_CAP: usize = 1024;

/// Maximum nesting depth of a wire predicate, bounding decode recursion
/// against adversarial deeply-nested `Not(Not(Not(..)))` payloads.  The
/// same cap is enforced on encode so both directions agree on what is
/// representable.
const PREDICATE_DEPTH_CAP: usize = 16;

/// One-byte structure tags of the predicate encoding (distinct from the
/// frame-level `msg_tag`s; these only appear inside a request payload).
mod pred_tag {
    pub const EQ: u8 = 1;
    pub const IN_SET: u8 = 2;
    pub const RANGE: u8 = 3;
    pub const AND: u8 = 4;
    pub const OR: u8 = 5;
    pub const NOT: u8 = 6;
    pub const TRUE: u8 = 7;
}

/// Writes an `Option<Predicate>` as a presence byte plus, when present, the
/// recursive tagged encoding.  Predicates travel in clear by design — they
/// may only reference non-sensitive attributes (the planner enforces this
/// owner-side; `pds-analyze`'s egress lint watches the call sites).
pub fn write_opt_predicate(out: &mut Vec<u8>, p: Option<&Predicate>) -> Result<()> {
    match p {
        None => {
            out.push(0);
            Ok(())
        }
        Some(p) => {
            out.push(1);
            write_predicate(out, p, 0)
        }
    }
}

fn write_predicate(out: &mut Vec<u8>, p: &Predicate, depth: usize) -> Result<()> {
    if depth >= PREDICATE_DEPTH_CAP {
        return Err(PdsError::Wire(format!(
            "predicate nesting exceeds the wire depth cap of {PREDICATE_DEPTH_CAP}"
        )));
    }
    match p {
        Predicate::Eq { attr, value } => {
            out.push(pred_tag::EQ);
            out.extend_from_slice(&attr.raw().to_be_bytes());
            write_bytes(out, &value.encode());
        }
        Predicate::InSet { attr, values } => {
            out.push(pred_tag::IN_SET);
            out.extend_from_slice(&attr.raw().to_be_bytes());
            write_u32(out, values.len() as u32);
            for v in values {
                write_bytes(out, &v.encode());
            }
        }
        Predicate::Range { attr, lo, hi } => {
            out.push(pred_tag::RANGE);
            out.extend_from_slice(&attr.raw().to_be_bytes());
            write_bytes(out, &lo.encode());
            write_bytes(out, &hi.encode());
        }
        Predicate::And(ps) | Predicate::Or(ps) => {
            out.push(if matches!(p, Predicate::And(_)) {
                pred_tag::AND
            } else {
                pred_tag::OR
            });
            write_u32(out, ps.len() as u32);
            for child in ps {
                write_predicate(out, child, depth + 1)?;
            }
        }
        Predicate::Not(child) => {
            out.push(pred_tag::NOT);
            write_predicate(out, child, depth + 1)?;
        }
        Predicate::True => out.push(pred_tag::TRUE),
    }
    Ok(())
}

fn read_opt_predicate(r: &mut Reader<'_>) -> Result<Option<Predicate>> {
    match r.take(1)?[0] {
        0 => Ok(None),
        1 => Ok(Some(read_predicate(r, 0)?)),
        other => Err(PdsError::Wire(format!(
            "invalid predicate presence byte {other}"
        ))),
    }
}

fn read_predicate(r: &mut Reader<'_>, depth: usize) -> Result<Predicate> {
    if depth >= PREDICATE_DEPTH_CAP {
        return Err(PdsError::Wire(format!(
            "predicate nesting exceeds the wire depth cap of {PREDICATE_DEPTH_CAP}"
        )));
    }
    let tag = r.take(1)?[0];
    match tag {
        pred_tag::EQ => Ok(Predicate::Eq {
            attr: AttrId::new(r.u64()?),
            value: r.value()?,
        }),
        pred_tag::IN_SET => {
            let attr = AttrId::new(r.u64()?);
            let count = r.u32()? as usize;
            let mut values = Vec::with_capacity(count.min(PREALLOC_CAP));
            for _ in 0..count {
                values.push(r.value()?);
            }
            Ok(Predicate::InSet { attr, values })
        }
        pred_tag::RANGE => Ok(Predicate::Range {
            attr: AttrId::new(r.u64()?),
            lo: r.value()?,
            hi: r.value()?,
        }),
        pred_tag::AND | pred_tag::OR => {
            let count = r.u32()? as usize;
            let mut children = Vec::with_capacity(count.min(PREALLOC_CAP));
            for _ in 0..count {
                children.push(read_predicate(r, depth + 1)?);
            }
            Ok(if tag == pred_tag::AND {
                Predicate::And(children)
            } else {
                Predicate::Or(children)
            })
        }
        pred_tag::NOT => Ok(Predicate::Not(Box::new(read_predicate(r, depth + 1)?))),
        pred_tag::TRUE => Ok(Predicate::True),
        other => Err(PdsError::Wire(format!(
            "unknown predicate structure tag {other}"
        ))),
    }
}

fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn write_bytes(out: &mut Vec<u8>, b: &[u8]) {
    write_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Bounds-checked sequential reader over a message payload.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| PdsError::Wire("message payload length overflows".into()))?;
        if end > self.data.len() {
            return Err(PdsError::Wire(format!(
                "message payload truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.data.len() - self.pos
            )));
        }
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(be_u32(self.take(4)?))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(be_u64(self.take(8)?))
    }

    fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn string(&mut self) -> Result<String> {
        String::from_utf8(self.bytes()?.to_vec())
            .map_err(|_| PdsError::Wire("string field is not valid UTF-8".into()))
    }

    fn value(&mut self) -> Result<Value> {
        let raw = self.bytes()?;
        Value::decode(raw).ok_or_else(|| PdsError::Wire("malformed value encoding".into()))
    }

    fn tuple(&mut self) -> Result<Tuple> {
        let raw = self.bytes()?;
        Tuple::decode(raw).ok_or_else(|| PdsError::Wire("malformed tuple encoding".into()))
    }

    fn rest(&mut self) -> &'a [u8] {
        let out = &self.data[self.pos..];
        self.pos = self.data.len();
        out
    }

    /// Rejects trailing bytes: every payload must be consumed exactly.
    fn finish(self) -> Result<()> {
        if self.pos != self.data.len() {
            return Err(PdsError::Wire(format!(
                "{} unconsumed trailing bytes in message payload",
                self.data.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_common::TupleId;

    fn sample_tuple(id: u64) -> Tuple {
        Tuple::new(
            TupleId::new(id),
            vec![Value::from("E259"), Value::Int(6), Value::Bool(true)],
        )
    }

    fn sample_predicate() -> Predicate {
        Predicate::And(vec![
            Predicate::Range {
                attr: AttrId::new(2),
                lo: Value::Int(1),
                hi: Value::Int(4),
            },
            Predicate::Not(Box::new(Predicate::Eq {
                attr: AttrId::new(3),
                value: Value::from("closed"),
            })),
            Predicate::Or(vec![
                Predicate::InSet {
                    attr: AttrId::new(4),
                    values: vec![Value::Bool(true), Value::Null],
                },
                Predicate::True,
            ]),
        ])
    }

    fn sample_messages() -> Vec<WireMessage> {
        vec![
            WireMessage::FetchBinRequest(FetchBinRequest {
                values: vec![Value::from("E259"), Value::Int(-4), Value::Null],
                ids: vec![0, u64::MAX],
                tags: vec![vec![], vec![1, 2, 3]],
                predicate: Some(sample_predicate()),
            }),
            WireMessage::BinPairRequest(BinPairRequest {
                sensitive_bin: 3,
                nonsensitive_bin: 7,
                encrypted_values: vec![vec![9; 48], vec![]],
                nonsensitive_values: vec![Value::from("E101")],
                predicate: None,
            }),
            WireMessage::BinPayload(BinPayload {
                plain_tuples: vec![sample_tuple(1), sample_tuple(2)],
                encrypted_rows: vec![WireRow {
                    id: 42,
                    attr_ct: vec![1; 37],
                    tuple_ct: vec![2; 90],
                    search_tags: vec![vec![3; 16]],
                }],
            }),
            WireMessage::InsertRequest(InsertRequest {
                plain_tuples: vec![sample_tuple(9)],
                encrypted_rows: vec![WireRow::default()],
            }),
            WireMessage::Ack(Ack { items: 12 }),
            WireMessage::Error(error_frame(&PdsError::Cloud("no such shard".into()))),
            WireMessage::Opaque(vec![0xAB; 33]),
            WireMessage::Hello(Hello { tenant: u64::MAX }),
            WireMessage::StatsRequest,
            WireMessage::StatsSnapshot(
                "# TYPE pds_requests_total counter\npds_requests_total{tenant=\"1\"} 4\n"
                    .to_string(),
            ),
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in sample_messages() {
            let frame = msg.encode().unwrap();
            let back = WireMessage::decode(&frame).unwrap();
            assert_eq!(back, msg, "{} roundtrip", msg.name());
            assert_eq!(frame.len(), msg.encoded_len().unwrap());
        }
    }

    #[test]
    fn correlated_encode_roundtrips_and_matches_uncorrelated_payload() {
        for (i, msg) in sample_messages().into_iter().enumerate() {
            let corr = (i as u64) * 7 + 1;
            let framed = msg.encode_framed(corr).unwrap();
            let (got_corr, back) = WireMessage::decode_corr(&framed).unwrap();
            assert_eq!(got_corr, corr, "{} correlation id", msg.name());
            assert_eq!(back, msg, "{} roundtrip", msg.name());
            // The correlation id lives in the header only: the payload (and
            // total length) are identical to the uncorrelated encoding.
            assert_eq!(framed.len(), msg.encode().unwrap().len());
        }
    }

    #[test]
    fn message_types_are_distinct() {
        let mut tags: Vec<u8> = sample_messages()
            .iter()
            .map(WireMessage::msg_type)
            .collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), sample_messages().len());
    }

    #[test]
    fn unknown_type_tag_is_an_error() {
        let frame = crate::frame::encode_frame(200, b"").unwrap();
        assert!(WireMessage::decode(&frame).is_err());
    }

    #[test]
    fn trailing_payload_bytes_are_an_error() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&7u64.to_be_bytes());
        payload.push(0); // one byte too many for an Ack
        let frame = crate::frame::encode_frame(5, &payload).unwrap();
        assert!(WireMessage::decode(&frame).is_err());
    }

    #[test]
    fn forged_count_fields_fail_without_large_allocs() {
        // An Ack-sized payload relabelled as a BinPayload with a huge tuple
        // count: the first item read fails, no allocation explosion.
        let mut payload = Vec::new();
        payload.extend_from_slice(&u32::MAX.to_be_bytes());
        let frame = crate::frame::encode_frame(3, &payload).unwrap();
        assert!(WireMessage::decode(&frame).is_err());
    }

    #[test]
    fn error_frame_mirrors_pds_error() {
        let ef = error_frame(&PdsError::Query("bad bin".into()));
        assert_eq!(ef.category, "query");
        assert_eq!(ef.message, "bad bin");
    }

    #[test]
    fn error_frame_into_error_inverts_every_category() {
        for err in [
            PdsError::Schema("a".into()),
            PdsError::Query("b".into()),
            PdsError::Crypto("c".into()),
            PdsError::Binning("d".into()),
            PdsError::Cloud("e".into()),
            PdsError::Security("f".into()),
            PdsError::Config("g".into()),
            PdsError::Wire("h".into()),
        ] {
            let back = error_frame(&err).into_error();
            assert_eq!(back.category(), err.category());
            assert_eq!(back.message(), err.message());
        }
        // Unknown categories degrade to Wire rather than panicking.
        let odd = ErrorFrame {
            category: "martian".into(),
            message: "m".into(),
        };
        assert_eq!(odd.into_error().category(), "wire");
    }

    #[test]
    fn predicate_roundtrips_on_both_request_types() {
        let deep = Predicate::Not(Box::new(sample_predicate()));
        for msg in [
            WireMessage::FetchBinRequest(FetchBinRequest {
                values: vec![Value::from("a")],
                predicate: Some(deep.clone()),
                ..FetchBinRequest::default()
            }),
            WireMessage::BinPairRequest(BinPairRequest {
                sensitive_bin: 1,
                nonsensitive_bin: 2,
                predicate: Some(deep.clone()),
                ..BinPairRequest::default()
            }),
        ] {
            let frame = msg.encode().unwrap();
            assert_eq!(WireMessage::decode(&frame).unwrap(), msg);
        }
    }

    #[test]
    fn predicate_depth_cap_rejects_towers_both_ways() {
        // A Not-tower deeper than the cap must fail to encode...
        let mut tower = Predicate::True;
        for _ in 0..(PREDICATE_DEPTH_CAP + 1) {
            tower = Predicate::Not(Box::new(tower));
        }
        let msg = WireMessage::FetchBinRequest(FetchBinRequest {
            predicate: Some(tower),
            ..FetchBinRequest::default()
        });
        assert!(msg.encode().is_err());

        // ...and a hand-forged payload of NOT tags must fail to decode
        // before recursing past the cap.
        let mut payload = Vec::new();
        write_u32(&mut payload, 0); // values
        write_u32(&mut payload, 0); // ids
        write_u32(&mut payload, 0); // tags
        payload.push(1); // predicate present
        payload.extend(std::iter::repeat(pred_tag::NOT).take(64));
        payload.push(pred_tag::TRUE);
        let frame = crate::frame::encode_frame(msg_tag::FETCH_BIN_REQUEST, &payload).unwrap();
        assert!(WireMessage::decode(&frame).is_err());
    }

    #[test]
    fn invalid_predicate_presence_byte_is_an_error() {
        let mut payload = Vec::new();
        write_u32(&mut payload, 0);
        write_u32(&mut payload, 0);
        write_u32(&mut payload, 0);
        payload.push(9); // neither 0 nor 1
        let frame = crate::frame::encode_frame(msg_tag::FETCH_BIN_REQUEST, &payload).unwrap();
        assert!(WireMessage::decode(&frame).is_err());
    }

    #[test]
    fn newest_tag_is_the_count() {
        // The stats snapshot is the newest message: its tag must close
        // the 1..=COUNT range the metrics layer sizes its counters from.
        assert_eq!(msg_tag::STATS_SNAPSHOT as usize, msg_tag::COUNT);
        assert_eq!(msg_tag::name(msg_tag::STATS_SNAPSHOT), "StatsSnapshot");
        let msg = WireMessage::StatsSnapshot(String::new());
        assert_eq!(msg.msg_type(), msg_tag::STATS_SNAPSHOT);
        assert_eq!(msg.name(), "StatsSnapshot");
        assert_eq!(msg_tag::name(msg_tag::STATS_REQUEST), "StatsRequest");
        assert_eq!(WireMessage::StatsRequest.msg_type(), msg_tag::STATS_REQUEST);
    }
}
