//! Length-delimited, checksummed frames — the outermost layer of the wire
//! protocol.
//!
//! Every owner↔cloud message travels inside exactly one frame:
//!
//! ```text
//!  offset  size  field
//!  ------  ----  -----------------------------------------------------
//!       0     2  magic  0x50 0x44 ("PD")
//!       2     1  protocol version (currently 1)
//!       3     1  message type tag (see `pds_proto::messages`)
//!       4     4  payload length, big-endian u32
//!       8     n  payload (message body, see `pds_proto::messages`)
//!     8+n     4  CRC-32 (IEEE) over bytes [0, 8+n), big-endian
//! ```
//!
//! Decoding is total: any truncated, oversized, or corrupted input yields
//! `Err(PdsError::Wire(..))` — never a panic.  The CRC trailer guarantees
//! that *any* single-byte corruption anywhere in the frame is detected
//! (CRC-32 detects all error bursts up to 32 bits), which the property
//! tests in `tests/proto_roundtrip.rs` fuzz.

use pds_common::{PdsError, Result};

/// Frame magic: ASCII "PD".
pub const MAGIC: [u8; 2] = [0x50, 0x44];

/// Current protocol version.
pub const VERSION: u8 = 1;

/// Bytes before the payload: magic + version + type + length.
pub const HEADER_LEN: usize = 8;

/// Bytes after the payload: the CRC-32 trailer.
pub const TRAILER_LEN: usize = 4;

/// Fixed per-frame overhead added on top of the payload.
pub const FRAME_OVERHEAD: usize = HEADER_LEN + TRAILER_LEN;

/// Hard ceiling on a frame's payload length.  Protects decoders against
/// pathological length fields (a forged frame could otherwise request a
/// multi-gigabyte allocation before the CRC is ever checked).
pub const MAX_PAYLOAD_LEN: usize = 1 << 30;

/// Byte-indexed CRC-32 lookup table for the reflected IEEE polynomial,
/// built once at compile time (the bit-at-a-time loop would otherwise run
/// 8 iterations per payload byte on every exchange's accounting path).
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Total encoded size of a frame carrying `payload_len` payload bytes.
///
/// Used to account for messages whose body the simulation only knows by
/// size (opaque engine tokens), without materialising the payload.
pub const fn encoded_len(payload_len: usize) -> usize {
    FRAME_OVERHEAD + payload_len
}

/// Wraps a message payload into one wire frame.
pub fn encode_frame(msg_type: u8, payload: &[u8]) -> Result<Vec<u8>> {
    if payload.len() > MAX_PAYLOAD_LEN {
        return Err(PdsError::Wire(format!(
            "payload of {} bytes exceeds the {MAX_PAYLOAD_LEN}-byte frame limit",
            payload.len()
        )));
    }
    let mut out = Vec::with_capacity(encoded_len(payload.len()));
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(msg_type);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_be_bytes());
    Ok(out)
}

/// Unwraps one wire frame, returning `(msg_type, payload)`.
///
/// The input must be exactly one frame (trailing garbage is rejected —
/// stream reassembly happens above this layer, using the length field).
pub fn decode_frame(bytes: &[u8]) -> Result<(u8, &[u8])> {
    if bytes.len() < FRAME_OVERHEAD {
        return Err(PdsError::Wire(format!(
            "frame truncated: {} bytes, need at least {FRAME_OVERHEAD}",
            bytes.len()
        )));
    }
    if bytes[..2] != MAGIC {
        return Err(PdsError::Wire(format!(
            "bad frame magic {:02x}{:02x}",
            bytes[0], bytes[1]
        )));
    }
    if bytes[2] != VERSION {
        return Err(PdsError::Wire(format!(
            "unsupported protocol version {}",
            bytes[2]
        )));
    }
    let msg_type = bytes[3];
    let len = u32::from_be_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD_LEN {
        return Err(PdsError::Wire(format!(
            "declared payload of {len} bytes exceeds the {MAX_PAYLOAD_LEN}-byte frame limit"
        )));
    }
    let expected_total = match HEADER_LEN
        .checked_add(len)
        .and_then(|n| n.checked_add(TRAILER_LEN))
    {
        Some(n) => n,
        None => return Err(PdsError::Wire("frame length overflows".into())),
    };
    if bytes.len() != expected_total {
        return Err(PdsError::Wire(format!(
            "frame length mismatch: header declares {len} payload bytes \
             ({expected_total} total), got {}",
            bytes.len()
        )));
    }
    let body_end = HEADER_LEN + len;
    let declared_crc = u32::from_be_bytes(bytes[body_end..].try_into().expect("4 bytes"));
    let actual_crc = crc32(&bytes[..body_end]);
    if declared_crc != actual_crc {
        return Err(PdsError::Wire(format!(
            "frame checksum mismatch: header {declared_crc:08x}, computed {actual_crc:08x}"
        )));
    }
    Ok((msg_type, &bytes[HEADER_LEN..body_end]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let frame = encode_frame(3, b"hello wire").unwrap();
        assert_eq!(frame.len(), encoded_len(10));
        let (ty, payload) = decode_frame(&frame).unwrap();
        assert_eq!(ty, 3);
        assert_eq!(payload, b"hello wire");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let frame = encode_frame(0, &[]).unwrap();
        assert_eq!(frame.len(), FRAME_OVERHEAD);
        let (ty, payload) = decode_frame(&frame).unwrap();
        assert_eq!(ty, 0);
        assert!(payload.is_empty());
    }

    #[test]
    fn crc32_matches_known_answer() {
        // The classic check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_truncation_is_an_error() {
        let frame = encode_frame(2, b"payload bytes").unwrap();
        for cut in 0..frame.len() {
            assert!(
                decode_frame(&frame[..cut]).is_err(),
                "truncation to {cut} bytes must fail"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let frame = encode_frame(5, b"tamper with me").unwrap();
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x01;
            assert!(decode_frame(&bad).is_err(), "flip at byte {i} must fail");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut frame = encode_frame(1, b"x").unwrap();
        frame.push(0);
        assert!(decode_frame(&frame).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut frame = encode_frame(1, b"x").unwrap();
        frame[2] = 9;
        assert!(decode_frame(&frame).is_err());
    }

    #[test]
    fn absurd_declared_length_rejected_before_alloc() {
        let mut frame = encode_frame(1, b"x").unwrap();
        frame[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(decode_frame(&frame).is_err());
    }
}
