//! Length-delimited, checksummed frames — the outermost layer of the wire
//! protocol.
//!
//! Every owner↔cloud message travels inside exactly one frame.  The
//! current layout (protocol version 2) carries a correlation id so
//! responses can be matched to requests out of order:
//!
//! ```text
//!  offset  size  field
//!  ------  ----  -----------------------------------------------------
//!       0     2  magic  0x50 0x44 ("PD")
//!       2     1  protocol version (currently 2)
//!       3     1  message type tag (see `pds_proto::messages`)
//!       4     8  correlation id, big-endian u64 (0 = uncorrelated)
//!      12     4  payload length, big-endian u32
//!      16     n  payload (message body, see `pds_proto::messages`)
//!    16+n     4  CRC-32 (IEEE) over bytes [0, 16+n), big-endian
//! ```
//!
//! Version-1 frames (no correlation-id field; the length sits at offset 4
//! and the payload at offset 8) still **decode**: the decoders switch on
//! the version byte and report correlation id 0 for v1 input, so a peer
//! speaking the old protocol keeps working.  Encoders always emit v2.
//! `tests/proto_roundtrip.rs` property-tests the compat path.
//!
//! Decoding is total: any truncated, oversized, or corrupted input yields
//! `Err(PdsError::Wire(..))` — never a panic.  The CRC trailer guarantees
//! that *any* single-byte corruption anywhere in the frame is detected
//! (CRC-32 detects all error bursts up to 32 bits), which the property
//! tests in `tests/proto_roundtrip.rs` fuzz.
//!
//! Buffers on both sides come from the thread-local [`crate::pool`]:
//! encoding builds header, payload and trailer in **one** pooled buffer
//! (no intermediate payload `Vec`), and [`FrameReader`] fills a pooled
//! buffer in bounded chunks — so steady-state traffic allocates nothing
//! per frame once each thread's working set is warm.

use std::io::Read;

use pds_common::{PdsError, Result};

use crate::pool::{self, PooledBuf};

/// Frame magic: ASCII "PD".
pub const MAGIC: [u8; 2] = [0x50, 0x44];

/// Current protocol version (with the correlation-id header field).
pub const VERSION: u8 = 2;

/// The previous protocol version, still accepted by every decoder.
pub const VERSION_V1: u8 = 1;

/// Bytes before the payload in a **v2** frame:
/// magic + version + type + correlation id + length.
pub const HEADER_LEN: usize = 16;

/// Bytes before the payload in a legacy **v1** frame (no correlation id).
pub const HEADER_LEN_V1: usize = 8;

/// Bytes after the payload: the CRC-32 trailer.
pub const TRAILER_LEN: usize = 4;

/// Fixed per-frame overhead added on top of the payload (v2 layout, which
/// is what every encoder emits).
pub const FRAME_OVERHEAD: usize = HEADER_LEN + TRAILER_LEN;

/// Hard ceiling on a frame's payload length.  Protects decoders against
/// pathological length fields (a forged frame could otherwise request a
/// multi-gigabyte allocation before the CRC is ever checked).
pub const MAX_PAYLOAD_LEN: usize = 1 << 30;

/// The frame reader grows its buffer in steps of at most this many bytes,
/// so growth events stay proportional to bytes actually received — never
/// to the declared length, and never to the number of `read` calls.
const READ_CHUNK: usize = 64 * 1024;

/// Byte-indexed CRC-32 lookup table for the reflected IEEE polynomial,
/// built once at compile time (the bit-at-a-time loop would otherwise run
/// 8 iterations per payload byte on every exchange's accounting path).
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Big-endian u32 from (the first 4 bytes of) `bytes`, without a panic
/// path: the fold simply consumes what is there, and every caller has
/// already length-checked its slice.  Decoding must stay total — a hostile
/// frame may exercise any byte pattern, and the daemon's hot path forbids
/// `unwrap`/`expect` (see `pds-analyze`'s panic-path pass).
pub(crate) fn be_u32(bytes: &[u8]) -> u32 {
    bytes
        .iter()
        .take(4)
        .fold(0u32, |acc, &b| (acc << 8) | u32::from(b))
}

/// Big-endian u64 twin of [`be_u32`].
pub(crate) fn be_u64(bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .take(8)
        .fold(0u64, |acc, &b| (acc << 8) | u64::from(b))
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Total encoded size of a frame carrying `payload_len` payload bytes.
///
/// Used to account for messages whose body the simulation only knows by
/// size (opaque engine tokens), without materialising the payload.
pub const fn encoded_len(payload_len: usize) -> usize {
    FRAME_OVERHEAD + payload_len
}

/// Starts a v2 frame in `buf`: magic, version, type, correlation id, and a
/// zeroed length placeholder that [`finish_frame`] patches.  The caller
/// appends the payload directly after this — one buffer end to end, which
/// is what lets the codec hot path run without a per-frame allocation.
pub fn begin_frame(buf: &mut Vec<u8>, msg_type: u8, corr: u64) {
    buf.clear();
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(msg_type);
    buf.extend_from_slice(&corr.to_be_bytes());
    buf.extend_from_slice(&[0u8; 4]);
}

/// Completes a frame begun with [`begin_frame`]: validates the payload
/// length, patches the header's length field, and appends the CRC trailer.
pub fn finish_frame(buf: &mut Vec<u8>) -> Result<()> {
    let payload_len = buf.len().saturating_sub(HEADER_LEN);
    if payload_len > MAX_PAYLOAD_LEN {
        return Err(PdsError::Wire(format!(
            "payload of {payload_len} bytes exceeds the {MAX_PAYLOAD_LEN}-byte frame limit"
        )));
    }
    buf[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&(payload_len as u32).to_be_bytes());
    let crc = crc32(buf);
    buf.extend_from_slice(&crc.to_be_bytes());
    Ok(())
}

/// Wraps a message payload into one wire frame (correlation id 0).
pub fn encode_frame(msg_type: u8, payload: &[u8]) -> Result<Vec<u8>> {
    encode_frame_corr(msg_type, 0, payload)
}

/// Wraps a message payload into one wire frame carrying `corr`.
pub fn encode_frame_corr(msg_type: u8, corr: u64, payload: &[u8]) -> Result<Vec<u8>> {
    let _span = pds_obs::obs_span("frame.encode");
    if payload.len() > MAX_PAYLOAD_LEN {
        return Err(PdsError::Wire(format!(
            "payload of {} bytes exceeds the {MAX_PAYLOAD_LEN}-byte frame limit",
            payload.len()
        )));
    }
    let mut out = pool::take_buf();
    out.reserve(encoded_len(payload.len()));
    begin_frame(&mut out, msg_type, corr);
    out.extend_from_slice(payload);
    finish_frame(&mut out)?;
    Ok(out.into_vec())
}

/// Unwraps one wire frame, returning `(msg_type, payload)`.
///
/// Accepts both protocol versions; see [`decode_frame_corr`] for the form
/// that also surfaces the correlation id.
pub fn decode_frame(bytes: &[u8]) -> Result<(u8, &[u8])> {
    decode_frame_corr(bytes).map(|(msg_type, _, payload)| (msg_type, payload))
}

/// Unwraps one wire frame, returning `(msg_type, correlation id, payload)`.
///
/// The input must be exactly one frame (trailing garbage is rejected —
/// stream reassembly happens above this layer, using the length field).
/// Legacy v1 frames decode with correlation id 0.
pub fn decode_frame_corr(bytes: &[u8]) -> Result<(u8, u64, &[u8])> {
    let _span = pds_obs::obs_span("frame.decode");
    if bytes.len() < HEADER_LEN_V1 + TRAILER_LEN {
        return Err(PdsError::Wire(format!(
            "frame truncated: {} bytes, need at least {}",
            bytes.len(),
            HEADER_LEN_V1 + TRAILER_LEN
        )));
    }
    if bytes[..2] != MAGIC {
        return Err(PdsError::Wire(format!(
            "bad frame magic {:02x}{:02x}",
            bytes[0], bytes[1]
        )));
    }
    let (header_len, corr) = match bytes[2] {
        VERSION_V1 => (HEADER_LEN_V1, 0),
        VERSION => {
            if bytes.len() < FRAME_OVERHEAD {
                return Err(PdsError::Wire(format!(
                    "v2 frame truncated: {} bytes, need at least {FRAME_OVERHEAD}",
                    bytes.len()
                )));
            }
            (HEADER_LEN, be_u64(&bytes[4..12]))
        }
        other => {
            return Err(PdsError::Wire(format!(
                "unsupported protocol version {other}"
            )));
        }
    };
    let msg_type = bytes[3];
    let len = be_u32(&bytes[header_len - 4..header_len]) as usize;
    if len > MAX_PAYLOAD_LEN {
        return Err(PdsError::Wire(format!(
            "declared payload of {len} bytes exceeds the {MAX_PAYLOAD_LEN}-byte frame limit"
        )));
    }
    let expected_total = match header_len
        .checked_add(len)
        .and_then(|n| n.checked_add(TRAILER_LEN))
    {
        Some(n) => n,
        None => return Err(PdsError::Wire("frame length overflows".into())),
    };
    if bytes.len() != expected_total {
        return Err(PdsError::Wire(format!(
            "frame length mismatch: header declares {len} payload bytes \
             ({expected_total} total), got {}",
            bytes.len()
        )));
    }
    let body_end = header_len + len;
    let declared_crc = be_u32(&bytes[body_end..]);
    let actual_crc = crc32(&bytes[..body_end]);
    if declared_crc != actual_crc {
        return Err(PdsError::Wire(format!(
            "frame checksum mismatch: header {declared_crc:08x}, computed {actual_crc:08x}"
        )));
    }
    Ok((msg_type, corr, &bytes[header_len..body_end]))
}

/// Outcome of one streaming frame read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadFrame {
    /// The peer closed the stream cleanly on a frame boundary.
    Eof,
    /// One complete frame (header + payload + CRC trailer) in a pooled
    /// buffer, ready for [`decode_frame`] / `WireMessage::decode`.
    /// Dropping the buffer recycles it for the next read on this thread.
    Frame(PooledBuf),
    /// A well-formed header declared more payload than this reader's limit.
    /// The payload was **not** read (and not allocated); the stream is now
    /// desynchronised, so the caller must close the connection after
    /// reporting the violation.
    Oversized {
        /// Message type tag from the offending header.
        msg_type: u8,
        /// Correlation id from the offending header (0 for v1 frames), so
        /// the refusal can be stamped onto the right in-flight request.
        corr: u64,
        /// Payload length the header declared.
        declared: usize,
    },
}

/// Streaming frame reader with a configurable per-read payload ceiling.
///
/// [`decode_frame`] needs the whole frame in memory up front; sockets
/// deliver bytes in arbitrary chunks.  This reader reassembles exactly one
/// frame from any [`Read`], handling short reads, and maps every truncation
/// (EOF mid-header, EOF mid-payload) to `Err(PdsError::Wire)` — never a
/// hang or a panic.  The declared payload length is validated against the
/// ceiling *before* any payload byte is read, and the pooled receive
/// buffer grows in bounded [`READ_CHUNK`] steps as bytes actually arrive,
/// never pre-sized from the declared length — so a hostile peer cannot
/// turn a forged length field into a large allocation, and a 1-byte
/// dribble schedule cannot force per-read reallocation: growth events are
/// bounded by `ceil(frame len / READ_CHUNK)`, not by the number of `read`
/// calls, and are counted in [`pool::pool_stats`]'s `reader_grows` so
/// tests can assert the bound.  Accepts both protocol versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameReader {
    max_payload: usize,
}

impl Default for FrameReader {
    fn default() -> Self {
        FrameReader {
            max_payload: MAX_PAYLOAD_LEN,
        }
    }
}

impl FrameReader {
    /// Creates a reader that accepts payloads up to `max_payload` bytes
    /// (clamped to [`MAX_PAYLOAD_LEN`]).
    pub fn new(max_payload: usize) -> Self {
        FrameReader {
            max_payload: max_payload.min(MAX_PAYLOAD_LEN),
        }
    }

    /// The payload ceiling this reader enforces.
    pub fn max_payload(&self) -> usize {
        self.max_payload
    }

    /// Reads exactly one frame from `r`.
    ///
    /// Returns [`ReadFrame::Eof`] only when the stream ends cleanly on a
    /// frame boundary (zero bytes of the next header read); any partial
    /// frame is an error.  Returns [`ReadFrame::Oversized`] — without
    /// reading or allocating the payload — when the declared length exceeds
    /// this reader's ceiling.
    pub fn read<R: Read>(&self, r: &mut R) -> Result<ReadFrame> {
        let mut header = [0u8; HEADER_LEN];
        let mut got = 0;
        // Both versions share the first 8 bytes' magic/version/type prefix;
        // only after the version byte do we know whether 8 more follow.
        while got < HEADER_LEN_V1 {
            match r.read(&mut header[got..HEADER_LEN_V1]) {
                Ok(0) if got == 0 => return Ok(ReadFrame::Eof),
                Ok(0) => {
                    return Err(PdsError::Wire(format!(
                        "stream ended mid-header: got {got} of {HEADER_LEN_V1} bytes"
                    )))
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(PdsError::Wire(format!("frame header read failed: {e}"))),
            }
        }
        if header[..2] != MAGIC {
            return Err(PdsError::Wire(format!(
                "bad frame magic {:02x}{:02x}",
                header[0], header[1]
            )));
        }
        let (header_len, corr, declared) = match header[2] {
            VERSION_V1 => (
                HEADER_LEN_V1,
                0u64,
                be_u32(&header[4..HEADER_LEN_V1]) as usize,
            ),
            VERSION => {
                while got < HEADER_LEN {
                    match r.read(&mut header[got..HEADER_LEN]) {
                        Ok(0) => {
                            return Err(PdsError::Wire(format!(
                                "stream ended mid-header: got {got} of {HEADER_LEN} bytes"
                            )))
                        }
                        Ok(n) => got += n,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => {
                            return Err(PdsError::Wire(format!("frame header read failed: {e}")))
                        }
                    }
                }
                (
                    HEADER_LEN,
                    be_u64(&header[4..12]),
                    be_u32(&header[12..16]) as usize,
                )
            }
            other => {
                return Err(PdsError::Wire(format!(
                    "unsupported protocol version {other}"
                )));
            }
        };
        let msg_type = header[3];
        if declared > self.max_payload {
            return Ok(ReadFrame::Oversized {
                msg_type,
                corr,
                declared,
            });
        }
        let rest = declared + TRAILER_LEN;
        // Fill a pooled buffer in bounded chunks as bytes actually arrive:
        // a peer that declares big and sends nothing costs at most one
        // READ_CHUNK of reserve, and a warm pool buffer (capacity from the
        // last frame of this size) grows zero times.
        let mut frame = pool::take_buf();
        frame.extend_from_slice(&header[..header_len]);
        let mut remaining = rest;
        while remaining > 0 {
            let chunk = remaining.min(READ_CHUNK);
            let filled_start = frame.len();
            let cap_before = frame.capacity();
            frame.resize(filled_start + chunk, 0);
            if frame.capacity() != cap_before {
                pool::note_reader_grow();
            }
            let mut filled = 0;
            while filled < chunk {
                match r.read(&mut frame[filled_start + filled..filled_start + chunk]) {
                    Ok(0) => {
                        let got = rest - remaining + filled;
                        return Err(PdsError::Wire(format!(
                            "stream ended mid-frame: got {got} of {rest} payload+trailer bytes"
                        )));
                    }
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        return Err(PdsError::Wire(format!("frame payload read failed: {e}")))
                    }
                }
            }
            remaining -= chunk;
        }
        Ok(ReadFrame::Frame(frame))
    }
}

/// Reads one frame from `r` with the default [`MAX_PAYLOAD_LEN`] ceiling.
pub fn read_frame<R: Read>(r: &mut R) -> Result<ReadFrame> {
    FrameReader::default().read(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a legacy v1 frame (length at offset 4, payload at offset 8,
    /// no correlation id) — the compat fixture every decoder must accept.
    fn encode_frame_v1(msg_type: u8, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN_V1 + payload.len() + TRAILER_LEN);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION_V1);
        out.push(msg_type);
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_be_bytes());
        out
    }

    #[test]
    fn roundtrip() {
        let frame = encode_frame(3, b"hello wire").unwrap();
        assert_eq!(frame.len(), encoded_len(10));
        let (ty, payload) = decode_frame(&frame).unwrap();
        assert_eq!(ty, 3);
        assert_eq!(payload, b"hello wire");
    }

    #[test]
    fn correlation_id_roundtrips() {
        for corr in [0u64, 1, 7, u64::MAX] {
            let frame = encode_frame_corr(9, corr, b"tagged").unwrap();
            let (ty, got, payload) = decode_frame_corr(&frame).unwrap();
            assert_eq!(ty, 9);
            assert_eq!(got, corr);
            assert_eq!(payload, b"tagged");
        }
    }

    #[test]
    fn v1_frames_still_decode_with_corr_zero() {
        let frame = encode_frame_v1(3, b"legacy peer");
        let (ty, corr, payload) = decode_frame_corr(&frame).unwrap();
        assert_eq!(ty, 3);
        assert_eq!(corr, 0);
        assert_eq!(payload, b"legacy peer");
        // And through the streaming reader.
        let mut cursor = std::io::Cursor::new(frame);
        match read_frame(&mut cursor).unwrap() {
            ReadFrame::Frame(bytes) => {
                let (ty, corr, payload) = decode_frame_corr(&bytes).unwrap();
                assert_eq!((ty, corr), (3, 0));
                assert_eq!(payload, b"legacy peer");
            }
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn empty_payload_roundtrips() {
        let frame = encode_frame(0, &[]).unwrap();
        assert_eq!(frame.len(), FRAME_OVERHEAD);
        let (ty, payload) = decode_frame(&frame).unwrap();
        assert_eq!(ty, 0);
        assert!(payload.is_empty());
    }

    #[test]
    fn crc32_matches_known_answer() {
        // The classic check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_truncation_is_an_error() {
        for frame in [
            encode_frame(2, b"payload bytes").unwrap(),
            encode_frame_v1(2, b"payload bytes"),
        ] {
            for cut in 0..frame.len() {
                assert!(
                    decode_frame(&frame[..cut]).is_err(),
                    "truncation to {cut} bytes must fail"
                );
            }
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        for frame in [
            encode_frame(5, b"tamper with me").unwrap(),
            encode_frame_v1(5, b"tamper with me"),
        ] {
            for i in 0..frame.len() {
                let mut bad = frame.clone();
                bad[i] ^= 0x01;
                assert!(decode_frame(&bad).is_err(), "flip at byte {i} must fail");
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut frame = encode_frame(1, b"x").unwrap();
        frame.push(0);
        assert!(decode_frame(&frame).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut frame = encode_frame(1, b"x").unwrap();
        frame[2] = 9;
        assert!(decode_frame(&frame).is_err());
    }

    #[test]
    fn absurd_declared_length_rejected_before_alloc() {
        let mut frame = encode_frame(1, b"x").unwrap();
        frame[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(decode_frame(&frame).is_err());
    }

    /// A reader that delivers one byte per `read` call — the worst-case
    /// short-read schedule a socket can produce.
    struct ByteAtATime<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Read for ByteAtATime<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.bytes.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.bytes[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn streaming_read_survives_short_reads() {
        let frame = encode_frame(3, b"dribbled one byte at a time").unwrap();
        let mut r = ByteAtATime {
            bytes: &frame,
            pos: 0,
        };
        match read_frame(&mut r).unwrap() {
            ReadFrame::Frame(bytes) => {
                let (ty, payload) = decode_frame(&bytes).unwrap();
                assert_eq!(ty, 3);
                assert_eq!(payload, b"dribbled one byte at a time");
            }
            other => panic!("expected a frame, got {other:?}"),
        }
        // The stream is now exhausted on a frame boundary: clean EOF.
        assert_eq!(read_frame(&mut r).unwrap(), ReadFrame::Eof);
    }

    #[test]
    fn dribble_reallocation_is_bounded_by_frame_size_not_read_count() {
        // ~200 KiB payload delivered one byte at a time: hundreds of
        // thousands of read calls, but capacity growth must stay bounded by
        // the frame's chunk count, not the read count.  Thread-local stats
        // keep the delta deterministic under the parallel test runner.
        let payload = vec![0xA5u8; 200 * 1024];
        let frame = encode_frame(7, &payload).unwrap();
        let before = pool::thread_pool_stats().reader_grows;
        let mut r = ByteAtATime {
            bytes: &frame,
            pos: 0,
        };
        match read_frame(&mut r).unwrap() {
            ReadFrame::Frame(bytes) => assert_eq!(bytes.len(), frame.len()),
            other => panic!("expected a frame, got {other:?}"),
        }
        let grows = pool::thread_pool_stats().reader_grows - before;
        let chunks = (frame.len() / READ_CHUNK + 2) as u64;
        assert!(
            grows <= chunks,
            "{grows} capacity growths for {} bytes dribbled byte-by-byte \
             (bound: {chunks})",
            frame.len()
        );
    }

    #[test]
    fn pooled_read_buffer_is_reused_across_frames() {
        let frame = encode_frame(3, b"recycled").unwrap();
        // Warm the pool: the first read may miss, later reads must hit.
        for _ in 0..2 {
            let mut cursor = std::io::Cursor::new(frame.clone());
            match read_frame(&mut cursor).unwrap() {
                ReadFrame::Frame(bytes) => drop(bytes),
                other => panic!("expected a frame, got {other:?}"),
            }
        }
        let before = pool::thread_pool_stats();
        let mut cursor = std::io::Cursor::new(frame);
        match read_frame(&mut cursor).unwrap() {
            ReadFrame::Frame(bytes) => drop(bytes),
            other => panic!("expected a frame, got {other:?}"),
        }
        let after = pool::thread_pool_stats();
        assert_eq!(after.hits - before.hits, 1, "warm read must hit the pool");
        assert_eq!(after.misses, before.misses, "warm read must not allocate");
    }

    #[test]
    fn streaming_read_reassembles_back_to_back_mixed_version_frames() {
        let mut stream = encode_frame(1, b"first").unwrap();
        stream.extend_from_slice(&encode_frame_v1(2, b"second"));
        let mut cursor = std::io::Cursor::new(stream);
        for expected in [(1u8, b"first".as_slice()), (2u8, b"second".as_slice())] {
            match read_frame(&mut cursor).unwrap() {
                ReadFrame::Frame(bytes) => {
                    let (ty, payload) = decode_frame(&bytes).unwrap();
                    assert_eq!((ty, payload), expected);
                }
                other => panic!("expected a frame, got {other:?}"),
            }
        }
        assert_eq!(read_frame(&mut cursor).unwrap(), ReadFrame::Eof);
    }

    #[test]
    fn eof_mid_header_is_a_wire_error() {
        let frame = encode_frame(4, b"cut me off").unwrap();
        for cut in 1..HEADER_LEN {
            let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
            assert!(
                read_frame(&mut cursor).is_err(),
                "EOF after {cut} header bytes must be Err(Wire), not a hang or Eof"
            );
        }
        let v1 = encode_frame_v1(4, b"cut me off");
        for cut in 1..HEADER_LEN_V1 {
            let mut cursor = std::io::Cursor::new(v1[..cut].to_vec());
            assert!(
                read_frame(&mut cursor).is_err(),
                "EOF after {cut} v1 header bytes must be Err(Wire)"
            );
        }
    }

    #[test]
    fn eof_mid_payload_is_a_wire_error() {
        let frame = encode_frame(4, b"cut me off").unwrap();
        for cut in HEADER_LEN..frame.len() {
            let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
            assert!(
                read_frame(&mut cursor).is_err(),
                "EOF after {cut} of {} bytes must be Err(Wire)",
                frame.len()
            );
        }
    }

    #[test]
    fn bad_magic_and_version_fail_streaming_too() {
        let mut bad_magic = encode_frame(1, b"x").unwrap();
        bad_magic[0] = 0xFF;
        assert!(read_frame(&mut std::io::Cursor::new(bad_magic)).is_err());
        let mut bad_version = encode_frame(1, b"x").unwrap();
        bad_version[2] = 9;
        assert!(read_frame(&mut std::io::Cursor::new(bad_version)).is_err());
    }

    #[test]
    fn oversized_declared_length_reported_before_payload_read() {
        // Header declares 1 MiB but the configured ceiling is 1 KiB; the
        // reader must report Oversized — with the header's correlation id —
        // without consuming payload bytes.
        let mut stream = Vec::new();
        stream.extend_from_slice(&MAGIC);
        stream.push(VERSION);
        stream.push(7);
        stream.extend_from_slice(&0xDEAD_BEEFu64.to_be_bytes());
        stream.extend_from_slice(&(1_048_576u32).to_be_bytes());
        stream.extend_from_slice(b"payload bytes that must not be consumed");
        let mut cursor = std::io::Cursor::new(stream);
        let reader = FrameReader::new(1024);
        match reader.read(&mut cursor).unwrap() {
            ReadFrame::Oversized {
                msg_type,
                corr,
                declared,
            } => {
                assert_eq!(msg_type, 7);
                assert_eq!(corr, 0xDEAD_BEEF);
                assert_eq!(declared, 1_048_576);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        assert_eq!(
            cursor.position() as usize,
            HEADER_LEN,
            "no payload byte may be consumed after an oversized header"
        );
    }

    #[test]
    fn huge_declared_length_does_not_preallocate() {
        // Declared length is just under the default ceiling, but only 3
        // payload bytes actually arrive: the read must fail with a wire
        // error after consuming what exists, not allocate ~1 GiB up front.
        let mut stream = Vec::new();
        stream.extend_from_slice(&MAGIC);
        stream.push(VERSION);
        stream.push(1);
        stream.extend_from_slice(&0u64.to_be_bytes());
        stream.extend_from_slice(&((MAX_PAYLOAD_LEN as u32) - 1).to_be_bytes());
        stream.extend_from_slice(b"abc");
        let mut cursor = std::io::Cursor::new(stream);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn frame_reader_ceiling_is_clamped() {
        assert_eq!(FrameReader::new(usize::MAX).max_payload(), MAX_PAYLOAD_LEN);
        assert_eq!(FrameReader::new(10).max_payload(), 10);
        assert_eq!(FrameReader::default().max_payload(), MAX_PAYLOAD_LEN);
    }
}
