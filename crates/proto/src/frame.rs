//! Length-delimited, checksummed frames — the outermost layer of the wire
//! protocol.
//!
//! Every owner↔cloud message travels inside exactly one frame:
//!
//! ```text
//!  offset  size  field
//!  ------  ----  -----------------------------------------------------
//!       0     2  magic  0x50 0x44 ("PD")
//!       2     1  protocol version (currently 1)
//!       3     1  message type tag (see `pds_proto::messages`)
//!       4     4  payload length, big-endian u32
//!       8     n  payload (message body, see `pds_proto::messages`)
//!     8+n     4  CRC-32 (IEEE) over bytes [0, 8+n), big-endian
//! ```
//!
//! Decoding is total: any truncated, oversized, or corrupted input yields
//! `Err(PdsError::Wire(..))` — never a panic.  The CRC trailer guarantees
//! that *any* single-byte corruption anywhere in the frame is detected
//! (CRC-32 detects all error bursts up to 32 bits), which the property
//! tests in `tests/proto_roundtrip.rs` fuzz.

use std::io::Read;

use pds_common::{PdsError, Result};

/// Frame magic: ASCII "PD".
pub const MAGIC: [u8; 2] = [0x50, 0x44];

/// Current protocol version.
pub const VERSION: u8 = 1;

/// Bytes before the payload: magic + version + type + length.
pub const HEADER_LEN: usize = 8;

/// Bytes after the payload: the CRC-32 trailer.
pub const TRAILER_LEN: usize = 4;

/// Fixed per-frame overhead added on top of the payload.
pub const FRAME_OVERHEAD: usize = HEADER_LEN + TRAILER_LEN;

/// Hard ceiling on a frame's payload length.  Protects decoders against
/// pathological length fields (a forged frame could otherwise request a
/// multi-gigabyte allocation before the CRC is ever checked).
pub const MAX_PAYLOAD_LEN: usize = 1 << 30;

/// Byte-indexed CRC-32 lookup table for the reflected IEEE polynomial,
/// built once at compile time (the bit-at-a-time loop would otherwise run
/// 8 iterations per payload byte on every exchange's accounting path).
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Big-endian u32 from (the first 4 bytes of) `bytes`, without a panic
/// path: the fold simply consumes what is there, and every caller has
/// already length-checked its slice.  Decoding must stay total — a hostile
/// frame may exercise any byte pattern, and the daemon's hot path forbids
/// `unwrap`/`expect` (see `pds-analyze`'s panic-path pass).
pub(crate) fn be_u32(bytes: &[u8]) -> u32 {
    bytes
        .iter()
        .take(4)
        .fold(0u32, |acc, &b| (acc << 8) | u32::from(b))
}

/// Big-endian u64 twin of [`be_u32`].
pub(crate) fn be_u64(bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .take(8)
        .fold(0u64, |acc, &b| (acc << 8) | u64::from(b))
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Total encoded size of a frame carrying `payload_len` payload bytes.
///
/// Used to account for messages whose body the simulation only knows by
/// size (opaque engine tokens), without materialising the payload.
pub const fn encoded_len(payload_len: usize) -> usize {
    FRAME_OVERHEAD + payload_len
}

/// Wraps a message payload into one wire frame.
pub fn encode_frame(msg_type: u8, payload: &[u8]) -> Result<Vec<u8>> {
    let _span = pds_obs::obs_span("frame.encode");
    if payload.len() > MAX_PAYLOAD_LEN {
        return Err(PdsError::Wire(format!(
            "payload of {} bytes exceeds the {MAX_PAYLOAD_LEN}-byte frame limit",
            payload.len()
        )));
    }
    let mut out = Vec::with_capacity(encoded_len(payload.len()));
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(msg_type);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_be_bytes());
    Ok(out)
}

/// Unwraps one wire frame, returning `(msg_type, payload)`.
///
/// The input must be exactly one frame (trailing garbage is rejected —
/// stream reassembly happens above this layer, using the length field).
pub fn decode_frame(bytes: &[u8]) -> Result<(u8, &[u8])> {
    let _span = pds_obs::obs_span("frame.decode");
    if bytes.len() < FRAME_OVERHEAD {
        return Err(PdsError::Wire(format!(
            "frame truncated: {} bytes, need at least {FRAME_OVERHEAD}",
            bytes.len()
        )));
    }
    if bytes[..2] != MAGIC {
        return Err(PdsError::Wire(format!(
            "bad frame magic {:02x}{:02x}",
            bytes[0], bytes[1]
        )));
    }
    if bytes[2] != VERSION {
        return Err(PdsError::Wire(format!(
            "unsupported protocol version {}",
            bytes[2]
        )));
    }
    let msg_type = bytes[3];
    let len = be_u32(&bytes[4..8]) as usize;
    if len > MAX_PAYLOAD_LEN {
        return Err(PdsError::Wire(format!(
            "declared payload of {len} bytes exceeds the {MAX_PAYLOAD_LEN}-byte frame limit"
        )));
    }
    let expected_total = match HEADER_LEN
        .checked_add(len)
        .and_then(|n| n.checked_add(TRAILER_LEN))
    {
        Some(n) => n,
        None => return Err(PdsError::Wire("frame length overflows".into())),
    };
    if bytes.len() != expected_total {
        return Err(PdsError::Wire(format!(
            "frame length mismatch: header declares {len} payload bytes \
             ({expected_total} total), got {}",
            bytes.len()
        )));
    }
    let body_end = HEADER_LEN + len;
    let declared_crc = be_u32(&bytes[body_end..]);
    let actual_crc = crc32(&bytes[..body_end]);
    if declared_crc != actual_crc {
        return Err(PdsError::Wire(format!(
            "frame checksum mismatch: header {declared_crc:08x}, computed {actual_crc:08x}"
        )));
    }
    Ok((msg_type, &bytes[HEADER_LEN..body_end]))
}

/// Outcome of one streaming frame read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadFrame {
    /// The peer closed the stream cleanly on a frame boundary.
    Eof,
    /// One complete frame (header + payload + CRC trailer), ready for
    /// [`decode_frame`] / `WireMessage::decode`.
    Frame(Vec<u8>),
    /// A well-formed header declared more payload than this reader's limit.
    /// The payload was **not** read (and not allocated); the stream is now
    /// desynchronised, so the caller must close the connection after
    /// reporting the violation.
    Oversized {
        /// Message type tag from the offending header.
        msg_type: u8,
        /// Payload length the header declared.
        declared: usize,
    },
}

/// Streaming frame reader with a configurable per-read payload ceiling.
///
/// [`decode_frame`] needs the whole frame in memory up front; sockets
/// deliver bytes in arbitrary chunks.  This reader reassembles exactly one
/// frame from any [`Read`], handling short reads, and maps every truncation
/// (EOF mid-header, EOF mid-payload) to `Err(PdsError::Wire)` — never a
/// hang or a panic.  The declared payload length is validated against the
/// ceiling *before* any payload byte is read, and the receive buffer grows
/// with the bytes actually received, never with the declared length — so a
/// hostile peer cannot turn a forged length field into a large allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameReader {
    max_payload: usize,
}

impl Default for FrameReader {
    fn default() -> Self {
        FrameReader {
            max_payload: MAX_PAYLOAD_LEN,
        }
    }
}

impl FrameReader {
    /// Creates a reader that accepts payloads up to `max_payload` bytes
    /// (clamped to [`MAX_PAYLOAD_LEN`]).
    pub fn new(max_payload: usize) -> Self {
        FrameReader {
            max_payload: max_payload.min(MAX_PAYLOAD_LEN),
        }
    }

    /// The payload ceiling this reader enforces.
    pub fn max_payload(&self) -> usize {
        self.max_payload
    }

    /// Reads exactly one frame from `r`.
    ///
    /// Returns [`ReadFrame::Eof`] only when the stream ends cleanly on a
    /// frame boundary (zero bytes of the next header read); any partial
    /// frame is an error.  Returns [`ReadFrame::Oversized`] — without
    /// reading or allocating the payload — when the declared length exceeds
    /// this reader's ceiling.
    pub fn read<R: Read>(&self, r: &mut R) -> Result<ReadFrame> {
        let mut header = [0u8; HEADER_LEN];
        let mut got = 0;
        while got < HEADER_LEN {
            match r.read(&mut header[got..]) {
                Ok(0) if got == 0 => return Ok(ReadFrame::Eof),
                Ok(0) => {
                    return Err(PdsError::Wire(format!(
                        "stream ended mid-header: got {got} of {HEADER_LEN} bytes"
                    )))
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(PdsError::Wire(format!("frame header read failed: {e}"))),
            }
        }
        if header[..2] != MAGIC {
            return Err(PdsError::Wire(format!(
                "bad frame magic {:02x}{:02x}",
                header[0], header[1]
            )));
        }
        if header[2] != VERSION {
            return Err(PdsError::Wire(format!(
                "unsupported protocol version {}",
                header[2]
            )));
        }
        let msg_type = header[3];
        let declared = be_u32(&header[4..8]) as usize;
        if declared > self.max_payload {
            return Ok(ReadFrame::Oversized { msg_type, declared });
        }
        let rest = declared + TRAILER_LEN;
        // Grow the buffer with bytes actually received (read_to_end through
        // a `take` limit), never pre-sized from the declared length: a peer
        // that declares big and sends nothing costs us nothing.
        let mut frame = Vec::with_capacity(HEADER_LEN + rest.min(64 * 1024));
        frame.extend_from_slice(&header);
        let read = r
            .by_ref()
            .take(rest as u64)
            .read_to_end(&mut frame)
            .map_err(|e| PdsError::Wire(format!("frame payload read failed: {e}")))?;
        if read < rest {
            return Err(PdsError::Wire(format!(
                "stream ended mid-frame: got {read} of {rest} payload+trailer bytes"
            )));
        }
        Ok(ReadFrame::Frame(frame))
    }
}

/// Reads one frame from `r` with the default [`MAX_PAYLOAD_LEN`] ceiling.
pub fn read_frame<R: Read>(r: &mut R) -> Result<ReadFrame> {
    FrameReader::default().read(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let frame = encode_frame(3, b"hello wire").unwrap();
        assert_eq!(frame.len(), encoded_len(10));
        let (ty, payload) = decode_frame(&frame).unwrap();
        assert_eq!(ty, 3);
        assert_eq!(payload, b"hello wire");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let frame = encode_frame(0, &[]).unwrap();
        assert_eq!(frame.len(), FRAME_OVERHEAD);
        let (ty, payload) = decode_frame(&frame).unwrap();
        assert_eq!(ty, 0);
        assert!(payload.is_empty());
    }

    #[test]
    fn crc32_matches_known_answer() {
        // The classic check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_truncation_is_an_error() {
        let frame = encode_frame(2, b"payload bytes").unwrap();
        for cut in 0..frame.len() {
            assert!(
                decode_frame(&frame[..cut]).is_err(),
                "truncation to {cut} bytes must fail"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let frame = encode_frame(5, b"tamper with me").unwrap();
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x01;
            assert!(decode_frame(&bad).is_err(), "flip at byte {i} must fail");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut frame = encode_frame(1, b"x").unwrap();
        frame.push(0);
        assert!(decode_frame(&frame).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut frame = encode_frame(1, b"x").unwrap();
        frame[2] = 9;
        assert!(decode_frame(&frame).is_err());
    }

    #[test]
    fn absurd_declared_length_rejected_before_alloc() {
        let mut frame = encode_frame(1, b"x").unwrap();
        frame[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(decode_frame(&frame).is_err());
    }

    /// A reader that delivers one byte per `read` call — the worst-case
    /// short-read schedule a socket can produce.
    struct ByteAtATime<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Read for ByteAtATime<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.bytes.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.bytes[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn streaming_read_survives_short_reads() {
        let frame = encode_frame(3, b"dribbled one byte at a time").unwrap();
        let mut r = ByteAtATime {
            bytes: &frame,
            pos: 0,
        };
        match read_frame(&mut r).unwrap() {
            ReadFrame::Frame(bytes) => {
                let (ty, payload) = decode_frame(&bytes).unwrap();
                assert_eq!(ty, 3);
                assert_eq!(payload, b"dribbled one byte at a time");
            }
            other => panic!("expected a frame, got {other:?}"),
        }
        // The stream is now exhausted on a frame boundary: clean EOF.
        assert_eq!(read_frame(&mut r).unwrap(), ReadFrame::Eof);
    }

    #[test]
    fn streaming_read_reassembles_back_to_back_frames() {
        let mut stream = encode_frame(1, b"first").unwrap();
        stream.extend_from_slice(&encode_frame(2, b"second").unwrap());
        let mut cursor = std::io::Cursor::new(stream);
        for expected in [(1u8, b"first".as_slice()), (2u8, b"second".as_slice())] {
            match read_frame(&mut cursor).unwrap() {
                ReadFrame::Frame(bytes) => {
                    let (ty, payload) = decode_frame(&bytes).unwrap();
                    assert_eq!((ty, payload), expected);
                }
                other => panic!("expected a frame, got {other:?}"),
            }
        }
        assert_eq!(read_frame(&mut cursor).unwrap(), ReadFrame::Eof);
    }

    #[test]
    fn eof_mid_header_is_a_wire_error() {
        let frame = encode_frame(4, b"cut me off").unwrap();
        for cut in 1..HEADER_LEN {
            let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
            assert!(
                read_frame(&mut cursor).is_err(),
                "EOF after {cut} header bytes must be Err(Wire), not a hang or Eof"
            );
        }
    }

    #[test]
    fn eof_mid_payload_is_a_wire_error() {
        let frame = encode_frame(4, b"cut me off").unwrap();
        for cut in HEADER_LEN..frame.len() {
            let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
            assert!(
                read_frame(&mut cursor).is_err(),
                "EOF after {cut} of {} bytes must be Err(Wire)",
                frame.len()
            );
        }
    }

    #[test]
    fn bad_magic_and_version_fail_streaming_too() {
        let mut bad_magic = encode_frame(1, b"x").unwrap();
        bad_magic[0] = 0xFF;
        assert!(read_frame(&mut std::io::Cursor::new(bad_magic)).is_err());
        let mut bad_version = encode_frame(1, b"x").unwrap();
        bad_version[2] = 9;
        assert!(read_frame(&mut std::io::Cursor::new(bad_version)).is_err());
    }

    #[test]
    fn oversized_declared_length_reported_before_payload_read() {
        // Header declares 1 MiB but the configured ceiling is 1 KiB; the
        // reader must report Oversized without consuming payload bytes.
        let mut stream = Vec::new();
        stream.extend_from_slice(&MAGIC);
        stream.push(VERSION);
        stream.push(7);
        stream.extend_from_slice(&(1_048_576u32).to_be_bytes());
        stream.extend_from_slice(b"payload bytes that must not be consumed");
        let mut cursor = std::io::Cursor::new(stream);
        let reader = FrameReader::new(1024);
        match reader.read(&mut cursor).unwrap() {
            ReadFrame::Oversized { msg_type, declared } => {
                assert_eq!(msg_type, 7);
                assert_eq!(declared, 1_048_576);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        assert_eq!(
            cursor.position() as usize,
            HEADER_LEN,
            "no payload byte may be consumed after an oversized header"
        );
    }

    #[test]
    fn huge_declared_length_does_not_preallocate() {
        // Declared length is just under the default ceiling, but only 3
        // payload bytes actually arrive: the read must fail with a wire
        // error after consuming what exists, not allocate ~1 GiB up front.
        let mut stream = Vec::new();
        stream.extend_from_slice(&MAGIC);
        stream.push(VERSION);
        stream.push(1);
        stream.extend_from_slice(&((MAX_PAYLOAD_LEN as u32) - 1).to_be_bytes());
        stream.extend_from_slice(b"abc");
        let mut cursor = std::io::Cursor::new(stream);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn frame_reader_ceiling_is_clamped() {
        assert_eq!(FrameReader::new(usize::MAX).max_payload(), MAX_PAYLOAD_LEN);
        assert_eq!(FrameReader::new(10).max_payload(), 10);
        assert_eq!(FrameReader::default().max_payload(), MAX_PAYLOAD_LEN);
    }
}
