//! Property tests for the wire protocol: `decode ∘ encode == id` for every
//! message type, and fuzzed truncation/corruption always yields
//! `Err(PdsError::Wire)` — never a panic.
//!
//! Seeding rides the workspace's deterministic proptest machinery
//! (`PROPTEST_SEED` / `PROPTEST_CASES`, regressions recorded under
//! `proptest-regressions/`).

use pds_common::{PdsError, TupleId, Value};
use pds_proto::{
    Ack, BinPairRequest, BinPayload, ErrorFrame, FetchBinRequest, Hello, InsertRequest,
    WireMessage, WireRow,
};
use pds_storage::{Predicate, Tuple};
use proptest::prelude::*;
use rand::Rng;

fn arb_value<R: Rng>(rng: &mut R) -> Value {
    match rng.gen_range(0u8..5) {
        0 => Value::Null,
        1 => Value::Int(rng.gen_range(i64::MIN..i64::MAX)),
        2 => {
            let len = rng.gen_range(0usize..24);
            Value::Text(
                (0..len)
                    .map(|_| char::from(rng.gen_range(0x20u8..0x7f)))
                    .collect(),
            )
        }
        3 => {
            let len = rng.gen_range(0usize..48);
            Value::Bytes((0..len).map(|_| rng.gen_range(0u8..=255)).collect())
        }
        _ => Value::Bool(rng.gen_range(0u8..2) == 1),
    }
}

fn arb_blob<R: Rng>(rng: &mut R, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rng.gen_range(0u8..=255)).collect()
}

fn arb_tuple<R: Rng>(rng: &mut R) -> Tuple {
    let arity = rng.gen_range(1usize..5);
    Tuple::new(
        TupleId::new(rng.gen_range(0u64..u64::MAX)),
        (0..arity).map(|_| arb_value(rng)).collect(),
    )
}

fn arb_predicate<R: Rng>(rng: &mut R, depth: usize) -> Predicate {
    let leaf_only = depth >= 3;
    match rng.gen_range(0u8..if leaf_only { 4 } else { 7 }) {
        0 => Predicate::True,
        1 => Predicate::Eq {
            attr: pds_common::AttrId::new(rng.gen_range(0u64..16)),
            value: arb_value(rng),
        },
        2 => Predicate::InSet {
            attr: pds_common::AttrId::new(rng.gen_range(0u64..16)),
            values: (0..rng.gen_range(0usize..4))
                .map(|_| arb_value(rng))
                .collect(),
        },
        3 => Predicate::Range {
            attr: pds_common::AttrId::new(rng.gen_range(0u64..16)),
            lo: arb_value(rng),
            hi: arb_value(rng),
        },
        4 => Predicate::Not(Box::new(arb_predicate(rng, depth + 1))),
        other => {
            let children = (0..rng.gen_range(0usize..3))
                .map(|_| arb_predicate(rng, depth + 1))
                .collect();
            if other == 5 {
                Predicate::And(children)
            } else {
                Predicate::Or(children)
            }
        }
    }
}

fn arb_opt_predicate<R: Rng>(rng: &mut R) -> Option<Predicate> {
    if rng.gen_range(0u8..3) == 0 {
        Some(arb_predicate(rng, 0))
    } else {
        None
    }
}

fn arb_row<R: Rng>(rng: &mut R) -> WireRow {
    WireRow {
        id: rng.gen_range(0u64..u64::MAX),
        attr_ct: arb_blob(rng, 40),
        tuple_ct: arb_blob(rng, 120),
        search_tags: (0..rng.gen_range(0usize..3))
            .map(|_| arb_blob(rng, 20))
            .collect(),
    }
}

/// One random message of a random type, driven by the proptest case seed.
fn arb_message(seed: u64) -> WireMessage {
    let mut rng = pds_common::rng::seeded_rng(seed);
    match rng.gen_range(0u8..8) {
        0 => WireMessage::FetchBinRequest(FetchBinRequest {
            values: (0..rng.gen_range(0usize..6))
                .map(|_| arb_value(&mut rng))
                .collect(),
            ids: (0..rng.gen_range(0usize..6))
                .map(|_| rng.gen_range(0u64..u64::MAX))
                .collect(),
            tags: (0..rng.gen_range(0usize..4))
                .map(|_| arb_blob(&mut rng, 24))
                .collect(),
            predicate: arb_opt_predicate(&mut rng),
        }),
        1 => WireMessage::BinPairRequest(BinPairRequest {
            sensitive_bin: rng.gen_range(0u32..1 << 20),
            nonsensitive_bin: rng.gen_range(0u32..1 << 20),
            encrypted_values: (0..rng.gen_range(0usize..5))
                .map(|_| arb_blob(&mut rng, 64))
                .collect(),
            nonsensitive_values: (0..rng.gen_range(0usize..5))
                .map(|_| arb_value(&mut rng))
                .collect(),
            predicate: arb_opt_predicate(&mut rng),
        }),
        2 => WireMessage::BinPayload(BinPayload {
            plain_tuples: (0..rng.gen_range(0usize..4))
                .map(|_| arb_tuple(&mut rng))
                .collect(),
            encrypted_rows: (0..rng.gen_range(0usize..4))
                .map(|_| arb_row(&mut rng))
                .collect(),
        }),
        3 => WireMessage::InsertRequest(InsertRequest {
            plain_tuples: (0..rng.gen_range(0usize..4))
                .map(|_| arb_tuple(&mut rng))
                .collect(),
            encrypted_rows: (0..rng.gen_range(0usize..4))
                .map(|_| arb_row(&mut rng))
                .collect(),
        }),
        4 => WireMessage::Ack(Ack {
            items: rng.gen_range(0u64..u64::MAX),
        }),
        5 => {
            let msg_len = rng.gen_range(0usize..40);
            WireMessage::Error(ErrorFrame {
                category: "cloud".to_string(),
                message: (0..msg_len)
                    .map(|_| char::from(rng.gen_range(0x20u8..0x7f)))
                    .collect(),
            })
        }
        6 => WireMessage::Opaque(arb_blob(&mut rng, 100)),
        _ => WireMessage::Hello(Hello {
            tenant: rng.gen_range(0u64..u64::MAX),
        }),
    }
}

/// Re-wraps a (v2) encoded frame's payload in the legacy v1 layout: no
/// correlation-id field, length at offset 4, payload at offset 8.  This is
/// what an old-protocol peer would put on the wire.
fn reframe_as_v1(frame: &[u8]) -> Vec<u8> {
    let payload = &frame[pds_proto::HEADER_LEN..frame.len() - pds_proto::TRAILER_LEN];
    let mut out = Vec::with_capacity(pds_proto::HEADER_LEN_V1 + payload.len() + 4);
    out.extend_from_slice(&pds_proto::frame::MAGIC);
    out.push(pds_proto::VERSION_V1);
    out.push(frame[3]);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    let crc = pds_proto::crc32(&out);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

proptest! {
    #[test]
    fn encode_decode_is_identity(seed in proptest::arbitrary::any::<u64>()) {
        let msg = arb_message(seed);
        let frame = msg.encode().expect("encode never fails on in-range data");
        let back = WireMessage::decode(&frame).expect("well-formed frame decodes");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn encoded_len_matches_frame(seed in proptest::arbitrary::any::<u64>()) {
        let msg = arb_message(seed);
        prop_assert_eq!(msg.encoded_len().unwrap(), msg.encode().unwrap().len());
    }

    #[test]
    fn any_truncation_is_a_wire_error(seed in proptest::arbitrary::any::<u64>()) {
        let frame = arb_message(seed).encode().unwrap();
        // Every strict prefix must fail cleanly — exhaustive, not sampled,
        // so no truncation point ever panics.
        for cut in 0..frame.len() {
            match WireMessage::decode(&frame[..cut]) {
                Err(PdsError::Wire(_)) => {}
                other => prop_assert!(false, "cut at {} gave {:?}", cut, other),
            }
        }
    }

    #[test]
    fn any_single_byte_corruption_is_a_wire_error(seed in proptest::arbitrary::any::<u64>()) {
        let frame = arb_message(seed).encode().unwrap();
        let mut rng = pds_common::rng::seeded_rng(seed ^ 0xC0FFEE);
        // CRC-32 detects every single-byte error; exercise a sample of
        // positions and all positions for small frames.
        let positions: Vec<usize> = if frame.len() <= 64 {
            (0..frame.len()).collect()
        } else {
            (0..64).map(|_| rng.gen_range(0..frame.len())).collect()
        };
        for pos in positions {
            let flip = rng.gen_range(1u8..=255);
            let mut bad = frame.clone();
            bad[pos] ^= flip;
            match WireMessage::decode(&bad) {
                Err(PdsError::Wire(_)) => {}
                other => prop_assert!(
                    false,
                    "flip of {:#04x} at byte {} gave {:?}",
                    flip,
                    pos,
                    other
                ),
            }
        }
    }

    #[test]
    fn correlation_id_roundtrips_any_message(seed in proptest::arbitrary::any::<u64>()) {
        let msg = arb_message(seed);
        let corr = seed.rotate_left(17) | 1;
        let framed = msg.encode_framed(corr).expect("encode never fails on in-range data");
        let (got_corr, back) = WireMessage::decode_corr(&framed).expect("roundtrip");
        prop_assert_eq!(got_corr, corr);
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn legacy_v1_frames_decode_identically(seed in proptest::arbitrary::any::<u64>()) {
        // Compat gate for the frame version bump: any message re-wrapped in
        // the old v1 layout must decode to the same value, with correlation
        // id 0, through both the one-shot decoder and the stream reader.
        let msg = arb_message(seed);
        let v1 = reframe_as_v1(&msg.encode().unwrap());
        let (corr, back) = WireMessage::decode_corr(&v1).expect("v1 frame decodes");
        prop_assert_eq!(corr, 0);
        prop_assert_eq!(&back, &msg);
        let mut cursor = std::io::Cursor::new(v1.clone());
        match pds_proto::read_frame(&mut cursor).expect("v1 frame streams") {
            pds_proto::ReadFrame::Frame(bytes) => {
                prop_assert_eq!(bytes.as_ref(), v1.as_slice());
                prop_assert_eq!(WireMessage::decode(&bytes).unwrap(), msg);
            }
            other => prop_assert!(false, "expected a frame, got {:?}", other),
        }
        // Truncation totality holds for the legacy layout too.
        for cut in 0..v1.len() {
            prop_assert!(matches!(
                WireMessage::decode(&v1[..cut]),
                Err(PdsError::Wire(_))
            ));
        }
    }

    #[test]
    fn random_garbage_never_panics(seed in proptest::arbitrary::any::<u64>()) {
        let mut rng = pds_common::rng::seeded_rng(seed);
        let garbage = arb_blob(&mut rng, 256);
        // Random bytes essentially never form a valid CRC-framed message;
        // the property under test is totality (Err, not panic).
        let _ = WireMessage::decode(&garbage);
        let mut near_miss = arb_message(seed).encode().unwrap();
        near_miss.extend_from_slice(&garbage);
        prop_assert!(matches!(
            WireMessage::decode(&near_miss),
            Err(PdsError::Wire(_))
        ));
    }
}
