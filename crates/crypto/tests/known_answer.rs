//! Known-answer tests pinning the from-scratch primitives to the official
//! standards vectors: AES-128 against FIPS-197, SHA-256 against the
//! FIPS-180 / NIST CAVP examples, HMAC-SHA-256 against RFC 4231, plus a
//! property test that the Feistel PRP really is a permutation.

use pds_crypto::aes::Aes128;
use pds_crypto::hmac::hmac_sha256;
use pds_crypto::prp::FeistelPrp;
use pds_crypto::sha256::sha256;
use pds_crypto::Key128;
use proptest::prelude::*;

fn unhex(s: &str) -> Vec<u8> {
    assert!(s.len() % 2 == 0, "odd hex literal {s:?}");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("bad hex"))
        .collect()
}

fn unhex16(s: &str) -> [u8; 16] {
    unhex(s).try_into().expect("expected 16 bytes")
}

#[test]
fn aes128_fips197_appendix_c1() {
    // FIPS-197 Appendix C.1: AES-128 example vector.
    let cipher = Aes128::new(&Key128(unhex16("000102030405060708090a0b0c0d0e0f")));
    let plaintext = unhex16("00112233445566778899aabbccddeeff");
    let ciphertext = unhex16("69c4e0d86a7b0430d8cdb78070b4c55a");
    assert_eq!(cipher.encrypt_block(&plaintext), ciphertext);
    assert_eq!(cipher.decrypt_block(&ciphertext), plaintext);
}

#[test]
fn aes128_fips197_appendix_b() {
    // FIPS-197 Appendix B: the worked cipher example.
    let cipher = Aes128::new(&Key128(unhex16("2b7e151628aed2a6abf7158809cf4f3c")));
    let plaintext = unhex16("3243f6a8885a308d313198a2e0370734");
    let ciphertext = unhex16("3925841d02dc09fbdc118597196a0b32");
    assert_eq!(cipher.encrypt_block(&plaintext), ciphertext);
    assert_eq!(cipher.decrypt_block(&ciphertext), plaintext);
}

#[test]
fn sha256_nist_vectors() {
    // FIPS-180-4 examples plus the empty-message and million-'a' CAVP cases.
    let cases: &[(&[u8], &str)] = &[
        (
            b"abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            b"",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
    ];
    for (message, digest_hex) in cases {
        assert_eq!(
            sha256(message).to_vec(),
            unhex(digest_hex),
            "SHA-256 mismatch for {:?}",
            String::from_utf8_lossy(message)
        );
    }

    let million_a = vec![b'a'; 1_000_000];
    assert_eq!(
        sha256(&million_a).to_vec(),
        unhex("cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"),
        "SHA-256 mismatch for one million 'a'"
    );
}

#[test]
fn hmac_sha256_rfc4231_vectors() {
    // RFC 4231 test cases 1, 2, 3 and 6 (6 exercises a key longer than the
    // block size, i.e. the hash-the-key-first path).
    let tc1_key = vec![0x0bu8; 20];
    let tc3_key = vec![0xaau8; 20];
    let tc3_data = vec![0xddu8; 50];
    let tc6_key = vec![0xaau8; 131];
    let cases: &[(&[u8], &[u8], &str)] = &[
        (
            &tc1_key,
            b"Hi There",
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
        ),
        (
            b"Jefe",
            b"what do ya want for nothing?",
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
        ),
        (
            &tc3_key,
            &tc3_data,
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
        ),
        (
            &tc6_key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
        ),
    ];
    for (i, (key, data, tag_hex)) in cases.iter().enumerate() {
        assert_eq!(
            hmac_sha256(key, data).to_vec(),
            unhex(tag_hex),
            "HMAC-SHA-256 mismatch on RFC 4231 case index {i}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The Feistel PRP is a bijection on its domain: `invert` undoes
    /// `permute` for every point, and the image is exactly the domain.
    #[test]
    fn feistel_prp_is_a_permutation(seed in any::<u64>(), domain_size in 1u64..1500) {
        let prp = FeistelPrp::new(Key128::derive(seed, "prp-kat"), domain_size);
        let mut image = vec![false; domain_size as usize];
        for x in 0..domain_size {
            let y = prp.permute(x);
            prop_assert!(y < domain_size, "permute({x}) = {y} escapes the domain");
            prop_assert_eq!(prp.invert(y), x);
            prop_assert!(!image[y as usize], "permute is not injective at {}", x);
            image[y as usize] = true;
        }
    }
}
