//! HMAC-SHA-256 (RFC 2104 / FIPS-198), with a precomputed-key form.
//!
//! [`hmac_sha256`] re-derives the padded key block and absorbs both pads on
//! every call — fine for one-off MACs, but the ciphers and PRFs run one MAC
//! per bin operation under a key that never changes.  [`HmacKey`] hoists
//! that key schedule: it absorbs `ipad` and `opad` into two SHA-256
//! midstates once, and each [`HmacKey::mac`] just clones the midstates and
//! hashes the data (the compression function is run over the pads zero
//! times per call instead of twice).

use crate::sha256::{sha256, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// A precomputed HMAC-SHA-256 key schedule: the inner and outer SHA-256
/// midstates with their key pads already absorbed.  Build once per key,
/// then [`Self::mac`] per message.
#[derive(Clone)]
pub struct HmacKey {
    inner: Sha256,
    outer: Sha256,
}

impl HmacKey {
    /// Derives the padded key block and absorbs both pads.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = sha256(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0x36u8; BLOCK_LEN];
        let mut opad = [0x5cu8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] ^= key_block[i];
            opad[i] ^= key_block[i];
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacKey { inner, outer }
    }

    /// HMAC-SHA-256 of `data` under this precomputed key.
    pub fn mac(&self, data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut inner = self.inner.clone();
        inner.update(data);
        let inner_digest = inner.finalize();
        let mut outer = self.outer.clone();
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Computes HMAC-SHA-256 of `data` under `key` (one-shot form).
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    HmacKey::new(key).mac(data)
}

/// Constant-length tag comparison. (Not constant-time; the simulation does
/// not defend against timing adversaries.)
pub fn verify(tag: &[u8], expected: &[u8; DIGEST_LEN]) -> bool {
    tag.len() == DIGEST_LEN && tag == expected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let data = b"Hi There";
        assert_eq!(
            hex(&hmac_sha256(&key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231 test case 6 (key longer than a block).
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let data = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hex(&hmac_sha256(&key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn precomputed_key_matches_one_shot_for_all_key_shapes() {
        for key in [
            b"".as_slice(),
            b"Jefe".as_slice(),
            &[0xaau8; 64],
            &[0x0bu8; 131], // longer than a block: hashed first
        ] {
            let schedule = HmacKey::new(key);
            for data in [b"".as_slice(), b"Hi There", &[0xddu8; 200]] {
                assert_eq!(schedule.mac(data), hmac_sha256(key, data));
            }
            // A reused schedule is stateless across calls.
            assert_eq!(schedule.mac(b"twice"), schedule.mac(b"twice"));
        }
    }

    #[test]
    fn verify_accepts_correct_and_rejects_wrong() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify(&tag, &tag));
        let mut wrong = tag;
        wrong[0] ^= 1;
        assert!(!verify(&wrong, &tag));
        assert!(!verify(&tag[..31], &tag));
    }
}
