//! HMAC-SHA-256 (RFC 2104 / FIPS-198).

use crate::sha256::{sha256, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Computes HMAC-SHA-256 of `data` under `key`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let digest = sha256(key);
        key_block[..DIGEST_LEN].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-length tag comparison. (Not constant-time; the simulation does
/// not defend against timing adversaries.)
pub fn verify(tag: &[u8], expected: &[u8; DIGEST_LEN]) -> bool {
    tag.len() == DIGEST_LEN && tag == expected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let data = b"Hi There";
        assert_eq!(
            hex(&hmac_sha256(&key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231 test case 6 (key longer than a block).
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let data = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hex(&hmac_sha256(&key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_correct_and_rejects_wrong() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify(&tag, &tag));
        let mut wrong = tag;
        wrong[0] ^= 1;
        assert!(!verify(&wrong, &tag));
        assert!(!verify(&tag[..31], &tag));
    }
}
