//! Small-domain pseudo-random permutations.
//!
//! Algorithm 1 of the paper *permutes all sensitive values* before assigning
//! them to bins, and keeps the permutation secret from the adversary (the
//! footnote explains this stops the adversary re-deriving the bin layout from
//! ordered identifiers).  [`FeistelPrp`] provides a keyed permutation over an
//! arbitrary domain `0..n` using a balanced Feistel network with cycle
//! walking.

use crate::prf::Prf;
use crate::Key128;

/// A keyed pseudo-random permutation over the domain `0..domain_size`.
///
/// Construction: 4-round balanced Feistel over `2k`-bit strings where
/// `2k >= ceil(log2(domain_size))`, with cycle-walking to stay inside the
/// domain. Inversion runs the rounds backwards.
#[derive(Clone)]
pub struct FeistelPrp {
    prf: Prf,
    domain_size: u64,
    half_bits: u32,
}

const ROUNDS: u64 = 4;

impl FeistelPrp {
    /// Creates a PRP over `0..domain_size` keyed by `key`.
    ///
    /// # Panics
    /// Panics if `domain_size == 0`.
    pub fn new(key: Key128, domain_size: u64) -> Self {
        assert!(domain_size > 0, "PRP domain must be non-empty");
        let bits = 64 - (domain_size - 1).leading_zeros();
        // Feistel needs an even split; at least 1 bit per half.
        let half_bits = bits.div_ceil(2).max(1);
        FeistelPrp {
            prf: Prf::new(key),
            domain_size,
            half_bits,
        }
    }

    /// The number of values in the permutation's domain.
    pub fn domain_size(&self) -> u64 {
        self.domain_size
    }

    fn round(&self, round: u64, right: u64) -> u64 {
        let mut input = [0u8; 16];
        input[..8].copy_from_slice(&round.to_be_bytes());
        input[8..].copy_from_slice(&right.to_be_bytes());
        self.prf.eval_u64(&input) & ((1u64 << self.half_bits) - 1)
    }

    fn feistel_forward(&self, x: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut left = (x >> self.half_bits) & mask;
        let mut right = x & mask;
        for r in 0..ROUNDS {
            let new_left = right;
            let new_right = left ^ self.round(r, right);
            left = new_left;
            right = new_right;
        }
        (left << self.half_bits) | right
    }

    fn feistel_backward(&self, y: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut left = (y >> self.half_bits) & mask;
        let mut right = y & mask;
        for r in (0..ROUNDS).rev() {
            let prev_right = left;
            let prev_left = right ^ self.round(r, prev_right);
            left = prev_left;
            right = prev_right;
        }
        (left << self.half_bits) | right
    }

    /// Applies the permutation to `x`.
    ///
    /// # Panics
    /// Panics if `x >= domain_size`.
    pub fn permute(&self, x: u64) -> u64 {
        assert!(x < self.domain_size, "value outside PRP domain");
        // Cycle walking: keep applying the Feistel permutation over the
        // enclosing power-of-two domain until we land inside the domain.
        let mut y = self.feistel_forward(x);
        while y >= self.domain_size {
            y = self.feistel_forward(y);
        }
        y
    }

    /// Inverts the permutation.
    ///
    /// # Panics
    /// Panics if `y >= domain_size`.
    pub fn invert(&self, y: u64) -> u64 {
        assert!(y < self.domain_size, "value outside PRP domain");
        let mut x = self.feistel_backward(y);
        while x >= self.domain_size {
            x = self.feistel_backward(x);
        }
        x
    }

    /// Returns the full permutation of `0..domain_size` as a vector
    /// (`result[i] = permute(i)`). Only sensible for small domains.
    pub fn as_permutation_vec(&self) -> Vec<u64> {
        (0..self.domain_size).map(|i| self.permute(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn is_a_permutation_small_domains() {
        for n in [1u64, 2, 3, 7, 16, 41, 100, 257] {
            let prp = FeistelPrp::new(Key128::derive(n, "prp"), n);
            let image: HashSet<u64> = (0..n).map(|i| prp.permute(i)).collect();
            assert_eq!(image.len() as u64, n, "domain {n}");
            assert!(image.iter().all(|&y| y < n));
        }
    }

    #[test]
    fn invert_roundtrip() {
        let n = 1000;
        let prp = FeistelPrp::new(Key128::derive(9, "prp"), n);
        for x in 0..n {
            assert_eq!(prp.invert(prp.permute(x)), x);
        }
    }

    #[test]
    fn different_keys_different_permutations() {
        let n = 64;
        let a = FeistelPrp::new(Key128::derive(1, "prp"), n);
        let b = FeistelPrp::new(Key128::derive(2, "prp"), n);
        assert_ne!(a.as_permutation_vec(), b.as_permutation_vec());
    }

    #[test]
    #[should_panic(expected = "outside PRP domain")]
    fn rejects_out_of_domain() {
        let prp = FeistelPrp::new(Key128::derive(1, "prp"), 10);
        let _ = prp.permute(10);
    }

    proptest! {
        #[test]
        fn permute_invert_property(seed in any::<u64>(), n in 1u64..10_000, x in any::<u64>()) {
            let x = x % n;
            let prp = FeistelPrp::new(Key128::derive(seed, "prp"), n);
            let y = prp.permute(x);
            prop_assert!(y < n);
            prop_assert_eq!(prp.invert(y), x);
        }
    }
}
