//! Keyed pseudo-random function built on HMAC-SHA-256.
//!
//! Used for deterministic equality tags (`pds-crypto::det`), the Arx-style
//! counter tokens and anywhere a keyed, unpredictable-but-repeatable mapping
//! from values to byte strings is needed.

use crate::hmac::HmacKey;
use crate::Key128;

/// A pseudo-random function keyed by a [`Key128`].
///
/// The HMAC key schedule (pad midstates) is expanded once at construction,
/// not per evaluation — a tag-generation loop over a bin's values pays only
/// the data hashing.
#[derive(Clone)]
pub struct Prf {
    key: HmacKey,
}

impl Prf {
    /// Creates a PRF instance from a key.
    pub fn new(key: Key128) -> Self {
        Prf {
            key: HmacKey::new(key.bytes()),
        }
    }

    /// Evaluates the PRF on arbitrary input, returning 32 bytes.
    pub fn eval(&self, input: &[u8]) -> [u8; 32] {
        self.key.mac(input)
    }

    /// Evaluates the PRF and truncates the result to a `u64`.
    pub fn eval_u64(&self, input: &[u8]) -> u64 {
        let out = self.eval(input);
        u64::from_be_bytes(out[..8].try_into().expect("8 bytes"))
    }

    /// Evaluates the PRF on `(input, counter)`, useful for per-occurrence
    /// tokens (Arx encrypts the i-th occurrence of value v as a token of
    /// `(v, i)`).
    pub fn eval_counter(&self, input: &[u8], counter: u64) -> [u8; 32] {
        let mut buf = Vec::with_capacity(input.len() + 8);
        buf.extend_from_slice(input);
        buf.extend_from_slice(&counter.to_be_bytes());
        self.eval(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let prf = Prf::new(Key128::derive(1, "prf"));
        assert_eq!(prf.eval(b"hello"), prf.eval(b"hello"));
        assert_ne!(prf.eval(b"hello"), prf.eval(b"world"));
    }

    #[test]
    fn key_separation() {
        let a = Prf::new(Key128::derive(1, "prf"));
        let b = Prf::new(Key128::derive(2, "prf"));
        assert_ne!(a.eval(b"x"), b.eval(b"x"));
    }

    #[test]
    fn counter_changes_output() {
        let prf = Prf::new(Key128::derive(1, "prf"));
        assert_ne!(prf.eval_counter(b"v", 0), prf.eval_counter(b"v", 1));
        assert_eq!(prf.eval_counter(b"v", 3), prf.eval_counter(b"v", 3));
    }

    #[test]
    fn eval_u64_consistent_with_eval() {
        let prf = Prf::new(Key128::derive(5, "prf"));
        let full = prf.eval(b"abc");
        let short = prf.eval_u64(b"abc");
        assert_eq!(short, u64::from_be_bytes(full[..8].try_into().unwrap()));
    }
}
