//! Shamir secret sharing over the Mersenne prime field GF(2^61 − 1).
//!
//! The paper's "strong but slow" category includes secret-sharing-based
//! techniques (Shamir [4], Emekçi et al. [5]).  The secret-sharing back-end
//! in `pds-systems` shares every attribute value across `n` simulated
//! non-colluding servers; a selection query is answered by reconstructing
//! from `k` shares at the owner.  This module supplies share/reconstruct and
//! the finite-field arithmetic they need.

use pds_common::{PdsError, Result};
use rand::Rng;

/// The field modulus: the Mersenne prime 2^61 − 1.
pub const MODULUS: u64 = (1u64 << 61) - 1;

/// Reduces an arbitrary u128 product into the field.
fn reduce128(x: u128) -> u64 {
    // Fast reduction modulo 2^61-1: fold the high bits down twice.
    let lo = (x & (MODULUS as u128)) as u64;
    let hi = (x >> 61) as u64;
    let mut r = lo.wrapping_add(hi);
    if r >= MODULUS {
        r -= MODULUS;
    }
    // One more fold covers the carry case.
    if r >= MODULUS {
        r -= MODULUS;
    }
    r
}

/// Addition in GF(2^61−1).
pub fn add(a: u64, b: u64) -> u64 {
    let s = a as u128 + b as u128;
    reduce128(s)
}

/// Subtraction in GF(2^61−1).
pub fn sub(a: u64, b: u64) -> u64 {
    add(a, MODULUS - (b % MODULUS))
}

/// Multiplication in GF(2^61−1).
pub fn mul(a: u64, b: u64) -> u64 {
    reduce128(a as u128 * b as u128)
}

/// Exponentiation by squaring.
pub fn pow(mut base: u64, mut exp: u64) -> u64 {
    let mut acc = 1u64;
    base %= MODULUS;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul(acc, base);
        }
        base = mul(base, base);
        exp >>= 1;
    }
    acc
}

/// Multiplicative inverse via Fermat's little theorem.
pub fn inv(a: u64) -> Result<u64> {
    if a % MODULUS == 0 {
        return Err(PdsError::Crypto("division by zero in GF(2^61-1)".into()));
    }
    Ok(pow(a, MODULUS - 2))
}

/// A single Shamir share: the evaluation point `x` and the value `y = f(x)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Share {
    /// Evaluation point (server index, 1-based).
    pub x: u64,
    /// Share value.
    pub y: u64,
}

/// Splits `secret` into `n` shares with reconstruction threshold `k`.
pub fn share<R: Rng>(secret: u64, k: usize, n: usize, rng: &mut R) -> Result<Vec<Share>> {
    if k == 0 || n == 0 || k > n {
        return Err(PdsError::Config(format!(
            "invalid sharing parameters k={k}, n={n}"
        )));
    }
    if n as u64 >= MODULUS {
        return Err(PdsError::Config("too many shares for field size".into()));
    }
    // Random polynomial of degree k-1 with constant term = secret.
    let mut coeffs = Vec::with_capacity(k);
    coeffs.push(secret % MODULUS);
    for _ in 1..k {
        coeffs.push(rng.gen_range(0..MODULUS));
    }
    let shares = (1..=n as u64)
        .map(|x| {
            // Horner evaluation.
            let mut y = 0u64;
            for &c in coeffs.iter().rev() {
                y = add(mul(y, x), c);
            }
            Share { x, y }
        })
        .collect();
    Ok(shares)
}

/// Reconstructs the secret from at least `k` shares using Lagrange
/// interpolation at zero.
pub fn reconstruct(shares: &[Share]) -> Result<u64> {
    if shares.is_empty() {
        return Err(PdsError::Crypto("no shares provided".into()));
    }
    // Check for duplicate evaluation points.
    for i in 0..shares.len() {
        for j in i + 1..shares.len() {
            if shares[i].x == shares[j].x {
                return Err(PdsError::Crypto("duplicate share points".into()));
            }
        }
    }
    let mut secret = 0u64;
    for (i, si) in shares.iter().enumerate() {
        let mut num = 1u64;
        let mut den = 1u64;
        for (j, sj) in shares.iter().enumerate() {
            if i == j {
                continue;
            }
            num = mul(num, sj.x % MODULUS);
            den = mul(den, sub(sj.x, si.x));
        }
        let lagrange = mul(num, inv(den)?);
        secret = add(secret, mul(si.y, lagrange));
    }
    Ok(secret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_common::rng::seeded_rng;
    use proptest::prelude::*;

    #[test]
    fn field_arithmetic_basics() {
        assert_eq!(add(MODULUS - 1, 1), 0);
        assert_eq!(sub(0, 1), MODULUS - 1);
        assert_eq!(mul(2, 3), 6);
        assert_eq!(mul(inv(7).unwrap(), 7), 1);
        // 2^61 ≡ 1 (mod 2^61 - 1).
        assert_eq!(pow(2, 61), 1);
    }

    #[test]
    fn pow_identity() {
        // Fermat: a^(p-1) = 1 for a != 0.
        for a in [1u64, 2, 3, 12345, MODULUS - 1] {
            assert_eq!(pow(a, MODULUS - 1), 1, "a={a}");
        }
    }

    #[test]
    fn share_and_reconstruct() {
        let mut rng = seeded_rng(1);
        let secret = 123_456_789;
        let shares = share(secret, 3, 5, &mut rng).unwrap();
        assert_eq!(shares.len(), 5);
        // Any 3 shares reconstruct.
        assert_eq!(reconstruct(&shares[0..3]).unwrap(), secret);
        assert_eq!(reconstruct(&shares[2..5]).unwrap(), secret);
        assert_eq!(
            reconstruct(&[shares[0], shares[2], shares[4]]).unwrap(),
            secret
        );
        // All 5 also reconstruct.
        assert_eq!(reconstruct(&shares).unwrap(), secret);
    }

    #[test]
    fn fewer_than_threshold_shares_do_not_determine_secret() {
        // With k=2, a single share is consistent with every possible secret;
        // we verify the weaker (but testable) property that reconstructing
        // from one share does not generally yield the secret.
        let mut rng = seeded_rng(2);
        let secret = 42;
        let mut mismatches = 0;
        for _ in 0..20 {
            let shares = share(secret, 2, 3, &mut rng).unwrap();
            if reconstruct(&shares[0..1]).unwrap() != secret {
                mismatches += 1;
            }
        }
        assert!(mismatches > 0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut rng = seeded_rng(3);
        assert!(share(1, 0, 3, &mut rng).is_err());
        assert!(share(1, 4, 3, &mut rng).is_err());
        assert!(reconstruct(&[]).is_err());
        assert!(reconstruct(&[Share { x: 1, y: 2 }, Share { x: 1, y: 3 }]).is_err());
        assert!(inv(0).is_err());
    }

    proptest! {
        #[test]
        fn reconstruct_property(secret in 0u64..MODULUS, seed in any::<u64>(),
                                k in 1usize..6, extra in 0usize..4) {
            let n = k + extra;
            let mut rng = seeded_rng(seed);
            let shares = share(secret, k, n, &mut rng).unwrap();
            prop_assert_eq!(reconstruct(&shares[..k]).unwrap(), secret);
        }

        #[test]
        fn mul_commutes_and_associates(a in 0u64..MODULUS, b in 0u64..MODULUS, c in 0u64..MODULUS) {
            prop_assert_eq!(mul(a, b), mul(b, a));
            prop_assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
            prop_assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        }
    }
}
