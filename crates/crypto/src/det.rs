//! Deterministic encryption / equality tags.
//!
//! Deterministic encryption lets the cloud index and match ciphertexts by
//! equality, which is exactly why it leaks frequency information (Naveed et
//! al. [11] in the paper).  The CryptDB-style baseline in `pds-systems` uses
//! [`DeterministicTagger`] so the adversary crate can mount the
//! frequency-count attack against it and we can show that QB removes the
//! leakage.

use crate::prf::Prf;
use crate::Key128;

/// Length of a deterministic equality tag in bytes.
pub const DET_TAG_LEN: usize = 16;

/// Produces deterministic, keyed equality tags for attribute values.
#[derive(Clone)]
pub struct DeterministicTagger {
    prf: Prf,
}

impl DeterministicTagger {
    /// Creates a tagger keyed by `key`.
    pub fn new(key: Key128) -> Self {
        DeterministicTagger { prf: Prf::new(key) }
    }

    /// Creates a tagger from a master seed.
    pub fn from_seed(seed: u64) -> Self {
        Self::new(Key128::derive(seed, "det-tag"))
    }

    /// The deterministic tag of a plaintext value encoding.
    pub fn tag(&self, plaintext: &[u8]) -> [u8; DET_TAG_LEN] {
        let full = self.prf.eval(plaintext);
        let mut out = [0u8; DET_TAG_LEN];
        out.copy_from_slice(&full[..DET_TAG_LEN]);
        out
    }

    /// Tag as a `Vec<u8>` for storing in [`pds_common::Value::Bytes`].
    pub fn tag_vec(&self, plaintext: &[u8]) -> Vec<u8> {
        self.tag(plaintext).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_equal_inputs_equal_tags() {
        let t = DeterministicTagger::from_seed(1);
        assert_eq!(t.tag(b"E259"), t.tag(b"E259"));
        assert_ne!(t.tag(b"E259"), t.tag(b"E101"));
    }

    #[test]
    fn keyed_tags_differ_across_keys() {
        let a = DeterministicTagger::from_seed(1);
        let b = DeterministicTagger::from_seed(2);
        assert_ne!(a.tag(b"E259"), b.tag(b"E259"));
    }

    #[test]
    fn tag_vec_matches_tag() {
        let t = DeterministicTagger::from_seed(7);
        assert_eq!(t.tag_vec(b"x"), t.tag(b"x").to_vec());
        assert_eq!(t.tag_vec(b"x").len(), DET_TAG_LEN);
    }
}
