//! A toy order-preserving encoding (OPE).
//!
//! The paper cites Naveed et al. [11] and Kellaris et al. [12]: deterministic
//! and order-preserving encryption leak enough for frequency/ordering attacks
//! on low-entropy columns.  This module provides a deliberately simple
//! stateful OPE (random monotone mapping into a larger integer domain) so the
//! adversary crate can demonstrate those attacks against an OPE baseline and
//! contrast them with QB-protected execution.

use std::collections::BTreeMap;

use pds_common::{PdsError, Result};
use rand::Rng;

/// A mutable order-preserving encoder over `i64` plaintexts.
///
/// Plaintexts are mapped to ciphertexts such that `p1 < p2` implies
/// `enc(p1) < enc(p2)`.  The mapping is built lazily: when a new plaintext is
/// encoded it receives a ciphertext drawn uniformly from the gap between its
/// neighbours' ciphertexts.  If a gap is exhausted encoding fails (real
/// mutable OPE schemes rebalance; the toy version simply reports the error,
/// which is fine for the domain sizes used in experiments).
#[derive(Debug, Clone)]
pub struct OpeEncoder {
    mapping: BTreeMap<i64, i64>,
    ciphertext_space: (i64, i64),
}

impl OpeEncoder {
    /// Creates an encoder with the given ciphertext space.
    pub fn new(ciphertext_lo: i64, ciphertext_hi: i64) -> Self {
        OpeEncoder {
            mapping: BTreeMap::new(),
            ciphertext_space: (ciphertext_lo, ciphertext_hi),
        }
    }

    /// Creates an encoder with a comfortably large default ciphertext space.
    pub fn with_default_space() -> Self {
        Self::new(0, i64::MAX / 2)
    }

    /// Number of distinct plaintexts encoded so far.
    pub fn len(&self) -> usize {
        self.mapping.len()
    }

    /// Whether no plaintext has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.mapping.is_empty()
    }

    /// Encodes a plaintext, inserting it into the mapping if new.
    pub fn encode<R: Rng>(&mut self, plaintext: i64, rng: &mut R) -> Result<i64> {
        if let Some(&ct) = self.mapping.get(&plaintext) {
            return Ok(ct);
        }
        let lower = self
            .mapping
            .range(..plaintext)
            .next_back()
            .map(|(_, &ct)| ct)
            .unwrap_or(self.ciphertext_space.0);
        let upper = self
            .mapping
            .range(plaintext..)
            .next()
            .map(|(_, &ct)| ct)
            .unwrap_or(self.ciphertext_space.1);
        if upper - lower < 2 {
            return Err(PdsError::Crypto(format!(
                "OPE ciphertext space exhausted between {lower} and {upper}"
            )));
        }
        let ct = rng.gen_range(lower + 1..upper);
        self.mapping.insert(plaintext, ct);
        Ok(ct)
    }

    /// Looks up the ciphertext of an already-encoded plaintext.
    pub fn lookup(&self, plaintext: i64) -> Option<i64> {
        self.mapping.get(&plaintext).copied()
    }

    /// Decodes a ciphertext by reverse lookup (the owner keeps the mapping).
    pub fn decode(&self, ciphertext: i64) -> Option<i64> {
        self.mapping
            .iter()
            .find(|(_, &ct)| ct == ciphertext)
            .map(|(&pt, _)| pt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_common::rng::seeded_rng;

    #[test]
    fn preserves_order() {
        let mut enc = OpeEncoder::with_default_space();
        let mut rng = seeded_rng(1);
        let plaintexts = [50i64, 10, 30, 20, 40, 60, 5];
        let cts: Vec<(i64, i64)> = plaintexts
            .iter()
            .map(|&p| (p, enc.encode(p, &mut rng).unwrap()))
            .collect();
        for (p1, c1) in &cts {
            for (p2, c2) in &cts {
                assert_eq!(p1 < p2, c1 < c2, "order must be preserved");
            }
        }
    }

    #[test]
    fn deterministic_for_repeated_plaintexts() {
        let mut enc = OpeEncoder::with_default_space();
        let mut rng = seeded_rng(1);
        let a = enc.encode(42, &mut rng).unwrap();
        let b = enc.encode(42, &mut rng).unwrap();
        assert_eq!(a, b);
        assert_eq!(enc.len(), 1);
    }

    #[test]
    fn decode_reverses_encode() {
        let mut enc = OpeEncoder::with_default_space();
        let mut rng = seeded_rng(2);
        let ct = enc.encode(7, &mut rng).unwrap();
        assert_eq!(enc.decode(ct), Some(7));
        assert_eq!(enc.decode(ct + 1), None);
        assert_eq!(enc.lookup(7), Some(ct));
        assert_eq!(enc.lookup(8), None);
    }

    #[test]
    fn space_exhaustion_reported() {
        let mut enc = OpeEncoder::new(0, 4);
        let mut rng = seeded_rng(3);
        // Only 3 interior ciphertexts exist (1,2,3); the 4th insert between
        // existing neighbours must eventually fail.
        let mut failures = 0;
        for p in 0..10 {
            if enc.encode(p, &mut rng).is_err() {
                failures += 1;
            }
        }
        assert!(failures > 0);
    }
}
