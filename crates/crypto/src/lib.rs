//! # pds-crypto
//!
//! The cryptographic substrate for the *Partitioned Data Security* (ICDE
//! 2019) reproduction, written from scratch so the workspace has no external
//! crypto dependencies.
//!
//! The paper treats the underlying cryptographic technique as a pluggable
//! component ("QB can be built on top of any cryptographic technique").  This
//! crate supplies every primitive the rest of the workspace composes with:
//!
//! * [`aes`] — AES-128 block cipher (FIPS-197), verified against the standard
//!   test vectors.
//! * [`ctr`] — counter mode over the block cipher.
//! * [`sha256`] / [`hmac`] — SHA-256 (FIPS-180-4) and HMAC-SHA-256.
//! * [`prf`] / [`prp`] — a keyed PRF and a small-domain Feistel PRP (used for
//!   the secret permutation of sensitive values in Algorithm 1).
//! * [`nondet`] — the non-deterministic (IND-CPA style, randomised)
//!   authenticated encryption the paper assumes for sensitive tuples.
//! * [`det`] — deterministic encryption / equality tags, used by the
//!   CryptDB-style baseline that QB is shown to strengthen.
//! * [`ope`] — a toy mutable order-preserving encoding, used only to
//!   demonstrate the frequency/ordering attacks of [11], [12].
//! * [`shamir`] — Shamir secret sharing over a 61-bit prime field, the basis
//!   of the secret-sharing back-end ([5] in the paper).
//! * [`dpf`] — two-server distributed point functions ([6] in the paper),
//!   implemented as XOR shares of the point-function truth table (functionally
//!   equivalent to DPF for the simulated cloud; succinctness is not required
//!   by any experiment).
//!
//! None of this code is meant for production use — it exists to make the
//! reproduction self-contained and to give the cost models real work to
//! measure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod ctr;
pub mod det;
pub mod dpf;
pub mod hmac;
pub mod nondet;
pub mod ope;
pub mod prf;
pub mod prp;
pub mod sha256;
pub mod shamir;

pub use aes::Aes128;
pub use det::DeterministicTagger;
pub use nondet::{Ciphertext, NonDetCipher};
pub use prf::Prf;
pub use prp::FeistelPrp;

/// A 128-bit symmetric key shared by the owner-side primitives.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Key128(pub [u8; 16]);

impl Key128 {
    /// Derives a key deterministically from a seed and a domain-separation
    /// label (e.g. `"enc"`, `"mac"`, `"prp"`).
    pub fn derive(seed: u64, label: &str) -> Self {
        let mut input = Vec::with_capacity(8 + label.len());
        input.extend_from_slice(&seed.to_be_bytes());
        input.extend_from_slice(label.as_bytes());
        let digest = sha256::sha256(&input);
        let mut k = [0u8; 16];
        k.copy_from_slice(&digest[..16]);
        Key128(k)
    }

    /// Generates a random key from the provided RNG.
    pub fn random<R: rand::Rng>(rng: &mut R) -> Self {
        let mut k = [0u8; 16];
        rng.fill(&mut k);
        Key128(k)
    }

    /// Raw key bytes.
    pub fn bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

impl std::fmt::Debug for Key128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "Key128(****)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic_and_label_separated() {
        let a = Key128::derive(7, "enc");
        let b = Key128::derive(7, "enc");
        let c = Key128::derive(7, "mac");
        let d = Key128::derive(8, "enc");
        assert_eq!(a, b);
        assert_ne!(a.0, c.0);
        assert_ne!(a.0, d.0);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let k = Key128::derive(1, "enc");
        assert_eq!(format!("{k:?}"), "Key128(****)");
    }

    #[test]
    fn random_keys_differ() {
        let mut rng = pds_common::rng::seeded_rng(3);
        let a = Key128::random(&mut rng);
        let b = Key128::random(&mut rng);
        assert_ne!(a.0, b.0);
    }
}
