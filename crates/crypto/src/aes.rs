//! AES-128 block cipher (FIPS-197), table-free byte-oriented implementation.
//!
//! This is a straightforward, readable implementation: the S-box is a static
//! table but MixColumns and the key schedule are computed directly.  It is
//! *not* constant-time and must not be used outside this simulation.

use crate::Key128;

/// The AES S-box.
#[rustfmt::skip]
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse S-box (computed once at first use).
fn inv_sbox() -> &'static [u8; 256] {
    use std::sync::OnceLock;
    static INV: OnceLock<[u8; 256]> = OnceLock::new();
    INV.get_or_init(|| {
        let mut inv = [0u8; 256];
        for (i, &s) in SBOX.iter().enumerate() {
            inv[s as usize] = i as u8;
        }
        inv
    })
}

/// Multiplication in GF(2^8) with the AES reduction polynomial x^8+x^4+x^3+x+1.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

const ROUNDS: usize = 10;

/// AES-128 with a precomputed key schedule.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; ROUNDS + 1],
}

impl Aes128 {
    /// Expands the key schedule from a 128-bit key.
    pub fn new(key: &Key128) -> Self {
        const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];
        // 44 words of 4 bytes.
        let mut w = [[0u8; 4]; 44];
        for (i, word) in w.iter_mut().enumerate().take(4) {
            word.copy_from_slice(&key.0[i * 4..i * 4 + 4]);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; ROUNDS + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes128 { round_keys }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        let inv = inv_sbox();
        for b in state.iter_mut() {
            *b = inv[*b as usize];
        }
    }

    /// State layout: column-major, state[r + 4c] is row r, column c.
    fn shift_rows(state: &mut [u8; 16]) {
        // Row 1: shift left by 1.
        let t = state[1];
        state[1] = state[5];
        state[5] = state[9];
        state[9] = state[13];
        state[13] = t;
        // Row 2: shift left by 2.
        state.swap(2, 10);
        state.swap(6, 14);
        // Row 3: shift left by 3 (right by 1).
        let t = state[15];
        state[15] = state[11];
        state[11] = state[7];
        state[7] = state[3];
        state[3] = t;
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        // Row 1: shift right by 1.
        let t = state[13];
        state[13] = state[9];
        state[9] = state[5];
        state[5] = state[1];
        state[1] = t;
        // Row 2.
        state.swap(2, 10);
        state.swap(6, 14);
        // Row 3: shift right by 3 (left by 1).
        let t = state[3];
        state[3] = state[7];
        state[7] = state[11];
        state[11] = state[15];
        state[15] = t;
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
            state[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
            state[4 * c + 1] =
                gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
            state[4 * c + 2] =
                gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
            state[4 * c + 3] =
                gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
        }
    }

    /// Encrypts a single 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        Self::add_round_key(&mut state, &self.round_keys[0]);
        for r in 1..ROUNDS {
            Self::sub_bytes(&mut state);
            Self::shift_rows(&mut state);
            Self::mix_columns(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[r]);
        }
        Self::sub_bytes(&mut state);
        Self::shift_rows(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[ROUNDS]);
        state
    }

    /// Decrypts a single 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        Self::add_round_key(&mut state, &self.round_keys[ROUNDS]);
        for r in (1..ROUNDS).rev() {
            Self::inv_shift_rows(&mut state);
            Self::inv_sub_bytes(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[r]);
            Self::inv_mix_columns(&mut state);
        }
        Self::inv_shift_rows(&mut state);
        Self::inv_sub_bytes(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[0]);
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// FIPS-197 Appendix B test vector.
    #[test]
    fn fips197_appendix_b() {
        let key = Key128([
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ]);
        let plaintext: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected: [u8; 16] = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt_block(&plaintext), expected);
        assert_eq!(aes.decrypt_block(&expected), plaintext);
    }

    /// FIPS-197 Appendix C.1 test vector.
    #[test]
    fn fips197_appendix_c1() {
        let key = Key128([
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ]);
        let plaintext: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt_block(&plaintext), expected);
        assert_eq!(aes.decrypt_block(&expected), plaintext);
    }

    #[test]
    fn gmul_known_values() {
        assert_eq!(gmul(0x57, 0x83), 0xc1);
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        assert_eq!(gmul(0x01, 0xff), 0xff);
        assert_eq!(gmul(0x00, 0xff), 0x00);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &b in SBOX.iter() {
            assert!(!seen[b as usize]);
            seen[b as usize] = true;
        }
    }

    proptest! {
        #[test]
        fn encrypt_decrypt_roundtrip(key in prop::array::uniform16(any::<u8>()),
                                     block in prop::array::uniform16(any::<u8>())) {
            let aes = Aes128::new(&Key128(key));
            let ct = aes.encrypt_block(&block);
            prop_assert_eq!(aes.decrypt_block(&ct), block);
        }

        #[test]
        fn encryption_changes_block(key in prop::array::uniform16(any::<u8>()),
                                    block in prop::array::uniform16(any::<u8>())) {
            let aes = Aes128::new(&Key128(key));
            let ct = aes.encrypt_block(&block);
            // With overwhelming probability a random block does not map to itself.
            prop_assert_ne!(ct, block);
        }
    }
}
