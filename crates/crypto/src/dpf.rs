//! Two-server distributed point functions (DPF).
//!
//! Gilboa–Ishai DPFs ([6] in the paper) let a client split a point function
//! `f_{a,b}(x) = b if x == a else 0` into two keys such that each key alone
//! reveals nothing about `a`, yet each server can evaluate its key on every
//! domain point and the XOR of the two evaluations equals `f_{a,b}`.  The
//! servers therefore answer "which tuples match value `a`" without learning
//! `a` — at the cost of a full scan, which is exactly the expensive, strongly
//! secure back-end QB is designed to speed up.
//!
//! For the simulated cloud the *asymptotic key size* of the real
//! tree-based construction does not matter (the experiments only measure
//! per-tuple evaluation work and bytes transferred for results), so the keys
//! here are XOR shares of the point-function truth table over the queried
//! domain.  Functionally this is a correct and secure 2-server DPF; it is
//! simply not succinct.  `DESIGN.md` §5 records this substitution.

use pds_common::{PdsError, Result};
use rand::Rng;

/// One server's DPF key: a share of the truth table of the point function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpfKey {
    /// Which server the key belongs to (0 or 1).
    pub server: u8,
    /// Truth-table share: `share[x]` is this server's share of `f(x)`.
    pub share: Vec<u64>,
}

impl DpfKey {
    /// Size of the key in bytes (what would travel to the server).
    pub fn size_bytes(&self) -> usize {
        self.share.len() * 8 + 1
    }
}

/// Generates a pair of DPF keys for the point function that maps
/// `alpha ↦ beta` and every other point of `0..domain_size` to zero.
pub fn generate<R: Rng>(
    domain_size: usize,
    alpha: usize,
    beta: u64,
    rng: &mut R,
) -> Result<(DpfKey, DpfKey)> {
    if alpha >= domain_size {
        return Err(PdsError::Config(format!(
            "DPF point {alpha} outside domain of size {domain_size}"
        )));
    }
    let mut share0 = Vec::with_capacity(domain_size);
    let mut share1 = Vec::with_capacity(domain_size);
    for x in 0..domain_size {
        let r: u64 = rng.gen();
        let value = if x == alpha { beta } else { 0 };
        share0.push(r);
        share1.push(r ^ value);
    }
    Ok((
        DpfKey {
            server: 0,
            share: share0,
        },
        DpfKey {
            server: 1,
            share: share1,
        },
    ))
}

/// Evaluates a single server's key on one domain point.
pub fn eval(key: &DpfKey, x: usize) -> Result<u64> {
    key.share
        .get(x)
        .copied()
        .ok_or_else(|| PdsError::Config(format!("DPF evaluation point {x} outside key domain")))
}

/// Evaluates a server's key on the full domain (the "full-domain evaluation"
/// servers perform to filter every tuple).
pub fn eval_full(key: &DpfKey) -> Vec<u64> {
    key.share.clone()
}

/// Combines the two servers' evaluations back into the point function.
pub fn combine(eval0: &[u64], eval1: &[u64]) -> Result<Vec<u64>> {
    if eval0.len() != eval1.len() {
        return Err(PdsError::Crypto("mismatched DPF evaluation lengths".into()));
    }
    Ok(eval0.iter().zip(eval1.iter()).map(|(a, b)| a ^ b).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_common::rng::seeded_rng;
    use proptest::prelude::*;

    #[test]
    fn point_function_reconstructs() {
        let mut rng = seeded_rng(1);
        let (k0, k1) = generate(16, 5, 0xdead_beef, &mut rng).unwrap();
        let combined = combine(&eval_full(&k0), &eval_full(&k1)).unwrap();
        for (x, v) in combined.iter().enumerate() {
            if x == 5 {
                assert_eq!(*v, 0xdead_beef);
            } else {
                assert_eq!(*v, 0);
            }
        }
    }

    #[test]
    fn single_key_share_looks_random() {
        // A single key must not reveal alpha: its share at alpha should not
        // be special (here: not systematically equal to beta).
        let mut rng = seeded_rng(2);
        let mut hits = 0;
        for _ in 0..50 {
            let (k0, _k1) = generate(8, 3, 1, &mut rng).unwrap();
            if k0.share[3] == 1 {
                hits += 1;
            }
        }
        assert!(
            hits < 50,
            "share at alpha must not deterministically equal beta"
        );
    }

    #[test]
    fn out_of_domain_rejected() {
        let mut rng = seeded_rng(3);
        assert!(generate(4, 4, 1, &mut rng).is_err());
        let (k0, _) = generate(4, 1, 1, &mut rng).unwrap();
        assert!(eval(&k0, 4).is_err());
        assert!(eval(&k0, 3).is_ok());
    }

    #[test]
    fn combine_length_mismatch_rejected() {
        assert!(combine(&[1, 2], &[3]).is_err());
    }

    #[test]
    fn key_size_accounts_domain() {
        let mut rng = seeded_rng(4);
        let (k0, _) = generate(100, 0, 1, &mut rng).unwrap();
        assert_eq!(k0.size_bytes(), 801);
    }

    proptest! {
        #[test]
        fn reconstruction_property(domain in 1usize..256, beta in any::<u64>(),
                                   seed in any::<u64>(), alpha_raw in any::<usize>()) {
            let alpha = alpha_raw % domain;
            let mut rng = seeded_rng(seed);
            let (k0, k1) = generate(domain, alpha, beta, &mut rng).unwrap();
            let combined = combine(&eval_full(&k0), &eval_full(&k1)).unwrap();
            for (x, v) in combined.iter().enumerate() {
                if x == alpha {
                    prop_assert_eq!(*v, beta);
                } else {
                    prop_assert_eq!(*v, 0);
                }
            }
        }
    }
}
