//! Counter (CTR) mode over AES-128.

use crate::aes::Aes128;

/// Length of the CTR nonce in bytes. The remaining 8 bytes of the block hold
/// the big-endian block counter, allowing messages up to 2^64 blocks.
pub const NONCE_LEN: usize = 8;

/// Produces the keystream block for (nonce, counter).
fn keystream_block(aes: &Aes128, nonce: &[u8; NONCE_LEN], counter: u64) -> [u8; 16] {
    let mut block = [0u8; 16];
    block[..NONCE_LEN].copy_from_slice(nonce);
    block[NONCE_LEN..].copy_from_slice(&counter.to_be_bytes());
    aes.encrypt_block(&block)
}

/// Encrypts or decrypts `data` in place under CTR mode (the operation is an
/// involution: applying it twice with the same nonce restores the input).
pub fn ctr_xor(aes: &Aes128, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(16).enumerate() {
        let ks = keystream_block(aes, nonce, i as u64);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// Convenience wrapper returning a new vector instead of mutating in place.
pub fn ctr_transform(aes: &Aes128, nonce: &[u8; NONCE_LEN], data: &[u8]) -> Vec<u8> {
    let mut out = data.to_vec();
    ctr_xor(aes, nonce, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Key128;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_short_and_long() {
        let aes = Aes128::new(&Key128::derive(1, "ctr"));
        let nonce = [7u8; NONCE_LEN];
        for len in [0usize, 1, 15, 16, 17, 100, 1000] {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = ctr_transform(&aes, &nonce, &data);
            if len > 0 {
                assert_ne!(ct, data, "ciphertext should differ, len {len}");
            }
            assert_eq!(ctr_transform(&aes, &nonce, &ct), data);
        }
    }

    #[test]
    fn different_nonces_give_different_ciphertexts() {
        let aes = Aes128::new(&Key128::derive(1, "ctr"));
        let data = vec![0u8; 64];
        let c1 = ctr_transform(&aes, &[0u8; NONCE_LEN], &data);
        let c2 = ctr_transform(&aes, &[1u8; NONCE_LEN], &data);
        assert_ne!(c1, c2);
    }

    #[test]
    fn keystream_blocks_differ_per_counter() {
        let aes = Aes128::new(&Key128::derive(2, "ctr"));
        let nonce = [3u8; NONCE_LEN];
        assert_ne!(
            keystream_block(&aes, &nonce, 0),
            keystream_block(&aes, &nonce, 1)
        );
    }

    proptest! {
        #[test]
        fn roundtrip_property(data in proptest::collection::vec(any::<u8>(), 0..256),
                              nonce in prop::array::uniform8(any::<u8>()),
                              seed in any::<u64>()) {
            let aes = Aes128::new(&Key128::derive(seed, "ctr"));
            let ct = ctr_transform(&aes, &nonce, &data);
            prop_assert_eq!(ctr_transform(&aes, &nonce, &ct), data);
        }
    }
}
