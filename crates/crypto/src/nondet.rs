//! Non-deterministic (randomised) authenticated encryption.
//!
//! The paper assumes sensitive tuples are encrypted with a
//! *non-deterministic* scheme achieving ciphertext indistinguishability, so
//! that two tuples with the same plaintext (e.g. the two occurrences of
//! `E152` in the Employee example) produce different ciphertexts.
//! [`NonDetCipher`] is AES-128-CTR with a fresh random nonce per message plus
//! an HMAC-SHA-256 tag (encrypt-then-MAC).

use pds_common::{PdsError, Result};
use rand::Rng;

use crate::aes::Aes128;
use crate::ctr::{ctr_transform, NONCE_LEN};
use crate::hmac::HmacKey;
use crate::Key128;

/// Length of the authentication tag stored with each ciphertext.
pub const TAG_LEN: usize = 16;

/// A ciphertext: nonce ‖ body ‖ truncated MAC.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ciphertext(pub Vec<u8>);

impl Ciphertext {
    /// Total size in bytes (what travels over the simulated network).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the ciphertext is empty (never true for well-formed data).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

/// Randomised authenticated encryption (encrypt-then-MAC over AES-CTR).
///
/// Both key schedules are expanded once at construction: the AES round keys
/// inside [`Aes128`] and the HMAC pad midstates inside [`HmacKey`].  Per
/// bin operation the cipher only runs the block and compression functions —
/// no per-call key expansion.
#[derive(Clone)]
pub struct NonDetCipher {
    aes: Aes128,
    mac: HmacKey,
}

impl NonDetCipher {
    /// Builds the cipher from independent encryption and MAC keys.
    pub fn new(enc_key: Key128, mac_key: Key128) -> Self {
        NonDetCipher {
            aes: Aes128::new(&enc_key),
            mac: HmacKey::new(mac_key.bytes()),
        }
    }

    /// Builds the cipher from a single master seed, deriving sub-keys.
    pub fn from_seed(seed: u64) -> Self {
        Self::new(
            Key128::derive(seed, "nondet-enc"),
            Key128::derive(seed, "nondet-mac"),
        )
    }

    /// Encrypts a plaintext with a fresh random nonce drawn from `rng`.
    pub fn encrypt<R: Rng>(&self, plaintext: &[u8], rng: &mut R) -> Ciphertext {
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill(&mut nonce);
        self.encrypt_with_nonce(plaintext, &nonce)
    }

    /// Encrypts with an explicit nonce (used by tests; callers must never
    /// reuse a nonce under the same key).
    pub fn encrypt_with_nonce(&self, plaintext: &[u8], nonce: &[u8; NONCE_LEN]) -> Ciphertext {
        let body = ctr_transform(&self.aes, nonce, plaintext);
        let mut out = Vec::with_capacity(NONCE_LEN + body.len() + TAG_LEN);
        out.extend_from_slice(nonce);
        out.extend_from_slice(&body);
        let tag = self.mac.mac(&out);
        out.extend_from_slice(&tag[..TAG_LEN]);
        Ciphertext(out)
    }

    /// Decrypts and authenticates a ciphertext.
    pub fn decrypt(&self, ct: &Ciphertext) -> Result<Vec<u8>> {
        let data = &ct.0;
        if data.len() < NONCE_LEN + TAG_LEN {
            return Err(PdsError::Crypto("ciphertext too short".into()));
        }
        let (payload, tag) = data.split_at(data.len() - TAG_LEN);
        let expected = self.mac.mac(payload);
        if tag != &expected[..TAG_LEN] {
            return Err(PdsError::Crypto("authentication tag mismatch".into()));
        }
        let nonce: [u8; NONCE_LEN] = payload[..NONCE_LEN].try_into().expect("nonce length");
        Ok(ctr_transform(&self.aes, &nonce, &payload[NONCE_LEN..]))
    }

    /// The ciphertext expansion in bytes for a plaintext of length `n`.
    pub fn ciphertext_len(plaintext_len: usize) -> usize {
        NONCE_LEN + plaintext_len + TAG_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_common::rng::seeded_rng;
    use proptest::prelude::*;

    #[test]
    fn roundtrip() {
        let cipher = NonDetCipher::from_seed(1);
        let mut rng = seeded_rng(2);
        let pt = b"SELECT * FROM Employee WHERE EId = E259";
        let ct = cipher.encrypt(pt, &mut rng);
        assert_eq!(cipher.decrypt(&ct).unwrap(), pt);
        assert_eq!(ct.len(), NonDetCipher::ciphertext_len(pt.len()));
    }

    #[test]
    fn same_plaintext_different_ciphertexts() {
        // Ciphertext indistinguishability in the sense the paper needs: two
        // encryptions of the same value must not be linkable by equality.
        let cipher = NonDetCipher::from_seed(1);
        let mut rng = seeded_rng(2);
        let a = cipher.encrypt(b"E152", &mut rng);
        let b = cipher.encrypt(b"E152", &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn tampering_detected() {
        let cipher = NonDetCipher::from_seed(1);
        let mut rng = seeded_rng(2);
        let mut ct = cipher.encrypt(b"payload", &mut rng);
        let mid = ct.0.len() / 2;
        ct.0[mid] ^= 0xff;
        assert!(cipher.decrypt(&ct).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let cipher = NonDetCipher::from_seed(1);
        let other = NonDetCipher::from_seed(2);
        let mut rng = seeded_rng(2);
        let ct = cipher.encrypt(b"payload", &mut rng);
        assert!(other.decrypt(&ct).is_err());
    }

    #[test]
    fn too_short_ciphertext_rejected() {
        let cipher = NonDetCipher::from_seed(1);
        assert!(cipher.decrypt(&Ciphertext(vec![0u8; 5])).is_err());
    }

    #[test]
    fn empty_plaintext_roundtrips() {
        let cipher = NonDetCipher::from_seed(3);
        let mut rng = seeded_rng(4);
        let ct = cipher.encrypt(b"", &mut rng);
        assert_eq!(cipher.decrypt(&ct).unwrap(), Vec::<u8>::new());
    }

    proptest! {
        #[test]
        fn roundtrip_property(data in proptest::collection::vec(any::<u8>(), 0..200),
                              seed in any::<u64>(), rng_seed in any::<u64>()) {
            let cipher = NonDetCipher::from_seed(seed);
            let mut rng = seeded_rng(rng_seed);
            let ct = cipher.encrypt(&data, &mut rng);
            prop_assert_eq!(cipher.decrypt(&ct).unwrap(), data);
        }
    }
}
