//! Arx-style counter-token index ([9] in the paper, discussed in §VI).
//!
//! Arx encrypts the *i*-th occurrence of a value `v` as a token of the pair
//! `(v, i)`, so no two occurrences share a ciphertext and the index is still
//! searchable: to query `v` the owner, who keeps the per-value occurrence
//! histogram, generates the tokens `(v, 0), (v, 1), …, (v, count(v)-1)` and
//! the cloud looks each one up.
//!
//! By itself Arx is "susceptible to the size, frequency-count,
//! workload-skew, and access-pattern attacks" — the number of tokens sent
//! per query reveals the frequency of the queried value.  §VI shows QB makes
//! it resilient to all but the access-pattern attack; the attack tests in
//! `pds-adversary` and `tests/attack_resistance.rs` reproduce both sides.

use std::collections::HashMap;

use pds_cloud::{BinEpisodeRequest, CloudServer, DbOwner, EpisodeChannel};
use pds_common::{AttrId, PdsError, Result, TupleId, Value};
use pds_crypto::Ciphertext;
use pds_storage::{Relation, Tuple};

use crate::cost::CostProfile;
use crate::engine::{decrypt_real_matches, BinEpisodeOutcome, SecureSelectionEngine};

/// Arx-like per-occurrence counter-token index.
#[derive(Debug, Default)]
pub struct ArxEngine {
    attr: Option<AttrId>,
    /// Owner-side histogram: value → number of occurrences outsourced.
    histogram: HashMap<Value, u64>,
    outsourced: bool,
}

impl ArxEngine {
    /// Creates a fresh engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// The owner-side occurrence histogram (exposed for tests/attacks).
    pub fn histogram(&self) -> &HashMap<Value, u64> {
        &self.histogram
    }
}

impl SecureSelectionEngine for ArxEngine {
    fn name(&self) -> &'static str {
        "arx-index"
    }

    fn outsource(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        relation: &Relation,
        attr: AttrId,
    ) -> Result<()> {
        let mut rows = Vec::with_capacity(relation.len());
        for t in relation.tuples() {
            let value = t.value(attr).clone();
            let occurrence = self.histogram.entry(value.clone()).or_insert(0);
            let token = owner.counter_tag(&value, *occurrence);
            *occurrence += 1;
            rows.push(owner.encrypt_row(t, attr, vec![token]));
        }
        cloud.upload_encrypted(rows)?;
        self.attr = Some(attr);
        self.outsourced = true;
        Ok(())
    }

    fn select(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        values: &[Value],
    ) -> Result<Vec<Tuple>> {
        if !self.outsourced {
            return Err(PdsError::Query("relation not outsourced yet".into()));
        }
        let attr = self.attr.expect("attr set at outsource time");
        // Generate every occurrence token of every requested value.
        let mut tokens = Vec::new();
        for v in values {
            let count = self.histogram.get(v).copied().unwrap_or(0);
            for i in 0..count {
                tokens.push(owner.counter_tag(v, i));
            }
        }
        if tokens.is_empty() {
            return Ok(Vec::new());
        }
        let fetched = cloud.tag_select(&tokens);
        decrypt_real_matches(owner, attr, values, &fetched)
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile::arx()
    }

    fn fork(&self) -> Self {
        Self::new()
    }

    fn fork_boxed(&self) -> Box<dyn SecureSelectionEngine> {
        Box::new(self.fork())
    }

    fn composes_episodes(&self) -> bool {
        true
    }

    /// One composed round: every occurrence token of every sensitive-bin
    /// value rides the `BinPairRequest` next to the clear-text
    /// non-sensitive values; the cloud matches the tokens against its
    /// counter-token index and answers both sides in a single payload.
    /// Built from the two pipeline halves so the lock-step and pipelined
    /// dispatch disciplines share one code path.
    fn select_bin_episode(
        &mut self,
        owner: &mut DbOwner,
        session: &mut dyn EpisodeChannel,
        request: &BinEpisodeRequest,
    ) -> Result<BinEpisodeOutcome> {
        let tokens = self
            .composed_wire_tags(owner, request)?
            .expect("arx-index always splits its composed episode");
        let (nonsensitive, rows) = session.bin_pair_by_tags(request, tokens)?;
        self.finish_composed(owner, request, nonsensitive, rows)
    }

    fn pipelines_composed(&self) -> bool {
        true
    }

    fn composed_wire_tags(
        &mut self,
        owner: &mut DbOwner,
        request: &BinEpisodeRequest,
    ) -> Result<Option<Vec<Vec<u8>>>> {
        if !self.outsourced {
            return Err(PdsError::Query("relation not outsourced yet".into()));
        }
        let mut tokens = Vec::new();
        for v in &request.sensitive_values {
            let count = self.histogram.get(v).copied().unwrap_or(0);
            for i in 0..count {
                tokens.push(owner.counter_tag(v, i));
            }
        }
        Ok(Some(tokens))
    }

    fn finish_composed(
        &mut self,
        owner: &mut DbOwner,
        request: &BinEpisodeRequest,
        nonsensitive: Vec<Tuple>,
        rows: Vec<(TupleId, Ciphertext)>,
    ) -> Result<BinEpisodeOutcome> {
        let attr = self
            .attr
            .ok_or_else(|| PdsError::Query("relation not outsourced yet".into()))?;
        let sensitive = decrypt_real_matches(owner, attr, &request.sensitive_values, &rows)?;
        Ok(BinEpisodeOutcome {
            nonsensitive,
            sensitive,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_cloud::NetworkModel;
    use pds_storage::{DataType, Schema};

    fn skewed_relation() -> Relation {
        let schema =
            Schema::from_pairs(&[("Salary", DataType::Int), ("Name", DataType::Text)]).unwrap();
        let mut r = Relation::new("Payroll", schema);
        // Salary 100 appears 5 times, 200 twice, 300 once.
        for (s, n) in [
            (100, "a"),
            (100, "b"),
            (100, "c"),
            (100, "d"),
            (100, "e"),
            (200, "f"),
            (200, "g"),
            (300, "h"),
        ] {
            r.insert(vec![Value::Int(s), Value::from(n)]).unwrap();
        }
        r
    }

    fn setup() -> (DbOwner, CloudServer, ArxEngine) {
        let mut owner = DbOwner::new(31);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        let mut engine = ArxEngine::new();
        let rel = skewed_relation();
        let attr = rel.schema().attr_id("Salary").unwrap();
        engine
            .outsource(&mut owner, &mut cloud, &rel, attr)
            .unwrap();
        (owner, cloud, engine)
    }

    #[test]
    fn ciphertexts_of_equal_values_differ() {
        let (_, cloud, _) = setup();
        // All search tags must be pairwise distinct (per-occurrence tokens).
        let mut tags: Vec<Vec<u8>> = Vec::new();
        for ep in cloud.adversarial_view().episodes() {
            let _ = ep; // no queries yet
        }
        // Inspect via a fresh outsource instead.
        let mut owner = DbOwner::new(31);
        let rel = skewed_relation();
        let attr = rel.schema().attr_id("Salary").unwrap();
        let mut engine = ArxEngine::new();
        let mut cloud2 = CloudServer::new(NetworkModel::paper_wan());
        engine
            .outsource(&mut owner, &mut cloud2, &rel, attr)
            .unwrap();
        for (v, c) in engine.histogram() {
            for i in 0..*c {
                tags.push(owner.counter_tag(v, i));
            }
        }
        let before = tags.len();
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), before, "all occurrence tokens are distinct");
    }

    #[test]
    fn select_returns_all_occurrences() {
        let (mut owner, mut cloud, mut engine) = setup();
        let out = engine
            .select(&mut owner, &mut cloud, &[Value::Int(100)])
            .unwrap();
        assert_eq!(out.len(), 5);
        let out = engine
            .select(&mut owner, &mut cloud, &[Value::Int(300), Value::Int(200)])
            .unwrap();
        assert_eq!(out.len(), 3);
        let out = engine
            .select(&mut owner, &mut cloud, &[Value::Int(999)])
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn token_count_leaks_frequency_without_qb() {
        // The adversarial view records the number of tokens sent; querying a
        // heavy hitter sends visibly more tokens — the leakage §VI discusses.
        let (mut owner, mut cloud, mut engine) = setup();
        cloud.begin_query();
        engine
            .select(&mut owner, &mut cloud, &[Value::Int(100)])
            .unwrap();
        cloud.end_query();
        cloud.begin_query();
        engine
            .select(&mut owner, &mut cloud, &[Value::Int(300)])
            .unwrap();
        cloud.end_query();
        let eps = cloud.adversarial_view().episodes();
        assert_eq!(eps[0].encrypted_request_size, 5);
        assert_eq!(eps[1].encrypted_request_size, 1);
        assert!(eps[0].encrypted_request_size > eps[1].encrypted_request_size);
    }

    #[test]
    fn histogram_tracks_counts() {
        let (_, _, engine) = setup();
        assert_eq!(engine.histogram()[&Value::Int(100)], 5);
        assert_eq!(engine.histogram()[&Value::Int(300)], 1);
    }

    #[test]
    fn select_before_outsource_errors() {
        let mut owner = DbOwner::new(1);
        let mut cloud = CloudServer::default();
        let mut engine = ArxEngine::new();
        assert!(engine
            .select(&mut owner, &mut cloud, &[Value::Int(1)])
            .is_err());
        assert_eq!(engine.name(), "arx-index");
    }
}
