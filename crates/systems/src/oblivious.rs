//! Oblivious full-scan engines: Opaque (SGX) and Jana (MPC) simulators.
//!
//! The paper's Table VI composes QB with Opaque [16] and with Jana [37].
//! Neither system is available here (Opaque requires SGX hardware, Jana is a
//! closed MPC engine), so both are modelled as **oblivious full-scan
//! engines**: a selection touches every encrypted tuple, the output is
//! padded to a fixed size (Opaque's output-size protection), and the
//! per-tuple cost constants in [`CostProfile::opaque`] /
//! [`CostProfile::jana`] are calibrated to the end-to-end numbers the paper
//! reports (89 s over 700 MB, 1051 s over 116 MB).  The functional behaviour
//! (which tuples are returned) is exact; only wall-clock time is simulated.
//! `DESIGN.md` §5 documents this substitution.

use pds_cloud::{BinEpisodeRequest, CloudServer, DbOwner, EpisodeChannel};
use pds_common::{AttrId, PdsError, Result, Value};
use pds_storage::{Relation, Tuple};

use crate::cost::CostProfile;
use crate::engine::{decrypt_real_matches, BinEpisodeOutcome, SecureSelectionEngine};

/// Which oblivious system is being simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObliviousKind {
    /// Opaque: SGX-based oblivious analytics (NSDI'17).
    Opaque,
    /// Jana: MPC-based relational engine.
    Jana,
}

/// An oblivious full-scan engine (the generic machinery behind both
/// [`OpaqueSimEngine`] and [`JanaSimEngine`]).
///
/// The secure execution environment (enclave / MPC committee) is modelled
/// by an engine-internal copy of the searchable column: the environment can
/// decrypt inside itself, scans every tuple per query (that is what makes
/// these systems slow), and only the matching tuples travel back to the
/// owner.
#[derive(Debug)]
pub struct ObliviousScanEngine {
    kind: ObliviousKind,
    attr: Option<AttrId>,
    outsourced: bool,
    /// The enclave's view of the searchable column: (tuple id, value).
    enclave_column: Vec<(pds_common::TupleId, Value)>,
}

impl ObliviousScanEngine {
    /// Creates an engine of the given kind.
    pub fn new(kind: ObliviousKind) -> Self {
        ObliviousScanEngine {
            kind,
            attr: None,
            outsourced: false,
            enclave_column: Vec::new(),
        }
    }

    /// The simulated system kind.
    pub fn kind(&self) -> ObliviousKind {
        self.kind
    }
}

impl SecureSelectionEngine for ObliviousScanEngine {
    fn name(&self) -> &'static str {
        match self.kind {
            ObliviousKind::Opaque => "opaque-sim",
            ObliviousKind::Jana => "jana-sim",
        }
    }

    fn outsource(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        relation: &Relation,
        attr: AttrId,
    ) -> Result<()> {
        let rows = owner.encrypt_relation(relation, attr);
        cloud.upload_encrypted(rows)?;
        self.enclave_column = relation
            .tuples()
            .iter()
            .map(|t| (t.id, t.value(attr).clone()))
            .collect();
        self.attr = Some(attr);
        self.outsourced = true;
        Ok(())
    }

    fn select(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        values: &[Value],
    ) -> Result<Vec<Tuple>> {
        if !self.outsourced {
            return Err(PdsError::Query("relation not outsourced yet".into()));
        }
        let attr = self.attr.expect("attr set at outsource time");
        // Oblivious execution: the enclave / MPC committee touches every
        // tuple at the cloud; nothing but the request crosses the network.
        let request_bytes: usize = values.iter().map(Value::size_bytes).sum::<usize>() + 64;
        cloud.note_oblivious_scan(self.enclave_column.len(), request_bytes);
        let matching: Vec<pds_common::TupleId> = self
            .enclave_column
            .iter()
            .filter(|(_, v)| values.contains(v))
            .map(|(id, _)| *id)
            .collect();
        if matching.is_empty() {
            return Ok(Vec::new());
        }
        // Only the (padded, in QB deployments) result travels to the owner.
        let fetched = cloud.fetch_encrypted(&matching)?;
        decrypt_real_matches(owner, attr, values, &fetched)
    }

    fn cost_profile(&self) -> CostProfile {
        match self.kind {
            ObliviousKind::Opaque => CostProfile::opaque(),
            ObliviousKind::Jana => CostProfile::jana(),
        }
    }

    fn hides_access_pattern(&self) -> bool {
        true
    }

    fn fork(&self) -> Self {
        Self::new(self.kind)
    }

    fn fork_boxed(&self) -> Box<dyn SecureSelectionEngine> {
        Box::new(self.fork())
    }

    fn composes_episodes(&self) -> bool {
        true
    }

    /// One composed round: the sensitive bin's values travel as opaque
    /// encrypted tokens inside the `BinPairRequest` (only the enclave / MPC
    /// committee can read them), the secure environment scans every
    /// encrypted tuple cloud-side, and the matching rows come back in the
    /// same payload as the clear-text non-sensitive tuples.
    fn select_bin_episode(
        &mut self,
        owner: &mut DbOwner,
        session: &mut dyn EpisodeChannel,
        request: &BinEpisodeRequest,
    ) -> Result<BinEpisodeOutcome> {
        if !self.outsourced {
            return Err(PdsError::Query("relation not outsourced yet".into()));
        }
        let attr = self.attr.expect("attr set at outsource time");
        let tokens: Vec<Vec<u8>> = request
            .sensitive_values
            .iter()
            .map(|v| owner.encrypt_value(v).as_bytes().to_vec())
            .collect();
        let matching: Vec<pds_common::TupleId> = self
            .enclave_column
            .iter()
            .filter(|(_, v)| request.sensitive_values.contains(v))
            .map(|(id, _)| *id)
            .collect();
        let scanned = self.enclave_column.len();
        let (nonsensitive, rows) =
            session.bin_pair_oblivious(request, tokens, &matching, scanned)?;
        let sensitive = decrypt_real_matches(owner, attr, &request.sensitive_values, &rows)?;
        Ok(BinEpisodeOutcome {
            nonsensitive,
            sensitive,
        })
    }
}

/// Opaque (SGX) simulator.
pub type OpaqueSimEngine = ObliviousScanEngine;

/// Convenience constructor for the Opaque simulator.
pub fn opaque_sim() -> ObliviousScanEngine {
    ObliviousScanEngine::new(ObliviousKind::Opaque)
}

/// Jana (MPC) simulator.
pub struct JanaSimEngine;

impl JanaSimEngine {
    /// Convenience constructor for the Jana simulator.
    // `JanaSimEngine` is a facade name; the working type is the shared
    // oblivious-scan engine parameterized by kind.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> ObliviousScanEngine {
        ObliviousScanEngine::new(ObliviousKind::Jana)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::computation_time;
    use pds_cloud::NetworkModel;
    use pds_storage::{DataType, Schema};

    fn sample_relation(n: i64) -> Relation {
        let schema = Schema::from_pairs(&[("K", DataType::Int), ("P", DataType::Int)]).unwrap();
        let mut r = Relation::new("T", schema);
        for i in 0..n {
            r.insert(vec![Value::Int(i % 10), Value::Int(i)]).unwrap();
        }
        r
    }

    #[test]
    fn oblivious_scan_touches_every_tuple() {
        let mut owner = DbOwner::new(61);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        let mut engine = opaque_sim();
        let rel = sample_relation(50);
        let attr = rel.schema().attr_id("K").unwrap();
        engine
            .outsource(&mut owner, &mut cloud, &rel, attr)
            .unwrap();
        let before = *cloud.metrics();
        let out = engine
            .select(&mut owner, &mut cloud, &[Value::Int(3)])
            .unwrap();
        let delta = cloud.metrics().delta_since(&before);
        assert_eq!(out.len(), 5);
        assert_eq!(delta.encrypted_tuples_scanned, 50);
        assert!(engine.hides_access_pattern());
    }

    #[test]
    fn jana_slower_than_opaque_for_same_work() {
        let m = pds_cloud::Metrics {
            encrypted_tuples_scanned: 10_000,
            round_trips: 1,
            ..Default::default()
        };
        let opaque_t = computation_time(&m, &CostProfile::opaque());
        let jana_t = computation_time(&m, &CostProfile::jana());
        assert!(jana_t > opaque_t);
    }

    #[test]
    fn names_and_kinds() {
        assert_eq!(opaque_sim().name(), "opaque-sim");
        assert_eq!(JanaSimEngine::new().name(), "jana-sim");
        assert_eq!(opaque_sim().kind(), ObliviousKind::Opaque);
        assert_eq!(opaque_sim().cost_profile(), CostProfile::opaque());
        assert_eq!(JanaSimEngine::new().cost_profile(), CostProfile::jana());
    }

    #[test]
    fn select_before_outsource_errors() {
        let mut owner = DbOwner::new(1);
        let mut cloud = CloudServer::default();
        let mut engine = JanaSimEngine::new();
        assert!(engine
            .select(&mut owner, &mut cloud, &[Value::Int(1)])
            .is_err());
    }
}
