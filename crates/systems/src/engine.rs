//! The common interface of secure selection back-ends.

use pds_cloud::{CloudServer, DbOwner};
use pds_common::{AttrId, Result, Value};
use pds_storage::{Relation, Tuple};

use crate::cost::CostProfile;

/// A cryptographic technique able to outsource a relation and answer
/// equality / `IN`-set selection queries over the encrypted data.
///
/// The workflow is always:
/// 1. [`SecureSelectionEngine::outsource`] — encrypt and upload the relation
///    (plus whatever cloud-side index structures the technique uses);
/// 2. repeated [`SecureSelectionEngine::select`] calls — each one runs a
///    selection for a *set* of values (Query Binning always asks for a whole
///    sensitive bin at once) and returns the decrypted, filtered tuples.
///
/// Implementations must only return **real** tuples whose searchable
/// attribute is one of the requested values; fake/padding tuples and false
/// positives are filtered owner-side before returning.
///
/// Engines are `Send`: sharded deployments fork one engine per shard and
/// the threaded transport (`pds_cloud::BinTransport::Threaded`) moves each
/// fork onto its shard's OS thread, so every back-end's per-shard state
/// must be transferable across threads (all six workspace engines hold
/// only owned data, so this is a compile-time guarantee, not a runtime
/// cost).
pub trait SecureSelectionEngine: Send {
    /// Short human-readable name used in experiment output.
    fn name(&self) -> &'static str;

    /// Encrypts `relation` (searchable attribute `attr`) and uploads it.
    fn outsource(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        relation: &Relation,
        attr: AttrId,
    ) -> Result<()>;

    /// Runs an encrypted selection for the given set of values and returns
    /// the matching decrypted tuples.
    fn select(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        values: &[Value],
    ) -> Result<Vec<Tuple>>;

    /// The cost profile used to convert work counters into simulated time.
    fn cost_profile(&self) -> CostProfile;

    /// A fresh engine of the same kind and configuration with no outsourced
    /// state.  Sharded deployments ([`pds_cloud::ShardRouter`]) fork one
    /// engine per shard so every shard's outsourced state (keys stay with
    /// the owner; domains, histograms and shares live in the engine) remains
    /// isolated from its siblings.
    fn fork(&self) -> Self
    where
        Self: Sized;

    /// Whether the technique hides which encrypted tuples satisfied the
    /// query (access-pattern hiding).  QB does not require it; the paper
    /// notes access-pattern-hiding back-ends compose with QB too.
    fn hides_access_pattern(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::SecureSelectionEngine;

    fn assert_engine<E: SecureSelectionEngine + Send>() {}

    /// Compile-time proof that every back-end satisfies the `Send` bound the
    /// threaded shard fan-out relies on — a non-`Send` field sneaking into
    /// any engine breaks this test at compile time, not in a bench at 3 a.m.
    #[test]
    fn all_six_backends_are_send() {
        assert_engine::<crate::ArxEngine>();
        assert_engine::<crate::DeterministicIndexEngine>();
        assert_engine::<crate::DpfEngine>();
        assert_engine::<crate::NonDetScanEngine>();
        assert_engine::<crate::ObliviousScanEngine>();
        assert_engine::<crate::SecretSharingEngine>();
    }
}
