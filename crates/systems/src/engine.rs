//! The common interface of secure selection back-ends.

use pds_cloud::{BinEpisodeRequest, CloudServer, DbOwner, EpisodeChannel};
use pds_common::PdsError;
use pds_common::{AttrId, Result, TupleId, Value};
use pds_crypto::Ciphertext;
use pds_storage::{Relation, Tuple};

use crate::cost::CostProfile;

/// The two result streams of one Query Binning bin-pair episode, before
/// owner-side merging: the clear-text non-sensitive tuples and the
/// decrypted, fake-filtered sensitive tuples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BinEpisodeOutcome {
    /// Clear-text tuples of the non-sensitive bin.
    pub nonsensitive: Vec<Tuple>,
    /// Decrypted real tuples of the sensitive bin (fakes already dropped,
    /// false positives already filtered).
    pub sensitive: Vec<Tuple>,
}

/// A cryptographic technique able to outsource a relation and answer
/// equality / `IN`-set selection queries over the encrypted data.
///
/// The workflow is always:
/// 1. [`SecureSelectionEngine::outsource`] — encrypt and upload the relation
///    (plus whatever cloud-side index structures the technique uses);
/// 2. repeated [`SecureSelectionEngine::select`] calls — each one runs a
///    selection for a *set* of values (Query Binning always asks for a whole
///    sensitive bin at once) and returns the decrypted, filtered tuples.
///
/// Implementations must only return **real** tuples whose searchable
/// attribute is one of the requested values; fake/padding tuples and false
/// positives are filtered owner-side before returning.
///
/// Engines are `Send`: sharded deployments fork one engine per shard and
/// the threaded transport (`pds_cloud::BinTransport::Threaded`) moves each
/// fork onto its shard's OS thread, so every back-end's per-shard state
/// must be transferable across threads (all six workspace engines hold
/// only owned data, so this is a compile-time guarantee, not a runtime
/// cost).
///
/// The trait is **object safe**: a deployment can hold
/// `Box<dyn SecureSelectionEngine>` engines, which is how sharded
/// deployments run a *different* back-end per shard
/// ([`SecureSelectionEngine::fork_boxed`] replaces the `Sized`-only
/// [`SecureSelectionEngine::fork`] behind a trait object).
pub trait SecureSelectionEngine: Send {
    /// Short human-readable name used in experiment output.
    fn name(&self) -> &'static str;

    /// Encrypts `relation` (searchable attribute `attr`) and uploads it.
    fn outsource(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        relation: &Relation,
        attr: AttrId,
    ) -> Result<()>;

    /// Runs an encrypted selection for the given set of values and returns
    /// the matching decrypted tuples.
    fn select(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        values: &[Value],
    ) -> Result<Vec<Tuple>>;

    /// The cost profile used to convert work counters into simulated time.
    fn cost_profile(&self) -> CostProfile;

    /// A fresh engine of the same kind and configuration with no outsourced
    /// state.  Sharded deployments ([`pds_cloud::ShardRouter`]) fork one
    /// engine per shard so every shard's outsourced state (keys stay with
    /// the owner; domains, histograms and shares live in the engine) remains
    /// isolated from its siblings.
    fn fork(&self) -> Self
    where
        Self: Sized;

    /// [`SecureSelectionEngine::fork`] behind a trait object: a fresh boxed
    /// engine of the same kind and configuration.  Heterogeneous sharded
    /// deployments (`Box<dyn SecureSelectionEngine>` per shard) fork
    /// through this.
    fn fork_boxed(&self) -> Box<dyn SecureSelectionEngine>;

    /// Whether this back-end answers a whole composed bin-pair episode in
    /// **one round trip** (a single `BinPairRequest` frame up, a single
    /// `BinPayload` frame down).  Back-ends whose §V-B search procedure is
    /// inherently multi-round return `false` and run the fine-grained path.
    fn composes_episodes(&self) -> bool {
        false
    }

    /// Executes one whole Query Binning bin-pair episode against an
    /// [`EpisodeChannel`]: the clear-text sub-query for the non-sensitive
    /// bin plus the encrypted sub-query for the sensitive bin, inside the
    /// episode the caller has already opened.
    ///
    /// The channel is a trait object so the same engine code runs against
    /// the in-process [`pds_cloud::CloudSession`] *and* the socket-backed
    /// [`pds_cloud::RemoteSession`] without knowing which it got.
    ///
    /// The default implementation is the fine-grained multi-round path
    /// ([`fine_grained_bin_episode`]); back-ends that can resolve a bin-set
    /// request cloud-side override it to send one composed
    /// `BinPairRequest` instead and thereby answer in a single round.
    fn select_bin_episode(
        &mut self,
        owner: &mut DbOwner,
        session: &mut dyn EpisodeChannel,
        request: &BinEpisodeRequest,
    ) -> Result<BinEpisodeOutcome> {
        fine_grained_bin_episode(self, owner, session, request)
    }

    /// Whether the technique hides which encrypted tuples satisfied the
    /// query (access-pattern hiding).  QB does not require it; the paper
    /// notes access-pattern-hiding back-ends compose with QB too.
    fn hides_access_pattern(&self) -> bool {
        false
    }

    /// Whether this back-end's composed episode splits into the two
    /// pipeline-able halves below: an uplink half that only *builds* the
    /// wire tokens ([`SecureSelectionEngine::composed_wire_tags`]) and a
    /// downlink half that only *post-processes* the response
    /// ([`SecureSelectionEngine::finish_composed`]), with no owner↔cloud
    /// exchange in between.  Such episodes can be dispatched pipelined: a
    /// whole window of requests written back-to-back before any response
    /// is read.  Back-ends whose composed episode needs the response to
    /// form the next request (or that do not compose at all) return
    /// `false` and run lock-step.
    fn pipelines_composed(&self) -> bool {
        false
    }

    /// The uplink half of a pipelined composed episode: the opaque search
    /// tokens of the sensitive bin, ready to ride a `BinPairRequest`.
    /// Returns `Ok(None)` when this back-end cannot split the episode
    /// (then [`SecureSelectionEngine::select_bin_episode`] is the only
    /// path); `Err` for owner-side failures such as querying before
    /// outsourcing.
    fn composed_wire_tags(
        &mut self,
        owner: &mut DbOwner,
        request: &BinEpisodeRequest,
    ) -> Result<Option<Vec<Vec<u8>>>> {
        let _ = (owner, request);
        Ok(None)
    }

    /// The downlink half of a pipelined composed episode: owner-side
    /// decrypt-and-filter of a `BinPayload` that answered the tokens from
    /// [`SecureSelectionEngine::composed_wire_tags`].  Pure per-episode
    /// post-processing — it must not talk to the cloud, which is what
    /// makes out-of-order completion safe.
    fn finish_composed(
        &mut self,
        owner: &mut DbOwner,
        request: &BinEpisodeRequest,
        nonsensitive: Vec<Tuple>,
        rows: Vec<(TupleId, Ciphertext)>,
    ) -> Result<BinEpisodeOutcome> {
        let _ = (owner, request, nonsensitive, rows);
        Err(PdsError::Query(format!(
            "the {} back-end does not split composed episodes",
            self.name()
        )))
    }
}

/// Owner-side decrypt-and-filter over fetched sensitive rows: decrypts
/// every tuple ciphertext, drops fake/padding tuples, and keeps only
/// tuples whose searchable attribute is one of the requested `values`.
///
/// This is the security-relevant half of `qmerge` that every back-end's
/// selection ends with — kept in one place so no engine's path can drift
/// (a diverging copy that forgot the fake-drop or the false-positive
/// filter would leak padding rows into answers).
pub fn decrypt_real_matches(
    owner: &mut DbOwner,
    attr: AttrId,
    values: &[Value],
    rows: &[(TupleId, Ciphertext)],
) -> Result<Vec<Tuple>> {
    let mut out = Vec::with_capacity(rows.len());
    for (_, ct) in rows {
        let tuple = owner.decrypt_tuple(ct)?;
        if DbOwner::is_fake(&tuple) {
            continue;
        }
        if values.contains(tuple.value(attr)) {
            out.push(tuple);
        }
    }
    Ok(out)
}

/// The fine-grained multi-round form of one bin-pair episode: the
/// clear-text `IN` selection travels as its own message, then the engine's
/// [`SecureSelectionEngine::select`] runs its usual (possibly multi-round)
/// procedure against the underlying server.
///
/// Free function (rather than only a trait default) so callers can force
/// the fine-grained path on engines that *do* compose — the equivalence
/// tests and the `experiments wire` rounds gate compare the two paths on
/// identical deployments.
pub fn fine_grained_bin_episode<E: SecureSelectionEngine + ?Sized>(
    engine: &mut E,
    owner: &mut DbOwner,
    session: &mut dyn EpisodeChannel,
    request: &BinEpisodeRequest,
) -> Result<BinEpisodeOutcome> {
    let _span = pds_obs::obs_span("engine.fine_grained");
    let nonsensitive = if request.nonsensitive_values.is_empty() {
        Vec::new()
    } else {
        session.plain_select_in(&request.nonsensitive_values)?
    };
    let sensitive = if request.sensitive_values.is_empty() {
        Vec::new()
    } else {
        // Multi-round back-ends drive the server's fine-grained methods
        // directly, which only an in-process channel can grant.
        let server = session.local_server().ok_or_else(|| {
            PdsError::Wire(format!(
                "the {} back-end runs multi-round fine-grained episodes, \
                 which need in-process server access; a remote channel only \
                 carries composed single-round episodes",
                engine.name()
            ))
        })?;
        engine.select(owner, server, &request.sensitive_values)?
    };
    Ok(BinEpisodeOutcome {
        nonsensitive,
        sensitive,
    })
}

impl SecureSelectionEngine for Box<dyn SecureSelectionEngine> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn outsource(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        relation: &Relation,
        attr: AttrId,
    ) -> Result<()> {
        (**self).outsource(owner, cloud, relation, attr)
    }

    fn select(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        values: &[Value],
    ) -> Result<Vec<Tuple>> {
        (**self).select(owner, cloud, values)
    }

    fn cost_profile(&self) -> CostProfile {
        (**self).cost_profile()
    }

    fn fork(&self) -> Self {
        (**self).fork_boxed()
    }

    fn fork_boxed(&self) -> Box<dyn SecureSelectionEngine> {
        (**self).fork_boxed()
    }

    fn composes_episodes(&self) -> bool {
        (**self).composes_episodes()
    }

    fn select_bin_episode(
        &mut self,
        owner: &mut DbOwner,
        session: &mut dyn EpisodeChannel,
        request: &BinEpisodeRequest,
    ) -> Result<BinEpisodeOutcome> {
        (**self).select_bin_episode(owner, session, request)
    }

    fn hides_access_pattern(&self) -> bool {
        (**self).hides_access_pattern()
    }

    fn pipelines_composed(&self) -> bool {
        (**self).pipelines_composed()
    }

    fn composed_wire_tags(
        &mut self,
        owner: &mut DbOwner,
        request: &BinEpisodeRequest,
    ) -> Result<Option<Vec<Vec<u8>>>> {
        (**self).composed_wire_tags(owner, request)
    }

    fn finish_composed(
        &mut self,
        owner: &mut DbOwner,
        request: &BinEpisodeRequest,
        nonsensitive: Vec<Tuple>,
        rows: Vec<(TupleId, Ciphertext)>,
    ) -> Result<BinEpisodeOutcome> {
        (**self).finish_composed(owner, request, nonsensitive, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::SecureSelectionEngine;

    fn assert_engine<E: SecureSelectionEngine + Send>() {}

    /// Compile-time proof that every back-end satisfies the `Send` bound the
    /// threaded shard fan-out relies on — a non-`Send` field sneaking into
    /// any engine breaks this test at compile time, not in a bench at 3 a.m.
    #[test]
    fn all_six_backends_are_send() {
        assert_engine::<crate::ArxEngine>();
        assert_engine::<crate::DeterministicIndexEngine>();
        assert_engine::<crate::DpfEngine>();
        assert_engine::<crate::NonDetScanEngine>();
        assert_engine::<crate::ObliviousScanEngine>();
        assert_engine::<crate::SecretSharingEngine>();
        // The boxed form the heterogeneous deployments use is an engine
        // too (and `Send`, since the trait object carries the bound).
        assert_engine::<Box<dyn SecureSelectionEngine>>();
    }

    /// Boxed forks preserve the concrete kind behind the trait object.
    #[test]
    fn boxed_forks_preserve_the_engine_kind() {
        let engines: Vec<Box<dyn SecureSelectionEngine>> = vec![
            Box::new(crate::NonDetScanEngine::new()),
            Box::new(crate::DeterministicIndexEngine::new()),
            Box::new(crate::ArxEngine::new()),
            Box::new(crate::DpfEngine::new(7)),
            Box::new(crate::SecretSharingEngine::default_deployment()),
            Box::new(crate::oblivious::opaque_sim()),
        ];
        for engine in &engines {
            let fork = engine.fork();
            assert_eq!(fork.name(), engine.name());
            assert_eq!(
                fork.composes_episodes(),
                engine.composes_episodes(),
                "{}",
                engine.name()
            );
        }
    }
}
