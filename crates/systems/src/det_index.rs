//! CryptDB-style deterministic-encryption index.
//!
//! Every tuple's searchable value is stored with a deterministic equality
//! tag that the cloud indexes.  Queries send the tags of the requested
//! values and the cloud answers from its index without decrypting anything.
//! This is fast (β ≈ 1) but leaks the frequency histogram of the searchable
//! attribute — which is precisely the leakage the frequency-count attack in
//! `pds-adversary` exploits, and which QB removes (§VI of the paper).

use pds_cloud::{BinEpisodeRequest, CloudServer, DbOwner, EpisodeChannel};
use pds_common::{AttrId, PdsError, Result, TupleId, Value};
use pds_crypto::Ciphertext;
use pds_storage::{Relation, Tuple};

use crate::cost::CostProfile;
use crate::engine::{decrypt_real_matches, BinEpisodeOutcome, SecureSelectionEngine};

/// Deterministic-tag index back-end (CryptDB-like).
#[derive(Debug, Default)]
pub struct DeterministicIndexEngine {
    attr: Option<AttrId>,
    outsourced: bool,
}

impl DeterministicIndexEngine {
    /// Creates a fresh engine.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SecureSelectionEngine for DeterministicIndexEngine {
    fn name(&self) -> &'static str {
        "det-index"
    }

    fn outsource(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        relation: &Relation,
        attr: AttrId,
    ) -> Result<()> {
        let rows = relation
            .tuples()
            .iter()
            .map(|t| {
                let tag = owner.det_tag(t.value(attr));
                owner.encrypt_row(t, attr, vec![tag])
            })
            .collect();
        cloud.upload_encrypted(rows)?;
        self.attr = Some(attr);
        self.outsourced = true;
        Ok(())
    }

    fn select(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        values: &[Value],
    ) -> Result<Vec<Tuple>> {
        if !self.outsourced {
            return Err(PdsError::Query("relation not outsourced yet".into()));
        }
        let attr = self.attr.expect("attr set at outsource time");
        let tags: Vec<Vec<u8>> = values.iter().map(|v| owner.det_tag(v)).collect();
        let fetched = cloud.tag_select(&tags);
        decrypt_real_matches(owner, attr, values, &fetched)
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile::det_index()
    }

    fn fork(&self) -> Self {
        Self::new()
    }

    fn fork_boxed(&self) -> Box<dyn SecureSelectionEngine> {
        Box::new(self.fork())
    }

    fn composes_episodes(&self) -> bool {
        true
    }

    /// One composed round: the deterministic tags of the whole sensitive
    /// bin ride the `BinPairRequest` next to the clear-text non-sensitive
    /// values, and the cloud answers both sides from its indexes in a
    /// single `BinPayload`.  Built from the two pipeline halves so the
    /// lock-step and pipelined dispatch disciplines share one code path.
    fn select_bin_episode(
        &mut self,
        owner: &mut DbOwner,
        session: &mut dyn EpisodeChannel,
        request: &BinEpisodeRequest,
    ) -> Result<BinEpisodeOutcome> {
        let tags = self
            .composed_wire_tags(owner, request)?
            .expect("det-index always splits its composed episode");
        let (nonsensitive, rows) = session.bin_pair_by_tags(request, tags)?;
        self.finish_composed(owner, request, nonsensitive, rows)
    }

    fn pipelines_composed(&self) -> bool {
        true
    }

    fn composed_wire_tags(
        &mut self,
        owner: &mut DbOwner,
        request: &BinEpisodeRequest,
    ) -> Result<Option<Vec<Vec<u8>>>> {
        if !self.outsourced {
            return Err(PdsError::Query("relation not outsourced yet".into()));
        }
        Ok(Some(
            request
                .sensitive_values
                .iter()
                .map(|v| owner.det_tag(v))
                .collect(),
        ))
    }

    fn finish_composed(
        &mut self,
        owner: &mut DbOwner,
        request: &BinEpisodeRequest,
        nonsensitive: Vec<Tuple>,
        rows: Vec<(TupleId, Ciphertext)>,
    ) -> Result<BinEpisodeOutcome> {
        let attr = self
            .attr
            .ok_or_else(|| PdsError::Query("relation not outsourced yet".into()))?;
        let sensitive = decrypt_real_matches(owner, attr, &request.sensitive_values, &rows)?;
        Ok(BinEpisodeOutcome {
            nonsensitive,
            sensitive,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_cloud::NetworkModel;
    use pds_storage::{DataType, Schema};

    fn sample_relation() -> Relation {
        let schema = Schema::from_pairs(&[("K", DataType::Int), ("P", DataType::Text)]).unwrap();
        let mut r = Relation::new("T", schema);
        for (k, p) in [(5, "a"), (1, "b"), (5, "c"), (3, "d"), (5, "e")] {
            r.insert(vec![Value::Int(k), Value::from(p)]).unwrap();
        }
        r
    }

    fn setup() -> (DbOwner, CloudServer, DeterministicIndexEngine) {
        let mut owner = DbOwner::new(21);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        let mut engine = DeterministicIndexEngine::new();
        let rel = sample_relation();
        let attr = rel.schema().attr_id("K").unwrap();
        engine
            .outsource(&mut owner, &mut cloud, &rel, attr)
            .unwrap();
        (owner, cloud, engine)
    }

    #[test]
    fn select_by_tag_is_exact() {
        let (mut owner, mut cloud, mut engine) = setup();
        let out = engine
            .select(&mut owner, &mut cloud, &[Value::Int(5)])
            .unwrap();
        assert_eq!(out.len(), 3);
        let out = engine
            .select(&mut owner, &mut cloud, &[Value::Int(1), Value::Int(3)])
            .unwrap();
        assert_eq!(out.len(), 2);
        let out = engine
            .select(&mut owner, &mut cloud, &[Value::Int(99)])
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn no_full_scan_is_performed() {
        let (mut owner, mut cloud, mut engine) = setup();
        let before = *cloud.metrics();
        engine
            .select(&mut owner, &mut cloud, &[Value::Int(5)])
            .unwrap();
        let delta = cloud.metrics().delta_since(&before);
        assert_eq!(
            delta.encrypted_tuples_scanned, 0,
            "index answers without scanning"
        );
        assert_eq!(delta.tuples_returned, 3);
    }

    #[test]
    fn identical_values_share_tags_leaking_frequency() {
        // The leakage that makes deterministic encryption weak: the three
        // tuples with K=5 carry identical search tags, visible to the cloud.
        let mut owner = DbOwner::new(21);
        let rel = sample_relation();
        let attr = rel.schema().attr_id("K").unwrap();
        let tags: Vec<Vec<u8>> = rel
            .tuples()
            .iter()
            .map(|t| owner.det_tag(t.value(attr)))
            .collect();
        let equal_pairs = tags
            .iter()
            .enumerate()
            .flat_map(|(i, a)| tags.iter().skip(i + 1).map(move |b| (a == b) as u32))
            .sum::<u32>();
        assert_eq!(equal_pairs, 3, "three equal pairs among the K=5 tuples");
    }

    #[test]
    fn select_before_outsource_errors() {
        let mut owner = DbOwner::new(1);
        let mut cloud = CloudServer::default();
        let mut engine = DeterministicIndexEngine::new();
        assert!(engine
            .select(&mut owner, &mut cloud, &[Value::Int(1)])
            .is_err());
        assert_eq!(engine.name(), "det-index");
    }
}
