//! The "No-Ind" back-end of §V-B: owner-side search over non-deterministic
//! encryption.
//!
//! Neither commercial system the paper evaluates can search inside
//! non-deterministically encrypted columns, so the paper implements search
//! as: *"retrieve the searching attribute of a sensitive relation at the DB
//! owner side, decrypt the attributes, and search for records that match
//! |SB|. It then retrieves full tuples corresponding to |SB| predicates'
//! addresses."*  This module reproduces exactly that procedure.

use pds_cloud::{CloudServer, DbOwner};
use pds_common::{AttrId, PdsError, Result, Value};
use pds_storage::{Relation, Tuple};

use crate::cost::CostProfile;
use crate::engine::{decrypt_real_matches, SecureSelectionEngine};

/// Owner-side decrypt-and-filter over non-deterministically encrypted rows.
#[derive(Debug, Default)]
pub struct NonDetScanEngine {
    attr: Option<AttrId>,
    outsourced: bool,
}

impl NonDetScanEngine {
    /// Creates a fresh engine.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SecureSelectionEngine for NonDetScanEngine {
    fn name(&self) -> &'static str {
        "nondet-scan"
    }

    fn outsource(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        relation: &Relation,
        attr: AttrId,
    ) -> Result<()> {
        let rows = owner.encrypt_relation(relation, attr);
        cloud.upload_encrypted(rows)?;
        self.attr = Some(attr);
        self.outsourced = true;
        Ok(())
    }

    fn select(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        values: &[Value],
    ) -> Result<Vec<Tuple>> {
        if !self.outsourced {
            return Err(PdsError::Query("relation not outsourced yet".into()));
        }
        let attr = self.attr.expect("attr set at outsource time");

        // Step 1: download the encrypted searchable-attribute column.
        let column = cloud.download_encrypted_attr_column();

        // Step 2: decrypt owner-side and collect matching addresses.
        let mut matching = Vec::new();
        for (id, ct) in &column {
            let value = owner.decrypt_value(ct)?;
            if values.contains(&value) {
                matching.push(*id);
            }
        }

        // Step 3: fetch the full encrypted tuples at those addresses and
        // decrypt them.
        if matching.is_empty() {
            return Ok(Vec::new());
        }
        let fetched = cloud.fetch_encrypted(&matching)?;
        decrypt_real_matches(owner, attr, values, &fetched)
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile::nondet_scan()
    }

    fn fork(&self) -> Self {
        Self::new()
    }

    fn fork_boxed(&self) -> Box<dyn SecureSelectionEngine> {
        Box::new(self.fork())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_cloud::NetworkModel;
    use pds_storage::{DataType, Schema};

    fn sample_relation() -> Relation {
        let schema =
            Schema::from_pairs(&[("EId", DataType::Text), ("Office", DataType::Int)]).unwrap();
        let mut r = Relation::new("Employee2", schema);
        for (e, o) in [("E101", 1), ("E259", 6), ("E152", 1), ("E159", 2)] {
            r.insert(vec![Value::from(e), Value::Int(o)]).unwrap();
        }
        r
    }

    fn setup() -> (DbOwner, CloudServer, NonDetScanEngine, AttrId) {
        let mut owner = DbOwner::new(11);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        let mut engine = NonDetScanEngine::new();
        let rel = sample_relation();
        let attr = rel.schema().attr_id("EId").unwrap();
        engine
            .outsource(&mut owner, &mut cloud, &rel, attr)
            .unwrap();
        (owner, cloud, engine, attr)
    }

    #[test]
    fn select_finds_matching_tuples() {
        let (mut owner, mut cloud, mut engine, attr) = setup();
        cloud.begin_query();
        let out = engine
            .select(
                &mut owner,
                &mut cloud,
                &[Value::from("E259"), Value::from("E101")],
            )
            .unwrap();
        cloud.end_query();
        assert_eq!(out.len(), 2);
        let values: Vec<&Value> = out.iter().map(|t| t.value(attr)).collect();
        assert!(values.contains(&&Value::from("E259")));
        assert!(values.contains(&&Value::from("E101")));
    }

    #[test]
    fn select_empty_result() {
        let (mut owner, mut cloud, mut engine, _) = setup();
        let out = engine
            .select(&mut owner, &mut cloud, &[Value::from("E999")])
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn select_before_outsource_errors() {
        let mut owner = DbOwner::new(1);
        let mut cloud = CloudServer::default();
        let mut engine = NonDetScanEngine::new();
        assert!(engine
            .select(&mut owner, &mut cloud, &[Value::Int(1)])
            .is_err());
    }

    #[test]
    fn whole_column_is_scanned_every_query() {
        let (mut owner, mut cloud, mut engine, _) = setup();
        let before = *cloud.metrics();
        engine
            .select(&mut owner, &mut cloud, &[Value::from("E101")])
            .unwrap();
        let delta = cloud.metrics().delta_since(&before);
        assert_eq!(delta.encrypted_tuples_scanned, 4);
    }

    #[test]
    fn access_pattern_is_recorded_in_view() {
        let (mut owner, mut cloud, mut engine, _) = setup();
        cloud.begin_query();
        engine
            .select(&mut owner, &mut cloud, &[Value::from("E152")])
            .unwrap();
        cloud.end_query();
        let ep = &cloud.adversarial_view().episodes()[0];
        assert_eq!(ep.sensitive_returned.len(), 1);
        assert!(!engine.hides_access_pattern());
    }

    #[test]
    fn cost_profile_is_nondet() {
        let engine = NonDetScanEngine::new();
        assert_eq!(engine.cost_profile(), CostProfile::nondet_scan());
        assert_eq!(engine.name(), "nondet-scan");
    }
}
