//! Cost profiles: converting work counters into simulated wall-clock time.
//!
//! The paper's §V-A model is parameterised by
//!
//! * `Cp` — processing cost of a selection on plaintext,
//! * `Ce` — processing cost of a selection on encrypted data,
//! * `Ccom` — cost of moving one tuple over the network,
//! * `β = Ce/Cp` and `γ = Ce/Ccom`.
//!
//! Real Opaque/Jana/MPC executions are far too slow to run inside a
//! benchmark harness, so each back-end carries a [`CostProfile`] whose
//! constants are calibrated to the figures the paper reports, and
//! [`computation_time`] turns the [`Metrics`] counted during a (real,
//! functional) simulated execution into seconds.

use pds_cloud::Metrics;

/// Per-operation cost constants of one back-end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostProfile {
    /// Cost of processing one tuple under encryption (`Ce` per tuple), s.
    pub per_encrypted_tuple_sec: f64,
    /// Cost of processing one tuple in plaintext (`Cp` per tuple), s.
    pub per_plaintext_tuple_sec: f64,
    /// Cost of one cloud-side index lookup, s.
    pub per_index_lookup_sec: f64,
    /// Cost of one owner-side decryption, s.
    pub per_owner_decrypt_sec: f64,
    /// Cost of one owner-side encryption (query token generation), s.
    pub per_owner_encrypt_sec: f64,
    /// Fixed per-query cost (setup, enclave entry, MPC round setup...), s.
    pub per_query_fixed_sec: f64,
}

impl CostProfile {
    /// Clear-text processing: the paper reports ≈0.2 ms for a selection over
    /// 700 MB / 6 M tuples through an index, i.e. effectively the cost of an
    /// index lookup plus the matching tuples.
    pub fn cleartext() -> Self {
        CostProfile {
            per_encrypted_tuple_sec: 0.0,
            per_plaintext_tuple_sec: 20e-9,
            per_index_lookup_sec: 2e-6,
            per_owner_decrypt_sec: 0.0,
            per_owner_encrypt_sec: 0.0,
            per_query_fixed_sec: 100e-6,
        }
    }

    /// Owner-side decrypt-and-filter over non-deterministic encryption
    /// ("No-Ind" on systems A/B in §V-B).  AES-CTR + HMAC per value.
    pub fn nondet_scan() -> Self {
        CostProfile {
            per_encrypted_tuple_sec: 1.5e-6,
            per_plaintext_tuple_sec: 20e-9,
            per_index_lookup_sec: 2e-6,
            per_owner_decrypt_sec: 1.5e-6,
            per_owner_encrypt_sec: 1.5e-6,
            per_query_fixed_sec: 200e-6,
        }
    }

    /// CryptDB-style deterministic index: β close to 1 (index lookup over
    /// tags), small owner cost for tag generation.
    pub fn det_index() -> Self {
        CostProfile {
            per_encrypted_tuple_sec: 40e-9,
            per_plaintext_tuple_sec: 20e-9,
            per_index_lookup_sec: 2.5e-6,
            per_owner_decrypt_sec: 1.5e-6,
            per_owner_encrypt_sec: 1.0e-6,
            per_query_fixed_sec: 200e-6,
        }
    }

    /// Arx-style counter index: the paper measures β ≈ 1.4 (system A) to
    /// 2.5 (system B) relative to cleartext.
    pub fn arx() -> Self {
        CostProfile {
            per_encrypted_tuple_sec: 40e-9,
            per_plaintext_tuple_sec: 20e-9,
            per_index_lookup_sec: 4e-6,
            per_owner_decrypt_sec: 1.5e-6,
            per_owner_encrypt_sec: 1.0e-6,
            per_query_fixed_sec: 300e-6,
        }
    }

    /// Secret-sharing (Emekçi et al. [5]): the paper quotes ≈10 ms per
    /// predicate search; the scan touches every shared value.
    pub fn secret_sharing() -> Self {
        CostProfile {
            per_encrypted_tuple_sec: 10e-6,
            per_plaintext_tuple_sec: 20e-9,
            per_index_lookup_sec: 0.0,
            per_owner_decrypt_sec: 2e-6,
            per_owner_encrypt_sec: 2e-6,
            per_query_fixed_sec: 10e-3,
        }
    }

    /// Two-server DPF ([6]): linear scan with cheap per-tuple PRF work but a
    /// full-domain evaluation per query.
    pub fn dpf() -> Self {
        CostProfile {
            per_encrypted_tuple_sec: 2e-6,
            per_plaintext_tuple_sec: 20e-9,
            per_index_lookup_sec: 0.0,
            per_owner_decrypt_sec: 1.5e-6,
            per_owner_encrypt_sec: 1.5e-6,
            per_query_fixed_sec: 1e-3,
        }
    }

    /// Opaque [16]: 89 s for a selection over 700 MB ≈ 6 M tuples gives
    /// ≈ 14.8 µs of oblivious work per tuple.
    pub fn opaque() -> Self {
        CostProfile {
            per_encrypted_tuple_sec: 14.8e-6,
            per_plaintext_tuple_sec: 20e-9,
            per_index_lookup_sec: 0.0,
            per_owner_decrypt_sec: 1.5e-6,
            per_owner_encrypt_sec: 1.5e-6,
            per_query_fixed_sec: 0.5,
        }
    }

    /// Jana [37]: 1051 s for a selection over 1 M tuples ≈ 1.05 ms of MPC
    /// work per tuple.
    pub fn jana() -> Self {
        CostProfile {
            per_encrypted_tuple_sec: 1.05e-3,
            per_plaintext_tuple_sec: 20e-9,
            per_index_lookup_sec: 0.0,
            per_owner_decrypt_sec: 2e-6,
            per_owner_encrypt_sec: 2e-6,
            per_query_fixed_sec: 1.0,
        }
    }

    /// The seed profile for a back-end, keyed by its
    /// [`crate::SecureSelectionEngine::name`].  This is what the planner's
    /// cost model starts from before any measured calibration; `None` for
    /// names no shipped engine reports.
    pub fn for_engine(name: &str) -> Option<CostProfile> {
        match name {
            "cleartext" => Some(CostProfile::cleartext()),
            "nondet-scan" => Some(CostProfile::nondet_scan()),
            "det-index" => Some(CostProfile::det_index()),
            "arx-index" => Some(CostProfile::arx()),
            "secret-sharing" => Some(CostProfile::secret_sharing()),
            "dpf" => Some(CostProfile::dpf()),
            "opaque-sim" => Some(CostProfile::opaque()),
            "jana-sim" => Some(CostProfile::jana()),
            _ => None,
        }
    }

    /// The paper's β for this profile (ratio of encrypted to plaintext
    /// per-tuple processing cost).
    pub fn beta(&self) -> f64 {
        if self.per_plaintext_tuple_sec == 0.0 {
            return f64::INFINITY;
        }
        (self.per_encrypted_tuple_sec + self.per_owner_decrypt_sec)
            .max(self.per_plaintext_tuple_sec)
            / self.per_plaintext_tuple_sec
    }

    /// The paper's γ = Ce / Ccom for a given per-tuple communication cost.
    pub fn gamma(&self, ccom_per_tuple_sec: f64) -> f64 {
        if ccom_per_tuple_sec == 0.0 {
            return f64::INFINITY;
        }
        (self.per_encrypted_tuple_sec + self.per_owner_decrypt_sec) / ccom_per_tuple_sec
    }
}

/// Converts work counters into simulated computation seconds under a
/// profile.  Communication time is *not* included (the cloud tracks it
/// separately via its [`pds_cloud::NetworkModel`]); add
/// [`pds_cloud::CloudServer::comm_time`] for the total.
pub fn computation_time(metrics: &Metrics, profile: &CostProfile) -> f64 {
    profile.per_query_fixed_sec * f64::from(u8::from(metrics.round_trips > 0))
        + metrics.encrypted_tuples_scanned as f64 * profile.per_encrypted_tuple_sec
        + metrics.plaintext_tuples_scanned as f64 * profile.per_plaintext_tuple_sec
        + metrics.plaintext_index_lookups as f64 * profile.per_index_lookup_sec
        + metrics.owner_decryptions as f64 * profile.per_owner_decrypt_sec
        + metrics.owner_encryptions as f64 * profile.per_owner_encrypt_sec
}

/// Computation time when the work spans several queries: the fixed per-query
/// cost is charged `queries` times.
pub fn computation_time_for_queries(metrics: &Metrics, profile: &CostProfile, queries: u64) -> f64 {
    let mut t = computation_time(metrics, profile);
    // `computation_time` charged the fixed cost at most once.
    if queries > 1 && metrics.round_trips > 0 {
        t += profile.per_query_fixed_sec * (queries - 1) as f64;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opaque_calibration_matches_headline() {
        // 6M tuples * 14.8 µs ≈ 88.8 s ≈ the paper's 89 s figure.
        let m = Metrics {
            encrypted_tuples_scanned: 6_000_000,
            round_trips: 1,
            ..Default::default()
        };
        let t = computation_time(&m, &CostProfile::opaque());
        assert!((t - 89.0).abs() < 2.0, "t = {t}");
    }

    #[test]
    fn jana_calibration_matches_headline() {
        // 1M tuples * 1.05 ms ≈ 1050 s ≈ the paper's 1051 s figure.
        let m = Metrics {
            encrypted_tuples_scanned: 1_000_000,
            round_trips: 1,
            ..Default::default()
        };
        let t = computation_time(&m, &CostProfile::jana());
        assert!((t - 1051.0).abs() < 5.0, "t = {t}");
    }

    #[test]
    fn cleartext_is_sub_millisecond_for_point_lookup() {
        let m = Metrics {
            plaintext_index_lookups: 1,
            plaintext_tuples_scanned: 100,
            round_trips: 1,
            ..Default::default()
        };
        let t = computation_time(&m, &CostProfile::cleartext());
        assert!(t < 1e-3, "t = {t}");
    }

    #[test]
    fn beta_ordering_matches_paper() {
        // Strong back-ends have (much) larger β than indexable ones.
        let arx = CostProfile::arx().beta();
        let ss = CostProfile::secret_sharing().beta();
        let opaque = CostProfile::opaque().beta();
        assert!(arx < ss);
        assert!(ss < opaque);
    }

    #[test]
    fn gamma_large_for_strong_crypto() {
        // Secret sharing: Ce ≈ 10 ms per predicate over ... the paper's γ ≈ 25000
        // with Ccom ≈ 4 µs per tuple — here per-tuple Ce is 10 µs so γ is smaller,
        // but still far above 1.
        let gamma = CostProfile::secret_sharing().gamma(4e-6);
        assert!(gamma > 1.0);
        assert_eq!(CostProfile::secret_sharing().gamma(0.0), f64::INFINITY);
    }

    #[test]
    fn fixed_cost_charged_once_or_per_query() {
        let m = Metrics {
            round_trips: 3,
            ..Default::default()
        };
        let p = CostProfile::opaque();
        let one = computation_time(&m, &p);
        assert!((one - p.per_query_fixed_sec).abs() < 1e-9);
        let many = computation_time_for_queries(&m, &p, 4);
        assert!((many - 4.0 * p.per_query_fixed_sec).abs() < 1e-9);
    }

    #[test]
    fn engine_name_seeds_agree_with_engine_profiles() {
        use crate::engine::SecureSelectionEngine;
        use crate::oblivious::ObliviousKind;
        let engines: Vec<Box<dyn SecureSelectionEngine>> = vec![
            Box::new(crate::NonDetScanEngine::new()),
            Box::new(crate::DeterministicIndexEngine::new()),
            Box::new(crate::ArxEngine::new()),
            Box::new(crate::SecretSharingEngine::new(3, 5)),
            Box::new(crate::DpfEngine::new(7)),
            Box::new(crate::ObliviousScanEngine::new(ObliviousKind::Opaque)),
            Box::new(crate::ObliviousScanEngine::new(ObliviousKind::Jana)),
        ];
        for engine in &engines {
            assert_eq!(
                CostProfile::for_engine(engine.name()),
                Some(engine.cost_profile()),
                "seed profile for `{}` drifted from the engine's own profile",
                engine.name()
            );
        }
        assert_eq!(CostProfile::for_engine("no-such-engine"), None);
    }

    #[test]
    fn zero_metrics_zero_time() {
        assert_eq!(
            computation_time(&Metrics::new(), &CostProfile::opaque()),
            0.0
        );
    }
}
