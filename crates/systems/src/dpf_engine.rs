//! Two-server DPF back-end (Gilboa–Ishai [6]).
//!
//! The distinct values of the searchable attribute form the DPF domain.  The
//! two simulated non-colluding servers each hold, per tuple, the index of
//! its value in that domain (this is public structure, not the value
//! itself in any linkable form, because the domain order is a secret
//! permutation known only to the owner).  To select value `w` the owner
//! generates a DPF key pair for the point `index(w)`; each server evaluates
//! its key at every tuple's value index and returns the share vector; XORing
//! the two vectors yields the indicator of matching tuples, which the owner
//! then fetches from the encrypted store.
//!
//! The per-query work is linear in the number of tuples on *both* servers —
//! the expensive scan QB avoids performing over non-sensitive data.

use std::collections::HashMap;

use pds_cloud::{CloudServer, DbOwner};
use pds_common::{AttrId, PdsError, Result, TupleId, Value};
use pds_crypto::dpf::{self, DpfKey};
use pds_crypto::FeistelPrp;
use pds_crypto::Key128;
use pds_storage::{Relation, Tuple};

use crate::cost::CostProfile;
use crate::engine::{decrypt_real_matches, SecureSelectionEngine};

/// One simulated DPF evaluation server.
#[derive(Debug, Clone, Default)]
struct DpfServer {
    /// For every stored tuple: (tuple id, index of its value in the domain).
    tuple_value_index: Vec<(TupleId, usize)>,
}

impl DpfServer {
    /// Evaluates a DPF key over every stored tuple, returning one share per
    /// tuple.
    fn evaluate(&self, key: &DpfKey) -> Result<Vec<(TupleId, u64)>> {
        self.tuple_value_index
            .iter()
            .map(|&(id, idx)| dpf::eval(key, idx).map(|v| (id, v)))
            .collect()
    }
}

/// DPF-based selection engine.
pub struct DpfEngine {
    servers: [DpfServer; 2],
    /// Owner-side: value → index in the (permuted) DPF domain.
    domain: HashMap<Value, usize>,
    domain_size: usize,
    attr: Option<AttrId>,
    outsourced: bool,
    seed: u64,
}

impl DpfEngine {
    /// Creates an engine whose secret domain permutation derives from `seed`.
    pub fn new(seed: u64) -> Self {
        DpfEngine {
            servers: [DpfServer::default(), DpfServer::default()],
            domain: HashMap::new(),
            domain_size: 0,
            attr: None,
            outsourced: false,
            seed,
        }
    }

    /// Number of distinct values in the DPF domain.
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }
}

impl SecureSelectionEngine for DpfEngine {
    fn name(&self) -> &'static str {
        "dpf"
    }

    fn outsource(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        relation: &Relation,
        attr: AttrId,
    ) -> Result<()> {
        // Build the secret-permuted domain of distinct values.
        let distinct = relation.distinct_values(attr);
        self.domain_size = distinct.len().max(1);
        let prp = FeistelPrp::new(
            Key128::derive(self.seed, "dpf-domain"),
            self.domain_size as u64,
        );
        for (i, v) in distinct.into_iter().enumerate() {
            self.domain.insert(v, prp.permute(i as u64) as usize);
        }
        // Each server stores each tuple's value index.
        for t in relation.tuples() {
            let idx = *self
                .domain
                .get(t.value(attr))
                .ok_or_else(|| PdsError::Query("value missing from DPF domain".into()))?;
            self.servers[0].tuple_value_index.push((t.id, idx));
            self.servers[1].tuple_value_index.push((t.id, idx));
        }
        // The encrypted payload tuples live on the cloud.
        let rows = owner.encrypt_relation(relation, attr);
        cloud.upload_encrypted(rows)?;
        self.attr = Some(attr);
        self.outsourced = true;
        Ok(())
    }

    fn select(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        values: &[Value],
    ) -> Result<Vec<Tuple>> {
        if !self.outsourced {
            return Err(PdsError::Query("relation not outsourced yet".into()));
        }
        let attr = self.attr.expect("attr set at outsource time");
        let mut rng = pds_common::rng::seeded_rng(pds_common::rng::derive_seed(self.seed, "dpf-q"));

        // One DPF key pair per requested value that exists in the domain.
        let mut matching: Vec<TupleId> = Vec::new();
        let mut keys_generated = 0usize;
        for value in values {
            let Some(&alpha) = self.domain.get(value) else {
                continue;
            };
            let (k0, k1) = dpf::generate(self.domain_size, alpha, 1, &mut rng)?;
            keys_generated += 1;
            let e0 = self.servers[0].evaluate(&k0)?;
            let e1 = self.servers[1].evaluate(&k1)?;
            for ((id0, s0), (id1, s1)) in e0.iter().zip(e1.iter()) {
                debug_assert_eq!(id0, id1);
                if s0 ^ s1 == 1 {
                    matching.push(*id0);
                }
            }
        }
        matching.sort_unstable();
        matching.dedup();
        cloud.note_encrypted_request(keys_generated, keys_generated * self.domain_size * 8);

        if matching.is_empty() {
            return Ok(Vec::new());
        }
        let fetched = cloud.fetch_encrypted(&matching)?;
        decrypt_real_matches(owner, attr, values, &fetched)
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile::dpf()
    }

    fn hides_access_pattern(&self) -> bool {
        false
    }

    fn fork(&self) -> Self {
        Self::new(self.seed)
    }

    fn fork_boxed(&self) -> Box<dyn SecureSelectionEngine> {
        Box::new(self.fork())
    }
}

impl std::fmt::Debug for DpfEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DpfEngine")
            .field("domain_size", &self.domain_size)
            .field("outsourced", &self.outsourced)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_cloud::NetworkModel;
    use pds_storage::{DataType, Schema};

    fn sample_relation() -> Relation {
        let schema = Schema::from_pairs(&[("K", DataType::Int), ("P", DataType::Text)]).unwrap();
        let mut r = Relation::new("T", schema);
        for (k, p) in [
            (10, "a"),
            (20, "b"),
            (10, "c"),
            (30, "d"),
            (20, "e"),
            (40, "f"),
        ] {
            r.insert(vec![Value::Int(k), Value::from(p)]).unwrap();
        }
        r
    }

    fn setup() -> (DbOwner, CloudServer, DpfEngine) {
        let mut owner = DbOwner::new(51);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        let mut engine = DpfEngine::new(99);
        let rel = sample_relation();
        let attr = rel.schema().attr_id("K").unwrap();
        engine
            .outsource(&mut owner, &mut cloud, &rel, attr)
            .unwrap();
        (owner, cloud, engine)
    }

    #[test]
    fn select_correctness() {
        let (mut owner, mut cloud, mut engine) = setup();
        assert_eq!(engine.domain_size(), 4);
        let out = engine
            .select(&mut owner, &mut cloud, &[Value::Int(10)])
            .unwrap();
        assert_eq!(out.len(), 2);
        let out = engine
            .select(&mut owner, &mut cloud, &[Value::Int(20), Value::Int(40)])
            .unwrap();
        assert_eq!(out.len(), 3);
        let out = engine
            .select(&mut owner, &mut cloud, &[Value::Int(77)])
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn unknown_values_generate_no_keys() {
        let (mut owner, mut cloud, mut engine) = setup();
        let before = *cloud.metrics();
        engine
            .select(&mut owner, &mut cloud, &[Value::Int(77)])
            .unwrap();
        let delta = cloud.metrics().delta_since(&before);
        // Only the note_encrypted_request round trip, no fetch.
        assert_eq!(delta.tuples_returned, 0);
    }

    #[test]
    fn select_before_outsource_errors() {
        let mut owner = DbOwner::new(1);
        let mut cloud = CloudServer::default();
        let mut engine = DpfEngine::new(1);
        assert!(engine
            .select(&mut owner, &mut cloud, &[Value::Int(1)])
            .is_err());
        assert_eq!(engine.name(), "dpf");
    }

    #[test]
    fn debug_does_not_leak_domain() {
        let (_, _, engine) = setup();
        let dbg = format!("{engine:?}");
        assert!(dbg.contains("domain_size"));
        assert!(!dbg.contains("Int(10)"));
    }
}
