//! # pds-systems
//!
//! The secure selection **back-ends** the paper builds on, compares against
//! and composes with Query Binning:
//!
//! | Module | Paper counterpart | Category |
//! |---|---|---|
//! | [`nondet_scan`] | the "No-Ind(A)/No-Ind(B)" procedure of §V-B on two commercial DBMSs | non-deterministic encryption, owner-side search |
//! | [`det_index`] | CryptDB-style deterministic encryption with a cloud-side index | weak (leaks frequency) but fast |
//! | [`arx`] | Arx [9]: per-occurrence counter tokens over non-deterministic encryption | indexable, β ≈ 1.4–2.5 |
//! | [`secret_sharing`] | Emekçi et al. [5] / Shamir [4] | strong, linear scan, ≈10 ms per predicate |
//! | [`dpf_engine`] | Gilboa–Ishai DPF [6] | strong, two-server, linear scan |
//! | [`oblivious`] | Opaque [16] (SGX) and Jana [37] (MPC) cost simulators | strong, oblivious full scan |
//!
//! Every back-end implements [`SecureSelectionEngine`]: it outsources a
//! relation through the [`pds_cloud::DbOwner`] onto a
//! [`pds_cloud::CloudServer`] and answers `IN`-set selection queries over the
//! encrypted data.  Query Binning (`pds-core`) drives whichever engine it is
//! configured with for the sensitive side of a partitioned deployment; the
//! same engine over the *whole* relation is the "full encryption" baseline of
//! the paper's η analysis.
//!
//! [`cost`] converts the work counters recorded by the cloud and the owner
//! into simulated wall-clock seconds using per-back-end cost profiles
//! calibrated to the numbers the paper reports (Opaque: 89 s for a selection
//! over 700 MB; Jana: 1051 s over 116 MB; secret sharing: ≈10 ms per
//! predicate search; Arx: β ≈ 1.4–2.5; cleartext: ≈0.2 ms).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arx;
pub mod cost;
pub mod det_index;
pub mod dpf_engine;
pub mod engine;
pub mod nondet_scan;
pub mod oblivious;
pub mod secret_sharing;

pub use arx::ArxEngine;
pub use cost::{computation_time, CostProfile};
pub use det_index::DeterministicIndexEngine;
pub use dpf_engine::DpfEngine;
pub use engine::{fine_grained_bin_episode, BinEpisodeOutcome, SecureSelectionEngine};
pub use nondet_scan::NonDetScanEngine;
pub use oblivious::{JanaSimEngine, ObliviousScanEngine, OpaqueSimEngine};
pub use secret_sharing::SecretSharingEngine;
