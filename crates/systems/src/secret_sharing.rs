//! Secret-sharing back-end (Shamir [4] / Emekçi et al. [5]).
//!
//! The searchable attribute of every tuple is Shamir-shared across `n`
//! simulated non-colluding servers.  Answering a selection requires touching
//! every shared value (a linear scan — this is what makes the technique
//! strong but slow; the paper quotes ≈10 ms per predicate search), after
//! which the matching tuples are fetched from the encrypted store and
//! decrypted by the owner.
//!
//! The `n` share servers are held inside the engine (they are logically
//! separate parties; the single [`CloudServer`] models the party that stores
//! the encrypted payload tuples).  The share values of the searchable
//! attribute genuinely go through `pds_crypto::shamir`, so the cost model's
//! per-tuple work corresponds to real field arithmetic performed here.

use pds_cloud::{CloudServer, DbOwner};
use pds_common::{AttrId, PdsError, Result, TupleId, Value};
use pds_crypto::shamir::{self, Share};
use pds_storage::{Relation, Tuple};

use crate::cost::CostProfile;
use crate::engine::{decrypt_real_matches, SecureSelectionEngine};

/// Converts a value into a field element for sharing (hash of the encoding,
/// so text values work too).
fn field_encode(value: &Value) -> u64 {
    let digest = pds_crypto::sha256::sha256(&value.encode());
    u64::from_be_bytes(digest[..8].try_into().expect("8 bytes")) % shamir::MODULUS
}

/// One simulated share server: it stores, for every tuple, its share of the
/// searchable attribute value.
#[derive(Debug, Clone, Default)]
struct ShareServer {
    shares: Vec<(TupleId, Share)>,
}

/// Secret-sharing based selection engine.
#[derive(Debug)]
pub struct SecretSharingEngine {
    threshold: usize,
    servers: Vec<ShareServer>,
    attr: Option<AttrId>,
    outsourced: bool,
}

impl SecretSharingEngine {
    /// Creates an engine with `n` share servers and reconstruction threshold
    /// `k` (the usual deployment in [5] is small `n`, e.g. 3-of-5).
    pub fn new(k: usize, n: usize) -> Self {
        SecretSharingEngine {
            threshold: k,
            servers: vec![ShareServer::default(); n],
            attr: None,
            outsourced: false,
        }
    }

    /// Default 2-of-3 deployment.
    pub fn default_deployment() -> Self {
        Self::new(2, 3)
    }

    /// Number of share servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }
}

impl SecureSelectionEngine for SecretSharingEngine {
    fn name(&self) -> &'static str {
        "secret-sharing"
    }

    fn outsource(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        relation: &Relation,
        attr: AttrId,
    ) -> Result<()> {
        if self.threshold == 0 || self.threshold > self.servers.len() {
            return Err(PdsError::Config("invalid secret sharing threshold".into()));
        }
        // Shares of the searchable attribute go to the share servers...
        let mut rng = pds_common::rng::seeded_rng(0x5ec7);
        for t in relation.tuples() {
            let secret = field_encode(t.value(attr));
            let shares = shamir::share(secret, self.threshold, self.servers.len(), &mut rng)?;
            for (server, share) in self.servers.iter_mut().zip(shares) {
                server.shares.push((t.id, share));
            }
        }
        // ...and the encrypted payload tuples go to the cloud.
        let rows = owner.encrypt_relation(relation, attr);
        cloud.upload_encrypted(rows)?;
        self.attr = Some(attr);
        self.outsourced = true;
        Ok(())
    }

    fn select(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        values: &[Value],
    ) -> Result<Vec<Tuple>> {
        if !self.outsourced {
            return Err(PdsError::Query("relation not outsourced yet".into()));
        }
        let attr = self.attr.expect("attr set at outsource time");
        let targets: Vec<u64> = values.iter().map(field_encode).collect();

        // Linear scan: reconstruct every shared value from `threshold`
        // servers and compare against the targets.  (A real deployment
        // compares under sharing; reconstructing at the owner touches the
        // same number of values and keeps the simulation simple.)
        let tuple_count = self.servers[0].shares.len();
        let mut matching: Vec<TupleId> = Vec::new();
        for i in 0..tuple_count {
            let id = self.servers[0].shares[i].0;
            let shares: Vec<Share> = self.servers[..self.threshold]
                .iter()
                .map(|s| s.shares[i].1)
                .collect();
            let secret = shamir::reconstruct(&shares)?;
            if targets.contains(&secret) {
                matching.push(id);
            }
        }
        // Account the scan as encrypted-tuple work on the cloud side.
        cloud.note_encrypted_request(values.len(), values.iter().map(Value::size_bytes).sum());

        if matching.is_empty() {
            return Ok(Vec::new());
        }
        let fetched = cloud.fetch_encrypted(&matching)?;
        decrypt_real_matches(owner, attr, values, &fetched)
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile::secret_sharing()
    }

    fn hides_access_pattern(&self) -> bool {
        // The share-server scan itself is access-pattern free; the final
        // payload fetch is not. Consistent with the paper's observation that
        // QB does not need (but composes with) access-pattern hiding.
        false
    }

    fn fork(&self) -> Self {
        Self::new(self.threshold, self.servers.len())
    }

    fn fork_boxed(&self) -> Box<dyn SecureSelectionEngine> {
        Box::new(self.fork())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_cloud::NetworkModel;
    use pds_storage::{DataType, Schema};

    fn sample_relation() -> Relation {
        let schema = Schema::from_pairs(&[("K", DataType::Text), ("P", DataType::Int)]).unwrap();
        let mut r = Relation::new("T", schema);
        for (k, p) in [("a", 1), ("b", 2), ("a", 3), ("c", 4)] {
            r.insert(vec![Value::from(k), Value::Int(p)]).unwrap();
        }
        r
    }

    fn setup() -> (DbOwner, CloudServer, SecretSharingEngine) {
        let mut owner = DbOwner::new(41);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        let mut engine = SecretSharingEngine::default_deployment();
        let rel = sample_relation();
        let attr = rel.schema().attr_id("K").unwrap();
        engine
            .outsource(&mut owner, &mut cloud, &rel, attr)
            .unwrap();
        (owner, cloud, engine)
    }

    #[test]
    fn select_correctness() {
        let (mut owner, mut cloud, mut engine) = setup();
        let out = engine
            .select(&mut owner, &mut cloud, &[Value::from("a")])
            .unwrap();
        assert_eq!(out.len(), 2);
        let out = engine
            .select(
                &mut owner,
                &mut cloud,
                &[Value::from("b"), Value::from("c")],
            )
            .unwrap();
        assert_eq!(out.len(), 2);
        let out = engine
            .select(&mut owner, &mut cloud, &[Value::from("zzz")])
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn shares_alone_do_not_equal_field_encoding() {
        // A single server's share of a value should not (in general) equal
        // the field encoding of the value: individual shares hide the value.
        let (_, _, engine) = setup();
        let encoded = field_encode(&Value::from("a"));
        let equal = engine.servers[0]
            .shares
            .iter()
            .filter(|(_, s)| s.y == encoded)
            .count();
        assert!(equal < engine.servers[0].shares.len());
    }

    #[test]
    fn invalid_threshold_rejected() {
        let mut owner = DbOwner::new(1);
        let mut cloud = CloudServer::default();
        let mut engine = SecretSharingEngine::new(5, 3);
        let rel = sample_relation();
        let attr = rel.schema().attr_id("K").unwrap();
        assert!(engine
            .outsource(&mut owner, &mut cloud, &rel, attr)
            .is_err());
    }

    #[test]
    fn select_before_outsource_errors() {
        let mut owner = DbOwner::new(1);
        let mut cloud = CloudServer::default();
        let mut engine = SecretSharingEngine::default_deployment();
        assert!(engine
            .select(&mut owner, &mut cloud, &[Value::Int(1)])
            .is_err());
        assert_eq!(engine.name(), "secret-sharing");
        assert_eq!(engine.server_count(), 3);
    }
}
