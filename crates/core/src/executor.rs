//! End-to-end partitioned query execution with Query Binning.
//!
//! [`QbExecutor`] glues everything together:
//!
//! 1. **Outsourcing** — the non-sensitive part `Rns` is uploaded in
//!    clear-text; the sensitive part `Rs` is augmented with the fake tuples
//!    the general case requires (so every sensitive bin answers with the
//!    same number of tuples) and handed to the configured
//!    [`SecureSelectionEngine`] for encryption/upload.
//! 2. **Selection** — a query for a value `w` is rewritten by Algorithm 2
//!    into one sensitive bin and one non-sensitive bin; the clear-text
//!    sub-query runs through the cloud index, the encrypted sub-query runs
//!    through the engine; the owner decrypts, drops fake tuples and false
//!    positives, and merges the two result streams (`qmerge` of §II).

use std::collections::HashSet;

use pds_cloud::{BinRoutedCloud, CloudServer, DbOwner};
use pds_common::{AttrId, PdsError, Result, TupleId, Value};
use pds_storage::{PartitionedRelation, Relation, Tuple};
use pds_systems::SecureSelectionEngine;

use crate::binning::QueryBinning;

/// Counters describing one QB selection (used by experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// Values requested on the sensitive (encrypted) side.
    pub sensitive_values_requested: usize,
    /// Values requested on the non-sensitive (clear-text) side.
    pub nonsensitive_values_requested: usize,
    /// Tuples returned by the two sub-queries before owner-side filtering.
    pub tuples_before_filter: usize,
    /// Tuples in the final answer.
    pub tuples_in_answer: usize,
}

/// The end-to-end Query Binning executor over a chosen secure back-end.
///
/// The executor runs against any [`BinRoutedCloud`] — a single
/// [`CloudServer`] or a [`pds_cloud::ShardRouter`] over many — with the same
/// code path: at outsourcing time each sensitive bin's tuples go to the
/// shard its placement assigns (one forked engine per shard keeps the
/// outsourced state isolated), and at query time the whole episode for a
/// bin pair runs against that single shard.
pub struct QbExecutor<E: SecureSelectionEngine> {
    binning: QueryBinning,
    engine: E,
    /// One forked engine per shard, created at outsourcing time; all
    /// outsourced state lives here (the `engine` field stays a prototype).
    shard_engines: Vec<E>,
    sensitive_attr: Option<AttrId>,
    outsourced: bool,
    fake_tuple_ids: Vec<TupleId>,
    /// The same ids as a set, built once at outsourcing time so the
    /// per-query merge never rebuilds it (`qmerge` is on the hot path).
    fake_id_set: HashSet<TupleId>,
    last_stats: SelectionStats,
}

impl<E: SecureSelectionEngine> QbExecutor<E> {
    /// Creates an executor from a binning and a back-end engine.
    pub fn new(binning: QueryBinning, engine: E) -> Self {
        QbExecutor {
            binning,
            engine,
            shard_engines: Vec::new(),
            sensitive_attr: None,
            outsourced: false,
            fake_tuple_ids: Vec::new(),
            fake_id_set: HashSet::new(),
            last_stats: SelectionStats::default(),
        }
    }

    /// The binning metadata in force.
    pub fn binning(&self) -> &QueryBinning {
        &self.binning
    }

    /// The prototype back-end engine (per-shard forks hold the outsourced
    /// state once [`QbExecutor::outsource`] has run).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The forked engines serving each shard (empty before outsourcing).
    pub fn shard_engines(&self) -> &[E] {
        &self.shard_engines
    }

    /// Ids of the fake tuples added during outsourcing.
    pub fn fake_tuple_ids(&self) -> &[TupleId] {
        &self.fake_tuple_ids
    }

    /// The searchable attribute's position in the partitioned schemas
    /// (available once outsourced).
    pub fn searchable_attr(&self) -> Option<AttrId> {
        self.sensitive_attr
    }

    /// Counters describing the most recent selection.
    pub fn last_stats(&self) -> SelectionStats {
        self.last_stats
    }

    /// Outsources the partitioned relation: `Rns` in clear-text (replicated
    /// to every shard), `Rs` (augmented with fake tuples) through one forked
    /// engine per shard, each shard receiving exactly the sensitive bins the
    /// placement assigns to it.
    pub fn outsource<C: BinRoutedCloud>(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut C,
        partitioned: &PartitionedRelation,
    ) -> Result<()> {
        let attr_name = self.binning.attr_name().to_string();
        let s_attr = partitioned.sensitive.schema().attr_id(&attr_name)?;
        self.sensitive_attr = Some(s_attr);

        cloud.prepare_routing(self.binning.sensitive_bin_count())?;

        // Clear-text non-sensitive side with its cloud-side index.
        cloud.upload_plaintext(partitioned.nonsensitive.clone(), &attr_name)?;

        // Sensitive side: clone, append fake tuples per bin, then split into
        // one sub-relation per shard (a sensitive bin lives on one shard).
        let augmented = self.augment_with_fakes(&partitioned.sensitive, s_attr)?;
        let per_shard = self.split_by_shard(cloud, &augmented, s_attr)?;
        self.shard_engines.clear();
        for (shard, relation) in per_shard.iter().enumerate() {
            let mut engine = self.engine.fork();
            engine.outsource(owner, cloud.shard_mut(shard), relation, s_attr)?;
            self.shard_engines.push(engine);
        }
        self.outsourced = true;
        Ok(())
    }

    /// Groups the augmented sensitive relation into one sub-relation per
    /// shard, following the cloud's bin routing.
    fn split_by_shard<C: BinRoutedCloud>(
        &self,
        cloud: &C,
        augmented: &Relation,
        attr: AttrId,
    ) -> Result<Vec<Relation>> {
        let mut per_shard: Vec<Relation> = (0..cloud.shard_count())
            .map(|s| {
                Relation::new(
                    format!("{}@shard{s}", augmented.name()),
                    augmented.schema().clone(),
                )
            })
            .collect();
        for t in augmented.tuples() {
            let assignment = self
                .binning
                .sensitive_assignment(t.value(attr))
                .ok_or_else(|| {
                    PdsError::Query(format!(
                        "sensitive value {} has no bin assignment",
                        t.value(attr)
                    ))
                })?;
            let shard = cloud.route_sensitive_bin(assignment.bin);
            per_shard[shard].insert_with_id(t.id, t.values.clone())?;
        }
        Ok(per_shard)
    }

    /// Builds the augmented sensitive relation containing the fake tuples
    /// the general case prescribes (each fake carries a value of its bin so
    /// the cloud returns it whenever that bin is queried).
    ///
    /// Every non-searchable attribute of a fake tuple is `NULL`; after
    /// encryption the fake is indistinguishable from a real row to the
    /// cloud, while the owner recognises fakes by their tuple ids (tracked
    /// in [`QbExecutor::fake_tuple_ids`]).
    fn augment_with_fakes(&mut self, sensitive: &Relation, attr: AttrId) -> Result<Relation> {
        let mut augmented = sensitive.clone();
        let arity = sensitive.schema().arity();
        let mut next_id = sensitive
            .tuples()
            .iter()
            .map(|t| t.id.raw())
            .max()
            .map_or(1_000_000, |m| m + 1_000_000);
        self.fake_tuple_ids.clear();
        self.fake_id_set.clear();
        for bin in 0..self.binning.sensitive_bin_count() {
            let budget = self.binning.fake_tuples_per_bin()[bin];
            if budget == 0 {
                continue;
            }
            let bin_values = self.binning.sensitive_bin(bin);
            if bin_values.is_empty() {
                continue;
            }
            for k in 0..budget {
                // Spread fakes across the bin's values round-robin so no
                // single value's padded count looks anomalous.
                let value = &bin_values[(k as usize) % bin_values.len()];
                let id = TupleId::new(next_id);
                next_id += 1;
                let mut values = vec![Value::Null; arity];
                values[attr.index()] = value.clone();
                augmented.insert_with_id(id, values)?;
                self.fake_tuple_ids.push(id);
                self.fake_id_set.insert(id);
            }
        }
        Ok(augmented)
    }

    /// Retrieves both bins of one pair from the shard hosting it, in a
    /// single adversarial-view episode on that shard.  Returns the raw
    /// `(nonsensitive, sensitive)` result streams before owner-side
    /// filtering.
    fn retrieve_pair<C: BinRoutedCloud>(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut C,
        pair: crate::binning::BinPair,
        sensitive_values: &[Value],
        nonsensitive_values: &[Value],
    ) -> Result<(Vec<Tuple>, Vec<Tuple>, AttrId)> {
        let shard_idx = cloud.route_sensitive_bin(pair.sensitive_bin);
        let shard = cloud.shard_mut(shard_idx);
        shard.begin_query();
        // Clear-text sub-query over Rns (replicated on every shard).
        let ns_tuples = if nonsensitive_values.is_empty() {
            Vec::new()
        } else {
            shard.plain_select_in(nonsensitive_values)?
        };
        // Encrypted sub-query over the shard's slice of Rs through the
        // engine forked for that shard.
        let s_tuples = if sensitive_values.is_empty() {
            Vec::new()
        } else {
            self.shard_engines
                .get_mut(shard_idx)
                .ok_or_else(|| PdsError::Query(format!("no engine for shard {shard_idx}")))?
                .select(owner, shard, sensitive_values)?
        };
        shard.end_query();
        let ns_attr = shard
            .plain_searchable_attr()
            .ok_or_else(|| PdsError::Cloud("plaintext relation missing".into()))?;
        Ok((ns_tuples, s_tuples, ns_attr))
    }

    /// Runs a QB selection for a single value.
    pub fn select<C: BinRoutedCloud>(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut C,
        value: &Value,
    ) -> Result<Vec<Tuple>> {
        if !self.outsourced {
            return Err(PdsError::Query("deployment not outsourced yet".into()));
        }
        let Some(pair) = self.binning.retrieve(value) else {
            // The value occurs nowhere; nothing needs to be retrieved
            // (Algorithm 2's final case).
            self.last_stats = SelectionStats::default();
            return Ok(Vec::new());
        };
        let s_attr = self.sensitive_attr.expect("set during outsourcing");

        let sensitive_values = self.binning.sensitive_bin(pair.sensitive_bin).to_vec();
        let nonsensitive_values = self.binning.nonsensitive_bin(pair.nonsensitive_bin);
        let (ns_tuples, s_tuples, ns_attr) =
            self.retrieve_pair(owner, cloud, pair, &sensitive_values, &nonsensitive_values)?;

        // qmerge: drop fake tuples (recognised by their ids, which only the
        // owner knows), keep only tuples matching the actual query value,
        // and concatenate.
        let before = ns_tuples.len() + s_tuples.len();
        let mut answer: Vec<Tuple> = Vec::new();
        for t in s_tuples {
            if !self.fake_id_set.contains(&t.id)
                && !DbOwner::is_fake(&t)
                && t.value(s_attr) == value
            {
                answer.push(t);
            }
        }
        for t in ns_tuples {
            if t.value(ns_attr) == value {
                answer.push(t);
            }
        }

        self.last_stats = SelectionStats {
            sensitive_values_requested: sensitive_values.len(),
            nonsensitive_values_requested: nonsensitive_values.len(),
            tuples_before_filter: before,
            tuples_in_answer: answer.len(),
        };
        Ok(answer)
    }

    /// Retrieves one bin pair exactly as a point query would (same
    /// adversarial view, same costs) and returns *all* real tuples of both
    /// bins without filtering to a particular value.  The range, aggregate
    /// and join extensions build on this.  [`QbExecutor::last_stats`] is
    /// refreshed just as for a point query, so extension callers observe the
    /// counters of their own retrieval rather than a stale previous one.
    pub fn fetch_bin_pair<C: BinRoutedCloud>(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut C,
        pair: crate::binning::BinPair,
    ) -> Result<Vec<Tuple>> {
        if !self.outsourced {
            return Err(PdsError::Query("deployment not outsourced yet".into()));
        }
        let sensitive_values = self.binning.sensitive_bin(pair.sensitive_bin).to_vec();
        let nonsensitive_values = self.binning.nonsensitive_bin(pair.nonsensitive_bin);
        let (ns_tuples, s_tuples, _) =
            self.retrieve_pair(owner, cloud, pair, &sensitive_values, &nonsensitive_values)?;
        let before = ns_tuples.len() + s_tuples.len();
        let mut out: Vec<Tuple> = Vec::with_capacity(before);
        for t in s_tuples {
            if !self.fake_id_set.contains(&t.id) && !DbOwner::is_fake(&t) {
                out.push(t);
            }
        }
        out.extend(ns_tuples);
        self.last_stats = SelectionStats {
            sensitive_values_requested: sensitive_values.len(),
            nonsensitive_values_requested: nonsensitive_values.len(),
            tuples_before_filter: before,
            tuples_in_answer: out.len(),
        };
        Ok(out)
    }

    /// Runs a whole workload of point queries, returning the per-query
    /// answer sizes (used by experiments that only need cardinalities).
    pub fn run_workload<C: BinRoutedCloud>(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut C,
        values: &[Value],
    ) -> Result<Vec<usize>> {
        values
            .iter()
            .map(|v| self.select(owner, cloud, v).map(|ts| ts.len()))
            .collect()
    }
}

impl<E: SecureSelectionEngine> std::fmt::Debug for QbExecutor<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QbExecutor")
            .field("engine", &self.engine.name())
            .field("outsourced", &self.outsourced)
            .field("fake_tuples", &self.fake_tuple_ids.len())
            .finish_non_exhaustive()
    }
}

/// A non-QB ("naive partitioned") executor used as the insecure baseline in
/// tests, examples and attack demonstrations: each query is sent as-is to
/// both sides, which is exactly the leaky execution of Example 2.
pub struct NaivePartitionedExecutor<E: SecureSelectionEngine> {
    engine: E,
    attr_name: String,
    sensitive_attr: Option<AttrId>,
    outsourced: bool,
}

impl<E: SecureSelectionEngine> NaivePartitionedExecutor<E> {
    /// Creates the naive executor for a searchable attribute.
    pub fn new(attr_name: impl Into<String>, engine: E) -> Self {
        NaivePartitionedExecutor {
            engine,
            attr_name: attr_name.into(),
            sensitive_attr: None,
            outsourced: false,
        }
    }

    /// Outsources both parts without any binning or padding.
    pub fn outsource(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        partitioned: &PartitionedRelation,
    ) -> Result<()> {
        let s_attr = partitioned.sensitive.schema().attr_id(&self.attr_name)?;
        self.sensitive_attr = Some(s_attr);
        cloud.upload_plaintext(partitioned.nonsensitive.clone(), &self.attr_name)?;
        self.engine
            .outsource(owner, cloud, &partitioned.sensitive, s_attr)?;
        self.outsourced = true;
        Ok(())
    }

    /// Runs a naive partitioned selection: the exact value goes to both
    /// sides in a single episode.
    pub fn select(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        value: &Value,
    ) -> Result<Vec<Tuple>> {
        if !self.outsourced {
            return Err(PdsError::Query("deployment not outsourced yet".into()));
        }
        cloud.begin_query();
        let ns = cloud.plain_select_in(std::slice::from_ref(value))?;
        let s = self
            .engine
            .select(owner, cloud, std::slice::from_ref(value))?;
        cloud.end_query();
        let mut answer = s;
        answer.extend(ns);
        Ok(answer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::BinningConfig;
    use pds_adversary::check_partitioned_security;
    use pds_cloud::NetworkModel;
    use pds_storage::Partitioner;
    use pds_systems::NonDetScanEngine;
    use pds_workload::{employee_relation, employee_sensitivity_policy};

    fn employee_parts() -> PartitionedRelation {
        let rel = employee_relation();
        let policy = employee_sensitivity_policy(&rel).unwrap();
        Partitioner::new(policy).split(&rel).unwrap()
    }

    fn qb_setup() -> (
        DbOwner,
        CloudServer,
        QbExecutor<NonDetScanEngine>,
        PartitionedRelation,
    ) {
        let parts = employee_parts();
        let binning = QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
        let mut executor = QbExecutor::new(binning, NonDetScanEngine::new());
        let mut owner = DbOwner::new(5);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        executor.outsource(&mut owner, &mut cloud, &parts).unwrap();
        (owner, cloud, executor, parts)
    }

    #[test]
    fn qb_answers_match_direct_execution() {
        let (mut owner, mut cloud, mut executor, parts) = qb_setup();
        let attr = parts.sensitive.schema().attr_id("EId").unwrap();
        // Ground truth: run the selection directly over the original parts.
        for eid in ["E259", "E101", "E199", "E152", "E254", "E159"] {
            let value = Value::from(eid);
            let expected: usize = parts
                .sensitive
                .tuples()
                .iter()
                .chain(parts.nonsensitive.tuples())
                .filter(|t| t.value(attr) == &value)
                .count();
            let got = executor.select(&mut owner, &mut cloud, &value).unwrap();
            assert_eq!(got.len(), expected, "answer size for {eid}");
            assert!(got.iter().all(|t| t.value(attr) == &value));
            assert!(got.iter().all(|t| !DbOwner::is_fake(t)));
        }
    }

    #[test]
    fn unknown_value_returns_empty_without_touching_cloud() {
        let (mut owner, mut cloud, mut executor, _) = qb_setup();
        let before = cloud.adversarial_view().len();
        let got = executor
            .select(&mut owner, &mut cloud, &Value::from("E999"))
            .unwrap();
        assert!(got.is_empty());
        assert_eq!(
            cloud.adversarial_view().len(),
            before,
            "no episode recorded"
        );
    }

    #[test]
    fn qb_execution_satisfies_partitioned_security() {
        let (mut owner, mut cloud, mut executor, parts) = qb_setup();
        let attr = parts.sensitive.schema().attr_id("EId").unwrap();
        // Query every value on either side (the exhaustive workload).
        let mut all_values = parts.sensitive.distinct_values(attr);
        for v in parts.nonsensitive.distinct_values(attr) {
            if !all_values.contains(&v) {
                all_values.push(v);
            }
        }
        for v in &all_values {
            executor.select(&mut owner, &mut cloud, v).unwrap();
        }
        let report = check_partitioned_security(cloud.adversarial_view());
        assert!(report.is_secure(), "{report:?}");
    }

    #[test]
    fn naive_execution_violates_partitioned_security() {
        let parts = employee_parts();
        let mut naive = NaivePartitionedExecutor::new("EId", NonDetScanEngine::new());
        let mut owner = DbOwner::new(6);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        naive.outsource(&mut owner, &mut cloud, &parts).unwrap();
        for eid in ["E259", "E101", "E199"] {
            naive
                .select(&mut owner, &mut cloud, &Value::from(eid))
                .unwrap();
        }
        let report = check_partitioned_security(cloud.adversarial_view());
        assert!(
            !report.is_secure(),
            "naive partitioned execution must leak: {report:?}"
        );
    }

    #[test]
    fn stats_reflect_bin_sizes() {
        let (mut owner, mut cloud, mut executor, _) = qb_setup();
        executor
            .select(&mut owner, &mut cloud, &Value::from("E259"))
            .unwrap();
        let stats = executor.last_stats();
        assert!(stats.sensitive_values_requested >= 1);
        assert!(stats.nonsensitive_values_requested >= 1);
        assert!(stats.tuples_before_filter >= stats.tuples_in_answer);
        assert_eq!(
            stats.tuples_in_answer, 2,
            "E259 has one Defense and one Design tuple"
        );
    }

    #[test]
    fn fetch_bin_pair_refreshes_stats() {
        // Regression: fetch_bin_pair used to leave last_stats untouched, so
        // range/aggregate/join extensions reported the previous point
        // query's counters.
        let (mut owner, mut cloud, mut executor, _) = qb_setup();
        executor
            .select(&mut owner, &mut cloud, &Value::from("E259"))
            .unwrap();
        let stale = executor.last_stats();
        let pair = executor.binning().retrieve(&Value::from("E101")).unwrap();
        let out = executor
            .fetch_bin_pair(&mut owner, &mut cloud, pair)
            .unwrap();
        let stats = executor.last_stats();
        assert_eq!(stats.tuples_in_answer, out.len());
        assert_eq!(
            stats.sensitive_values_requested,
            executor.binning().sensitive_bin(pair.sensitive_bin).len()
        );
        assert_eq!(
            stats.nonsensitive_values_requested,
            executor
                .binning()
                .nonsensitive_bin(pair.nonsensitive_bin)
                .len()
        );
        assert!(stats.tuples_before_filter >= stats.tuples_in_answer);
        assert_ne!(
            stats, stale,
            "bin-pair retrieval must overwrite the point query's counters"
        );
    }

    #[test]
    fn sharded_deployment_answers_match_single_server() {
        use pds_cloud::ShardRouter;

        let parts = employee_parts();
        let attr = parts.sensitive.schema().attr_id("EId").unwrap();
        let mut all_values = parts.sensitive.distinct_values(attr);
        for v in parts.nonsensitive.distinct_values(attr) {
            if !all_values.contains(&v) {
                all_values.push(v);
            }
        }

        let (mut owner, mut cloud, mut single, _) = qb_setup();
        let binning = QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
        let mut sharded = QbExecutor::new(binning, NonDetScanEngine::new());
        let mut sharded_owner = DbOwner::new(5);
        let mut router = ShardRouter::new(3, NetworkModel::paper_wan(), 11).unwrap();
        sharded
            .outsource(&mut sharded_owner, &mut router, &parts)
            .unwrap();
        assert_eq!(sharded.shard_engines().len(), 3);
        // Sensitive data is sharded (no replication); plaintext is replicated.
        assert_eq!(router.encrypted_len(), cloud.encrypted_len());
        assert_eq!(router.plain_len(), cloud.plain_len());

        for v in &all_values {
            let mut expect: Vec<u64> = single
                .select(&mut owner, &mut cloud, v)
                .unwrap()
                .iter()
                .map(|t| t.id.raw())
                .collect();
            let mut got: Vec<u64> = sharded
                .select(&mut sharded_owner, &mut router, v)
                .unwrap()
                .iter()
                .map(|t| t.id.raw())
                .collect();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect, "answer for {v}");
        }

        // Each episode stayed on one shard, and all shards together saw the
        // whole workload.
        let episodes: usize = router
            .adversarial_views()
            .iter()
            .map(|view| view.len())
            .sum();
        assert_eq!(episodes, all_values.len());
        let report = check_partitioned_security(&router.composed_view());
        assert!(report.is_secure(), "{report:?}");
    }

    #[test]
    fn select_before_outsource_errors() {
        let parts = employee_parts();
        let binning = QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
        let mut executor = QbExecutor::new(binning, NonDetScanEngine::new());
        let mut owner = DbOwner::new(5);
        let mut cloud = CloudServer::default();
        assert!(executor
            .select(&mut owner, &mut cloud, &Value::from("E259"))
            .is_err());
        let mut naive = NaivePartitionedExecutor::new("EId", NonDetScanEngine::new());
        assert!(naive
            .select(&mut owner, &mut cloud, &Value::from("E259"))
            .is_err());
    }

    #[test]
    fn run_workload_returns_answer_sizes() {
        let (mut owner, mut cloud, mut executor, _) = qb_setup();
        let sizes = executor
            .run_workload(
                &mut owner,
                &mut cloud,
                &[
                    Value::from("E259"),
                    Value::from("E199"),
                    Value::from("nope"),
                ],
            )
            .unwrap();
        assert_eq!(sizes, vec![2, 1, 0]);
    }

    #[test]
    fn debug_renders_engine_name() {
        let (_, _, executor, _) = qb_setup();
        assert!(format!("{executor:?}").contains("nondet-scan"));
    }
}
