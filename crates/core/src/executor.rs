//! End-to-end partitioned query execution with Query Binning.
//!
//! [`QbExecutor`] glues everything together:
//!
//! 1. **Outsourcing** — the non-sensitive part `Rns` is uploaded in
//!    clear-text; the sensitive part `Rs` is augmented with the fake tuples
//!    the general case requires (so every sensitive bin answers with the
//!    same number of tuples) and handed to the configured
//!    [`SecureSelectionEngine`] for encryption/upload.
//! 2. **Planning** — a batch of queries is compiled into a
//!    [`crate::plan::QueryPlan`]: Algorithm 2 rewrites each value into one
//!    bin pair, the owner-side hot-bin cache serves what it can, and the
//!    remaining episodes are grouped by the shard hosting their sensitive
//!    bin, each marked composed (single-round `BinPairRequest`) or
//!    fine-grained according to that shard's engine.
//! 3. **Execution** — every planned episode runs through a
//!    [`pds_cloud::CloudSession`] on its shard (one adversarial-view
//!    episode, typed `pds-proto` messages on the wire, measured round
//!    counts); the owner decrypts, drops fake tuples and false positives,
//!    and merges the two result streams (`qmerge` of §II).
//!
//! All entry points — [`QbExecutor::select`], [`QbExecutor::fetch_bin_pair`]
//! and [`QbExecutor::run_workload_transported`] — share this one
//! plan→execute code path, so cache bookkeeping, co-observation tracking
//! and security-view recording behave identically however a query arrives.

use std::collections::HashSet;

use pds_cloud::{
    BinCache, BinCacheStats, BinEpisodeRequest, BinKey, BinRoutedCloud, BinTransport, CloudServer,
    DbOwner, Metrics, RemoteSession, TcpCloudClient,
};
use pds_common::{AttrId, PdsError, Result, TupleId, Value};
use pds_storage::{PartitionedRelation, Predicate, Relation, Tuple};
use pds_systems::SecureSelectionEngine;

use crate::binning::{BinPair, QueryBinning};
use crate::plan::{
    execute_episode, execute_episode_remote, execute_shard_pipelined, CacheServed, EpisodeResult,
    EpisodeStep, PlanMode, QueryPlan,
};
use crate::planner::{reorder_for_locality, PlannerConfig};

/// Default in-flight window of [`WireMode::Pipelined`]: deep enough to
/// keep a multi-worker daemon busy, small enough that a torn connection
/// never has more than a handful of idempotent episodes to replay.
pub const DEFAULT_PIPELINE_WINDOW: usize = 8;

/// How episodes are dispatched over a [`BinTransport::Tcp`] connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// One request on the socket, then block for its response — the
    /// classic discipline, and the fallback whenever a shard's engine
    /// cannot split its composed episode into pipeline halves.
    LockStep,
    /// Up to `window` composed requests written back-to-back before any
    /// response is read; responses demultiplex by correlation id and may
    /// arrive out of order.  Requires a correlation-aware (frame v2)
    /// daemon and an engine whose
    /// [`SecureSelectionEngine::pipelines_composed`] holds — other shards
    /// of the same batch silently run lock-step.
    Pipelined {
        /// Maximum in-flight (unanswered) requests per shard connection.
        window: usize,
    },
}

impl Default for WireMode {
    fn default() -> Self {
        WireMode::Pipelined {
            window: DEFAULT_PIPELINE_WINDOW,
        }
    }
}

/// Counters describing one QB selection (used by experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// Values requested on the sensitive (encrypted) side.
    pub sensitive_values_requested: usize,
    /// Values requested on the non-sensitive (clear-text) side.
    pub nonsensitive_values_requested: usize,
    /// Tuples returned by the two sub-queries before owner-side filtering.
    pub tuples_before_filter: usize,
    /// Tuples in the final answer.
    pub tuples_in_answer: usize,
    /// 1 when this retrieval was served from the owner-side hot-bin cache
    /// (no cloud interaction), else 0.
    pub cache_hits: usize,
    /// 1 when this retrieval had to fetch its bin pair from the cloud,
    /// else 0.
    pub cache_misses: usize,
    /// Owner↔cloud rounds the retrieval took (0 on a cache hit; 1 when the
    /// episode ran as a composed `BinPairRequest`; more on the fine-grained
    /// multi-round path).
    pub rounds: u64,
}

/// The end-to-end Query Binning executor over a chosen secure back-end.
///
/// The executor runs against any [`BinRoutedCloud`] — a single
/// [`CloudServer`] or a [`pds_cloud::ShardRouter`] over many — with the same
/// code path: at outsourcing time each sensitive bin's tuples go to the
/// shard its placement assigns (one forked engine per shard keeps the
/// outsourced state isolated), and at query time the whole episode for a
/// bin pair runs against that single shard.
pub struct QbExecutor<E: SecureSelectionEngine> {
    binning: QueryBinning,
    engine: E,
    /// One engine per shard, installed at outsourcing time; all outsourced
    /// state lives here (the `engine` field stays a prototype).  Usually
    /// forks of the prototype, but [`QbExecutor::outsource_with_engines`]
    /// accepts a *different* back-end per shard (`E` is then typically
    /// `Box<dyn SecureSelectionEngine>`).
    shard_engines: Vec<E>,
    /// How episodes are shaped on the wire (composed vs fine-grained).
    plan_mode: PlanMode,
    /// How episodes are dispatched over a TCP transport (lock-step vs
    /// pipelined with a bounded in-flight window).
    wire_mode: WireMode,
    /// The cost-based planner's per-batch behaviour: episode reordering,
    /// residual predicate, and whether the residual pushes down the wire.
    planner: PlannerConfig,
    sensitive_attr: Option<AttrId>,
    nonsensitive_attr: Option<AttrId>,
    outsourced: bool,
    fake_tuple_ids: Vec<TupleId>,
    /// The same ids as a set, built once at outsourcing time so the
    /// per-query merge never rebuilds it (`qmerge` is on the hot path).
    fake_id_set: HashSet<TupleId>,
    /// Owner-side hot-bin cache over already-retrieved, already-decrypted
    /// bins.  Capacity 0 (the default) disables it entirely.
    cache: BinCache,
    /// The tenant this executor acts for in a multi-tenant deployment.
    /// Namespaces the hot-bin cache keys and must match the tenant a
    /// [`BinTransport::Tcp`] client authenticates as.
    tenant: u64,
    last_stats: SelectionStats,
}

impl<E: SecureSelectionEngine> QbExecutor<E> {
    /// Creates an executor from a binning and a back-end engine (hot-bin
    /// caching disabled; see [`QbExecutor::with_cache_capacity`]).
    pub fn new(binning: QueryBinning, engine: E) -> Self {
        QbExecutor {
            binning,
            engine,
            shard_engines: Vec::new(),
            plan_mode: PlanMode::default(),
            wire_mode: WireMode::default(),
            planner: PlannerConfig::default(),
            sensitive_attr: None,
            nonsensitive_attr: None,
            outsourced: false,
            fake_tuple_ids: Vec::new(),
            fake_id_set: HashSet::new(),
            cache: BinCache::new(0),
            tenant: 0,
            last_stats: SelectionStats::default(),
        }
    }

    /// Enables the owner-side hot-bin cache with room for `capacity` bins.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.set_cache_capacity(capacity);
        self
    }

    /// Sets the tenant this executor acts for (builder form).
    pub fn with_tenant(mut self, tenant: u64) -> Self {
        self.set_tenant(tenant);
        self
    }

    /// The tenant this executor acts for (0 in single-tenant deployments).
    pub fn tenant(&self) -> u64 {
        self.tenant
    }

    /// Sets the tenant this executor acts for.  Cache keys are namespaced
    /// by tenant, and [`QbExecutor::run_workload_transported`] over
    /// [`BinTransport::Tcp`] refuses a client authenticated as a
    /// *different* tenant — the daemon would silently serve the other
    /// tenant's bins otherwise.
    pub fn set_tenant(&mut self, tenant: u64) {
        self.tenant = tenant;
        self.cache.set_tenant(tenant);
    }

    /// Sets how episodes are shaped on the wire (builder form).
    pub fn with_plan_mode(mut self, mode: PlanMode) -> Self {
        self.plan_mode = mode;
        self
    }

    /// How episodes are shaped on the wire.
    pub fn plan_mode(&self) -> PlanMode {
        self.plan_mode
    }

    /// Sets how episodes are shaped on the wire: [`PlanMode::Composed`]
    /// (the default — one-round `BinPairRequest`s wherever the shard's
    /// engine supports them) or [`PlanMode::FineGrained`] (force the
    /// multi-round path everywhere, for baseline comparisons).
    pub fn set_plan_mode(&mut self, mode: PlanMode) {
        self.plan_mode = mode;
    }

    /// Sets how episodes are dispatched over TCP (builder form).
    pub fn with_wire_mode(mut self, mode: WireMode) -> Self {
        self.wire_mode = mode;
        self
    }

    /// How episodes are dispatched over a TCP transport.
    pub fn wire_mode(&self) -> WireMode {
        self.wire_mode
    }

    /// Sets how episodes are dispatched over a TCP transport:
    /// [`WireMode::Pipelined`] (the default — a bounded window of composed
    /// requests in flight per shard, demultiplexed by correlation id) or
    /// [`WireMode::LockStep`] (one request, one awaited response — the
    /// pre-pipelining behaviour, kept selectable so the equivalence tests
    /// and the `experiments pipeline` gate can compare both disciplines on
    /// identical deployments).
    pub fn set_wire_mode(&mut self, mode: WireMode) {
        self.wire_mode = mode;
    }

    /// Installs a planner configuration (builder form).
    pub fn with_planner(mut self, config: PlannerConfig) -> Result<Self> {
        self.set_planner(config)?;
        Ok(self)
    }

    /// The planner configuration in force.
    pub fn planner(&self) -> &PlannerConfig {
        &self.planner
    }

    /// Installs a planner configuration.  Fails if the residual predicate
    /// mentions the searchable attribute on either side — a residual on
    /// the binned attribute would travel in clear-text inside the episode
    /// request and leak exactly what binning hides.  Changing the residual
    /// drops the hot-bin cache: cached non-sensitive bins hold the
    /// *filtered* stream of whatever residual fetched them, so they are
    /// only valid while that residual stays in force.
    pub fn set_planner(&mut self, config: PlannerConfig) -> Result<()> {
        Self::validate_residual(
            config.residual.as_ref(),
            self.sensitive_attr,
            self.nonsensitive_attr,
        )?;
        if config.residual != self.planner.residual {
            self.cache.clear();
        }
        self.planner = config;
        Ok(())
    }

    /// Rejects residual predicates that mention a searchable attribute.
    /// Called both when a planner config is installed and again at
    /// outsourcing time, when the searchable attribute ids first become
    /// known.
    fn validate_residual(
        residual: Option<&Predicate>,
        sensitive_attr: Option<AttrId>,
        nonsensitive_attr: Option<AttrId>,
    ) -> Result<()> {
        let Some(residual) = residual else {
            return Ok(());
        };
        let attrs = residual.attrs();
        for searchable in [sensitive_attr, nonsensitive_attr].into_iter().flatten() {
            if attrs.contains(&searchable) {
                return Err(PdsError::Config(format!(
                    "residual predicate mentions searchable attribute {searchable:?}; \
                     selections on the binned attribute must go through Query Binning, \
                     not ride the wire in clear-text"
                )));
            }
        }
        Ok(())
    }

    /// Replaces the hot-bin cache with a fresh one holding at most
    /// `capacity` bins (entries and counters are reset).
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        self.cache = BinCache::new(capacity);
        self.cache.set_tenant(self.tenant);
    }

    /// Cumulative hit/miss counters of the hot-bin cache
    /// (`hits + misses == fetches` over every pair retrieval attempted).
    pub fn cache_stats(&self) -> BinCacheStats {
        self.cache.stats()
    }

    /// The hot-bin cache itself (for introspection in tests/experiments).
    pub fn cache(&self) -> &BinCache {
        &self.cache
    }

    /// The binning metadata in force.
    pub fn binning(&self) -> &QueryBinning {
        &self.binning
    }

    /// The prototype back-end engine (per-shard forks hold the outsourced
    /// state once [`QbExecutor::outsource`] has run).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The forked engines serving each shard (empty before outsourcing).
    pub fn shard_engines(&self) -> &[E] {
        &self.shard_engines
    }

    /// Ids of the fake tuples added during outsourcing.
    pub fn fake_tuple_ids(&self) -> &[TupleId] {
        &self.fake_tuple_ids
    }

    /// The searchable attribute's position in the partitioned schemas
    /// (available once outsourced).
    pub fn searchable_attr(&self) -> Option<AttrId> {
        self.sensitive_attr
    }

    /// Counters describing the most recent selection.
    pub fn last_stats(&self) -> SelectionStats {
        self.last_stats
    }

    /// Outsources the partitioned relation: `Rns` in clear-text (replicated
    /// to every shard), `Rs` (augmented with fake tuples) through one forked
    /// engine per shard, each shard receiving exactly the sensitive bins the
    /// placement assigns to it.
    pub fn outsource<C: BinRoutedCloud>(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut C,
        partitioned: &PartitionedRelation,
    ) -> Result<()> {
        let engines = (0..cloud.shard_count())
            .map(|_| self.engine.fork())
            .collect();
        self.outsource_with_engines(owner, cloud, partitioned, engines)
    }

    /// Outsources with an explicit engine per shard instead of forking the
    /// prototype — a **heterogeneous** deployment when `E` is
    /// `Box<dyn SecureSelectionEngine>` and the boxes hold different
    /// back-ends.  Each shard's episodes run through its own engine, and
    /// planning consults each engine's composed-episode capability
    /// individually, so one-round and multi-round back-ends mix freely in
    /// one deployment.
    pub fn outsource_with_engines<C: BinRoutedCloud>(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut C,
        partitioned: &PartitionedRelation,
        engines: Vec<E>,
    ) -> Result<()> {
        if engines.len() != cloud.shard_count() {
            return Err(PdsError::Config(format!(
                "{} engines for {} shards",
                engines.len(),
                cloud.shard_count()
            )));
        }
        let attr_name = self.binning.attr_name().to_string();
        let s_attr = partitioned.sensitive.schema().attr_id(&attr_name)?;
        self.sensitive_attr = Some(s_attr);

        cloud.prepare_routing(self.binning.sensitive_bin_count())?;

        // Clear-text non-sensitive side with its cloud-side index.
        cloud.upload_plaintext(partitioned.nonsensitive.clone(), &attr_name)?;
        self.nonsensitive_attr = cloud.shard(0).plain_searchable_attr();

        // A residual installed before outsourcing could not be checked
        // against the searchable attributes; re-validate now they exist.
        Self::validate_residual(
            self.planner.residual.as_ref(),
            self.sensitive_attr,
            self.nonsensitive_attr,
        )?;

        // A re-outsource starts a fresh cache epoch: bin numbering may
        // change with the new binning, so neither cached contents nor the
        // seen-pair history may carry over.
        self.cache = BinCache::new(self.cache.capacity());
        self.cache.set_tenant(self.tenant);

        // Sensitive side: clone, append fake tuples per bin, then split into
        // one sub-relation per shard (a sensitive bin lives on one shard).
        let augmented = self.augment_with_fakes(&partitioned.sensitive, s_attr)?;
        let per_shard = self.split_by_shard(cloud, &augmented, s_attr)?;
        self.shard_engines = engines;
        for (shard, relation) in per_shard.iter().enumerate() {
            self.shard_engines[shard].outsource(owner, cloud.shard_mut(shard), relation, s_attr)?;
        }
        self.outsourced = true;
        Ok(())
    }

    /// Groups the augmented sensitive relation into one sub-relation per
    /// shard, following the cloud's bin routing.
    fn split_by_shard<C: BinRoutedCloud>(
        &self,
        cloud: &C,
        augmented: &Relation,
        attr: AttrId,
    ) -> Result<Vec<Relation>> {
        let mut per_shard: Vec<Relation> = (0..cloud.shard_count())
            .map(|s| {
                Relation::new(
                    format!("{}@shard{s}", augmented.name()),
                    augmented.schema().clone(),
                )
            })
            .collect();
        for t in augmented.tuples() {
            let assignment = self
                .binning
                .sensitive_assignment(t.value(attr))
                .ok_or_else(|| {
                    PdsError::Query(format!(
                        "sensitive value {} has no bin assignment",
                        t.value(attr)
                    ))
                })?;
            let shard = cloud.route_sensitive_bin(assignment.bin);
            per_shard[shard].insert_with_id(t.id, t.values.clone())?;
        }
        Ok(per_shard)
    }

    /// Builds the augmented sensitive relation containing the fake tuples
    /// the general case prescribes (each fake carries a value of its bin so
    /// the cloud returns it whenever that bin is queried).
    ///
    /// Every non-searchable attribute of a fake tuple is `NULL`; after
    /// encryption the fake is indistinguishable from a real row to the
    /// cloud, while the owner recognises fakes by their tuple ids (tracked
    /// in [`QbExecutor::fake_tuple_ids`]).
    fn augment_with_fakes(&mut self, sensitive: &Relation, attr: AttrId) -> Result<Relation> {
        let mut augmented = sensitive.clone();
        let arity = sensitive.schema().arity();
        let mut next_id = sensitive
            .tuples()
            .iter()
            .map(|t| t.id.raw())
            .max()
            .map_or(1_000_000, |m| m + 1_000_000);
        self.fake_tuple_ids.clear();
        self.fake_id_set.clear();
        for bin in 0..self.binning.sensitive_bin_count() {
            let budget = self.binning.fake_tuples_per_bin()[bin];
            if budget == 0 {
                continue;
            }
            let bin_values = self.binning.sensitive_bin(bin);
            if bin_values.is_empty() {
                continue;
            }
            for k in 0..budget {
                // Spread fakes across the bin's values round-robin so no
                // single value's padded count looks anomalous.
                let value = &bin_values[(k as usize) % bin_values.len()];
                let id = TupleId::new(next_id);
                next_id += 1;
                let mut values = vec![Value::Null; arity];
                values[attr.index()] = value.clone();
                augmented.insert_with_id(id, values)?;
                self.fake_tuple_ids.push(id);
                self.fake_id_set.insert(id);
            }
        }
        Ok(augmented)
    }

    /// Compiles the episode step retrieving one bin pair: routed to the
    /// shard hosting the sensitive bin, composed iff the plan mode allows
    /// it and that shard's engine can answer a bin-set request in one
    /// round.
    // pds-allow: plaintext-egress(BinEpisodeRequest is the owner-side episode description, not a wire frame: sensitive_values leave only as pds_crypto search tags when the session encodes the episode, and set_planner rejects residuals mentioning sensitive or searchable attributes before wire_residual will release one)
    fn compile_step<C: BinRoutedCloud>(
        &self,
        cloud: &C,
        index: usize,
        pair: BinPair,
    ) -> EpisodeStep {
        let shard = cloud.route_sensitive_bin(pair.sensitive_bin);
        let composed = self.plan_mode == PlanMode::Composed
            && self
                .shard_engines
                .get(shard)
                .is_some_and(SecureSelectionEngine::composes_episodes);
        EpisodeStep {
            index,
            pair,
            shard,
            composed,
            request: BinEpisodeRequest {
                sensitive_bin: pair.sensitive_bin,
                nonsensitive_bin: pair.nonsensitive_bin,
                sensitive_values: self.binning.sensitive_bin(pair.sensitive_bin).to_vec(),
                nonsensitive_values: self.binning.nonsensitive_bin(pair.nonsensitive_bin),
                pushdown: self.planner.wire_residual().cloned(),
            },
        }
    }

    /// Fetches (or serves from cache) the raw result streams of one bin
    /// pair, executing a single-step plan on a miss.  A **hit** requires
    /// both bins cached *and* the pair previously co-observed by the cloud
    /// — anything weaker distorts the cloud's view (lone-bin episodes break
    /// count indistinguishability; serving a never-co-observed pair erases
    /// a co-occurrence edge); see `pds_cloud::cache`.  On a miss the
    /// fetched bins are cached individually, so a pair sharing one bin with
    /// this one reuses its contents once that pair has been observed once
    /// itself.  Returns `(nonsensitive, sensitive, cached, rounds)`.
    fn retrieve_pair_planned<C: BinRoutedCloud>(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut C,
        pair: BinPair,
    ) -> Result<(Vec<Tuple>, Vec<Tuple>, bool, u64)> {
        if let Some((s_tuples, ns_tuples)) = self
            .cache
            .get_pair(pair.sensitive_bin, pair.nonsensitive_bin)
        {
            owner.note_bin_cache(true);
            return Ok((ns_tuples, s_tuples, true, 0));
        }
        owner.note_bin_cache(false);
        let step = self.compile_step(cloud, 0, pair);
        let engine = self
            .shard_engines
            .get_mut(step.shard)
            .ok_or_else(|| PdsError::Query(format!("no engine for shard {}", step.shard)))?;
        let result = execute_episode(owner, cloud.shard_mut(step.shard), engine, &step)?;
        if self.cache.capacity() > 0 {
            self.cache.store_pair(
                pair.sensitive_bin,
                result.outcome.sensitive.clone(),
                pair.nonsensitive_bin,
                result.outcome.nonsensitive.clone(),
            );
        }
        Ok((
            result.outcome.nonsensitive,
            result.outcome.sensitive,
            false,
            result.rounds,
        ))
    }

    /// [`QbExecutor::retrieve_pair_planned`] over a TCP client: the single
    /// miss episode travels as frames to the shard daemon hosting the
    /// sensitive bin, with the local `cloud` consulted only for routing.
    fn retrieve_pair_tcp<C: BinRoutedCloud>(
        &mut self,
        owner: &mut DbOwner,
        cloud: &C,
        client: &TcpCloudClient,
        pair: BinPair,
    ) -> Result<(Vec<Tuple>, Vec<Tuple>, bool, u64)> {
        if let Some((s_tuples, ns_tuples)) = self
            .cache
            .get_pair(pair.sensitive_bin, pair.nonsensitive_bin)
        {
            owner.note_bin_cache(true);
            return Ok((ns_tuples, s_tuples, true, 0));
        }
        owner.note_bin_cache(false);
        let step = self.compile_step(cloud, 0, pair);
        let engine = self
            .shard_engines
            .get_mut(step.shard)
            .ok_or_else(|| PdsError::Query(format!("no engine for shard {}", step.shard)))?;
        let mut conn = client.checkout(step.shard)?;
        let mut session = RemoteSession::new(&mut conn);
        let outcome = execute_episode_remote(owner, &mut session, engine, &step);
        drop(session);
        let result = match outcome {
            Ok(result) => {
                client.checkin(step.shard, conn);
                result
            }
            // An errored connection may be desynchronised — drop it
            // instead of returning it to the pool.
            Err(e) => return Err(e),
        };
        if self.cache.capacity() > 0 {
            self.cache.store_pair(
                pair.sensitive_bin,
                result.outcome.sensitive.clone(),
                pair.nonsensitive_bin,
                result.outcome.nonsensitive.clone(),
            );
        }
        Ok((
            result.outcome.nonsensitive,
            result.outcome.sensitive,
            false,
            result.rounds,
        ))
    }

    /// Runs a QB selection for a single value.
    pub fn select<C: BinRoutedCloud>(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut C,
        value: &Value,
    ) -> Result<Vec<Tuple>> {
        if !self.outsourced {
            return Err(PdsError::Query("deployment not outsourced yet".into()));
        }
        let Some(pair) = self.binning.retrieve(value) else {
            // The value occurs nowhere; nothing needs to be retrieved
            // (Algorithm 2's final case).
            self.last_stats = SelectionStats::default();
            return Ok(Vec::new());
        };
        let s_attr = self.sensitive_attr.expect("set during outsourcing");
        let ns_attr = self
            .nonsensitive_attr
            .ok_or_else(|| PdsError::Cloud("plaintext relation missing".into()))?;

        let sensitive_requested = self.binning.sensitive_bin(pair.sensitive_bin).len();
        let nonsensitive_requested = self.binning.nonsensitive_bin_len(pair.nonsensitive_bin);
        let (ns_tuples, s_tuples, cached, rounds) =
            self.retrieve_pair_planned(owner, cloud, pair)?;

        // qmerge: drop fake tuples (recognised by their ids, which only the
        // owner knows), keep only tuples matching the actual query value,
        // and concatenate.
        let before = ns_tuples.len() + s_tuples.len();
        let answer = merge_point_answer(
            &self.fake_id_set,
            s_attr,
            ns_attr,
            value,
            self.planner.residual.as_ref(),
            ns_tuples,
            s_tuples,
        );

        self.last_stats = SelectionStats {
            sensitive_values_requested: sensitive_requested,
            nonsensitive_values_requested: nonsensitive_requested,
            tuples_before_filter: before,
            tuples_in_answer: answer.len(),
            cache_hits: usize::from(cached),
            cache_misses: usize::from(!cached),
            rounds,
        };
        Ok(answer)
    }

    /// Retrieves one bin pair exactly as a point query would (same
    /// adversarial view, same costs) and returns *all* real tuples of both
    /// bins without filtering to a particular value.  The range, aggregate
    /// and join extensions build on this.  [`QbExecutor::last_stats`] is
    /// refreshed just as for a point query, so extension callers observe the
    /// counters of their own retrieval rather than a stale previous one.
    pub fn fetch_bin_pair<C: BinRoutedCloud>(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut C,
        pair: BinPair,
    ) -> Result<Vec<Tuple>> {
        if !self.outsourced {
            return Err(PdsError::Query("deployment not outsourced yet".into()));
        }
        let sensitive_requested = self.binning.sensitive_bin(pair.sensitive_bin).len();
        let nonsensitive_requested = self.binning.nonsensitive_bin_len(pair.nonsensitive_bin);
        let (ns_tuples, s_tuples, cached, rounds) =
            self.retrieve_pair_planned(owner, cloud, pair)?;
        let before = ns_tuples.len() + s_tuples.len();
        let residual = self.planner.residual.as_ref();
        let keep = |t: &Tuple| residual.map_or(true, |p| p.matches(t));
        let mut out: Vec<Tuple> = Vec::with_capacity(before);
        for t in s_tuples {
            if !self.fake_id_set.contains(&t.id) && !DbOwner::is_fake(&t) && keep(&t) {
                out.push(t);
            }
        }
        out.extend(ns_tuples.into_iter().filter(|t| keep(t)));
        self.last_stats = SelectionStats {
            sensitive_values_requested: sensitive_requested,
            nonsensitive_values_requested: nonsensitive_requested,
            tuples_before_filter: before,
            tuples_in_answer: out.len(),
            cache_hits: usize::from(cached),
            cache_misses: usize::from(!cached),
            rounds,
        };
        Ok(out)
    }

    /// Invalidates the hot-bin cache for a planned insert of `value` on the
    /// given side (see `pds_core::extensions::InsertPlanner`): cached bin
    /// snapshots would otherwise serve stale contents after the insert.
    ///
    /// A sensitive-side insert conservatively drops *every* cached bin —
    /// the general case may add padding fakes to any sensitive bin to keep
    /// tuple counts balanced.  A non-sensitive insert of a known value only
    /// drops that value's clear-text bin; an unknown value (which forces a
    /// slot assignment or a rebuild) also clears everything.
    pub fn invalidate_cache_on_insert(&mut self, value: &Value, sensitive: bool) {
        if sensitive {
            self.cache.clear();
            return;
        }
        match self.binning.nonsensitive_assignment(value) {
            Some(assign) => {
                self.cache
                    .invalidate(BinKey::nonsensitive(assign.bin).for_tenant(self.tenant));
            }
            None => self.cache.clear(),
        }
    }

    /// Runs a whole workload of point queries, returning the per-query
    /// answer sizes (used by experiments that only need cardinalities).
    pub fn run_workload<C: BinRoutedCloud>(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut C,
        values: &[Value],
    ) -> Result<Vec<usize>> {
        values
            .iter()
            .map(|v| self.select(owner, cloud, v).map(|ts| ts.len()))
            .collect()
    }

    /// Runs a batch of point queries with the bin fetches of different
    /// shards dispatched through `transport` — with
    /// [`BinTransport::Threaded`], each shard's episode stream runs on its
    /// own OS thread, so [`TransportedRun::wall_clock_sec`] is a *measured*
    /// parallel wall-clock rather than the router's max-over-shards model.
    ///
    /// Answers are byte-identical to running [`QbExecutor::select`] per
    /// value: queries are grouped by home shard (episode order within a
    /// shard is preserved), hot-bin cache hits are answered owner-side
    /// before the fan-out — repeat occurrences of a pair within the batch
    /// wait for the first occurrence's fetch and hit afterwards, just as
    /// they would sequentially — and every per-shard engine/owner fork's
    /// counters are folded back afterwards.  [`QbExecutor::last_stats`] is
    /// *not* updated (there is no single "last" query in a batch).
    ///
    /// With [`BinTransport::Tcp`], the shards live in per-shard
    /// [`pds_cloud::ShardDaemon`] processes behind the transport's pooled
    /// client: each shard's episode stream runs on its own OS thread over a
    /// checked-out connection, every episode travelling as `pds-proto`
    /// frames through a [`RemoteSession`].  The local `cloud` then only
    /// provides the bin→shard routing; its in-process shard state is never
    /// touched.  The client must authenticate as this executor's tenant.
    pub fn run_workload_transported<C: BinRoutedCloud>(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut C,
        values: &[Value],
        transport: &BinTransport,
    ) -> Result<TransportedRun> {
        if !self.outsourced {
            return Err(PdsError::Query("deployment not outsourced yet".into()));
        }
        let s_attr = self.sensitive_attr.expect("set during outsourcing");
        let ns_attr = self
            .nonsensitive_attr
            .ok_or_else(|| PdsError::Cloud("plaintext relation missing".into()))?;
        let shard_count = cloud.shard_count();
        if self.shard_engines.len() < shard_count {
            return Err(PdsError::Query(format!(
                "{} engines for {shard_count} shards",
                self.shard_engines.len()
            )));
        }
        if let BinTransport::Tcp(client) = transport {
            if client.shard_count() != shard_count {
                return Err(PdsError::Config(format!(
                    "TCP client spans {} shard daemons but the deployment routes {shard_count} shards",
                    client.shard_count()
                )));
            }
            if client.tenant() != self.tenant {
                return Err(PdsError::Config(format!(
                    "TCP client authenticates as tenant {} but this executor is \
                     namespaced to tenant {}",
                    client.tenant(),
                    self.tenant
                )));
            }
        }

        // Compile the batch: cache hits are captured owner-side right away,
        // misses become episode steps grouped by the shard hosting their
        // sensitive bin.  With caching enabled, repeat occurrences of a
        // pair already pending in this batch are deferred as waiters
        // instead of fetched again — matching the sequential path, where
        // every occurrence after the first is a hit.  (Their cache lookup
        // happens after the fan-out, once the first occurrence has
        // populated the cache.)
        let mut plan = self.plan_workload(owner, cloud, values);
        let mut answers: Vec<Vec<Tuple>> = vec![Vec::new(); values.len()];
        let mut cache_hits = plan.cache_served.len();
        let mut cache_misses = plan.step_count();
        for served in &plan.cache_served {
            answers[served.index] = merge_point_answer(
                &self.fake_id_set,
                s_attr,
                ns_attr,
                &values[served.index],
                self.planner.residual.as_ref(),
                served.nonsensitive.clone(),
                served.sensitive.clone(),
            );
        }

        // Fan the per-shard episode streams out.  Locally (sequential,
        // threaded, simulated) each task owns its episode steps, the
        // disjoint `&mut` of its engine, and a forked owner (same keys,
        // private counters) so it is `Send` as a whole; over TCP the same
        // per-shard tasks drive checked-out daemon connections instead.
        let per_shard_steps = std::mem::take(&mut plan.per_shard);
        let (slots, wall_clock_sec, sim_wall_clock_sec, mut rounds) = match transport {
            BinTransport::Tcp(client) => {
                let (slots, wall, rounds) = tcp_fan_out(
                    owner,
                    &mut self.shard_engines,
                    client,
                    per_shard_steps,
                    self.wire_mode,
                );
                (slots, wall, None, rounds)
            }
            local => {
                let mut tasks: Vec<Option<_>> = Vec::with_capacity(shard_count);
                for (engine, (shard_idx, steps)) in self
                    .shard_engines
                    .iter_mut()
                    .zip(per_shard_steps.into_iter().enumerate())
                {
                    if steps.is_empty() {
                        tasks.push(None);
                        continue;
                    }
                    let mut task_owner = owner.fork(shard_idx as u64 + 1);
                    tasks.push(Some(move |shard: &mut CloudServer| {
                        let mut episodes = Vec::with_capacity(steps.len());
                        for step in steps {
                            match execute_episode(&mut task_owner, shard, engine, &step) {
                                Ok(res) => episodes.push((step.index, step.pair, res)),
                                Err(e) => return (*task_owner.metrics(), Err(e)),
                            }
                        }
                        (*task_owner.metrics(), Ok(episodes))
                    }));
                }
                let report = local.dispatch(cloud.shards_mut(), tasks);
                let rounds = report.total_rounds();
                (
                    report.per_shard,
                    report.wall_clock_sec,
                    report.sim_wall_clock_sec,
                    rounds,
                )
            }
        };

        // Fold every fork's counters back before surfacing any error, so a
        // failed shard's work is still accounted for.
        let mut outcomes = Vec::new();
        for slot in slots.into_iter().flatten() {
            let (fork_metrics, outcome): (Metrics, Result<Vec<_>>) = slot;
            owner.absorb_metrics(&fork_metrics);
            outcomes.push(outcome);
        }
        for outcome in outcomes {
            for (idx, pair, res) in outcome? {
                if self.cache.capacity() > 0 {
                    self.cache.store_pair(
                        pair.sensitive_bin,
                        res.outcome.sensitive.clone(),
                        pair.nonsensitive_bin,
                        res.outcome.nonsensitive.clone(),
                    );
                }
                answers[idx] = merge_point_answer(
                    &self.fake_id_set,
                    s_attr,
                    ns_attr,
                    &values[idx],
                    self.planner.residual.as_ref(),
                    res.outcome.nonsensitive,
                    res.outcome.sensitive,
                );
            }
        }

        // Waiters look the cache up now that the fan-out has populated it.
        // A waiter can still miss when a later store in the same batch
        // evicted its bins (tiny capacities); it then fetches sequentially,
        // exactly as the select path would.
        for (idx, pair) in plan.waiters {
            let (ns_tuples, s_tuples, cached, waiter_rounds) = match transport {
                BinTransport::Tcp(client) => self.retrieve_pair_tcp(owner, cloud, client, pair)?,
                _ => self.retrieve_pair_planned(owner, cloud, pair)?,
            };
            if cached {
                cache_hits += 1;
            } else {
                cache_misses += 1;
                rounds += waiter_rounds;
            }
            answers[idx] = merge_point_answer(
                &self.fake_id_set,
                s_attr,
                ns_attr,
                &values[idx],
                self.planner.residual.as_ref(),
                ns_tuples,
                s_tuples,
            );
        }

        Ok(TransportedRun {
            answers,
            wall_clock_sec,
            sim_wall_clock_sec,
            cache_hits,
            cache_misses,
            rounds,
        })
    }

    /// Compiles a batch into its [`QueryPlan`] **without executing it** —
    /// the introspection entry point the plan-equivalence suite replays:
    /// an identically-built deployment with the same planner configuration
    /// and workload must compile to a byte-identical plan
    /// (`format!("{plan:?}")`).  Cache lookups are performed (and counted)
    /// exactly as the executing path would, but nothing is fetched and the
    /// cache is never populated.
    pub fn compile_workload<C: BinRoutedCloud>(
        &mut self,
        owner: &mut DbOwner,
        cloud: &C,
        values: &[Value],
    ) -> QueryPlan {
        self.plan_workload(owner, cloud, values)
    }

    /// Compiles one batch into a [`QueryPlan`]: resolves each value to its
    /// bin pair, serves what the owner-side cache can, defers in-batch
    /// repeats as waiters, and groups the remaining episodes by home shard
    /// with their composed/fine-grained shape decided per shard engine.
    fn plan_workload<C: BinRoutedCloud>(
        &mut self,
        owner: &mut DbOwner,
        cloud: &C,
        values: &[Value],
    ) -> QueryPlan {
        let _span = pds_obs::obs_span("plan.compile");
        let mut plan = QueryPlan::new(cloud.shard_count());
        let mut pending_pairs: HashSet<(usize, usize)> = HashSet::new();
        for (idx, value) in values.iter().enumerate() {
            let Some(pair) = self.binning.retrieve(value) else {
                continue;
            };
            let pair_key = (pair.sensitive_bin, pair.nonsensitive_bin);
            if self.cache.capacity() > 0 && pending_pairs.contains(&pair_key) {
                plan.waiters.push((idx, pair));
                continue;
            }
            if let Some((s_tuples, ns_tuples)) = self
                .cache
                .get_pair(pair.sensitive_bin, pair.nonsensitive_bin)
            {
                owner.note_bin_cache(true);
                plan.cache_served.push(CacheServed {
                    index: idx,
                    pair,
                    nonsensitive: ns_tuples,
                    sensitive: s_tuples,
                });
                continue;
            }
            owner.note_bin_cache(false);
            pending_pairs.insert(pair_key);
            let step = self.compile_step(cloud, idx, pair);
            plan.per_shard[step.shard].push(step);
        }
        // The optimizer pass: per-shard episodes settle into deterministic
        // bin-major order (results are keyed by `EpisodeStep::index`, so
        // answer alignment is order-independent).
        if self.planner.reorder {
            reorder_for_locality(&mut plan);
        }
        plan
    }
}

/// The outcome of [`QbExecutor::run_workload_transported`].
#[derive(Debug)]
pub struct TransportedRun {
    /// Per-query answers, aligned with the input values.
    pub answers: Vec<Vec<Tuple>>,
    /// Measured wall-clock seconds of the shard fan-out (excludes
    /// owner-side cache serving and the final merge).
    pub wall_clock_sec: f64,
    /// Simulated-network wall-clock of the fan-out's wire traffic —
    /// `Some` when the batch ran over [`BinTransport::Simulated`]: every
    /// frame the shards moved, replayed through the event-driven
    /// `pds_proto::NetSim`, with per-shard latency overlapping.
    pub sim_wall_clock_sec: Option<f64>,
    /// Queries answered from the owner-side hot-bin cache.
    pub cache_hits: usize,
    /// Queries that fetched their bin pair from a shard.
    pub cache_misses: usize,
    /// Total owner↔cloud rounds over every episode of the batch (cache
    /// hits contribute none; composed episodes one each; fine-grained
    /// episodes as many as their back-end's §V-B procedure needs).
    pub rounds: u64,
}

/// One shard task's output: the fork's final counters plus its episode
/// results (or the first error), the same shape
/// [`BinTransport::dispatch`]'s closures produce so both fan-outs share
/// the executor's fold/merge tail.
type ShardSlot = (Metrics, Result<Vec<(usize, BinPair, EpisodeResult)>>);

/// The remote twin of [`BinTransport::dispatch`] for
/// [`BinTransport::Tcp`]: one scoped OS thread per shard with work, each
/// checking a pooled daemon connection out, streaming its episodes as
/// `pds-proto` frames through a [`RemoteSession`], and checking the
/// connection back in on success (an errored connection may be
/// desynchronised and is dropped instead).  Returns the per-shard slots,
/// the measured wall-clock seconds, and the total owner↔cloud rounds
/// counted client-side (one per framed exchange).
///
/// With [`WireMode::Pipelined`], a shard whose engine splits its composed
/// episodes ([`SecureSelectionEngine::pipelines_composed`]) and whose
/// steps are all composed runs [`execute_shard_pipelined`] instead: the
/// whole episode stream written ahead under a bounded in-flight window,
/// responses demultiplexed by correlation id.  Shards that don't qualify
/// fall back to lock-step within the same batch.
fn tcp_fan_out<E: SecureSelectionEngine>(
    owner: &mut DbOwner,
    engines: &mut [E],
    client: &TcpCloudClient,
    per_shard_steps: Vec<Vec<EpisodeStep>>,
    mode: WireMode,
) -> (Vec<Option<ShardSlot>>, f64, u64) {
    let mut tasks: Vec<Option<_>> = Vec::with_capacity(per_shard_steps.len());
    for (engine, (shard_idx, steps)) in engines
        .iter_mut()
        .zip(per_shard_steps.into_iter().enumerate())
    {
        if steps.is_empty() {
            tasks.push(None);
            continue;
        }
        let mut task_owner = owner.fork(shard_idx as u64 + 1);
        let client = client.clone();
        tasks.push(Some(move || -> (Metrics, u64, Result<Vec<_>>) {
            if let WireMode::Pipelined { window } = mode {
                if engine.pipelines_composed() && steps.iter().all(|s| s.composed) {
                    return match execute_shard_pipelined(
                        &mut task_owner,
                        &client,
                        shard_idx,
                        engine,
                        &steps,
                        window,
                    ) {
                        Ok((episodes, rounds)) => (*task_owner.metrics(), rounds, Ok(episodes)),
                        Err(e) => (*task_owner.metrics(), 0, Err(e)),
                    };
                }
            }
            let mut conn = match client.checkout(shard_idx) {
                Ok(conn) => conn,
                Err(e) => return (*task_owner.metrics(), 0, Err(e)),
            };
            let mut session = RemoteSession::new(&mut conn);
            let mut episodes = Vec::with_capacity(steps.len());
            for step in &steps {
                match execute_episode_remote(&mut task_owner, &mut session, engine, step) {
                    Ok(res) => episodes.push((step.index, step.pair, res)),
                    Err(e) => {
                        let rounds = session.total_rounds();
                        return (*task_owner.metrics(), rounds, Err(e));
                    }
                }
            }
            let rounds = session.total_rounds();
            drop(session);
            client.checkin(shard_idx, conn);
            (*task_owner.metrics(), rounds, Ok(episodes))
        }));
    }
    let start = std::time::Instant::now();
    let joined: Vec<Option<(Metrics, u64, Result<Vec<_>>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .into_iter()
            .map(|task| task.map(|f| scope.spawn(f)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.map(|h| h.join().expect("remote shard task panicked")))
            .collect()
    });
    let wall_clock_sec = start.elapsed().as_secs_f64();
    let mut rounds = 0u64;
    let slots = joined
        .into_iter()
        .map(|slot| {
            slot.map(|(metrics, shard_rounds, outcome)| {
                rounds += shard_rounds;
                (metrics, outcome)
            })
        })
        .collect();
    (slots, wall_clock_sec, rounds)
}

/// `qmerge` of §II for a point query: drop fakes (by id and by marker),
/// keep only tuples matching the queried value — and the residual
/// predicate, when one is in force — then concatenate both streams.
///
/// The residual is applied owner-side *unconditionally*: on the sensitive
/// stream the cloud can never evaluate it (the tuples are encrypted), and
/// on the non-sensitive stream re-applying what pushdown already filtered
/// is idempotent — which is exactly what makes answers byte-identical
/// whether the residual rode the wire or not.
fn merge_point_answer(
    fake_ids: &HashSet<TupleId>,
    s_attr: AttrId,
    ns_attr: AttrId,
    value: &Value,
    residual: Option<&Predicate>,
    ns_tuples: Vec<Tuple>,
    s_tuples: Vec<Tuple>,
) -> Vec<Tuple> {
    let keep = |t: &Tuple| residual.map_or(true, |p| p.matches(t));
    let mut answer: Vec<Tuple> = Vec::new();
    for t in s_tuples {
        if !fake_ids.contains(&t.id)
            && !DbOwner::is_fake(&t)
            && t.value(s_attr) == value
            && keep(&t)
        {
            answer.push(t);
        }
    }
    for t in ns_tuples {
        if t.value(ns_attr) == value && keep(&t) {
            answer.push(t);
        }
    }
    answer
}

impl<E: SecureSelectionEngine> std::fmt::Debug for QbExecutor<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QbExecutor")
            .field("engine", &self.engine.name())
            .field("outsourced", &self.outsourced)
            .field("fake_tuples", &self.fake_tuple_ids.len())
            .finish_non_exhaustive()
    }
}

/// A non-QB ("naive partitioned") executor used as the insecure baseline in
/// tests, examples and attack demonstrations: each query is sent as-is to
/// both sides, which is exactly the leaky execution of Example 2.
pub struct NaivePartitionedExecutor<E: SecureSelectionEngine> {
    engine: E,
    attr_name: String,
    sensitive_attr: Option<AttrId>,
    outsourced: bool,
}

impl<E: SecureSelectionEngine> NaivePartitionedExecutor<E> {
    /// Creates the naive executor for a searchable attribute.
    pub fn new(attr_name: impl Into<String>, engine: E) -> Self {
        NaivePartitionedExecutor {
            engine,
            attr_name: attr_name.into(),
            sensitive_attr: None,
            outsourced: false,
        }
    }

    /// Outsources both parts without any binning or padding.
    pub fn outsource(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        partitioned: &PartitionedRelation,
    ) -> Result<()> {
        let s_attr = partitioned.sensitive.schema().attr_id(&self.attr_name)?;
        self.sensitive_attr = Some(s_attr);
        cloud.upload_plaintext(partitioned.nonsensitive.clone(), &self.attr_name)?;
        self.engine
            .outsource(owner, cloud, &partitioned.sensitive, s_attr)?;
        self.outsourced = true;
        Ok(())
    }

    /// Runs a naive partitioned selection: the exact value goes to both
    /// sides in a single episode.
    pub fn select(
        &mut self,
        owner: &mut DbOwner,
        cloud: &mut CloudServer,
        value: &Value,
    ) -> Result<Vec<Tuple>> {
        if !self.outsourced {
            return Err(PdsError::Query("deployment not outsourced yet".into()));
        }
        cloud.begin_query();
        let ns = cloud.plain_select_in(std::slice::from_ref(value))?;
        let s = self
            .engine
            .select(owner, cloud, std::slice::from_ref(value))?;
        cloud.end_query();
        let mut answer = s;
        answer.extend(ns);
        Ok(answer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::BinningConfig;
    use pds_adversary::check_partitioned_security;
    use pds_cloud::NetworkModel;
    use pds_storage::Partitioner;
    use pds_systems::NonDetScanEngine;
    use pds_workload::{employee_relation, employee_sensitivity_policy};

    fn employee_parts() -> PartitionedRelation {
        let rel = employee_relation();
        let policy = employee_sensitivity_policy(&rel).unwrap();
        Partitioner::new(policy).split(&rel).unwrap()
    }

    fn qb_setup() -> (
        DbOwner,
        CloudServer,
        QbExecutor<NonDetScanEngine>,
        PartitionedRelation,
    ) {
        let parts = employee_parts();
        let binning = QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
        let mut executor = QbExecutor::new(binning, NonDetScanEngine::new());
        let mut owner = DbOwner::new(5);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        executor.outsource(&mut owner, &mut cloud, &parts).unwrap();
        (owner, cloud, executor, parts)
    }

    #[test]
    fn qb_answers_match_direct_execution() {
        let (mut owner, mut cloud, mut executor, parts) = qb_setup();
        let attr = parts.sensitive.schema().attr_id("EId").unwrap();
        // Ground truth: run the selection directly over the original parts.
        for eid in ["E259", "E101", "E199", "E152", "E254", "E159"] {
            let value = Value::from(eid);
            let expected: usize = parts
                .sensitive
                .tuples()
                .iter()
                .chain(parts.nonsensitive.tuples())
                .filter(|t| t.value(attr) == &value)
                .count();
            let got = executor.select(&mut owner, &mut cloud, &value).unwrap();
            assert_eq!(got.len(), expected, "answer size for {eid}");
            assert!(got.iter().all(|t| t.value(attr) == &value));
            assert!(got.iter().all(|t| !DbOwner::is_fake(t)));
        }
    }

    #[test]
    fn unknown_value_returns_empty_without_touching_cloud() {
        let (mut owner, mut cloud, mut executor, _) = qb_setup();
        let before = cloud.adversarial_view().len();
        let got = executor
            .select(&mut owner, &mut cloud, &Value::from("E999"))
            .unwrap();
        assert!(got.is_empty());
        assert_eq!(
            cloud.adversarial_view().len(),
            before,
            "no episode recorded"
        );
    }

    #[test]
    fn qb_execution_satisfies_partitioned_security() {
        let (mut owner, mut cloud, mut executor, parts) = qb_setup();
        let attr = parts.sensitive.schema().attr_id("EId").unwrap();
        // Query every value on either side (the exhaustive workload).
        let mut all_values = parts.sensitive.distinct_values(attr);
        for v in parts.nonsensitive.distinct_values(attr) {
            if !all_values.contains(&v) {
                all_values.push(v);
            }
        }
        for v in &all_values {
            executor.select(&mut owner, &mut cloud, v).unwrap();
        }
        let report = check_partitioned_security(cloud.adversarial_view());
        assert!(report.is_secure(), "{report:?}");
    }

    #[test]
    fn naive_execution_violates_partitioned_security() {
        let parts = employee_parts();
        let mut naive = NaivePartitionedExecutor::new("EId", NonDetScanEngine::new());
        let mut owner = DbOwner::new(6);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        naive.outsource(&mut owner, &mut cloud, &parts).unwrap();
        for eid in ["E259", "E101", "E199"] {
            naive
                .select(&mut owner, &mut cloud, &Value::from(eid))
                .unwrap();
        }
        let report = check_partitioned_security(cloud.adversarial_view());
        assert!(
            !report.is_secure(),
            "naive partitioned execution must leak: {report:?}"
        );
    }

    #[test]
    fn stats_reflect_bin_sizes() {
        let (mut owner, mut cloud, mut executor, _) = qb_setup();
        executor
            .select(&mut owner, &mut cloud, &Value::from("E259"))
            .unwrap();
        let stats = executor.last_stats();
        assert!(stats.sensitive_values_requested >= 1);
        assert!(stats.nonsensitive_values_requested >= 1);
        assert!(stats.tuples_before_filter >= stats.tuples_in_answer);
        assert_eq!(
            stats.tuples_in_answer, 2,
            "E259 has one Defense and one Design tuple"
        );
    }

    #[test]
    fn fetch_bin_pair_refreshes_stats() {
        // Regression: fetch_bin_pair used to leave last_stats untouched, so
        // range/aggregate/join extensions reported the previous point
        // query's counters.
        let (mut owner, mut cloud, mut executor, _) = qb_setup();
        executor
            .select(&mut owner, &mut cloud, &Value::from("E259"))
            .unwrap();
        let stale = executor.last_stats();
        let pair = executor.binning().retrieve(&Value::from("E101")).unwrap();
        let out = executor
            .fetch_bin_pair(&mut owner, &mut cloud, pair)
            .unwrap();
        let stats = executor.last_stats();
        assert_eq!(stats.tuples_in_answer, out.len());
        assert_eq!(
            stats.sensitive_values_requested,
            executor.binning().sensitive_bin(pair.sensitive_bin).len()
        );
        assert_eq!(
            stats.nonsensitive_values_requested,
            executor
                .binning()
                .nonsensitive_bin(pair.nonsensitive_bin)
                .len()
        );
        assert!(stats.tuples_before_filter >= stats.tuples_in_answer);
        assert_ne!(
            stats, stale,
            "bin-pair retrieval must overwrite the point query's counters"
        );
    }

    #[test]
    fn sharded_deployment_answers_match_single_server() {
        use pds_cloud::ShardRouter;

        let parts = employee_parts();
        let attr = parts.sensitive.schema().attr_id("EId").unwrap();
        let mut all_values = parts.sensitive.distinct_values(attr);
        for v in parts.nonsensitive.distinct_values(attr) {
            if !all_values.contains(&v) {
                all_values.push(v);
            }
        }

        let (mut owner, mut cloud, mut single, _) = qb_setup();
        let binning = QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
        let mut sharded = QbExecutor::new(binning, NonDetScanEngine::new());
        let mut sharded_owner = DbOwner::new(5);
        let mut router = ShardRouter::new(3, NetworkModel::paper_wan(), 11).unwrap();
        sharded
            .outsource(&mut sharded_owner, &mut router, &parts)
            .unwrap();
        assert_eq!(sharded.shard_engines().len(), 3);
        // Sensitive data is sharded (no replication); plaintext is replicated.
        assert_eq!(router.encrypted_len(), cloud.encrypted_len());
        assert_eq!(router.plain_len(), cloud.plain_len());

        for v in &all_values {
            let mut expect: Vec<u64> = single
                .select(&mut owner, &mut cloud, v)
                .unwrap()
                .iter()
                .map(|t| t.id.raw())
                .collect();
            let mut got: Vec<u64> = sharded
                .select(&mut sharded_owner, &mut router, v)
                .unwrap()
                .iter()
                .map(|t| t.id.raw())
                .collect();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect, "answer for {v}");
        }

        // Each episode stayed on one shard, and all shards together saw the
        // whole workload.
        let episodes: usize = router
            .adversarial_views()
            .iter()
            .map(|view| view.len())
            .sum();
        assert_eq!(episodes, all_values.len());
        let report = check_partitioned_security(&router.composed_view());
        assert!(report.is_secure(), "{report:?}");
    }

    #[test]
    fn cached_selects_are_identical_and_skip_the_cloud() {
        let parts = employee_parts();
        let binning = QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
        let mut cached = QbExecutor::new(binning, NonDetScanEngine::new()).with_cache_capacity(16);
        let mut owner = DbOwner::new(5);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        cached.outsource(&mut owner, &mut cloud, &parts).unwrap();

        let value = Value::from("E259");
        let first = cached.select(&mut owner, &mut cloud, &value).unwrap();
        assert_eq!(cached.last_stats().cache_misses, 1);
        let episodes_after_first = cloud.adversarial_view().len();
        let bytes_after_first = cloud.metrics().total_bytes();

        let second = cached.select(&mut owner, &mut cloud, &value).unwrap();
        assert_eq!(
            cached.last_stats().cache_hits,
            1,
            "{:?}",
            cached.cache_stats()
        );
        assert_eq!(first, second, "cached answer is byte-identical");
        assert_eq!(
            cloud.adversarial_view().len(),
            episodes_after_first,
            "a cache hit records no new episode"
        );
        assert_eq!(
            cloud.metrics().total_bytes(),
            bytes_after_first,
            "a cache hit moves no bytes"
        );
        let stats = cached.cache_stats();
        assert_eq!(stats.hits + stats.misses, stats.fetches());
        assert_eq!(owner.metrics().bin_cache_hits, 1);
        assert!(owner.metrics().bin_cache_misses >= 1);
    }

    #[test]
    fn exhaustive_warmup_makes_every_later_select_a_hit() {
        // After one pass over every value, every bin pair has been
        // co-observed and every bin is cached (capacity exceeds the bin
        // count), so a second pass must be served entirely owner-side.
        let (_, _, executor, parts) = qb_setup();
        let binning = executor.binning().clone();
        let attr = parts.sensitive.schema().attr_id("EId").unwrap();
        let mut values = parts.sensitive.distinct_values(attr);
        for v in parts.nonsensitive.distinct_values(attr) {
            if !values.contains(&v) {
                values.push(v);
            }
        }
        let mut exec = QbExecutor::new(binning, NonDetScanEngine::new()).with_cache_capacity(64);
        let mut owner = DbOwner::new(5);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        exec.outsource(&mut owner, &mut cloud, &parts).unwrap();
        for v in &values {
            exec.select(&mut owner, &mut cloud, v).unwrap();
        }
        // Every bin is now cached; re-querying anything is a pure hit.
        let misses_after_warmup = exec.cache_stats().misses;
        for v in &values {
            exec.select(&mut owner, &mut cloud, v).unwrap();
            assert_eq!(exec.last_stats().cache_hits, 1, "warm cache serves {v}");
        }
        assert_eq!(exec.cache_stats().misses, misses_after_warmup);
    }

    #[test]
    fn insert_invalidation_drops_affected_bins() {
        let parts = employee_parts();
        let binning = QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
        let mut exec = QbExecutor::new(binning, NonDetScanEngine::new()).with_cache_capacity(16);
        let mut owner = DbOwner::new(5);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        exec.outsource(&mut owner, &mut cloud, &parts).unwrap();
        let value = Value::from("E259");
        exec.select(&mut owner, &mut cloud, &value).unwrap();
        assert!(!exec.cache().is_empty());

        // Non-sensitive insert of a known value: only its bin is dropped.
        let ns_value = exec
            .binning()
            .nonsensitive_bin(0)
            .first()
            .cloned()
            .expect("bin 0 has a value");
        let ns_bin = exec
            .binning()
            .nonsensitive_assignment(&ns_value)
            .unwrap()
            .bin;
        exec.select(&mut owner, &mut cloud, &ns_value).unwrap();
        assert!(exec
            .cache()
            .contains(pds_cloud::BinKey::nonsensitive(ns_bin)));
        exec.invalidate_cache_on_insert(&ns_value, false);
        assert!(!exec
            .cache()
            .contains(pds_cloud::BinKey::nonsensitive(ns_bin)));
        assert!(!exec.cache().is_empty(), "other bins survive");

        // Sensitive insert: conservative full clear (padding may touch any bin).
        exec.invalidate_cache_on_insert(&value, true);
        assert!(exec.cache().is_empty());

        // Unknown value: full clear as well.
        exec.select(&mut owner, &mut cloud, &value).unwrap();
        assert!(!exec.cache().is_empty());
        exec.invalidate_cache_on_insert(&Value::from("E000-new"), false);
        assert!(exec.cache().is_empty());
    }

    #[test]
    fn transported_run_matches_sequential_selects() {
        use pds_cloud::{BinTransport, ShardRouter};

        let parts = employee_parts();
        let attr = parts.sensitive.schema().attr_id("EId").unwrap();
        let mut workload = parts.sensitive.distinct_values(attr);
        for v in parts.nonsensitive.distinct_values(attr) {
            if !workload.contains(&v) {
                workload.push(v);
            }
        }
        // Repeat the workload so the cache sees hits on the second pass.
        let doubled: Vec<Value> = workload.iter().chain(workload.iter()).cloned().collect();
        // Plus one value that exists nowhere (empty answer slot).
        let mut with_unknown = doubled.clone();
        with_unknown.push(Value::from("E999"));

        let (mut owner, mut cloud, mut sequential, _) = qb_setup();
        let expected: Vec<Vec<u64>> = with_unknown
            .iter()
            .map(|v| {
                let mut ids: Vec<u64> = sequential
                    .select(&mut owner, &mut cloud, v)
                    .unwrap()
                    .iter()
                    .map(|t| t.id.raw())
                    .collect();
                ids.sort_unstable();
                ids
            })
            .collect();

        for transport in [
            BinTransport::Sequential,
            BinTransport::Threaded,
            BinTransport::Simulated(NetworkModel::lan()),
        ] {
            let binning = QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
            let mut exec =
                QbExecutor::new(binning, NonDetScanEngine::new()).with_cache_capacity(32);
            let mut t_owner = DbOwner::new(5);
            let mut router = ShardRouter::new(3, NetworkModel::paper_wan(), 11).unwrap();
            exec.outsource(&mut t_owner, &mut router, &parts).unwrap();
            let run = exec
                .run_workload_transported(&mut t_owner, &mut router, &with_unknown, &transport)
                .unwrap();
            assert_eq!(run.answers.len(), with_unknown.len());
            let got: Vec<Vec<u64>> = run
                .answers
                .iter()
                .map(|ts| {
                    let mut ids: Vec<u64> = ts.iter().map(|t| t.id.raw()).collect();
                    ids.sort_unstable();
                    ids
                })
                .collect();
            assert_eq!(got, expected, "{transport:?}");
            assert!(run.wall_clock_sec > 0.0);
            match transport {
                BinTransport::Simulated(_) => {
                    let sim = run.sim_wall_clock_sec.expect("simulated transport");
                    assert!(sim > 0.0, "simulated network clock must advance");
                }
                _ => assert!(run.sim_wall_clock_sec.is_none(), "{transport:?}"),
            }
            // The doubled workload repeats every pair within the one batch:
            // repeats wait for the first occurrence's fetch and count as
            // hits, so at least half the batch is served owner-side — and a
            // second batch must then hit fully.
            assert_eq!(run.cache_hits + run.cache_misses, with_unknown.len() - 1);
            assert!(
                run.cache_hits >= workload.len(),
                "{transport:?}: in-batch repeats must hit ({} hits)",
                run.cache_hits
            );
            let rerun = exec
                .run_workload_transported(&mut t_owner, &mut router, &workload, &transport)
                .unwrap();
            assert_eq!(rerun.cache_misses, 0, "warm cache: {transport:?}");
            assert_eq!(rerun.cache_hits, workload.len());
            // Security still holds on every shard and composed.
            let report =
                pds_adversary::check_sharded_partitioned_security(&router.adversarial_views());
            assert!(report.is_secure(), "{transport:?}: {report:?}");
        }
    }

    #[test]
    fn select_before_outsource_errors() {
        let parts = employee_parts();
        let binning = QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
        let mut executor = QbExecutor::new(binning, NonDetScanEngine::new());
        let mut owner = DbOwner::new(5);
        let mut cloud = CloudServer::default();
        assert!(executor
            .select(&mut owner, &mut cloud, &Value::from("E259"))
            .is_err());
        let mut naive = NaivePartitionedExecutor::new("EId", NonDetScanEngine::new());
        assert!(naive
            .select(&mut owner, &mut cloud, &Value::from("E259"))
            .is_err());
    }

    #[test]
    fn run_workload_returns_answer_sizes() {
        let (mut owner, mut cloud, mut executor, _) = qb_setup();
        let sizes = executor
            .run_workload(
                &mut owner,
                &mut cloud,
                &[
                    Value::from("E259"),
                    Value::from("E199"),
                    Value::from("nope"),
                ],
            )
            .unwrap();
        assert_eq!(sizes, vec![2, 1, 0]);
    }

    #[test]
    fn debug_renders_engine_name() {
        let (_, _, executor, _) = qb_setup();
        assert!(format!("{executor:?}").contains("nondet-scan"));
    }
}
