//! Bin-shape computation: approximately-square factors and the near-square
//! extension (§IV-A).
//!
//! Algorithm 1 derives the layout from the number of distinct non-sensitive
//! values `|NS|`: it finds approximately square factors `x × y = |NS|`
//! (`x ≥ y`), creates `x` sensitive bins of capacity `y` and `y`
//! non-sensitive bins of capacity `x`.  When `|NS|` has only lopsided factor
//! pairs (e.g. 82 = 41 × 2, or a prime), the "simple extension" instead uses
//! the square number closest to `|NS|`, whichever choice retrieves fewer
//! values per query.

use pds_common::{PdsError, Result};
use serde::{Deserialize, Serialize};

/// The layout of a Query Binning instance.
///
/// Invariants (enforced by [`BinShape::validate`]):
/// * `sensitive_bin_capacity == nonsensitive_bins` — the position of a value
///   inside a sensitive bin indexes a non-sensitive bin (retrieval rule R1);
/// * `nonsensitive_bin_capacity == sensitive_bins` — and vice versa (R2);
/// * total capacity covers the respective value counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinShape {
    /// Number of sensitive bins (`SB` in the paper, equal to `x`).
    pub sensitive_bins: usize,
    /// Maximum number of values per sensitive bin (`|SB|`, equal to `y`).
    pub sensitive_bin_capacity: usize,
    /// Number of non-sensitive bins (`NSB`, equal to `y`).
    pub nonsensitive_bins: usize,
    /// Maximum number of values per non-sensitive bin (`|NSB|`, equal to `x`).
    pub nonsensitive_bin_capacity: usize,
}

impl BinShape {
    /// Per-query retrieval breadth: how many distinct values one query asks
    /// for across both sides (`|SB| + |NSB|`).  This is the quantity the
    /// paper's η model charges communication for.
    pub fn retrieval_cost(&self) -> usize {
        self.sensitive_bin_capacity + self.nonsensitive_bin_capacity
    }

    /// Absolute difference between the two bin sizes — Figure 6c sweeps this
    /// imbalance and finds the minimum retrieval time at zero.
    pub fn imbalance(&self) -> usize {
        self.sensitive_bin_capacity
            .abs_diff(self.nonsensitive_bin_capacity)
    }

    /// Checks the structural invariants against the value counts.
    pub fn validate(&self, num_sensitive: usize, num_nonsensitive: usize) -> Result<()> {
        if self.sensitive_bins == 0 || self.nonsensitive_bins == 0 {
            return Err(PdsError::Binning("bin counts must be positive".into()));
        }
        if self.sensitive_bin_capacity != self.nonsensitive_bins {
            return Err(PdsError::Binning(
                "sensitive bin capacity must equal the number of non-sensitive bins".into(),
            ));
        }
        if self.nonsensitive_bin_capacity != self.sensitive_bins {
            return Err(PdsError::Binning(
                "non-sensitive bin capacity must equal the number of sensitive bins".into(),
            ));
        }
        if self.sensitive_bins * self.sensitive_bin_capacity < num_sensitive {
            return Err(PdsError::Binning(format!(
                "sensitive capacity {} cannot hold {num_sensitive} values",
                self.sensitive_bins * self.sensitive_bin_capacity
            )));
        }
        if self.nonsensitive_bins * self.nonsensitive_bin_capacity < num_nonsensitive {
            return Err(PdsError::Binning(format!(
                "non-sensitive capacity {} cannot hold {num_nonsensitive} values",
                self.nonsensitive_bins * self.nonsensitive_bin_capacity
            )));
        }
        Ok(())
    }

    /// A shape built directly from the factor pair `(x, y)` of Algorithm 1:
    /// `x` sensitive bins of capacity `y`, `y` non-sensitive bins of
    /// capacity `x`.
    pub fn from_factors(x: usize, y: usize) -> Self {
        BinShape {
            sensitive_bins: x,
            sensitive_bin_capacity: y,
            nonsensitive_bins: y,
            nonsensitive_bin_capacity: x,
        }
    }

    /// Computes the shape for the given numbers of distinct sensitive and
    /// non-sensitive values, choosing between the exact factorisation and
    /// the near-square extension (whichever retrieves fewer values per
    /// query) and handling the `|S| > |NS|` case by factorising `|S|`
    /// instead (the "reverse" application the paper mentions).
    pub fn for_counts(num_sensitive: usize, num_nonsensitive: usize) -> Result<Self> {
        if num_sensitive == 0 && num_nonsensitive == 0 {
            return Err(PdsError::Binning("no values to bin".into()));
        }
        // Degenerate sides: a single bin on the empty/tiny side still works
        // as long as the invariants hold.
        let driver = num_nonsensitive.max(num_sensitive).max(1);

        // Candidate 1: approximately-square factors of the driving count.
        let (x, y) = approx_square_factors(driver);
        let candidate_factor = shape_for_driver(x, y, num_sensitive, num_nonsensitive);

        // Candidate 2: the near-square extension — use ceil(sqrt(driver)) as
        // the number of sensitive bins and pack the driving side into bins
        // of that size.
        let root = (driver as f64).sqrt().round().max(1.0) as usize;
        let other = driver.div_ceil(root);
        let candidate_square = shape_for_driver(
            root.max(other),
            root.min(other),
            num_sensitive,
            num_nonsensitive,
        );

        // Prefer the exact factorisation; switch to the near-square layout
        // only when it strictly lowers the per-query retrieval cost.
        let best = match (candidate_factor, candidate_square) {
            (Some(f), Some(s)) => {
                if s.retrieval_cost() < f.retrieval_cost() {
                    s
                } else {
                    f
                }
            }
            (Some(f), None) => f,
            (None, Some(s)) => s,
            (None, None) => return Err(PdsError::Binning("no feasible bin shape".into())),
        };
        best.validate(num_sensitive, num_nonsensitive)?;
        Ok(best)
    }

    /// Builds the shape with an explicit number of sensitive bins — used by
    /// the Figure 6c sweep over bin-size imbalance.  `sensitive_bins`
    /// sensitive bins are created; capacities follow from the value counts.
    pub fn with_sensitive_bins(
        sensitive_bins: usize,
        num_sensitive: usize,
        num_nonsensitive: usize,
    ) -> Result<Self> {
        if sensitive_bins == 0 {
            return Err(PdsError::Binning("need at least one sensitive bin".into()));
        }
        let sensitive_bin_capacity = num_sensitive.div_ceil(sensitive_bins).max(1);
        // Non-sensitive bins: one per position in a sensitive bin; capacity
        // must fit all non-sensitive values and equal `sensitive_bins`.
        let mut nonsensitive_bins = sensitive_bin_capacity;
        let needed_bins = num_nonsensitive.div_ceil(sensitive_bins).max(1);
        if needed_bins > nonsensitive_bins {
            nonsensitive_bins = needed_bins;
        }
        let shape = BinShape {
            sensitive_bins,
            sensitive_bin_capacity: nonsensitive_bins,
            nonsensitive_bins,
            nonsensitive_bin_capacity: sensitive_bins,
        };
        shape.validate(num_sensitive, num_nonsensitive)?;
        Ok(shape)
    }
}

/// Builds a shape from a driver factor pair, orienting it so the *sensitive*
/// bins are the smaller side (the paper keeps sensitive bins smaller because
/// encrypted search is costlier), then growing whichever side is too small
/// to hold its values.
fn shape_for_driver(
    x: usize,
    y: usize,
    num_sensitive: usize,
    num_nonsensitive: usize,
) -> Option<BinShape> {
    // x >= y: x sensitive bins of capacity y; y non-sensitive bins of capacity x.
    let mut sensitive_bins = x.max(1);
    let mut nonsensitive_bins = y.max(1);
    // Algorithm 1 assumes |S| ≥ x (no empty sensitive bins): an empty bin
    // would answer queries with zero encrypted tuples, breaking the
    // uniform-output-size property.  Clamp each side's bin count to its
    // value count (keeping at least one bin).
    if num_sensitive > 0 {
        sensitive_bins = sensitive_bins.min(num_sensitive);
    }
    if num_nonsensitive > 0 {
        nonsensitive_bins = nonsensitive_bins.min(num_nonsensitive);
    }
    // Grow whichever side may still grow (without violating its clamp)
    // until both value sets fit.  The product |S|·|NS| always suffices, so
    // this terminates.
    let needed = num_sensitive.max(num_nonsensitive);
    while sensitive_bins * nonsensitive_bins < needed {
        let can_grow_ns = num_nonsensitive == 0 || nonsensitive_bins < num_nonsensitive;
        let can_grow_s = num_sensitive == 0 || sensitive_bins < num_sensitive;
        if can_grow_ns && (nonsensitive_bins <= sensitive_bins || !can_grow_s) {
            nonsensitive_bins += 1;
        } else if can_grow_s {
            sensitive_bins += 1;
        } else {
            // Both clamps reached; fall back to growing the non-sensitive
            // side (cannot happen when both counts are positive).
            nonsensitive_bins += 1;
        }
    }
    let shape = BinShape {
        sensitive_bins,
        sensitive_bin_capacity: nonsensitive_bins,
        nonsensitive_bins,
        nonsensitive_bin_capacity: sensitive_bins,
    };
    shape.validate(num_sensitive, num_nonsensitive).ok()?;
    Some(shape)
}

/// Returns the approximately-square factor pair `(x, y)` of `n` with
/// `x ≥ y`, `x · y = n`, minimising `x − y` (§IV-A).
pub fn approx_square_factors(n: usize) -> (usize, usize) {
    if n == 0 {
        return (1, 1);
    }
    let mut best = (n, 1);
    let mut d = 1usize;
    while d * d <= n {
        if n % d == 0 {
            best = (n / d, d);
        }
        d += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn approx_square_factors_examples() {
        assert_eq!(approx_square_factors(16), (4, 4));
        assert_eq!(approx_square_factors(10), (5, 2));
        assert_eq!(approx_square_factors(82), (41, 2));
        assert_eq!(approx_square_factors(81), (9, 9));
        assert_eq!(approx_square_factors(7), (7, 1));
        assert_eq!(approx_square_factors(1), (1, 1));
        assert_eq!(approx_square_factors(0), (1, 1));
    }

    #[test]
    fn paper_example_16_values() {
        // §IV: 16 values arranged in a 4×4 matrix — 4 sensitive bins of 4,
        // 4 non-sensitive bins of 4.
        let shape = BinShape::for_counts(16, 16).unwrap();
        assert_eq!(shape.sensitive_bins, 4);
        assert_eq!(shape.sensitive_bin_capacity, 4);
        assert_eq!(shape.nonsensitive_bins, 4);
        assert_eq!(shape.nonsensitive_bin_capacity, 4);
        assert_eq!(shape.imbalance(), 0);
    }

    #[test]
    fn paper_example_10_values() {
        // Example 3: 10 sensitive + 10 non-sensitive values → 5 sensitive
        // bins of 2 and 2 non-sensitive bins of 5.
        let shape = BinShape::for_counts(10, 10).unwrap();
        assert_eq!(shape.sensitive_bins, 5);
        assert_eq!(shape.sensitive_bin_capacity, 2);
        assert_eq!(shape.nonsensitive_bins, 2);
        assert_eq!(shape.nonsensitive_bin_capacity, 5);
    }

    #[test]
    fn near_square_extension_beats_lopsided_factors() {
        // §IV-A: 41 sensitive and 82 non-sensitive values.  Exact factors of
        // 82 give 41×2 (cost 43); the near-square extension gives ≈9×10
        // (cost ≈19) and must win.
        let shape = BinShape::for_counts(41, 82).unwrap();
        assert!(
            shape.retrieval_cost() <= 20,
            "retrieval cost {}",
            shape.retrieval_cost()
        );
        shape.validate(41, 82).unwrap();
    }

    #[test]
    fn prime_counts_are_handled() {
        let shape = BinShape::for_counts(13, 13).unwrap();
        shape.validate(13, 13).unwrap();
        assert!(shape.retrieval_cost() <= 9);
    }

    #[test]
    fn asymmetric_counts() {
        // Fewer sensitive than non-sensitive values (the common case).
        let shape = BinShape::for_counts(5, 100).unwrap();
        shape.validate(5, 100).unwrap();
        // More sensitive than non-sensitive (the reverse case).
        let shape = BinShape::for_counts(100, 5).unwrap();
        shape.validate(100, 5).unwrap();
        // One side empty.
        let shape = BinShape::for_counts(0, 30).unwrap();
        shape.validate(0, 30).unwrap();
        let shape = BinShape::for_counts(30, 0).unwrap();
        shape.validate(30, 0).unwrap();
    }

    #[test]
    fn no_values_is_an_error() {
        assert!(BinShape::for_counts(0, 0).is_err());
    }

    #[test]
    fn explicit_sensitive_bins_sweep() {
        for bins in [1usize, 2, 4, 8, 16, 64] {
            let shape = BinShape::with_sensitive_bins(bins, 64, 64).unwrap();
            shape.validate(64, 64).unwrap();
            assert_eq!(shape.sensitive_bins, bins);
        }
        assert!(BinShape::with_sensitive_bins(0, 10, 10).is_err());
    }

    #[test]
    fn validate_rejects_inconsistent_shapes() {
        let bad = BinShape {
            sensitive_bins: 3,
            sensitive_bin_capacity: 2,
            nonsensitive_bins: 4,
            nonsensitive_bin_capacity: 3,
        };
        assert!(bad.validate(6, 12).is_err());
        let too_small = BinShape::from_factors(2, 2);
        assert!(too_small.validate(10, 4).is_err());
        let zero = BinShape::from_factors(0, 0);
        assert!(zero.validate(0, 0).is_err());
    }

    proptest! {
        #[test]
        fn factors_multiply_back(n in 1usize..100_000) {
            let (x, y) = approx_square_factors(n);
            prop_assert_eq!(x * y, n);
            prop_assert!(x >= y);
        }

        #[test]
        fn for_counts_always_valid(s in 0usize..2_000, ns in 0usize..2_000) {
            prop_assume!(s + ns > 0);
            let shape = BinShape::for_counts(s, ns).unwrap();
            prop_assert!(shape.validate(s, ns).is_ok());
            // The number of *actual* values a query retrieves (capacities
            // clipped to the value counts, since bins cannot hold more
            // values than exist) stays within a small factor of 2·sqrt(max).
            let effective_cost = shape.sensitive_bin_capacity.min(s.max(1))
                + shape.nonsensitive_bin_capacity.min(ns.max(1));
            let bound = 6.0 * ((s.max(ns) as f64).sqrt() + 1.0) + 8.0;
            prop_assert!((effective_cost as f64) <= bound,
                "cost {} exceeds bound {} for s={}, ns={}", effective_cost, bound, s, ns);
        }
    }
}
