//! The analytical performance model of §V-A.
//!
//! The paper compares the cost of running a selection with QB against the
//! cost of running it over a fully encrypted database with the same
//! cryptographic technique:
//!
//! ```text
//! η = Cost_crypt(|SB|, S)/Cost_crypt(1, D)  +  Cost_plain(|NSB|, NS)/Cost_crypt(1, D)
//! ```
//!
//! which, after substitution and dropping negligible terms, simplifies to
//!
//! ```text
//! η ≈ α + ρ · (|SB| + |NSB|) / γ
//! ```
//!
//! with α the sensitivity ratio, ρ the query selectivity, γ = Ce/Ccom the
//! ratio between encrypted-search and per-tuple communication cost, and
//! |SB| / |NSB| the bin sizes.  QB wins whenever η < 1, i.e.
//! `α < 1 − 2ρ√|NS|/γ`.

use serde::{Deserialize, Serialize};

/// Parameters of the η model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EtaModel {
    /// Sensitivity ratio α = |S| / (|S| + |NS|), measured in tuples.
    pub alpha: f64,
    /// Selectivity ρ of a selection query (fraction of the database a query
    /// returns); the paper approximates ρ ≈ 1/|distinct values| under a
    /// uniform distribution.
    pub rho: f64,
    /// γ = Ce / Ccom: encrypted per-predicate search cost over per-tuple
    /// communication cost.
    pub gamma: f64,
    /// β = Ce / Cp: encrypted over plaintext per-predicate processing cost.
    pub beta: f64,
    /// Number of values per sensitive bin (|SB|).
    pub sensitive_bin_size: f64,
    /// Number of values per non-sensitive bin (|NSB|).
    pub nonsensitive_bin_size: f64,
    /// Total number of tuples D in the database.
    pub database_tuples: f64,
}

impl EtaModel {
    /// Builds the model from the quantities experiments naturally have.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        alpha: f64,
        rho: f64,
        gamma: f64,
        beta: f64,
        sensitive_bin_size: usize,
        nonsensitive_bin_size: usize,
        database_tuples: usize,
    ) -> Self {
        EtaModel {
            alpha,
            rho,
            gamma,
            beta,
            sensitive_bin_size: sensitive_bin_size as f64,
            nonsensitive_bin_size: nonsensitive_bin_size as f64,
            database_tuples: database_tuples as f64,
        }
    }

    /// The simplified model the paper plots (Figure 6a):
    /// `η = α + ρ(|SB| + |NSB|)/γ`.
    pub fn eta_simplified(&self) -> f64 {
        self.alpha + self.rho * (self.sensitive_bin_size + self.nonsensitive_bin_size) / self.gamma
    }

    /// The fuller expression before the final simplification, keeping the
    /// `log(D)·|NSB| / (D·β)` plaintext-processing term and the
    /// `1/(1 + ρ/γ)` normalisation.
    pub fn eta_full(&self) -> f64 {
        let norm = 1.0 + self.rho / self.gamma;
        let d = self.database_tuples.max(1.0);
        let plaintext_term = d.log2() * self.nonsensitive_bin_size / (d * self.beta.max(1.0));
        (self.alpha
            + plaintext_term
            + self.rho * (self.sensitive_bin_size + self.nonsensitive_bin_size) / self.gamma)
            / norm
    }

    /// Whether QB is predicted to beat the fully encrypted baseline.
    pub fn qb_wins(&self) -> bool {
        self.eta_simplified() < 1.0
    }

    /// The α threshold below which QB wins:
    /// `α < 1 − ρ(|SB| + |NSB|)/γ`.
    pub fn alpha_threshold(&self) -> f64 {
        1.0 - self.rho * (self.sensitive_bin_size + self.nonsensitive_bin_size) / self.gamma
    }
}

/// The closed-form α threshold of the paper with square bins
/// (`|SB| = |NSB| = √|NS|`) and uniform selectivity (`ρ ≈ 1/|NS|`):
/// `α < 1 − 2/(γ·√|NS|)`.
pub fn alpha_threshold_uniform(gamma: f64, distinct_nonsensitive: usize) -> f64 {
    let ns = (distinct_nonsensitive.max(1)) as f64;
    1.0 - 2.0 / (gamma * ns.sqrt())
}

/// Measured η: ratio of the measured QB cost (computation + communication,
/// in seconds) to the measured fully-encrypted cost for the same query.
pub fn measured_eta(qb_cost_sec: f64, full_encryption_cost_sec: f64) -> f64 {
    if full_encryption_cost_sec <= 0.0 {
        return f64::INFINITY;
    }
    qb_cost_sec / full_encryption_cost_sec
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(alpha: f64, gamma: f64) -> EtaModel {
        // 10 000 distinct non-sensitive values → 100-value bins, ρ = 1/10 000.
        EtaModel::new(alpha, 1e-4, gamma, 500.0, 100, 100, 1_000_000)
    }

    #[test]
    fn eta_increases_with_alpha() {
        let low = model(0.1, 1000.0).eta_simplified();
        let high = model(0.9, 1000.0).eta_simplified();
        assert!(low < high);
    }

    #[test]
    fn eta_decreases_with_gamma() {
        let slow_network = model(0.3, 10.0).eta_simplified();
        let fast_crypto_ratio = model(0.3, 10_000.0).eta_simplified();
        assert!(fast_crypto_ratio < slow_network);
    }

    #[test]
    fn figure6a_shape_alpha_one_never_wins() {
        // With α = 1 there is no non-sensitive data to exploit: η ≥ 1.
        for gamma in [100.0, 1_000.0, 50_000.0] {
            let m = model(1.0, gamma);
            assert!(m.eta_simplified() >= 1.0);
            assert!(!m.qb_wins());
        }
    }

    #[test]
    fn figure6a_shape_small_alpha_wins_for_large_gamma() {
        let m = model(0.3, 25_000.0);
        assert!(m.qb_wins());
        assert!(m.eta_simplified() < 0.35);
    }

    #[test]
    fn alpha_threshold_matches_simplified_model() {
        let m = model(0.0, 2_000.0);
        let threshold = m.alpha_threshold();
        // At the threshold η = 1 exactly.
        let at = EtaModel {
            alpha: threshold,
            ..m
        };
        assert!((at.eta_simplified() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_threshold_close_to_one_for_paper_parameters() {
        // γ ≈ 25 000 (secret sharing over TPC-H Customer): QB wins for
        // almost any α, as the paper argues.
        let t = alpha_threshold_uniform(25_000.0, 10_000);
        assert!(t > 0.999);
        // A tiny γ (cheap crypto) shrinks the winning region.
        let t = alpha_threshold_uniform(2.0, 100);
        assert!(t < 0.95);
    }

    #[test]
    fn eta_full_close_to_simplified_for_large_d() {
        let m = model(0.4, 5_000.0);
        let diff = (m.eta_full() - m.eta_simplified()).abs();
        assert!(diff < 0.01, "full vs simplified differ by {diff}");
    }

    #[test]
    fn measured_eta_ratio() {
        assert!((measured_eta(2.0, 4.0) - 0.5).abs() < 1e-12);
        assert_eq!(measured_eta(1.0, 0.0), f64::INFINITY);
    }
}
