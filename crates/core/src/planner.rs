//! Cost-based query planning: choose the engine per shard, don't obey it.
//!
//! The PR-5 pipeline compiled batches into [`QueryPlan`]s but *obeyed* the
//! deployment: whatever engine a shard had been outsourced through served
//! every episode, in workload arrival order.  This module turns that
//! pipeline into a real optimizer with three decisions:
//!
//! 1. **Engine choice per shard** ([`choose_engines`]) — a [`CostModel`]
//!    seeded from each back-end's static
//!    [`pds_systems::cost::CostProfile`] and *calibrated* against measured
//!    executions (scale factors learned from `Metrics`-delta vs wall-clock
//!    observations) picks the cheapest engine for each shard's expected
//!    workload.  Security is a constraint, not an objective: where the
//!    workload-skew attack reports linkage advantage above the configured
//!    threshold, only access-pattern-hiding back-ends are eligible;
//!    everywhere else the cheap deterministic index wins on cost.
//! 2. **Predicate pushdown** ([`PlannerConfig::residual`]) — a residual
//!    predicate over non-searchable, non-sensitive attributes rides the
//!    episode request so the cloud filters the clear-text stream *before*
//!    the downlink.  The owner re-applies the residual during `qmerge`
//!    (idempotent on the pre-filtered stream, required on the sensitive
//!    stream the cloud can never filter), so answers are byte-identical
//!    with pushdown on or off.
//! 3. **Episode reordering** ([`reorder_for_locality`]) — each shard's
//!    episode steps are stably reordered into bin-major order, so episodes
//!    touching the same sensitive bin pipeline back-to-back and the plan a
//!    batch compiles to is a deterministic function of its *set* of bin
//!    pairs rather than of workload arrival order.  Results are keyed by
//!    query index, and the cloud's security views are set-based, so
//!    reordering changes neither answers nor the adversary's view.

use std::collections::BTreeMap;

use pds_cloud::Metrics;
use pds_common::{PdsError, Result};
use pds_storage::Predicate;
use pds_systems::cost::{computation_time_for_queries, CostProfile};
use pds_systems::SecureSelectionEngine;

use crate::plan::QueryPlan;

/// Calibration scales are clamped to this band: a single noisy pilot
/// measurement (debug builds, loaded CI machines) must not be able to
/// invert the ordering between back-ends whose modelled costs differ by
/// orders of magnitude.
const SCALE_CLAMP: (f64, f64) = (0.1, 10.0);

/// How the executor's planner behaves for every compiled episode.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerConfig {
    /// Workload-skew linkage advantage above which a shard must be served
    /// by an access-pattern-hiding back-end
    /// (see `pds_adversary::WorkloadSkewOutcome::advantage`).
    pub advantage_threshold: f64,
    /// Stably reorder each shard's episodes into bin-major order.
    pub reorder: bool,
    /// Residual predicate constraining the query beyond the searchable
    /// attribute.  Must only mention non-searchable attributes; the
    /// executor rejects residuals touching the binned attribute.
    pub residual: Option<Predicate>,
    /// Whether the residual rides the wire for cloud-side evaluation
    /// (`true`) or is only applied owner-side after full-bin retrieval
    /// (`false` — the baseline the equivalence tests compare against).
    pub pushdown: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            // A naive deployment links values perfectly at advantage 1.0;
            // QB's bin-level anonymity keeps measured advantage well under
            // this on every suite workload, so the default only forces
            // oblivious engines where linkage is demonstrably strong.
            advantage_threshold: 0.5,
            reorder: true,
            residual: None,
            pushdown: true,
        }
    }
}

/// The residual the planner would attach to a compiled episode: `None`
/// when pushdown is disabled even if a residual constrains the merge.
impl PlannerConfig {
    /// The predicate to push below the bin fetch, if any.
    pub fn wire_residual(&self) -> Option<&Predicate> {
        if self.pushdown {
            self.residual.as_ref()
        } else {
            None
        }
    }
}

/// One measured per-(engine, shard) observation: the work profile the
/// engine exhibited on that shard plus the calibration scale learned from
/// the accompanying wall-clock measurement.
#[derive(Debug, Clone)]
struct Calibration {
    work: Metrics,
    scale: f64,
}

/// A cost model over back-ends: static seed profiles refined by measured
/// per-(engine, shard) work profiles and calibration scales.
///
/// Estimates are `seed_modelled_seconds × scale(engine, shard)` where the
/// scale starts at 1.0 and is learned by [`CostModel::observe`] from pairs
/// of (counted work, measured seconds).  `observe` also records the work
/// profile itself, which is what lets [`choose_engines`] price every
/// candidate on the counters *it* exhibited — a scan back-end touches
/// every tuple of a bin where an index back-end touches only matches, so
/// pricing both on one shared counter vector would bias the choice.  All
/// maps are `BTreeMap`s so iteration — and therefore planning — is
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    seeds: BTreeMap<String, CostProfile>,
    calib: BTreeMap<(String, usize), Calibration>,
    round_trip_sec: f64,
}

impl CostModel {
    /// A model seeded with the named engines' static profiles.  Names
    /// without a shipped profile are skipped (estimates for them return
    /// `None`, and [`choose_engines`] will never pick them).
    pub fn seeded(names: &[&str]) -> CostModel {
        let mut model = CostModel::default();
        for name in names {
            if let Some(profile) = CostProfile::for_engine(name) {
                model.seeds.insert((*name).to_string(), profile);
            }
        }
        model
    }

    /// Seeds (or replaces) one engine's profile explicitly.
    pub fn seed_engine(&mut self, name: &str, profile: CostProfile) {
        self.seeds.insert(name.to_string(), profile);
    }

    /// The seed profile for an engine, if known.
    pub fn seed(&self, engine: &str) -> Option<&CostProfile> {
        self.seeds.get(engine)
    }

    /// The work counters' cost in seconds under the engine's *seed*
    /// profile, before calibration.  Per-query fixed costs are charged
    /// once per round trip: exact for composed one-round back-ends (one
    /// round per episode) and an upper bound for multi-round ones, so a
    /// batch profile never hides an enclave's per-query setup cost behind
    /// a single fixed charge.
    pub fn modelled(&self, engine: &str, work: &Metrics) -> Option<f64> {
        self.seeds
            .get(engine)
            .map(|p| computation_time_for_queries(work, p, work.round_trips))
    }

    /// Records one measured execution of `engine` on `shard`: the work
    /// profile is kept as the engine's expected workload there, and the
    /// calibration scale becomes `measured / modelled`, clamped to one
    /// order of magnitude each way.  Engines without a seed profile are
    /// ignored; a degenerate measurement (non-positive, non-finite, or
    /// negligible modelled cost) still records the work profile but leaves
    /// the scale at 1.0 — it carries no timing signal, only division
    /// noise.
    pub fn observe(&mut self, engine: &str, shard: usize, work: &Metrics, measured_sec: f64) {
        let Some(modelled) = self.modelled(engine, work) else {
            return;
        };
        let scale = if modelled <= f64::EPSILON || !measured_sec.is_finite() || measured_sec <= 0.0
        {
            1.0
        } else {
            (measured_sec / modelled).clamp(SCALE_CLAMP.0, SCALE_CLAMP.1)
        };
        self.calib.insert(
            (engine.to_string(), shard),
            Calibration { work: *work, scale },
        );
    }

    /// The calibration scale in force for an (engine, shard): 1.0 until
    /// [`CostModel::observe`] has seen a measurement for it.
    pub fn scale(&self, engine: &str, shard: usize) -> f64 {
        self.calib
            .get(&(engine.to_string(), shard))
            .map_or(1.0, |c| c.scale)
    }

    /// The measured work profile of an (engine, shard), if observed.
    pub fn observed_work(&self, engine: &str, shard: usize) -> Option<&Metrics> {
        self.calib
            .get(&(engine.to_string(), shard))
            .map(|c| &c.work)
    }

    /// Sets the nominal owner↔cloud round-trip latency charged per round
    /// when estimating (0 by default).  This is what makes a composed
    /// one-round back-end beat an otherwise-cheaper multi-round one on a
    /// latency-bound link — the reason composed episodes exist.
    pub fn set_round_trip_cost(&mut self, sec: f64) {
        self.round_trip_sec = sec;
    }

    /// The per-round latency charge in force.
    pub fn round_trip_cost(&self) -> f64 {
        self.round_trip_sec
    }

    /// The calibrated cost estimate for running `work` on `shard` through
    /// `engine`, in seconds: calibrated computation plus the per-round
    /// latency charge; `None` for engines the model has no seed for.
    pub fn estimate(&self, engine: &str, shard: usize, work: &Metrics) -> Option<f64> {
        self.modelled(engine, work)
            .map(|t| t * self.scale(engine, shard) + work.round_trips as f64 * self.round_trip_sec)
    }

    /// The calibrated estimate of an (engine, shard) on its *own* observed
    /// work profile — what [`choose_engines`] ranks candidates by.  `None`
    /// until the pair has been observed (an engine the planner has never
    /// profiled cannot be chosen).
    pub fn estimate_observed(&self, engine: &str, shard: usize) -> Option<f64> {
        let work = self.observed_work(engine, shard)?;
        self.estimate(engine, shard, work)
    }
}

/// One back-end the planner may deploy on a shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineCandidate {
    /// The engine's [`SecureSelectionEngine::name`].
    pub name: String,
    /// Whether it hides the cloud-side access pattern (enclave/MPC-class).
    pub hides_access_pattern: bool,
}

impl EngineCandidate {
    /// The candidate describing a concrete engine.
    pub fn of(engine: &dyn SecureSelectionEngine) -> EngineCandidate {
        EngineCandidate {
            name: engine.name().to_string(),
            hides_access_pattern: engine.hides_access_pattern(),
        }
    }
}

/// The planner's decision for one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// The shard this decision covers.
    pub shard: usize,
    /// The chosen engine's name.
    pub engine: String,
    /// Whether the security constraint restricted the pool to
    /// access-pattern-hiding engines on this shard.
    pub oblivious_required: bool,
    /// The calibrated cost estimate of the shard's expected workload under
    /// the chosen engine, seconds.
    pub estimated_sec: f64,
}

/// Picks the cheapest eligible engine for every shard.
///
/// `advantage[s]` is the workload-skew linkage advantage the adversary
/// achieves against shard `s`'s episode stream (one entry per shard), and
/// each candidate is priced on the per-(engine, shard) work profile the
/// model observed for it — typically from a pilot run — so a scan back-end
/// pays for the full bins it touches while an index back-end pays only for
/// its matches.  Where `advantage[s] > threshold`, only candidates with
/// `hides_access_pattern` are eligible; picking then minimises the
/// calibrated estimate with a deterministic name tie-break.  Candidates
/// the model has never observed on a shard are not eligible there.
pub fn choose_engines(
    model: &CostModel,
    candidates: &[EngineCandidate],
    advantage: &[f64],
    threshold: f64,
) -> Result<Vec<ShardPlan>> {
    let mut plans = Vec::with_capacity(advantage.len());
    for (shard, &adv) in advantage.iter().enumerate() {
        let oblivious_required = adv > threshold;
        let mut best: Option<(f64, &EngineCandidate)> = None;
        for cand in candidates {
            if oblivious_required && !cand.hides_access_pattern {
                continue;
            }
            let Some(est) = model.estimate_observed(&cand.name, shard) else {
                continue;
            };
            let better = match &best {
                None => true,
                Some((best_est, best_cand)) => {
                    est < *best_est || (est == *best_est && cand.name < best_cand.name)
                }
            };
            if better {
                best = Some((est, cand));
            }
        }
        let Some((estimated_sec, cand)) = best else {
            return Err(PdsError::Config(format!(
                "no eligible engine for shard {shard} (advantage {adv:.3} \
                 {} threshold {threshold:.3}, {} candidates)",
                if oblivious_required { ">" } else { "<=" },
                candidates.len()
            )));
        };
        plans.push(ShardPlan {
            shard,
            engine: cand.name.clone(),
            oblivious_required,
            estimated_sec,
        });
    }
    Ok(plans)
}

/// Stably reorders every shard's episode steps into bin-major order
/// (`(sensitive_bin, nonsensitive_bin)` ascending).  Episodes touching the
/// same sensitive bin run back-to-back, and the per-shard step order
/// becomes a function of the batch's bin-pair set rather than of workload
/// arrival order — which is what makes compiled plans replayable across
/// shuffled workloads.  Safe because every step carries the query index
/// its result answers.
pub fn reorder_for_locality(plan: &mut QueryPlan) {
    for steps in &mut plan.per_shard {
        steps.sort_by_key(|s| (s.pair.sensitive_bin, s.pair.nonsensitive_bin));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::BinPair;
    use crate::plan::EpisodeStep;
    use pds_cloud::BinEpisodeRequest;

    fn point_work(encrypted: u64, plaintext: u64) -> Metrics {
        Metrics {
            encrypted_tuples_scanned: encrypted,
            plaintext_tuples_scanned: plaintext,
            plaintext_index_lookups: 1,
            owner_decryptions: encrypted,
            round_trips: 1,
            ..Default::default()
        }
    }

    fn suite_candidates() -> Vec<EngineCandidate> {
        [
            ("det-index", false),
            ("nondet-scan", false),
            ("secret-sharing", false),
            ("dpf", false),
            ("opaque-sim", true),
            ("jana-sim", true),
        ]
        .into_iter()
        .map(|(name, hides)| EngineCandidate {
            name: name.to_string(),
            hides_access_pattern: hides,
        })
        .collect()
    }

    fn suite_model() -> CostModel {
        CostModel::seeded(&[
            "det-index",
            "nondet-scan",
            "secret-sharing",
            "dpf",
            "opaque-sim",
            "jana-sim",
        ])
    }

    /// Installs the same pilot work profile for every (candidate, shard)
    /// with measured == modelled, i.e. scale 1.0 everywhere.
    fn profile_all(
        model: &mut CostModel,
        candidates: &[EngineCandidate],
        shards: usize,
        work: &Metrics,
    ) {
        for cand in candidates {
            for shard in 0..shards {
                let measured = model.modelled(&cand.name, work).unwrap_or(0.0);
                model.observe(&cand.name, shard, work, measured);
            }
        }
    }

    #[test]
    fn benign_shards_get_the_cheap_index() {
        let mut model = suite_model();
        let candidates = suite_candidates();
        profile_all(&mut model, &candidates, 2, &point_work(64, 64));
        let plans = choose_engines(&model, &candidates, &[0.0, 0.1], 0.5).unwrap();
        for plan in &plans {
            assert_eq!(plan.engine, "det-index");
            assert!(!plan.oblivious_required);
        }
    }

    #[test]
    fn hot_shards_are_forced_oblivious() {
        let mut model = suite_model();
        let candidates = suite_candidates();
        profile_all(&mut model, &candidates, 2, &point_work(64, 64));
        let plans = choose_engines(&model, &candidates, &[0.9, 0.1], 0.5).unwrap();
        assert!(plans[0].oblivious_required);
        // Opaque's fixed cost (0.5 s) undercuts Jana's (1.0 s).
        assert_eq!(plans[0].engine, "opaque-sim");
        assert_eq!(plans[1].engine, "det-index");
        assert!(plans[0].estimated_sec > plans[1].estimated_sec);
    }

    #[test]
    fn index_work_profile_beats_scan_work_profile() {
        // The index back-end is priced on its own (small) observed profile
        // and the scan back-end on its own (bin-wide) one — per-candidate
        // profiles are the point of `estimate_observed`.
        let mut model = suite_model();
        let candidates: Vec<EngineCandidate> = suite_candidates()
            .into_iter()
            .filter(|c| c.name == "det-index" || c.name == "nondet-scan")
            .collect();
        model.observe("det-index", 0, &point_work(4, 4), 0.0);
        model.observe("nondet-scan", 0, &point_work(4096, 4096), 0.0);
        let plans = choose_engines(&model, &candidates, &[0.0], 0.5).unwrap();
        assert_eq!(plans[0].engine, "det-index");
    }

    #[test]
    fn no_eligible_engine_is_a_config_error() {
        let mut model = suite_model();
        let candidates: Vec<EngineCandidate> = suite_candidates()
            .into_iter()
            .filter(|c| !c.hides_access_pattern)
            .collect();
        profile_all(&mut model, &candidates, 1, &point_work(8, 8));
        let err = choose_engines(&model, &candidates, &[1.0], 0.5);
        assert!(err.is_err());
    }

    #[test]
    fn unobserved_engines_are_not_eligible() {
        let model = suite_model();
        // No observations at all: nothing can be chosen anywhere.
        let err = choose_engines(&model, &suite_candidates(), &[0.0], 0.5);
        assert!(err.is_err());
    }

    #[test]
    fn calibration_moves_estimates_and_is_clamped() {
        let mut model = suite_model();
        let work = point_work(1000, 1000);
        let base = model.estimate("det-index", 0, &work).unwrap();
        model.observe("det-index", 0, &work, base * 3.0);
        let calibrated = model.estimate("det-index", 0, &work).unwrap();
        assert!((calibrated - base * 3.0).abs() < base * 1e-6);
        // Other shards stay at the seed.
        assert_eq!(model.estimate("det-index", 1, &work), Some(base));
        // A wild measurement cannot move the scale past one decade.
        model.observe("det-index", 0, &work, base * 1e6);
        assert!((model.scale("det-index", 0) - 10.0).abs() < 1e-12);
        // Unknown engines have no estimate and never win planning.
        assert_eq!(model.estimate("no-such-engine", 0, &work), None);
        model.observe("no-such-engine", 0, &work, 1.0);
        assert_eq!(model.scale("no-such-engine", 0), 1.0);
    }

    #[test]
    fn equal_cost_ties_break_by_name() {
        let mut model = CostModel::default();
        let profile = CostProfile::det_index();
        model.seed_engine("zeta", profile);
        model.seed_engine("alpha", profile);
        let candidates = vec![
            EngineCandidate {
                name: "zeta".into(),
                hides_access_pattern: false,
            },
            EngineCandidate {
                name: "alpha".into(),
                hides_access_pattern: false,
            },
        ];
        let work = point_work(4, 4);
        model.observe("zeta", 0, &work, 0.0);
        model.observe("alpha", 0, &work, 0.0);
        let plans = choose_engines(&model, &candidates, &[0.0], 0.5).unwrap();
        assert_eq!(plans[0].engine, "alpha");
    }

    #[test]
    fn round_trip_cost_penalises_multi_round_backends() {
        let mut model = CostModel::default();
        let profile = CostProfile::det_index();
        model.seed_engine("one-round", profile);
        model.seed_engine("five-round", profile);
        let mut one = point_work(4, 4);
        one.round_trips = 8;
        let mut five = point_work(4, 4);
        five.round_trips = 40;
        model.observe("one-round", 0, &one, 0.0);
        model.observe("five-round", 0, &five, 0.0);
        model.set_round_trip_cost(0.01);
        let candidates = vec![
            EngineCandidate {
                name: "five-round".into(),
                hides_access_pattern: false,
            },
            EngineCandidate {
                name: "one-round".into(),
                hides_access_pattern: false,
            },
        ];
        let plans = choose_engines(&model, &candidates, &[0.0], 0.5).unwrap();
        assert_eq!(plans[0].engine, "one-round");
        // The estimate carries the full latency charge for its rounds.
        assert!(plans[0].estimated_sec >= 8.0 * 0.01);
    }

    #[test]
    fn reorder_is_bin_major_stable_and_index_preserving() {
        let step = |index: usize, s: usize, ns: usize| EpisodeStep {
            index,
            pair: BinPair {
                sensitive_bin: s,
                nonsensitive_bin: ns,
            },
            shard: 0,
            composed: true,
            request: BinEpisodeRequest {
                sensitive_bin: s,
                nonsensitive_bin: ns,
                sensitive_values: Vec::new(),
                nonsensitive_values: Vec::new(),
                pushdown: None,
            },
        };
        let mut plan = QueryPlan::new(1);
        plan.per_shard[0] = vec![step(0, 3, 1), step(1, 1, 2), step(2, 3, 0), step(3, 1, 2)];
        reorder_for_locality(&mut plan);
        let order: Vec<(usize, usize, usize)> = plan.per_shard[0]
            .iter()
            .map(|s| (s.pair.sensitive_bin, s.pair.nonsensitive_bin, s.index))
            .collect();
        // Bin-major; the two (1,2) steps keep their relative (stable) order.
        assert_eq!(order, vec![(1, 2, 1), (1, 2, 3), (3, 0, 2), (3, 1, 0)]);
        let again = format!("{:?}", plan.per_shard[0]);
        reorder_for_locality(&mut plan);
        assert_eq!(format!("{:?}", plan.per_shard[0]), again);
    }

    #[test]
    fn wire_residual_respects_the_pushdown_switch() {
        let mut cfg = PlannerConfig {
            residual: Some(Predicate::True),
            ..PlannerConfig::default()
        };
        assert!(cfg.wire_residual().is_some());
        cfg.pushdown = false;
        assert!(cfg.wire_residual().is_none());
    }
}
