//! Query plans: the compiled form of a Query Binning batch.
//!
//! The executor no longer drives the cloud through scattered ad-hoc method
//! calls.  Every entry point — [`crate::QbExecutor::select`],
//! [`crate::QbExecutor::fetch_bin_pair`],
//! [`crate::QbExecutor::run_workload_transported`] — first **compiles** the
//! batch into a [`QueryPlan`] and then **executes** it:
//!
//! ```text
//! values ──compile──► QueryPlan ──execute──► answers
//!                      │ cache_served   (answered owner-side, 0 rounds)
//!                      │ per_shard[s]   (EpisodeSteps, one per bin pair)
//!                      │ waiters        (in-batch repeats, resolved last)
//!                      ▼
//!             CloudSession(shard s) ◄── typed pds-proto messages
//! ```
//!
//! Each [`EpisodeStep`] runs as one adversarial-view episode through a
//! [`CloudSession`] on the shard hosting its sensitive bin.  A step is
//! either **composed** — the back-end answers the whole bin-pair request in
//! a single `BinPairRequest`/`BinPayload` round — or **fine-grained**, the
//! multi-round §V-B procedure, chosen per shard from the engine's
//! [`SecureSelectionEngine::composes_episodes`] capability and the
//! executor's [`PlanMode`].

use std::collections::VecDeque;

use pds_cloud::{
    BinEpisodeRequest, CloudServer, CloudSession, CorrelationWindow, DbOwner, RemoteSession,
    TcpCloudClient,
};
use pds_common::{PdsError, Result};
use pds_storage::Tuple;
use pds_systems::{fine_grained_bin_episode, BinEpisodeOutcome, SecureSelectionEngine};

use crate::binning::BinPair;

/// How the executor chooses the wire shape of each episode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PlanMode {
    /// Engines that can answer a composed bin-pair request in one round do
    /// so; multi-round engines fall back to the fine-grained path.
    #[default]
    Composed,
    /// Every episode runs the fine-grained multi-round path, whatever the
    /// engine supports — the pre-refactor behaviour, kept selectable so
    /// equivalence tests and the `experiments wire` rounds gate can compare
    /// the two paths on identical deployments.
    FineGrained,
}

/// One planned bin-pair episode: which answer slot it serves, which shard
/// hosts it, and the full request the engine will execute.
#[derive(Debug, Clone)]
pub struct EpisodeStep {
    /// Position in the batch's answer vector this episode serves.
    pub index: usize,
    /// The bin pair being retrieved.
    pub pair: BinPair,
    /// Shard hosting the sensitive bin (the whole episode runs there).
    pub shard: usize,
    /// Whether the episode runs as one composed single-round request.
    pub composed: bool,
    /// The bin-pair request handed to the back-end.
    pub request: BinEpisodeRequest,
}

/// A pair retrieval answered owner-side from the hot-bin cache during
/// planning (no cloud interaction, zero rounds).
#[derive(Debug, Clone)]
pub struct CacheServed {
    /// Position in the batch's answer vector.
    pub index: usize,
    /// The pair the cache served.
    pub pair: BinPair,
    /// Cached clear-text tuples of the non-sensitive bin.
    pub nonsensitive: Vec<Tuple>,
    /// Cached decrypted tuples of the sensitive bin.
    pub sensitive: Vec<Tuple>,
}

/// The compiled form of one query batch.
#[derive(Debug, Default)]
pub struct QueryPlan {
    /// Episode steps grouped by home shard, in batch order within a shard.
    pub per_shard: Vec<Vec<EpisodeStep>>,
    /// Retrievals served from the owner-side cache at planning time.
    pub cache_served: Vec<CacheServed>,
    /// In-batch repeats of a pending pair: they wait for the first
    /// occurrence's fetch and are resolved against the cache afterwards.
    pub waiters: Vec<(usize, BinPair)>,
}

impl QueryPlan {
    /// An empty plan over `shard_count` shards.
    pub fn new(shard_count: usize) -> Self {
        QueryPlan {
            per_shard: (0..shard_count).map(|_| Vec::new()).collect(),
            cache_served: Vec::new(),
            waiters: Vec::new(),
        }
    }

    /// Number of episodes the plan sends to the cloud.
    pub fn step_count(&self) -> usize {
        self.per_shard.iter().map(Vec::len).sum()
    }

    /// Number of episodes that run as composed single-round requests.
    pub fn composed_step_count(&self) -> usize {
        self.per_shard
            .iter()
            .flatten()
            .filter(|s| s.composed)
            .count()
    }
}

/// The outcome of executing one [`EpisodeStep`].
#[derive(Debug)]
pub struct EpisodeResult {
    /// The two result streams, pre-merge.
    pub outcome: BinEpisodeOutcome,
    /// Owner↔cloud rounds the episode took.
    pub rounds: u64,
}

/// Executes one planned episode against its shard: opens a
/// [`CloudSession`] episode, runs the composed or fine-grained path, and
/// reports the measured round count.  Free function so the threaded
/// per-shard fan-out can call it without borrowing the whole executor.
pub fn execute_episode<E: SecureSelectionEngine + ?Sized>(
    owner: &mut DbOwner,
    shard: &mut CloudServer,
    engine: &mut E,
    step: &EpisodeStep,
) -> Result<EpisodeResult> {
    let _span = pds_obs::obs_span("episode.execute");
    let mut session = CloudSession::new(shard);
    session.begin_episode();
    let outcome = {
        let _engine_span = pds_obs::obs_span("engine.call");
        if step.composed {
            engine.select_bin_episode(owner, &mut session, &step.request)
        } else {
            fine_grained_bin_episode(engine, owner, &mut session, &step.request)
        }
    };
    let rounds = session.end_episode();
    Ok(EpisodeResult {
        outcome: outcome?,
        rounds,
    })
}

/// Executes one planned episode over a socket-backed
/// [`RemoteSession`] — the TCP twin of [`execute_episode`].  The shard
/// lives in a [`pds_cloud::ShardDaemon`]'s address space, so only
/// **composed** steps can travel: a fine-grained step would need direct
/// in-process server access, which the channel reports by construction
/// (`local_server()` is `None`), and rejecting it here keeps the error
/// message about the *plan* rather than a failed call mid-episode.
/// One shard's pipelined batch results: each episode's workload slot,
/// its bin pair and its engine outcome, plus the number of receive
/// rounds the batch took (the lock-step discipline would take one per
/// episode).
pub type PipelinedBatch = (Vec<(usize, BinPair, EpisodeResult)>, u64);

/// Executes one shard's planned episodes **pipelined** over a daemon
/// connection: up to `window` composed requests are framed and written
/// back-to-back (vectored writes, no response awaited in between), and
/// responses are matched back to their episodes by correlation id in
/// whatever order the daemon's worker pool finishes them.  Each episode's
/// owner-side work is split across the engine's two pipeline halves —
/// [`SecureSelectionEngine::composed_wire_tags`] before the uplink,
/// [`SecureSelectionEngine::finish_composed`] after the downlink — so the
/// client keeps issuing requests while earlier responses are still being
/// computed cloud-side.
///
/// The executor only chooses this path when every step is composed and the
/// shard's engine reports [`SecureSelectionEngine::pipelines_composed`];
/// a step that nevertheless cannot split is a typed plan error.
///
/// Failure handling:
///
/// * a transported **error frame** aborts the shard — the daemon refused
///   the episode, and replaying it would be refused again;
/// * a **transport failure** (daemon died mid-batch, stream torn) triggers
///   one eager [`TcpCloudClient::reconnect`]; the unanswered episodes are
///   replayed on the fresh connection (safe: composed bin-pair episodes
///   are idempotent reads).  A second failure aborts with a typed error;
/// * a response with an **unknown or uncorrelated id** is a protocol
///   violation: typed error, no replay — a stream that misattributes
///   responses cannot be trusted with a retry.
pub fn execute_shard_pipelined<E: SecureSelectionEngine + ?Sized>(
    owner: &mut DbOwner,
    client: &TcpCloudClient,
    shard: usize,
    engine: &mut E,
    steps: &[EpisodeStep],
    window: usize,
) -> Result<PipelinedBatch> {
    let _span = pds_obs::obs_span("episode.pipelined");
    let window = window.max(1);
    let mut conn = client.checkout(shard)?;
    let mut inflight = CorrelationWindow::new();
    let mut queue: VecDeque<usize> = (0..steps.len()).collect();
    let mut episodes: Vec<(usize, BinPair, EpisodeResult)> = Vec::with_capacity(steps.len());
    let mut reconnected = false;

    while !queue.is_empty() || !inflight.is_empty() {
        // Fill the window: frame and buffer requests, reading nothing back.
        while inflight.len() < window {
            let Some(slot) = queue.pop_front() else { break };
            let step = &steps[slot];
            let tags = engine
                .composed_wire_tags(owner, &step.request)?
                .ok_or_else(|| {
                    PdsError::Query(format!(
                        "the {} back-end cannot split composed episodes; the plan \
                         should not have chosen pipelined dispatch",
                        engine.name()
                    ))
                })?;
            let corr = conn.enqueue_bin_pair(&step.request, tags)?;
            inflight.track(corr, slot)?;
        }
        if let Err(e) = conn.flush() {
            if reconnected {
                return Err(e);
            }
            reconnected = true;
            for slot in inflight.drain_slots().into_iter().rev() {
                queue.push_front(slot);
            }
            conn = client.reconnect(shard)?;
            continue;
        }
        // Drain one response; out-of-order completion is expected.
        let (corr, answer) = match conn.recv_bin_pair() {
            Ok(ok) => ok,
            Err(e) => {
                if reconnected {
                    return Err(e);
                }
                reconnected = true;
                for slot in inflight.drain_slots().into_iter().rev() {
                    queue.push_front(slot);
                }
                conn = client.reconnect(shard)?;
                continue;
            }
        };
        if corr == 0 {
            return Err(PdsError::Wire(
                "daemon answered without a correlation id (v1 frames); pipelined \
                 dispatch needs a correlation-aware daemon"
                    .into(),
            ));
        }
        let slot = inflight.resolve(corr)?;
        let step = &steps[slot];
        let (nonsensitive, rows) = answer?;
        let outcome = engine.finish_composed(owner, &step.request, nonsensitive, rows)?;
        episodes.push((step.index, step.pair, EpisodeResult { outcome, rounds: 1 }));
    }
    let rounds = episodes.len() as u64;
    client.checkin(shard, conn);
    Ok((episodes, rounds))
}

/// Runs one composed episode over a lock-step [`RemoteSession`]: the
/// write-then-read discipline `execute_shard_pipelined` replaces when the
/// back-end can split its composed episode.  Fine-grained multi-round
/// engines are refused with a typed error — their chatty protocols need
/// in-process server access.
pub fn execute_episode_remote<E: SecureSelectionEngine + ?Sized>(
    owner: &mut DbOwner,
    session: &mut RemoteSession<'_>,
    engine: &mut E,
    step: &EpisodeStep,
) -> Result<EpisodeResult> {
    if !step.composed {
        return Err(PdsError::Wire(format!(
            "the {} back-end plans fine-grained multi-round episodes, which \
             need in-process server access; only composed single-round \
             episodes travel over BinTransport::Tcp",
            engine.name()
        )));
    }
    let _span = pds_obs::obs_span("episode.execute_remote");
    session.begin_episode();
    let outcome = {
        let _engine_span = pds_obs::obs_span("engine.call");
        engine.select_bin_episode(owner, session, &step.request)
    };
    let rounds = session.end_episode();
    Ok(EpisodeResult {
        outcome: outcome?,
        rounds,
    })
}
