//! # pds-core — Query Binning
//!
//! The primary contribution of *Partitioned Data Security on Outsourced
//! Sensitive and Non-sensitive Data* (Mehrotra, Sharma, Ullman, Mishra —
//! ICDE 2019): the **Query Binning (QB)** technique.
//!
//! A relation is partitioned (by `pds-storage`) into a sensitive part `Rs`
//! (outsourced encrypted through any [`pds_systems::SecureSelectionEngine`])
//! and a non-sensitive part `Rns` (outsourced in clear-text).  QB maps a
//! selection query for one value `w` into
//!
//! * one **sensitive bin** — a set of values searched over `Rs` in encrypted
//!   form, and
//! * one **non-sensitive bin** — a set of values searched over `Rns` in
//!   clear-text,
//!
//! chosen so that the joint processing of the two requests leaks nothing
//! about which value was queried, which encrypted tuple is associated with
//! which clear-text tuple, or how many sensitive tuples any value has
//! (the *partitioned data security* definition of §III, checked empirically
//! by `pds-adversary`).
//!
//! Crate layout:
//!
//! * [`shape`] — approximately-square factorisation and the near-square
//!   extension (§IV-A "a simple extension of the base case");
//! * [`binning`] — Algorithm 1 (bin creation) for the base 1:1 case and the
//!   general multi-tuple case with greedy packing and fake-tuple padding
//!   (§IV-B), plus Algorithm 2 (bin retrieval, rules R1/R2);
//! * [`executor`] — the end-to-end partitioned execution: outsourcing both
//!   parts, rewriting each query into its bin pair, running the encrypted
//!   and clear-text sub-queries, and merging/filtering at the owner;
//! * [`plan`] — the plan→session pipeline: batches compile into
//!   [`plan::QueryPlan`]s of per-shard episode steps (composed one-round
//!   `BinPairRequest`s where the back-end supports them, fine-grained
//!   multi-round episodes otherwise) executed through
//!   [`pds_cloud::CloudSession`]s;
//! * [`planner`] — the cost-based optimizer over that pipeline: a
//!   calibrated [`planner::CostModel`] picks each shard's back-end under a
//!   workload-skew security constraint, residual predicates push below the
//!   bin fetch for cloud-side filtering, and per-shard episodes reorder
//!   into deterministic bin-major order;
//! * [`cost`] — the analytical performance model η of §V-A;
//! * [`extensions`] — range queries, inserts, group-by aggregation and
//!   equi-joins on top of QB (the full-version extensions).
//!
//! ```no_run
//! use pds_cloud::{CloudServer, DbOwner, NetworkModel};
//! use pds_core::{BinningConfig, QbExecutor, QueryBinning};
//! use pds_storage::{Partitioner, Predicate};
//! use pds_systems::NonDetScanEngine;
//! use pds_workload::employee_relation;
//!
//! let relation = employee_relation();
//! let policy = Predicate::eq(relation.schema(), "Dept", "Defense").unwrap();
//! let parts = Partitioner::row_level(policy).split(&relation).unwrap();
//!
//! let binning = QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
//! let mut executor = QbExecutor::new(binning, NonDetScanEngine::new());
//! let mut owner = DbOwner::new(7);
//! let mut cloud = CloudServer::new(NetworkModel::paper_wan());
//! executor.outsource(&mut owner, &mut cloud, &parts).unwrap();
//! let answer = executor.select(&mut owner, &mut cloud, &"E259".into()).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod cost;
pub mod executor;
pub mod extensions;
pub mod plan;
pub mod planner;
pub mod shape;

pub use binning::{BinAssignment, BinPair, BinningConfig, QueryBinning};
pub use cost::EtaModel;
pub use executor::{QbExecutor, SelectionStats, TransportedRun, WireMode, DEFAULT_PIPELINE_WINDOW};
pub use plan::{execute_shard_pipelined, EpisodeStep, PlanMode, QueryPlan};
pub use planner::{choose_engines, CostModel, EngineCandidate, PlannerConfig, ShardPlan};
pub use shape::BinShape;
