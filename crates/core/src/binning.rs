//! Bin creation (Algorithm 1, §IV-A/§IV-B) and bin retrieval (Algorithm 2).
//!
//! The owner-side data structure produced here — which value sits in which
//! bin at which position, and how many fake tuples pad each sensitive bin —
//! is exactly the metadata the paper says the DB owner stores ("searchable
//! values and their frequency counts"; its size is proportional to the
//! domain of the searchable attribute, not to the database).

use std::collections::HashMap;

use pds_common::{PdsError, Result, Value};
use pds_storage::{AttributeStats, PartitionedRelation};
use serde::{Deserialize, Serialize};

use crate::shape::BinShape;

/// Configuration of the bin-creation algorithm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinningConfig {
    /// Seed of the secret permutation of sensitive values (Algorithm 1
    /// line 2) and of any tie-breaking randomness.
    pub seed: u64,
    /// Whether to run the general-case balancing of §IV-B: assign heavy
    /// hitters greedily and pad every sensitive bin to the same tuple count
    /// with fake tuples.  Disable only to reproduce the size-attack
    /// vulnerability of the unbalanced base algorithm.
    pub balance_tuple_counts: bool,
    /// Optional explicit shape override (used by the Figure 6c bin-size
    /// sweep); `None` computes the shape from the value counts.
    pub shape_override: Option<BinShape>,
}

impl Default for BinningConfig {
    fn default() -> Self {
        BinningConfig {
            seed: 0x0b1a5,
            balance_tuple_counts: true,
            shape_override: None,
        }
    }
}

impl BinningConfig {
    /// Config reproducing the plain base-case algorithm (no fake-tuple
    /// balancing), used by the ablation benches and the size-attack demo.
    pub fn base_case(seed: u64) -> Self {
        BinningConfig {
            seed,
            balance_tuple_counts: false,
            shape_override: None,
        }
    }
}

/// Where a value lives: its bin index and its position within the bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinAssignment {
    /// Bin index.
    pub bin: usize,
    /// Position within the bin.
    pub position: usize,
}

/// The pair of bins Algorithm 2 retrieves for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinPair {
    /// Index of the sensitive bin to search over `Rs` (encrypted).
    pub sensitive_bin: usize,
    /// Index of the non-sensitive bin to search over `Rns` (clear-text).
    pub nonsensitive_bin: usize,
}

/// The Query Binning metadata: value-to-bin assignments on both sides plus
/// the per-bin fake-tuple budget of the general case.
#[derive(Debug, Clone)]
pub struct QueryBinning {
    attr_name: String,
    shape: BinShape,
    sensitive_bins: Vec<Vec<Value>>,
    nonsensitive_bins: Vec<Vec<Option<Value>>>,
    sensitive_pos: HashMap<Value, BinAssignment>,
    nonsensitive_pos: HashMap<Value, BinAssignment>,
    fake_tuples_per_bin: Vec<u64>,
    sensitive_stats: AttributeStats,
    nonsensitive_stats: AttributeStats,
    /// Sorted, deduplicated union of both sides' values, memoized at build
    /// time — [`QueryBinning::all_values`] is on the range-query hot path
    /// and used to clone-and-sort the whole domain per call.
    sorted_values: Vec<Value>,
}

impl QueryBinning {
    /// Runs Algorithm 1 over a partitioned relation for the searchable
    /// attribute `attr_name`.
    pub fn build(
        partitioned: &PartitionedRelation,
        attr_name: &str,
        config: BinningConfig,
    ) -> Result<Self> {
        let s_attr = partitioned.sensitive.schema().attr_id(attr_name)?;
        let ns_attr = partitioned.nonsensitive.schema().attr_id(attr_name)?;
        let sensitive_stats = partitioned.sensitive.attribute_stats(s_attr);
        let nonsensitive_stats = partitioned.nonsensitive.attribute_stats(ns_attr);
        let sensitive_values = partitioned.sensitive.distinct_values(s_attr);
        let nonsensitive_values = partitioned.nonsensitive.distinct_values(ns_attr);
        Self::build_from_values(
            attr_name,
            sensitive_values,
            nonsensitive_values,
            sensitive_stats,
            nonsensitive_stats,
            config,
        )
    }

    /// Runs Algorithm 1 directly over value lists and their statistics
    /// (useful for tests and for callers that already hold the metadata).
    pub fn build_from_values(
        attr_name: &str,
        sensitive_values: Vec<Value>,
        nonsensitive_values: Vec<Value>,
        sensitive_stats: AttributeStats,
        nonsensitive_stats: AttributeStats,
        config: BinningConfig,
    ) -> Result<Self> {
        if sensitive_values.is_empty() && nonsensitive_values.is_empty() {
            return Err(PdsError::Binning(
                "nothing to bin: both sides are empty".into(),
            ));
        }
        let shape = match config.shape_override {
            Some(s) => {
                s.validate(sensitive_values.len(), nonsensitive_values.len())?;
                s
            }
            None => BinShape::for_counts(sensitive_values.len(), nonsensitive_values.len())?,
        };

        // --- Step 1: assign sensitive values to sensitive bins. -------------
        let sensitive_bins = if config.balance_tuple_counts {
            assign_sensitive_balanced(&sensitive_values, &sensitive_stats, &shape)?
        } else {
            assign_sensitive_round_robin(&sensitive_values, &shape, config.seed)?
        };

        let mut sensitive_pos: HashMap<Value, BinAssignment> = HashMap::new();
        for (bin, values) in sensitive_bins.iter().enumerate() {
            for (position, v) in values.iter().enumerate() {
                sensitive_pos.insert(v.clone(), BinAssignment { bin, position });
            }
        }

        // --- Step 2: assign non-sensitive values. ---------------------------
        // Associated values (same value appears on both sides) are pinned to
        // NSB[position][bin] so rules R1 and R2 retrieve the same bin pair.
        let mut nonsensitive_bins: Vec<Vec<Option<Value>>> =
            vec![vec![None; shape.nonsensitive_bin_capacity]; shape.nonsensitive_bins];
        let mut placed: HashMap<Value, BinAssignment> = HashMap::new();
        for ns in &nonsensitive_values {
            if let Some(assign) = sensitive_pos.get(ns) {
                let bin = assign.position;
                let position = assign.bin;
                if nonsensitive_bins[bin][position].is_some() {
                    return Err(PdsError::Binning(format!(
                        "non-sensitive slot ({bin},{position}) already taken"
                    )));
                }
                nonsensitive_bins[bin][position] = Some(ns.clone());
                placed.insert(ns.clone(), BinAssignment { bin, position });
            }
        }
        // Remaining (non-associated) values fill empty slots.  Slots are
        // taken in an order that maximises bin-pair coverage: a slot
        // (bin j, position i) makes the pair (sensitive bin i, NS bin j)
        // retrievable, so slots whose pair is not already covered by the
        // sensitive side come first.  This keeps every sensitive bin
        // associated with every non-sensitive bin (the Figure 4a condition)
        // even when the bins are not completely full.
        let mut covered = vec![vec![false; shape.nonsensitive_bins]; shape.sensitive_bins];
        for (bin, values) in sensitive_bins.iter().enumerate() {
            for slot in covered[bin].iter_mut().take(values.len()) {
                *slot = true;
            }
        }
        for assign in placed.values() {
            covered[assign.position][assign.bin] = true;
        }
        let mut free_slots: Vec<(usize, usize)> = (0..shape.nonsensitive_bins)
            .flat_map(|b| (0..shape.nonsensitive_bin_capacity).map(move |p| (b, p)))
            .filter(|&(b, p)| nonsensitive_bins[b][p].is_none())
            .collect();
        free_slots.sort_by_key(|&(b, p)| (covered[p][b], b, p));
        let mut slot_iter = free_slots.into_iter();
        for ns in &nonsensitive_values {
            if placed.contains_key(ns) {
                continue;
            }
            let slot = slot_iter
                .next()
                .ok_or_else(|| PdsError::Binning("ran out of non-sensitive slots".into()))?;
            nonsensitive_bins[slot.0][slot.1] = Some(ns.clone());
            placed.insert(
                ns.clone(),
                BinAssignment {
                    bin: slot.0,
                    position: slot.1,
                },
            );
        }

        // --- Step 3: fake-tuple budget per sensitive bin (general case). ----
        let fake_tuples_per_bin = if config.balance_tuple_counts {
            let totals: Vec<u64> = sensitive_bins
                .iter()
                .map(|values| values.iter().map(|v| sensitive_stats.count(v)).sum())
                .collect();
            let target = totals.iter().copied().max().unwrap_or(0);
            totals.iter().map(|&t| target - t).collect()
        } else {
            vec![0; sensitive_bins.len()]
        };

        let mut sorted_values: Vec<Value> =
            sensitive_pos.keys().chain(placed.keys()).cloned().collect();
        sorted_values.sort();
        sorted_values.dedup();

        Ok(QueryBinning {
            attr_name: attr_name.to_string(),
            shape,
            sensitive_bins,
            nonsensitive_bins,
            sensitive_pos,
            nonsensitive_pos: placed,
            fake_tuples_per_bin,
            sensitive_stats,
            nonsensitive_stats,
            sorted_values,
        })
    }

    // ----- Algorithm 2: bin retrieval ----------------------------------------

    /// Maps a query value to the pair of bins to retrieve.
    ///
    /// Rule R1: a sensitive value at position `j` of sensitive bin `i`
    /// retrieves sensitive bin `i` and non-sensitive bin `j`.
    /// Rule R2: a non-sensitive value at position `j` of non-sensitive bin
    /// `i` retrieves non-sensitive bin `i` and sensitive bin `j`.
    /// Returns `None` when the value occurs on neither side (nothing needs
    /// to be retrieved).
    pub fn retrieve(&self, w: &Value) -> Option<BinPair> {
        if let Some(assign) = self.sensitive_pos.get(w) {
            return Some(BinPair {
                sensitive_bin: assign.bin,
                nonsensitive_bin: assign.position,
            });
        }
        if let Some(assign) = self.nonsensitive_pos.get(w) {
            return Some(BinPair {
                sensitive_bin: assign.position,
                nonsensitive_bin: assign.bin,
            });
        }
        None
    }

    // ----- accessors ----------------------------------------------------------

    /// The searchable attribute the binning was built over.
    pub fn attr_name(&self) -> &str {
        &self.attr_name
    }

    /// The bin layout.
    pub fn shape(&self) -> &BinShape {
        &self.shape
    }

    /// The values of sensitive bin `i`.
    pub fn sensitive_bin(&self, i: usize) -> &[Value] {
        &self.sensitive_bins[i]
    }

    /// The values of non-sensitive bin `j` (skipping empty slots).
    pub fn nonsensitive_bin(&self, j: usize) -> Vec<Value> {
        self.nonsensitive_bins[j]
            .iter()
            .flatten()
            .cloned()
            .collect()
    }

    /// Number of values in one non-sensitive bin, without cloning its
    /// contents (callers that only need the size — per-query stats — would
    /// otherwise pay a whole-bin allocation per retrieval).
    pub fn nonsensitive_bin_len(&self, j: usize) -> usize {
        self.nonsensitive_bins[j].iter().flatten().count()
    }

    /// Number of sensitive bins actually populated.
    pub fn sensitive_bin_count(&self) -> usize {
        self.sensitive_bins.len()
    }

    /// Number of non-sensitive bins actually populated.
    pub fn nonsensitive_bin_count(&self) -> usize {
        self.nonsensitive_bins.len()
    }

    /// Where a sensitive value sits, if anywhere.
    pub fn sensitive_assignment(&self, v: &Value) -> Option<BinAssignment> {
        self.sensitive_pos.get(v).copied()
    }

    /// Where a non-sensitive value sits, if anywhere.
    pub fn nonsensitive_assignment(&self, v: &Value) -> Option<BinAssignment> {
        self.nonsensitive_pos.get(v).copied()
    }

    /// The fake-tuple budget of each sensitive bin (all zeros when the
    /// general-case balancing is disabled).
    pub fn fake_tuples_per_bin(&self) -> &[u64] {
        &self.fake_tuples_per_bin
    }

    /// Total number of fake tuples the deployment will add.
    pub fn total_fake_tuples(&self) -> u64 {
        self.fake_tuples_per_bin.iter().sum()
    }

    /// Every distinct value known to the binning (union of both sides),
    /// sorted for determinism.  Used by the range-query extension to find
    /// the values falling inside a requested interval.
    ///
    /// The slice is memoized at build time: repeated calls (one per range
    /// query) return the same buffer instead of re-collecting and re-sorting
    /// the whole domain.
    pub fn all_values(&self) -> &[Value] {
        &self.sorted_values
    }

    /// Frequency statistics of the sensitive side (owner metadata).
    pub fn sensitive_stats(&self) -> &AttributeStats {
        &self.sensitive_stats
    }

    /// Frequency statistics of the non-sensitive side (owner metadata).
    pub fn nonsensitive_stats(&self) -> &AttributeStats {
        &self.nonsensitive_stats
    }

    /// Approximate size of the owner-side metadata in bytes (values plus
    /// their counts and positions) — the quantity the paper reports as
    /// 13.6 MB / 0.65 MB for the TPC-H searchable attributes.
    pub fn metadata_size_bytes(&self) -> usize {
        let value_bytes: usize = self
            .sensitive_pos
            .keys()
            .chain(self.nonsensitive_pos.keys())
            .map(Value::size_bytes)
            .sum();
        // per value: bin + position (2 × 4 bytes) + an 8-byte count.
        value_bytes + (self.sensitive_pos.len() + self.nonsensitive_pos.len()) * 16
    }

    /// Internal consistency check used by tests and debug assertions: every
    /// value is assigned exactly once, capacities are respected, and
    /// associated values map to consistent slots.
    pub fn check_invariants(&self) -> Result<()> {
        for (bin, values) in self.sensitive_bins.iter().enumerate() {
            if values.len() > self.shape.sensitive_bin_capacity {
                return Err(PdsError::Binning(format!(
                    "sensitive bin {bin} exceeds capacity"
                )));
            }
        }
        for (bin, slots) in self.nonsensitive_bins.iter().enumerate() {
            if slots.iter().flatten().count() > self.shape.nonsensitive_bin_capacity {
                return Err(PdsError::Binning(format!(
                    "non-sensitive bin {bin} exceeds capacity"
                )));
            }
        }
        // Associated values must retrieve the same pair through R1 and R2.
        for (value, s_assign) in &self.sensitive_pos {
            if let Some(ns_assign) = self.nonsensitive_pos.get(value) {
                if ns_assign.bin != s_assign.position || ns_assign.position != s_assign.bin {
                    return Err(PdsError::Binning(format!(
                        "associated value {value} has inconsistent slots"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Base-case assignment (Algorithm 1 lines 2 and 5): secretly permute the
/// sensitive values and deal them round-robin over the sensitive bins.
fn assign_sensitive_round_robin(
    values: &[Value],
    shape: &BinShape,
    seed: u64,
) -> Result<Vec<Vec<Value>>> {
    let mut permuted = values.to_vec();
    let mut rng = pds_common::rng::seeded_rng(pds_common::rng::derive_seed(seed, "qb-perm"));
    pds_common::rng::shuffle(&mut permuted, &mut rng);
    let mut bins: Vec<Vec<Value>> = vec![Vec::new(); shape.sensitive_bins];
    for (i, v) in permuted.into_iter().enumerate() {
        let bin = i % shape.sensitive_bins;
        if bins[bin].len() >= shape.sensitive_bin_capacity {
            return Err(PdsError::Binning(format!("sensitive bin {bin} overflowed")));
        }
        bins[bin].push(v);
    }
    Ok(bins)
}

/// General-case assignment (§IV-B): sort values by descending tuple count,
/// seed each bin with one of the heaviest values, then repeatedly place the
/// next value into the bin with the fewest tuples that still has room.
fn assign_sensitive_balanced(
    values: &[Value],
    stats: &AttributeStats,
    shape: &BinShape,
) -> Result<Vec<Vec<Value>>> {
    let mut bins: Vec<Vec<Value>> = vec![Vec::new(); shape.sensitive_bins];
    let mut totals: Vec<u64> = vec![0; shape.sensitive_bins];
    // Only consider values that actually occur on the sensitive side, in
    // descending count order (stable tie-break on the value itself).
    let ordered: Vec<(Value, u64)> = {
        let mut v: Vec<(Value, u64)> = values.iter().map(|v| (v.clone(), stats.count(v))).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    };
    for (value, count) in ordered {
        // Pick the bin with the fewest tuples among bins with spare capacity.
        let candidate = (0..bins.len())
            .filter(|&b| bins[b].len() < shape.sensitive_bin_capacity)
            .min_by_key(|&b| (totals[b], b))
            .ok_or_else(|| PdsError::Binning("no sensitive bin has spare capacity".into()))?;
        bins[candidate].push(value);
        totals[candidate] += count;
    }
    Ok(bins)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_of(counts: &[(&str, u64)]) -> AttributeStats {
        AttributeStats::from_counts(counts.iter().map(|&(v, c)| (Value::from(v), c)).collect())
    }

    fn values_of(names: &[&str]) -> Vec<Value> {
        names.iter().map(|&n| Value::from(n)).collect()
    }

    /// Example 3 of the paper: 10 sensitive values s1..s10, 10 non-sensitive
    /// values where ns1, ns2, ns3, ns5, ns6 are associated (same value as
    /// the sensitive side) and ns11..ns15 are not.
    fn example3() -> QueryBinning {
        let sensitive = values_of(&["s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10"]);
        let nonsensitive = values_of(&[
            "s1", "s2", "s3", "s5", "s6", "ns11", "ns12", "ns13", "ns14", "ns15",
        ]);
        let s_stats = AttributeStats::from_values(sensitive.iter());
        let ns_stats = AttributeStats::from_values(nonsensitive.iter());
        QueryBinning::build_from_values(
            "EId",
            sensitive,
            nonsensitive,
            s_stats,
            ns_stats,
            BinningConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn example3_shape_and_invariants() {
        let qb = example3();
        assert_eq!(qb.shape().sensitive_bins, 5);
        assert_eq!(qb.shape().sensitive_bin_capacity, 2);
        assert_eq!(qb.shape().nonsensitive_bins, 2);
        assert_eq!(qb.shape().nonsensitive_bin_capacity, 5);
        qb.check_invariants().unwrap();
        // Every value assigned exactly once.
        let total_s: usize = (0..qb.sensitive_bin_count())
            .map(|i| qb.sensitive_bin(i).len())
            .sum();
        assert_eq!(total_s, 10);
        let total_ns: usize = (0..qb.nonsensitive_bin_count())
            .map(|j| qb.nonsensitive_bin(j).len())
            .sum();
        assert_eq!(total_ns, 10);
    }

    #[test]
    fn associated_values_retrieve_identical_pairs() {
        let qb = example3();
        // "s1" exists on both sides; R1 (as sensitive) and R2 (as
        // non-sensitive) must return the same bin pair.
        for v in ["s1", "s2", "s3", "s5", "s6"] {
            let value = Value::from(v);
            let s_assign = qb.sensitive_assignment(&value).unwrap();
            let pair = qb.retrieve(&value).unwrap();
            assert_eq!(pair.sensitive_bin, s_assign.bin);
            assert_eq!(pair.nonsensitive_bin, s_assign.position);
            let ns_assign = qb.nonsensitive_assignment(&value).unwrap();
            assert_eq!(ns_assign.bin, pair.nonsensitive_bin);
            assert_eq!(ns_assign.position, pair.sensitive_bin);
        }
    }

    #[test]
    fn unassociated_values_still_retrieve_pairs() {
        let qb = example3();
        for v in [
            "s4", "s7", "s8", "s9", "s10", "ns11", "ns12", "ns13", "ns14", "ns15",
        ] {
            let pair = qb.retrieve(&Value::from(v)).unwrap();
            assert!(pair.sensitive_bin < qb.sensitive_bin_count());
            assert!(pair.nonsensitive_bin < qb.nonsensitive_bin_count());
        }
    }

    #[test]
    fn unknown_value_retrieves_nothing() {
        let qb = example3();
        assert!(qb.retrieve(&Value::from("does-not-exist")).is_none());
    }

    #[test]
    fn all_bins_reachable_from_queries() {
        // Querying every value must exercise every sensitive bin and every
        // non-sensitive bin at least once — the precondition for every
        // surviving match being preserved.
        let qb = example3();
        let mut s_seen = vec![false; qb.sensitive_bin_count()];
        let mut ns_seen = vec![false; qb.nonsensitive_bin_count()];
        for v in [
            "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "ns11", "ns12", "ns13",
            "ns14", "ns15",
        ] {
            if let Some(pair) = qb.retrieve(&Value::from(v)) {
                s_seen[pair.sensitive_bin] = true;
                ns_seen[pair.nonsensitive_bin] = true;
            }
        }
        assert!(s_seen.iter().all(|&b| b));
        assert!(ns_seen.iter().all(|&b| b));
    }

    #[test]
    fn example5_fake_tuple_budget_is_near_optimal() {
        // Example 5: 9 sensitive values with 10..90 tuples over 3 bins.  The
        // naive first-way packing (Figure 5a) needs 270 fake tuples; the
        // best packing (Figure 5b) needs 0.  The greedy §IV-B strategy must
        // land close to the optimum.
        let names = ["s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9"];
        let counts: Vec<(&str, u64)> = names
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, (i as u64 + 1) * 10))
            .collect();
        let s_stats = stats_of(&counts);
        let ns_values = values_of(&["n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8", "n9"]);
        let ns_stats = AttributeStats::from_values(ns_values.iter());
        let qb = QueryBinning::build_from_values(
            "Salary",
            values_of(&names),
            ns_values,
            s_stats,
            ns_stats,
            BinningConfig::default(),
        )
        .unwrap();
        assert_eq!(qb.shape().sensitive_bins, 3);
        let total_fakes = qb.total_fake_tuples();
        assert!(
            total_fakes <= 60,
            "greedy packing should need few fakes, got {total_fakes}"
        );
        // Every bin padded to the same effective size.
        let totals: Vec<u64> = (0..qb.sensitive_bin_count())
            .map(|i| {
                qb.sensitive_bin(i)
                    .iter()
                    .map(|v| qb.sensitive_stats().count(v))
                    .sum::<u64>()
                    + qb.fake_tuples_per_bin()[i]
            })
            .collect();
        assert!(
            totals.windows(2).all(|w| w[0] == w[1]),
            "padded sizes equal: {totals:?}"
        );
    }

    #[test]
    fn base_case_config_adds_no_fakes() {
        let qb = QueryBinning::build_from_values(
            "A",
            values_of(&["a", "b", "c", "d"]),
            values_of(&["a", "b", "x", "y"]),
            stats_of(&[("a", 5), ("b", 1), ("c", 1), ("d", 1)]),
            stats_of(&[("a", 1), ("b", 1), ("x", 1), ("y", 1)]),
            BinningConfig::base_case(7),
        )
        .unwrap();
        assert_eq!(qb.total_fake_tuples(), 0);
        qb.check_invariants().unwrap();
    }

    #[test]
    fn base_case_permutation_depends_on_seed() {
        let build = |seed| {
            let s_vals: Vec<Value> = (0..64i64).map(Value::Int).collect();
            let ns_vals: Vec<Value> = (0..64i64).map(|i| Value::Int(i + 1000)).collect();
            QueryBinning::build_from_values(
                "A",
                s_vals.clone(),
                ns_vals.clone(),
                AttributeStats::from_values(s_vals.iter()),
                AttributeStats::from_values(ns_vals.iter()),
                BinningConfig::base_case(seed),
            )
            .unwrap()
        };
        let a = build(1);
        let b = build(2);
        let layout = |qb: &QueryBinning| {
            (0..qb.sensitive_bin_count())
                .map(|i| qb.sensitive_bin(i).to_vec())
                .collect::<Vec<_>>()
        };
        assert_ne!(
            layout(&a),
            layout(&b),
            "different seeds give different secret layouts"
        );
        let a2 = build(1);
        assert_eq!(layout(&a), layout(&a2), "same seed reproduces the layout");
    }

    #[test]
    fn empty_sides_and_errors() {
        assert!(QueryBinning::build_from_values(
            "A",
            vec![],
            vec![],
            AttributeStats::default(),
            AttributeStats::default(),
            BinningConfig::default(),
        )
        .is_err());

        // Only sensitive values: still binnable, queries touch only Rs bins.
        let qb = QueryBinning::build_from_values(
            "A",
            values_of(&["a", "b", "c"]),
            vec![],
            stats_of(&[("a", 1), ("b", 1), ("c", 1)]),
            AttributeStats::default(),
            BinningConfig::default(),
        )
        .unwrap();
        assert!(qb.retrieve(&Value::from("a")).is_some());

        // Only non-sensitive values.
        let qb = QueryBinning::build_from_values(
            "A",
            vec![],
            values_of(&["x", "y", "z", "w"]),
            AttributeStats::default(),
            stats_of(&[("x", 1), ("y", 1), ("z", 1), ("w", 1)]),
            BinningConfig::default(),
        )
        .unwrap();
        assert!(qb.retrieve(&Value::from("x")).is_some());
    }

    #[test]
    fn shape_override_is_respected_and_validated() {
        let shape = BinShape::with_sensitive_bins(2, 4, 4).unwrap();
        let qb = QueryBinning::build_from_values(
            "A",
            values_of(&["a", "b", "c", "d"]),
            values_of(&["e", "f", "g", "h"]),
            stats_of(&[("a", 1), ("b", 1), ("c", 1), ("d", 1)]),
            stats_of(&[("e", 1), ("f", 1), ("g", 1), ("h", 1)]),
            BinningConfig {
                shape_override: Some(shape),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(qb.shape().sensitive_bins, 2);

        let bad = BinShape::from_factors(1, 1);
        assert!(QueryBinning::build_from_values(
            "A",
            values_of(&["a", "b", "c", "d"]),
            values_of(&["e"]),
            stats_of(&[("a", 1), ("b", 1), ("c", 1), ("d", 1)]),
            stats_of(&[("e", 1)]),
            BinningConfig {
                shape_override: Some(bad),
                ..Default::default()
            },
        )
        .is_err());
    }

    #[test]
    fn all_values_is_memoized_and_sorted() {
        let qb = example3();
        let first = qb.all_values();
        assert!(first.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        assert_eq!(first.len(), 15, "union of both sides");
        // Regression: `all_values` used to clone and sort the whole domain on
        // every call; it must now hand back the same build-time buffer.
        assert!(
            std::ptr::eq(first.as_ptr(), qb.all_values().as_ptr()),
            "repeated calls return the memoized buffer, not a fresh sort"
        );
    }

    #[test]
    fn metadata_size_scales_with_distinct_values_not_tuples() {
        let small = example3();
        let meta = small.metadata_size_bytes();
        assert!(meta > 0);
        // A binning over heavy-hitter values (large tuple counts) has the
        // same metadata size as one over singleton values.
        let heavy = QueryBinning::build_from_values(
            "EId",
            values_of(&["s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10"]),
            values_of(&[
                "s1", "s2", "s3", "s5", "s6", "ns11", "ns12", "ns13", "ns14", "ns15",
            ]),
            stats_of(&[
                ("s1", 100_000),
                ("s2", 50_000),
                ("s3", 1),
                ("s4", 1),
                ("s5", 1),
                ("s6", 1),
                ("s7", 1),
                ("s8", 1),
                ("s9", 1),
                ("s10", 1),
            ]),
            AttributeStats::from_values(
                values_of(&[
                    "s1", "s2", "s3", "s5", "s6", "ns11", "ns12", "ns13", "ns14", "ns15",
                ])
                .iter(),
            ),
            BinningConfig::default(),
        )
        .unwrap();
        assert_eq!(heavy.metadata_size_bytes(), meta);
    }
}
