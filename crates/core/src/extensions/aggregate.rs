//! Owner-side group-by aggregation over QB selections.
//!
//! The paper notes QB "can also be extended to support group-by aggregation
//! queries".  The owner already receives every tuple matching a bin pair, so
//! grouping and aggregating are pure owner-side post-processing: for each
//! requested group value the executor retrieves its bin pair (exactly one
//! point-query-shaped episode) and folds the matching tuples into
//! `COUNT` / `SUM` / `MIN` / `MAX` over a chosen aggregate attribute.

use std::collections::BTreeMap;

use pds_cloud::{BinRoutedCloud, DbOwner};
use pds_common::{AttrId, Result, Value};
use pds_systems::SecureSelectionEngine;

use crate::executor::QbExecutor;

/// Aggregates of one group.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GroupAggregate {
    /// Number of tuples in the group.
    pub count: u64,
    /// Sum of the aggregate attribute over the group (integer attributes
    /// only; non-integer values are ignored).
    pub sum: i64,
    /// Minimum of the aggregate attribute, when any integer value exists.
    pub min: Option<i64>,
    /// Maximum of the aggregate attribute, when any integer value exists.
    pub max: Option<i64>,
}

/// Computes `SELECT group, COUNT(*), SUM(agg), MIN(agg), MAX(agg) ... WHERE
/// group IN (groups) GROUP BY group` over a QB deployment.
pub fn group_by_aggregate<E: SecureSelectionEngine, C: BinRoutedCloud>(
    executor: &mut QbExecutor<E>,
    owner: &mut DbOwner,
    cloud: &mut C,
    groups: &[Value],
    aggregate_attr: AttrId,
) -> Result<BTreeMap<Value, GroupAggregate>> {
    let mut out: BTreeMap<Value, GroupAggregate> = BTreeMap::new();
    for group in groups {
        let tuples = executor.select(owner, cloud, group)?;
        let entry = out.entry(group.clone()).or_default();
        for t in tuples {
            entry.count += 1;
            if let Some(x) = t.value(aggregate_attr).as_int() {
                entry.sum += x;
                entry.min = Some(entry.min.map_or(x, |m| m.min(x)));
                entry.max = Some(entry.max.map_or(x, |m| m.max(x)));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::{BinningConfig, QueryBinning};
    use pds_cloud::{CloudServer, NetworkModel};
    use pds_storage::{DataType, Partitioner, Predicate, Relation, Schema};
    use pds_systems::NonDetScanEngine;

    fn orders() -> Relation {
        let schema =
            Schema::from_pairs(&[("Region", DataType::Text), ("Amount", DataType::Int)]).unwrap();
        let mut r = Relation::new("Orders", schema);
        for (region, amount) in [
            ("east", 10),
            ("east", 30),
            ("west", 5),
            ("west", 15),
            ("west", 25),
            ("north", 100),
            ("south", 7),
        ] {
            r.insert(vec![Value::from(region), Value::Int(amount)])
                .unwrap();
        }
        r
    }

    fn setup() -> (DbOwner, CloudServer, QbExecutor<NonDetScanEngine>, AttrId) {
        let rel = orders();
        let amount = rel.schema().attr_id("Amount").unwrap();
        // Regions "east" and "north" are sensitive.
        let pred = Predicate::in_set(
            rel.schema(),
            "Region",
            vec![Value::from("east"), Value::from("north")],
        )
        .unwrap();
        let parts = Partitioner::row_level(pred).split(&rel).unwrap();
        let binning = QueryBinning::build(&parts, "Region", BinningConfig::default()).unwrap();
        let mut exec = QbExecutor::new(binning, NonDetScanEngine::new());
        let mut owner = DbOwner::new(17);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        exec.outsource(&mut owner, &mut cloud, &parts).unwrap();
        (owner, cloud, exec, amount)
    }

    #[test]
    fn aggregates_span_both_partitions() {
        let (mut owner, mut cloud, mut exec, amount) = setup();
        let groups = vec![
            Value::from("east"),
            Value::from("west"),
            Value::from("north"),
            Value::from("south"),
        ];
        let result =
            group_by_aggregate(&mut exec, &mut owner, &mut cloud, &groups, amount).unwrap();
        assert_eq!(result[&Value::from("east")].count, 2);
        assert_eq!(result[&Value::from("east")].sum, 40);
        assert_eq!(result[&Value::from("west")].count, 3);
        assert_eq!(result[&Value::from("west")].sum, 45);
        assert_eq!(result[&Value::from("west")].min, Some(5));
        assert_eq!(result[&Value::from("west")].max, Some(25));
        assert_eq!(result[&Value::from("north")].sum, 100);
        assert_eq!(result[&Value::from("south")].count, 1);
    }

    #[test]
    fn unknown_group_yields_zero_aggregate() {
        let (mut owner, mut cloud, mut exec, amount) = setup();
        let result = group_by_aggregate(
            &mut exec,
            &mut owner,
            &mut cloud,
            &[Value::from("atlantis")],
            amount,
        )
        .unwrap();
        let agg = &result[&Value::from("atlantis")];
        assert_eq!(agg.count, 0);
        assert_eq!(agg.min, None);
    }
}
