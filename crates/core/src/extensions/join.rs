//! Owner-side equi-joins across two QB deployments.
//!
//! The paper defers joins to the full version and notes that cryptographic
//! joins (bilinear maps, SGX joins) are far from practical.  Under
//! partitioned computing the natural strategy is: retrieve, per join value,
//! the bin pair of each deployment (point-query-shaped episodes on both
//! clouds) and join the decrypted results at the owner.  The leakage per
//! episode is identical to that of point queries, so QB's security argument
//! carries over; the cost is one bin-pair retrieval per deployment per
//! distinct join value.

use pds_cloud::{BinRoutedCloud, DbOwner};
use pds_common::{Result, Value};
use pds_storage::Tuple;
use pds_systems::SecureSelectionEngine;

use crate::executor::QbExecutor;

/// Joins two QB deployments on their searchable attributes for the given
/// set of join values, returning matched tuple pairs `(left, right)`.
/// Either deployment may be single-server or sharded.
pub fn equi_join<L, R, CL, CR>(
    left: &mut QbExecutor<L>,
    left_owner: &mut DbOwner,
    left_cloud: &mut CL,
    right: &mut QbExecutor<R>,
    right_owner: &mut DbOwner,
    right_cloud: &mut CR,
    join_values: &[Value],
) -> Result<Vec<(Tuple, Tuple)>>
where
    L: SecureSelectionEngine,
    R: SecureSelectionEngine,
    CL: BinRoutedCloud,
    CR: BinRoutedCloud,
{
    let mut out = Vec::new();
    for value in join_values {
        let l = left.select(left_owner, left_cloud, value)?;
        if l.is_empty() {
            continue;
        }
        let r = right.select(right_owner, right_cloud, value)?;
        for lt in &l {
            for rt in &r {
                out.push((lt.clone(), rt.clone()));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::{BinningConfig, QueryBinning};
    use pds_cloud::{CloudServer, NetworkModel};
    use pds_storage::{DataType, PartitionedRelation, Partitioner, Predicate, Relation, Schema};
    use pds_systems::NonDetScanEngine;

    fn employees() -> Relation {
        let schema =
            Schema::from_pairs(&[("Dept", DataType::Text), ("Name", DataType::Text)]).unwrap();
        let mut r = Relation::new("Employees", schema);
        for (d, n) in [
            ("sales", "ann"),
            ("sales", "bob"),
            ("eng", "cat"),
            ("hr", "dan"),
        ] {
            r.insert(vec![Value::from(d), Value::from(n)]).unwrap();
        }
        r
    }

    fn budgets() -> Relation {
        let schema =
            Schema::from_pairs(&[("Dept", DataType::Text), ("Budget", DataType::Int)]).unwrap();
        let mut r = Relation::new("Budgets", schema);
        for (d, b) in [("sales", 100), ("eng", 250), ("legal", 70)] {
            r.insert(vec![Value::from(d), Value::Int(b)]).unwrap();
        }
        r
    }

    fn deploy(
        rel: &Relation,
        sensitive_dept: &str,
        seed: u64,
    ) -> (
        DbOwner,
        CloudServer,
        QbExecutor<NonDetScanEngine>,
        PartitionedRelation,
    ) {
        let pred = Predicate::eq(rel.schema(), "Dept", sensitive_dept).unwrap();
        let parts = Partitioner::row_level(pred).split(rel).unwrap();
        let binning = QueryBinning::build(&parts, "Dept", BinningConfig::default()).unwrap();
        let mut exec = QbExecutor::new(binning, NonDetScanEngine::new());
        let mut owner = DbOwner::new(seed);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        exec.outsource(&mut owner, &mut cloud, &parts).unwrap();
        (owner, cloud, exec, parts)
    }

    #[test]
    fn join_matches_expected_pairs() {
        let emp = employees();
        let bud = budgets();
        let (mut lo, mut lc, mut le, _) = deploy(&emp, "eng", 1);
        let (mut ro, mut rc, mut re, _) = deploy(&bud, "sales", 2);
        let values: Vec<Value> = ["sales", "eng", "hr", "legal"]
            .iter()
            .map(|&v| Value::from(v))
            .collect();
        let joined = equi_join(
            &mut le, &mut lo, &mut lc, &mut re, &mut ro, &mut rc, &values,
        )
        .unwrap();
        // sales: 2 employees × 1 budget = 2; eng: 1 × 1 = 1; hr/legal: no match.
        assert_eq!(joined.len(), 3);
        for (l, r) in &joined {
            assert_eq!(l.values[0], r.values[0], "join attribute matches");
        }
    }

    #[test]
    fn join_on_absent_values_is_empty() {
        let emp = employees();
        let bud = budgets();
        let (mut lo, mut lc, mut le, _) = deploy(&emp, "eng", 3);
        let (mut ro, mut rc, mut re, _) = deploy(&bud, "sales", 4);
        let joined = equi_join(
            &mut le,
            &mut lo,
            &mut lc,
            &mut re,
            &mut ro,
            &mut rc,
            &[Value::from("marketing")],
        )
        .unwrap();
        assert!(joined.is_empty());
    }
}
