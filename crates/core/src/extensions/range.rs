//! Range queries over a QB deployment.
//!
//! A range `[lo, hi]` is answered by (1) looking up, in the owner-side
//! metadata, which known values of the searchable attribute fall inside the
//! range, (2) collecting the distinct bin pairs Algorithm 2 assigns to those
//! values, and (3) retrieving each pair once.  Every retrieval is
//! indistinguishable from a point query, so the adversarial view of a range
//! query is a sequence of point-query episodes — the leakage is bounded by
//! the number of bin pairs touched, never by the individual values.

use pds_cloud::{BinRoutedCloud, DbOwner};
use pds_common::{Result, Value};
use pds_storage::Tuple;
use pds_systems::SecureSelectionEngine;

use crate::binning::BinPair;
use crate::executor::QbExecutor;

/// Answers `lo <= attr <= hi` over a QB deployment (single-server or
/// sharded — each bin pair is fetched from the shard hosting it).
pub fn select_range<E: SecureSelectionEngine, C: BinRoutedCloud>(
    executor: &mut QbExecutor<E>,
    owner: &mut DbOwner,
    cloud: &mut C,
    lo: &Value,
    hi: &Value,
) -> Result<Vec<Tuple>> {
    // Values of the searchable attribute inside the range, straight off the
    // owner-side metadata's memoized sorted domain (no cloud interaction and
    // no per-query clone-and-sort).  Collect their distinct bin pairs.
    let mut pairs: Vec<BinPair> = Vec::new();
    for v in executor.binning().all_values() {
        if v < lo || v > hi {
            continue;
        }
        if let Some(p) = executor.binning().retrieve(v) {
            if !pairs.contains(&p) {
                pairs.push(p);
            }
        }
    }

    // Retrieve each pair once; filter owner-side to the actual range.
    let attr = executor
        .searchable_attr()
        .ok_or_else(|| pds_common::PdsError::Query("deployment not outsourced yet".into()))?;
    let mut out: Vec<Tuple> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for pair in pairs {
        let tuples = executor.fetch_bin_pair(owner, cloud, pair)?;
        for t in tuples {
            let v = t.value(attr);
            if v >= lo && v <= hi && seen.insert(t.id) {
                out.push(t);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::{BinningConfig, QueryBinning};
    use pds_cloud::{CloudServer, NetworkModel};
    use pds_storage::{DataType, Partitioner, Predicate, Relation, Schema};
    use pds_systems::NonDetScanEngine;

    fn salary_relation() -> Relation {
        let schema =
            Schema::from_pairs(&[("Salary", DataType::Int), ("Name", DataType::Text)]).unwrap();
        let mut r = Relation::new("Payroll", schema);
        for i in 0..40i64 {
            r.insert(vec![Value::Int(i * 10), Value::from(format!("emp{i}"))])
                .unwrap();
        }
        r
    }

    fn setup() -> (DbOwner, CloudServer, QbExecutor<NonDetScanEngine>) {
        let rel = salary_relation();
        // Salaries below 200 are sensitive.
        let pred = Predicate::range(rel.schema(), "Salary", 0, 190).unwrap();
        let parts = Partitioner::row_level(pred).split(&rel).unwrap();
        let binning = QueryBinning::build(&parts, "Salary", BinningConfig::default()).unwrap();
        let mut exec = QbExecutor::new(binning, NonDetScanEngine::new());
        let mut owner = DbOwner::new(91);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        exec.outsource(&mut owner, &mut cloud, &parts).unwrap();
        (owner, cloud, exec)
    }

    #[test]
    fn range_spanning_both_partitions() {
        let (mut owner, mut cloud, mut exec) = setup();
        // [150, 250] covers sensitive salaries 150..190 and non-sensitive 200..250.
        let out = select_range(
            &mut exec,
            &mut owner,
            &mut cloud,
            &Value::Int(150),
            &Value::Int(250),
        )
        .unwrap();
        let mut salaries: Vec<i64> = out.iter().map(|t| t.values[0].as_int().unwrap()).collect();
        salaries.sort_unstable();
        assert_eq!(
            salaries,
            vec![150, 160, 170, 180, 190, 200, 210, 220, 230, 240, 250]
        );
    }

    #[test]
    fn empty_range_returns_nothing() {
        let (mut owner, mut cloud, mut exec) = setup();
        let out = select_range(
            &mut exec,
            &mut owner,
            &mut cloud,
            &Value::Int(10_000),
            &Value::Int(20_000),
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn range_results_have_no_duplicates() {
        let (mut owner, mut cloud, mut exec) = setup();
        let out = select_range(
            &mut exec,
            &mut owner,
            &mut cloud,
            &Value::Int(0),
            &Value::Int(390),
        )
        .unwrap();
        assert_eq!(out.len(), 40);
        let ids: std::collections::HashSet<_> = out.iter().map(|t| t.id).collect();
        assert_eq!(ids.len(), 40);
    }

    #[test]
    fn consecutive_range_queries_reuse_the_sorted_domain() {
        // Regression: `select_range` used to call `all_values()` per query,
        // which cloned and re-sorted the entire value domain each time.  The
        // domain is now memoized at binning build time, so two consecutive
        // range queries observe the identical buffer through the cached
        // accessor (a fresh sort would allocate anew on every call).
        let (mut owner, mut cloud, mut exec) = setup();
        let before = exec.binning().all_values().as_ptr();
        for _ in 0..2 {
            select_range(
                &mut exec,
                &mut owner,
                &mut cloud,
                &Value::Int(100),
                &Value::Int(200),
            )
            .unwrap();
            assert!(
                std::ptr::eq(before, exec.binning().all_values().as_ptr()),
                "range execution must not rebuild the sorted domain"
            );
        }
    }

    #[test]
    fn range_episodes_look_like_point_queries() {
        let (mut owner, mut cloud, mut exec) = setup();
        let before = cloud.adversarial_view().len();
        select_range(
            &mut exec,
            &mut owner,
            &mut cloud,
            &Value::Int(100),
            &Value::Int(160),
        )
        .unwrap();
        let after = cloud.adversarial_view().len();
        // One episode per distinct bin pair, each shaped like a point query.
        assert!(after > before);
        for ep in &cloud.adversarial_view().episodes()[before..] {
            assert!(ep.plaintext_request.len() <= exec.binning().shape().nonsensitive_bin_capacity);
        }
    }
}
