//! Extensions of Query Binning beyond single-value selections.
//!
//! The conference paper develops QB for point selection queries and defers
//! several extensions to the full version: range queries, inserts,
//! group-by aggregation and joins.  This module implements practical
//! versions of each on top of the point-selection machinery:
//!
//! * [`range`] — a range query retrieves the bin pair of every known value
//!   inside the range (one episode per distinct pair, so each episode looks
//!   exactly like a point query to the adversary);
//! * [`insert`] — planning where a newly inserted value lands (existing
//!   assignment, a spare slot, or a rebuild of the binning);
//! * [`aggregate`] — owner-side group-by `COUNT`/`SUM` over QB selections;
//! * [`join`] — owner-side equi-join of two QB deployments on their
//!   searchable attributes.

pub mod aggregate;
pub mod insert;
pub mod join;
pub mod range;

pub use aggregate::{group_by_aggregate, GroupAggregate};
pub use insert::{InsertPlan, InsertPlanner};
pub use join::equi_join;
pub use range::select_range;
