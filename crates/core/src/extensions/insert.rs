//! Insert handling for QB deployments.
//!
//! The full version of the paper discusses how QB copes with data changes.
//! The owner-side part of the problem is: *where does a newly inserted value
//! belong?*  Three cases arise:
//!
//! * the value is already binned — the new tuple simply joins its bin (the
//!   owner may need to add one fake tuple elsewhere to keep sensitive bins
//!   size-balanced);
//! * the value is new but some bin on the appropriate side has spare
//!   capacity — the value takes the first free slot;
//! * no bin has room — the binning must be rebuilt (Algorithm 1 again over
//!   the enlarged value set).
//!
//! [`InsertPlanner`] computes which case applies and, for the first two,
//! returns the target slot.  Actually re-encrypting/uploading the new tuple
//! is the job of the back-end engine and is outside the planner's scope.

use pds_common::Value;

use crate::binning::{BinAssignment, QueryBinning};

/// The outcome of planning an insert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertPlan {
    /// The value is already assigned; the new tuple joins this bin.
    ExistingAssignment {
        /// Whether the existing assignment is on the sensitive side.
        sensitive: bool,
        /// The bin and position the value already occupies.
        assignment: BinAssignment,
    },
    /// The value is new and fits into a spare slot of an existing bin.
    NewValue {
        /// Whether the slot is on the sensitive side.
        sensitive: bool,
        /// The bin and position to place the value at.
        assignment: BinAssignment,
    },
    /// No spare capacity: the binning must be rebuilt over the enlarged
    /// value set.
    RequiresRebuild,
}

/// Plans inserts against a [`QueryBinning`].
#[derive(Debug, Clone)]
pub struct InsertPlanner<'a> {
    binning: &'a QueryBinning,
}

impl<'a> InsertPlanner<'a> {
    /// Creates a planner over the current binning.
    pub fn new(binning: &'a QueryBinning) -> Self {
        InsertPlanner { binning }
    }

    /// Plans the insertion of a tuple whose searchable value is `value`,
    /// destined for the sensitive (`sensitive = true`) or non-sensitive
    /// side.
    pub fn plan(&self, value: &Value, sensitive: bool) -> InsertPlan {
        // Case 1: already assigned on the destination side.
        let existing = if sensitive {
            self.binning.sensitive_assignment(value)
        } else {
            self.binning.nonsensitive_assignment(value)
        };
        if let Some(assignment) = existing {
            return InsertPlan::ExistingAssignment {
                sensitive,
                assignment,
            };
        }

        // Case 2: find a spare slot on the destination side.
        let shape = self.binning.shape();
        if sensitive {
            for bin in 0..self.binning.sensitive_bin_count() {
                let used = self.binning.sensitive_bin(bin).len();
                if used < shape.sensitive_bin_capacity {
                    return InsertPlan::NewValue {
                        sensitive: true,
                        assignment: BinAssignment {
                            bin,
                            position: used,
                        },
                    };
                }
            }
        } else {
            for bin in 0..self.binning.nonsensitive_bin_count() {
                let used = self.binning.nonsensitive_bin(bin).len();
                if used < shape.nonsensitive_bin_capacity {
                    return InsertPlan::NewValue {
                        sensitive: false,
                        assignment: BinAssignment {
                            bin,
                            position: used,
                        },
                    };
                }
            }
        }

        // Case 3: everything is full.
        InsertPlan::RequiresRebuild
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::BinningConfig;
    use pds_storage::AttributeStats;

    fn binning(sensitive: &[&str], nonsensitive: &[&str]) -> QueryBinning {
        let s: Vec<Value> = sensitive.iter().map(|&v| Value::from(v)).collect();
        let ns: Vec<Value> = nonsensitive.iter().map(|&v| Value::from(v)).collect();
        QueryBinning::build_from_values(
            "A",
            s.clone(),
            ns.clone(),
            AttributeStats::from_values(s.iter()),
            AttributeStats::from_values(ns.iter()),
            BinningConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn existing_value_reuses_assignment() {
        let qb = binning(&["a", "b", "c", "d"], &["a", "e", "f", "g"]);
        let planner = InsertPlanner::new(&qb);
        match planner.plan(&Value::from("a"), true) {
            InsertPlan::ExistingAssignment {
                sensitive: true,
                assignment,
            } => {
                assert_eq!(Some(assignment), qb.sensitive_assignment(&Value::from("a")));
            }
            other => panic!("unexpected plan {other:?}"),
        }
        match planner.plan(&Value::from("e"), false) {
            InsertPlan::ExistingAssignment {
                sensitive: false, ..
            } => {}
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn new_value_takes_spare_slot_when_available() {
        // 3 sensitive values in a shape sized for 4 → one spare slot.
        let qb = binning(&["a", "b", "c"], &["d", "e", "f", "g"]);
        let planner = InsertPlanner::new(&qb);
        match planner.plan(&Value::from("zz"), true) {
            InsertPlan::NewValue {
                sensitive: true,
                assignment,
            } => {
                assert!(assignment.bin < qb.sensitive_bin_count());
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn full_side_requires_rebuild() {
        // Shape for (4, 4) is 2×2 on both sides: fully packed.
        let qb = binning(&["a", "b", "c", "d"], &["e", "f", "g", "h"]);
        let planner = InsertPlanner::new(&qb);
        assert_eq!(
            planner.plan(&Value::from("new-ns"), false),
            InsertPlan::RequiresRebuild
        );
        assert_eq!(
            planner.plan(&Value::from("new-s"), true),
            InsertPlan::RequiresRebuild
        );
    }

    #[test]
    fn rebuild_after_insert_covers_new_value() {
        // Demonstrate the rebuild path: add the value and rebuild Algorithm 1.
        let qb = binning(&["a", "b", "c", "d"], &["e", "f", "g", "h"]);
        assert_eq!(
            InsertPlanner::new(&qb).plan(&Value::from("i"), false),
            InsertPlan::RequiresRebuild
        );
        let s: Vec<Value> = ["a", "b", "c", "d"]
            .iter()
            .map(|&v| Value::from(v))
            .collect();
        let ns: Vec<Value> = ["e", "f", "g", "h", "i"]
            .iter()
            .map(|&v| Value::from(v))
            .collect();
        let rebuilt = QueryBinning::build_from_values(
            "A",
            s.clone(),
            ns.clone(),
            AttributeStats::from_values(s.iter()),
            AttributeStats::from_values(ns.iter()),
            BinningConfig::default(),
        )
        .unwrap();
        assert!(rebuilt.retrieve(&Value::from("i")).is_some());
    }
}
