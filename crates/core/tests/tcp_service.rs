//! End-to-end equivalence of the TCP service path: concurrent tenant
//! owners driving loopback [`ShardDaemon`]s must get answers identical to
//! the in-process threaded transport, with partitioned security holding
//! on every tenant's composed adversarial view afterwards.
//!
//! The pipelined-dispatch half of the file covers the correlation-id
//! demux: byte-identical answers whatever the in-flight window, recovery
//! from a mid-batch connection death with exactly one eager reconnect,
//! and typed errors (never misattributed answers) when a rogue daemon
//! replies with duplicate, unknown, or missing correlation ids.

use std::io::Write;
use std::net::{SocketAddr, TcpListener};

use pds_cloud::{
    BinEpisodeRequest, BinRoutedCloud, BinTransport, CloudServer, DbOwner, NetworkModel,
    ServiceConfig, ShardDaemon, ShardRouter, TcpCloudClient,
};
use pds_common::{PdsError, TupleId, Value};
use pds_core::{
    execute_shard_pipelined, BinPair, BinningConfig, EpisodeStep, QbExecutor, QueryBinning,
    WireMode,
};
use pds_proto::{read_frame, BinPayload, ReadFrame, WireMessage};
use pds_storage::{DataType, PartitionedRelation, Partitioner, Relation, Schema, Tuple};
use pds_systems::{DeterministicIndexEngine, NonDetScanEngine, SecureSelectionEngine};
use pds_workload::{employee_relation, employee_sensitivity_policy};
use proptest::prelude::*;

fn employee_parts() -> PartitionedRelation {
    let rel = employee_relation();
    let policy = employee_sensitivity_policy(&rel).unwrap();
    Partitioner::new(policy).split(&rel).unwrap()
}

/// One tenant's full deployment: a private owner (own keys), a private
/// binning/executor namespaced to the tenant id, and a local router whose
/// shard servers can be lifted into daemons.
struct Tenant<E: SecureSelectionEngine> {
    id: u64,
    owner: DbOwner,
    router: ShardRouter,
    executor: QbExecutor<E>,
    workload: Vec<Value>,
}

fn tenant_deployment<E: SecureSelectionEngine>(id: u64, shards: usize, engine: E) -> Tenant<E> {
    let parts = employee_parts();
    let attr = parts.sensitive.schema().attr_id("EId").unwrap();
    let mut workload = parts.sensitive.distinct_values(attr);
    for v in parts.nonsensitive.distinct_values(attr) {
        if !workload.contains(&v) {
            workload.push(v);
        }
    }
    let binning = QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
    let mut executor = QbExecutor::new(binning, engine)
        .with_cache_capacity(32)
        .with_tenant(id);
    let mut owner = DbOwner::new(1000 + id);
    let mut router = ShardRouter::new(shards, NetworkModel::paper_wan(), 11 + id).unwrap();
    executor.outsource(&mut owner, &mut router, &parts).unwrap();
    Tenant {
        id,
        owner,
        router,
        executor,
        workload,
    }
}

/// Lifts every tenant's shard servers out of their local routers into one
/// daemon per shard (the daemon becomes the servers' address space; the
/// local routers keep only the bin→shard routing).
fn spawn_daemons<E: SecureSelectionEngine>(
    tenants: &mut [Tenant<E>],
    shards: usize,
    config: &ServiceConfig,
) -> Vec<ShardDaemon> {
    let mut per_shard: Vec<Vec<(u64, CloudServer)>> = (0..shards).map(|_| Vec::new()).collect();
    for t in tenants.iter_mut() {
        for (s, server) in t.router.shards_mut().iter_mut().enumerate() {
            per_shard[s].push((t.id, std::mem::take(server)));
        }
    }
    per_shard
        .into_iter()
        .map(|hosted| ShardDaemon::spawn(hosted, config.clone()).unwrap())
        .collect()
}

/// Shuts the daemons down and reinstalls each tenant's shard servers into
/// its local router, so the composed security checks see everything the
/// daemons recorded.
fn reclaim_servers<E: SecureSelectionEngine>(daemons: Vec<ShardDaemon>, tenants: &mut [Tenant<E>]) {
    let mut returned: Vec<Vec<(u64, CloudServer)>> =
        daemons.into_iter().map(ShardDaemon::shutdown).collect();
    for t in tenants.iter_mut() {
        for (s, hosted) in returned.iter_mut().enumerate() {
            let pos = hosted
                .iter()
                .position(|(id, _)| *id == t.id)
                .expect("daemon returns every tenant's server");
            t.router.shards_mut()[s] = hosted.swap_remove(pos).1;
        }
    }
}

/// Runs every tenant's workload concurrently over loopback TCP and
/// asserts the answers equal that tenant's `expected` reference.
fn run_concurrently<E: SecureSelectionEngine>(
    tenants: &mut [Tenant<E>],
    addrs: &[SocketAddr],
    expected: &[Vec<Vec<Tuple>>],
) {
    std::thread::scope(|scope| {
        for (t, want) in tenants.iter_mut().zip(expected) {
            let addrs = addrs.to_vec();
            scope.spawn(move || {
                let workload = t.workload.clone();
                let transport = BinTransport::Tcp(TcpCloudClient::new(t.id, addrs));
                let run = t
                    .executor
                    .run_workload_transported(&mut t.owner, &mut t.router, &workload, &transport)
                    .unwrap();
                assert_eq!(&run.answers, want, "tenant {} answers diverge", t.id);
                assert!(run.rounds > 0, "remote episodes count their rounds");
                assert!(run.wall_clock_sec > 0.0);
            });
        }
    });
}

#[test]
fn eight_concurrent_tcp_owners_match_the_threaded_transport() {
    const TENANTS: u64 = 8;
    const SHARDS: usize = 2;
    let mut tenants: Vec<_> = (1..=TENANTS)
        .map(|id| tenant_deployment(id, SHARDS, DeterministicIndexEngine::new()))
        .collect();

    // Reference pass: the in-process threaded fan-out, per tenant.
    let mut expected = Vec::new();
    for t in &mut tenants {
        let workload = t.workload.clone();
        let run = t
            .executor
            .run_workload_transported(
                &mut t.owner,
                &mut t.router,
                &workload,
                &BinTransport::Threaded,
            )
            .unwrap();
        expected.push(run.answers);
        // Reset the hot-bin cache so the TCP pass re-fetches every pair
        // instead of answering owner-side.
        t.executor.set_cache_capacity(32);
    }

    let daemons = spawn_daemons(&mut tenants, SHARDS, &ServiceConfig::with_workers(4));
    let addrs: Vec<SocketAddr> = daemons.iter().map(ShardDaemon::addr).collect();
    run_concurrently(&mut tenants, &addrs, &expected);
    reclaim_servers(daemons, &mut tenants);

    // Both passes ran the exhaustive workload; each tenant's composed view
    // (local episodes + daemon-served episodes) must still satisfy
    // partitioned security, per shard and composed.
    for t in &tenants {
        let report =
            pds_adversary::check_sharded_partitioned_security(&t.router.adversarial_views());
        assert!(report.is_secure(), "tenant {}: {report:?}", t.id);
    }
}

#[test]
fn a_fine_grained_engine_is_refused_over_tcp_with_a_typed_error() {
    const SHARDS: usize = 2;
    let mut tenants = vec![tenant_deployment(1, SHARDS, NonDetScanEngine::new())];
    let daemons = spawn_daemons(&mut tenants, SHARDS, &ServiceConfig::default());
    let addrs: Vec<SocketAddr> = daemons.iter().map(ShardDaemon::addr).collect();

    let t = &mut tenants[0];
    let workload = t.workload.clone();
    let transport = BinTransport::Tcp(TcpCloudClient::new(1, addrs));
    let err = t
        .executor
        .run_workload_transported(&mut t.owner, &mut t.router, &workload, &transport)
        .unwrap_err();
    assert!(matches!(err, PdsError::Wire(_)), "{err:?}");
    assert!(
        err.to_string().contains("fine-grained"),
        "the error must explain the composed-only wire contract: {err}"
    );
    reclaim_servers(daemons, &mut tenants);
}

#[test]
fn a_client_for_the_wrong_tenant_is_refused_before_dialing() {
    const SHARDS: usize = 2;
    let mut t = tenant_deployment(1, SHARDS, DeterministicIndexEngine::new());
    // Dead addresses: the mismatch must be caught before any connect.
    let addrs: Vec<SocketAddr> = (0..SHARDS)
        .map(|_| "127.0.0.1:1".parse().unwrap())
        .collect();
    let workload = t.workload.clone();
    let transport = BinTransport::Tcp(TcpCloudClient::new(2, addrs));
    let err = t
        .executor
        .run_workload_transported(&mut t.owner, &mut t.router, &workload, &transport)
        .unwrap_err();
    assert!(matches!(err, PdsError::Config(_)), "{err:?}");
    assert!(err.to_string().contains("tenant"), "{err}");
}

#[test]
fn a_poisoned_pooled_connection_recovers_with_one_eager_reconnect_per_shard() {
    const SHARDS: usize = 2;
    let mut tenants = vec![tenant_deployment(
        1,
        SHARDS,
        DeterministicIndexEngine::new(),
    )];
    let t0 = &mut tenants[0];
    let workload = t0.workload.clone();
    let expected = t0
        .executor
        .run_workload_transported(
            &mut t0.owner,
            &mut t0.router,
            &workload,
            &BinTransport::Threaded,
        )
        .unwrap()
        .answers;
    t0.executor.set_cache_capacity(32);

    let daemons = spawn_daemons(&mut tenants, SHARDS, &ServiceConfig::with_workers(2));
    let addrs: Vec<SocketAddr> = daemons.iter().map(ShardDaemon::addr).collect();
    let client = TcpCloudClient::new(1, addrs);
    // Poison every shard's pool with a connection whose socket is already
    // torn down — exactly what a daemon dying mid-batch leaves behind.
    for shard in 0..SHARDS {
        let conn = client.checkout(shard).unwrap();
        conn.shutdown();
        client.checkin(shard, conn);
    }

    let t = &mut tenants[0];
    let transport = BinTransport::Tcp(client.clone());
    let run = t
        .executor
        .run_workload_transported(&mut t.owner, &mut t.router, &workload, &transport)
        .unwrap();
    assert_eq!(run.answers, expected, "replayed answers must be identical");
    let reconnects = client.reconnects();
    assert!(
        (1..=SHARDS as u64).contains(&reconnects),
        "each shard with work reconnects exactly once, got {reconnects}"
    );
    reclaim_servers(daemons, &mut tenants);
}

#[test]
fn a_dead_daemon_is_a_typed_error_after_one_bounded_retry() {
    const SHARDS: usize = 2;
    let mut tenants = vec![tenant_deployment(
        1,
        SHARDS,
        DeterministicIndexEngine::new(),
    )];
    let daemons = spawn_daemons(&mut tenants, SHARDS, &ServiceConfig::default());
    let addrs: Vec<SocketAddr> = daemons.iter().map(ShardDaemon::addr).collect();
    let client = TcpCloudClient::new(1, addrs);
    // Pool one healthy connection per shard, then kill every daemon: the
    // batch must fail through the reconnect path (one eager redial, one
    // retry), not hang and not panic.
    for shard in 0..SHARDS {
        let conn = client.checkout(shard).unwrap();
        client.checkin(shard, conn);
    }
    reclaim_servers(daemons, &mut tenants);

    let t = &mut tenants[0];
    let workload = t.workload.clone();
    let transport = BinTransport::Tcp(client.clone());
    let err = t
        .executor
        .run_workload_transported(&mut t.owner, &mut t.router, &workload, &transport)
        .unwrap_err();
    assert!(matches!(err, PdsError::Wire(_)), "{err:?}");
    assert!(
        err.to_string().contains("after retry"),
        "the error must say the redial was bounded: {err}"
    );
    assert!(
        client.reconnects() >= 1,
        "the eager reconnect must have run"
    );
}

/// What a rogue daemon does with the correlation ids of one pipelined
/// batch — each mode probes one failure path of the client-side demux.
#[derive(Clone, Copy, Debug)]
enum RogueMode {
    /// Answer every request with its own id, in reverse arrival order.
    Reverse,
    /// Answer the first request twice with the same id.
    Duplicate,
    /// Answer with an id that was never issued.
    Unknown,
    /// Answer with correlation id 0, like a pre-correlation v1 daemon.
    Uncorrelated,
}

/// A daemon that handshakes properly, reads `batch` composed requests,
/// and then answers according to `mode`.  Each answer's payload encodes
/// which request it serves (a tuple built from the request's bin index),
/// so the test can prove responses were matched to the right episodes.
fn rogue_daemon(mode: RogueMode, batch: usize) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let hello = match read_frame(&mut stream).unwrap() {
            ReadFrame::Frame(frame) => frame,
            other => panic!("expected the Hello frame, got {other:?}"),
        };
        let (corr, msg) = WireMessage::decode_corr(&hello).unwrap();
        stream
            .write_all(msg.encode_framed(corr).unwrap().as_ref())
            .unwrap();

        let mut pending: Vec<(u64, WireMessage)> = Vec::new();
        for _ in 0..batch {
            let frame = match read_frame(&mut stream).unwrap() {
                ReadFrame::Frame(frame) => frame,
                other => panic!("expected a request frame, got {other:?}"),
            };
            let (corr, msg) = WireMessage::decode_corr(&frame).unwrap();
            let WireMessage::BinPairRequest(req) = msg else {
                panic!("expected a BinPairRequest, got {}", msg.name());
            };
            let marker = Tuple::new(
                TupleId::new(1000 + u64::from(req.nonsensitive_bin)),
                vec![Value::Int(i64::from(req.nonsensitive_bin))],
            );
            let resp = WireMessage::BinPayload(BinPayload {
                plain_tuples: vec![marker],
                encrypted_rows: Vec::new(),
            });
            pending.push((corr, resp));
        }
        let mut send = |corr: u64, resp: &WireMessage| {
            stream
                .write_all(resp.encode_framed(corr).unwrap().as_ref())
                .unwrap();
        };
        match mode {
            RogueMode::Reverse => {
                for (corr, resp) in pending.iter().rev() {
                    send(*corr, resp);
                }
            }
            RogueMode::Duplicate => {
                send(pending[0].0, &pending[0].1);
                send(pending[0].0, &pending[0].1);
            }
            RogueMode::Unknown => send(pending[0].0 + 999, &pending[0].1),
            RogueMode::Uncorrelated => send(0, &pending[0].1),
        }
    });
    (addr, handle)
}

/// A det-index engine with outsourced state (so its pipeline halves work)
/// plus the owner holding its keys; the cloud it outsourced to is
/// throwaway — the rogue daemon fabricates every response.
fn outsourced_det() -> (DbOwner, DeterministicIndexEngine) {
    let schema = Schema::from_pairs(&[("K", DataType::Int)]).unwrap();
    let mut rel = Relation::new("T", schema);
    for k in 0..4 {
        rel.insert(vec![Value::Int(k)]).unwrap();
    }
    let attr = rel.schema().attr_id("K").unwrap();
    let mut owner = DbOwner::new(5);
    let mut cloud = CloudServer::new(NetworkModel::paper_wan());
    let mut engine = DeterministicIndexEngine::new();
    engine
        .outsource(&mut owner, &mut cloud, &rel, attr)
        .unwrap();
    (owner, engine)
}

/// `n` composed single-shard steps with distinct bin indices, so every
/// response is attributable to exactly one episode.
fn pipeline_steps(n: usize) -> Vec<EpisodeStep> {
    (0..n)
        .map(|i| EpisodeStep {
            index: i,
            pair: BinPair {
                sensitive_bin: i,
                nonsensitive_bin: i,
            },
            shard: 0,
            composed: true,
            request: BinEpisodeRequest {
                sensitive_bin: i,
                nonsensitive_bin: i,
                sensitive_values: vec![Value::Int(i as i64)],
                nonsensitive_values: vec![Value::Int(100 + i as i64)],
                pushdown: None,
            },
        })
        .collect()
}

#[test]
fn out_of_order_responses_are_matched_to_the_right_episodes() {
    let (addr, daemon) = rogue_daemon(RogueMode::Reverse, 4);
    let client = TcpCloudClient::new(7, vec![addr]);
    let (mut owner, mut engine) = outsourced_det();
    let steps = pipeline_steps(4);
    let (episodes, rounds) =
        execute_shard_pipelined(&mut owner, &client, 0, &mut engine, &steps, 4).unwrap();
    daemon.join().unwrap();

    assert_eq!(rounds, 4);
    // Responses arrived in reverse, and the demux must have attributed
    // each to its own episode: the marker tuple the rogue daemon built
    // from request i must surface on episode i.
    let arrival: Vec<usize> = episodes.iter().map(|(idx, _, _)| *idx).collect();
    assert_eq!(
        arrival,
        vec![3, 2, 1, 0],
        "completion order is the wire order"
    );
    for (idx, _pair, res) in &episodes {
        let want = Tuple::new(
            TupleId::new(1000 + *idx as u64),
            vec![Value::Int(*idx as i64)],
        );
        assert_eq!(res.outcome.nonsensitive, vec![want], "episode {idx}");
        assert!(res.outcome.sensitive.is_empty());
    }
    assert_eq!(client.reconnects(), 0);
}

#[test]
fn rogue_correlation_ids_are_typed_errors_not_misattributed_answers() {
    for (mode, needle) in [
        (RogueMode::Duplicate, "correlation id"),
        (RogueMode::Unknown, "correlation id"),
        (RogueMode::Uncorrelated, "without a correlation id"),
    ] {
        let (addr, daemon) = rogue_daemon(mode, 2);
        let client = TcpCloudClient::new(7, vec![addr]);
        let (mut owner, mut engine) = outsourced_det();
        let steps = pipeline_steps(2);
        let err =
            execute_shard_pipelined(&mut owner, &client, 0, &mut engine, &steps, 2).unwrap_err();
        daemon.join().unwrap();
        assert!(matches!(err, PdsError::Wire(_)), "{mode:?}: {err:?}");
        assert!(
            err.to_string().contains(needle),
            "{mode:?} must name the protocol violation: {err}"
        );
        assert_eq!(
            client.reconnects(),
            0,
            "{mode:?}: a protocol violation must not be replayed"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Seed-replayable (`PROPTEST_SEED`) concurrency property: whatever
    /// workload subset each of three tenants draws, the concurrent
    /// loopback answers are identical to the in-process threaded ones.
    #[test]
    fn concurrent_tcp_owners_always_match_in_process(seed in proptest::arbitrary::any::<u64>()) {
        use pds_common::rng::derive_seed;

        const TENANTS: u64 = 3;
        const SHARDS: usize = 2;
        let mut tenants: Vec<_> = (1..=TENANTS)
            .map(|id| tenant_deployment(id, SHARDS, DeterministicIndexEngine::new()))
            .collect();

        // Each tenant queries a seed-derived subset (with repeats) of its
        // values, so every failure replays from the printed seed alone.
        let mut expected = Vec::new();
        for t in &mut tenants {
            let tseed = derive_seed(seed, &format!("tenant-{}", t.id));
            let len = 1 + (tseed % 8) as usize;
            let subset: Vec<Value> = (0..len)
                .map(|k| {
                    let idx = derive_seed(tseed, &format!("q{k}")) as usize % t.workload.len();
                    t.workload[idx].clone()
                })
                .collect();
            t.workload = subset;
            let workload = t.workload.clone();
            let run = t
                .executor
                .run_workload_transported(
                    &mut t.owner,
                    &mut t.router,
                    &workload,
                    &BinTransport::Threaded,
                )
                .unwrap();
            expected.push(run.answers);
            t.executor.set_cache_capacity(32);
        }

        let daemons = spawn_daemons(&mut tenants, SHARDS, &ServiceConfig::with_workers(2));
        let addrs: Vec<SocketAddr> = daemons.iter().map(ShardDaemon::addr).collect();
        run_concurrently(&mut tenants, &addrs, &expected);
        reclaim_servers(daemons, &mut tenants);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Seed-replayable (`PROPTEST_SEED`) equivalence: whatever the query
    /// order and whatever the in-flight window, pipelined dispatch
    /// returns answers byte-identical to the lock-step discipline on the
    /// same daemons.
    #[test]
    fn pipelined_answers_match_lock_step_for_any_window(
        seed in proptest::arbitrary::any::<u64>(),
        window in 1usize..=16,
    ) {
        use pds_common::rng::derive_seed;

        const SHARDS: usize = 2;
        let mut tenants = vec![tenant_deployment(1, SHARDS, DeterministicIndexEngine::new())];
        // Seed-derived query order (with repeats) so every failure
        // replays from the printed seed alone.
        let len = 4 + (derive_seed(seed, "len") % 8) as usize;
        let workload: Vec<Value> = (0..len)
            .map(|k| {
                let idx =
                    derive_seed(seed, &format!("q{k}")) as usize % tenants[0].workload.len();
                tenants[0].workload[idx].clone()
            })
            .collect();
        tenants[0].workload = workload.clone();

        let daemons = spawn_daemons(&mut tenants, SHARDS, &ServiceConfig::with_workers(4));
        let addrs: Vec<SocketAddr> = daemons.iter().map(ShardDaemon::addr).collect();

        let t = &mut tenants[0];
        let transport = BinTransport::Tcp(TcpCloudClient::new(1, addrs));
        t.executor.set_wire_mode(WireMode::LockStep);
        let lock_step = t
            .executor
            .run_workload_transported(&mut t.owner, &mut t.router, &workload, &transport)
            .unwrap();
        t.executor.set_cache_capacity(32); // reset the bin cache between passes
        t.executor.set_wire_mode(WireMode::Pipelined { window });
        let pipelined = t
            .executor
            .run_workload_transported(&mut t.owner, &mut t.router, &workload, &transport)
            .unwrap();
        prop_assert_eq!(lock_step.answers, pipelined.answers);
        reclaim_servers(daemons, &mut tenants);
    }
}
