//! End-to-end equivalence of the TCP service path: concurrent tenant
//! owners driving loopback [`ShardDaemon`]s must get answers identical to
//! the in-process threaded transport, with partitioned security holding
//! on every tenant's composed adversarial view afterwards.

use std::net::SocketAddr;

use pds_cloud::{
    BinRoutedCloud, BinTransport, CloudServer, DbOwner, NetworkModel, ServiceConfig, ShardDaemon,
    ShardRouter, TcpCloudClient,
};
use pds_common::{PdsError, Value};
use pds_core::{BinningConfig, QbExecutor, QueryBinning};
use pds_storage::{PartitionedRelation, Partitioner, Tuple};
use pds_systems::{DeterministicIndexEngine, NonDetScanEngine, SecureSelectionEngine};
use pds_workload::{employee_relation, employee_sensitivity_policy};
use proptest::prelude::*;

fn employee_parts() -> PartitionedRelation {
    let rel = employee_relation();
    let policy = employee_sensitivity_policy(&rel).unwrap();
    Partitioner::new(policy).split(&rel).unwrap()
}

/// One tenant's full deployment: a private owner (own keys), a private
/// binning/executor namespaced to the tenant id, and a local router whose
/// shard servers can be lifted into daemons.
struct Tenant<E: SecureSelectionEngine> {
    id: u64,
    owner: DbOwner,
    router: ShardRouter,
    executor: QbExecutor<E>,
    workload: Vec<Value>,
}

fn tenant_deployment<E: SecureSelectionEngine>(id: u64, shards: usize, engine: E) -> Tenant<E> {
    let parts = employee_parts();
    let attr = parts.sensitive.schema().attr_id("EId").unwrap();
    let mut workload = parts.sensitive.distinct_values(attr);
    for v in parts.nonsensitive.distinct_values(attr) {
        if !workload.contains(&v) {
            workload.push(v);
        }
    }
    let binning = QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
    let mut executor = QbExecutor::new(binning, engine)
        .with_cache_capacity(32)
        .with_tenant(id);
    let mut owner = DbOwner::new(1000 + id);
    let mut router = ShardRouter::new(shards, NetworkModel::paper_wan(), 11 + id).unwrap();
    executor.outsource(&mut owner, &mut router, &parts).unwrap();
    Tenant {
        id,
        owner,
        router,
        executor,
        workload,
    }
}

/// Lifts every tenant's shard servers out of their local routers into one
/// daemon per shard (the daemon becomes the servers' address space; the
/// local routers keep only the bin→shard routing).
fn spawn_daemons<E: SecureSelectionEngine>(
    tenants: &mut [Tenant<E>],
    shards: usize,
    config: &ServiceConfig,
) -> Vec<ShardDaemon> {
    let mut per_shard: Vec<Vec<(u64, CloudServer)>> = (0..shards).map(|_| Vec::new()).collect();
    for t in tenants.iter_mut() {
        for (s, server) in t.router.shards_mut().iter_mut().enumerate() {
            per_shard[s].push((t.id, std::mem::take(server)));
        }
    }
    per_shard
        .into_iter()
        .map(|hosted| ShardDaemon::spawn(hosted, config.clone()).unwrap())
        .collect()
}

/// Shuts the daemons down and reinstalls each tenant's shard servers into
/// its local router, so the composed security checks see everything the
/// daemons recorded.
fn reclaim_servers<E: SecureSelectionEngine>(daemons: Vec<ShardDaemon>, tenants: &mut [Tenant<E>]) {
    let mut returned: Vec<Vec<(u64, CloudServer)>> =
        daemons.into_iter().map(ShardDaemon::shutdown).collect();
    for t in tenants.iter_mut() {
        for (s, hosted) in returned.iter_mut().enumerate() {
            let pos = hosted
                .iter()
                .position(|(id, _)| *id == t.id)
                .expect("daemon returns every tenant's server");
            t.router.shards_mut()[s] = hosted.swap_remove(pos).1;
        }
    }
}

/// Runs every tenant's workload concurrently over loopback TCP and
/// asserts the answers equal that tenant's `expected` reference.
fn run_concurrently<E: SecureSelectionEngine>(
    tenants: &mut [Tenant<E>],
    addrs: &[SocketAddr],
    expected: &[Vec<Vec<Tuple>>],
) {
    std::thread::scope(|scope| {
        for (t, want) in tenants.iter_mut().zip(expected) {
            let addrs = addrs.to_vec();
            scope.spawn(move || {
                let workload = t.workload.clone();
                let transport = BinTransport::Tcp(TcpCloudClient::new(t.id, addrs));
                let run = t
                    .executor
                    .run_workload_transported(&mut t.owner, &mut t.router, &workload, &transport)
                    .unwrap();
                assert_eq!(&run.answers, want, "tenant {} answers diverge", t.id);
                assert!(run.rounds > 0, "remote episodes count their rounds");
                assert!(run.wall_clock_sec > 0.0);
            });
        }
    });
}

#[test]
fn eight_concurrent_tcp_owners_match_the_threaded_transport() {
    const TENANTS: u64 = 8;
    const SHARDS: usize = 2;
    let mut tenants: Vec<_> = (1..=TENANTS)
        .map(|id| tenant_deployment(id, SHARDS, DeterministicIndexEngine::new()))
        .collect();

    // Reference pass: the in-process threaded fan-out, per tenant.
    let mut expected = Vec::new();
    for t in &mut tenants {
        let workload = t.workload.clone();
        let run = t
            .executor
            .run_workload_transported(
                &mut t.owner,
                &mut t.router,
                &workload,
                &BinTransport::Threaded,
            )
            .unwrap();
        expected.push(run.answers);
        // Reset the hot-bin cache so the TCP pass re-fetches every pair
        // instead of answering owner-side.
        t.executor.set_cache_capacity(32);
    }

    let daemons = spawn_daemons(&mut tenants, SHARDS, &ServiceConfig::with_workers(4));
    let addrs: Vec<SocketAddr> = daemons.iter().map(ShardDaemon::addr).collect();
    run_concurrently(&mut tenants, &addrs, &expected);
    reclaim_servers(daemons, &mut tenants);

    // Both passes ran the exhaustive workload; each tenant's composed view
    // (local episodes + daemon-served episodes) must still satisfy
    // partitioned security, per shard and composed.
    for t in &tenants {
        let report =
            pds_adversary::check_sharded_partitioned_security(&t.router.adversarial_views());
        assert!(report.is_secure(), "tenant {}: {report:?}", t.id);
    }
}

#[test]
fn a_fine_grained_engine_is_refused_over_tcp_with_a_typed_error() {
    const SHARDS: usize = 2;
    let mut tenants = vec![tenant_deployment(1, SHARDS, NonDetScanEngine::new())];
    let daemons = spawn_daemons(&mut tenants, SHARDS, &ServiceConfig::default());
    let addrs: Vec<SocketAddr> = daemons.iter().map(ShardDaemon::addr).collect();

    let t = &mut tenants[0];
    let workload = t.workload.clone();
    let transport = BinTransport::Tcp(TcpCloudClient::new(1, addrs));
    let err = t
        .executor
        .run_workload_transported(&mut t.owner, &mut t.router, &workload, &transport)
        .unwrap_err();
    assert!(matches!(err, PdsError::Wire(_)), "{err:?}");
    assert!(
        err.to_string().contains("fine-grained"),
        "the error must explain the composed-only wire contract: {err}"
    );
    reclaim_servers(daemons, &mut tenants);
}

#[test]
fn a_client_for_the_wrong_tenant_is_refused_before_dialing() {
    const SHARDS: usize = 2;
    let mut t = tenant_deployment(1, SHARDS, DeterministicIndexEngine::new());
    // Dead addresses: the mismatch must be caught before any connect.
    let addrs: Vec<SocketAddr> = (0..SHARDS)
        .map(|_| "127.0.0.1:1".parse().unwrap())
        .collect();
    let workload = t.workload.clone();
    let transport = BinTransport::Tcp(TcpCloudClient::new(2, addrs));
    let err = t
        .executor
        .run_workload_transported(&mut t.owner, &mut t.router, &workload, &transport)
        .unwrap_err();
    assert!(matches!(err, PdsError::Config(_)), "{err:?}");
    assert!(err.to_string().contains("tenant"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Seed-replayable (`PROPTEST_SEED`) concurrency property: whatever
    /// workload subset each of three tenants draws, the concurrent
    /// loopback answers are identical to the in-process threaded ones.
    #[test]
    fn concurrent_tcp_owners_always_match_in_process(seed in proptest::arbitrary::any::<u64>()) {
        use pds_common::rng::derive_seed;

        const TENANTS: u64 = 3;
        const SHARDS: usize = 2;
        let mut tenants: Vec<_> = (1..=TENANTS)
            .map(|id| tenant_deployment(id, SHARDS, DeterministicIndexEngine::new()))
            .collect();

        // Each tenant queries a seed-derived subset (with repeats) of its
        // values, so every failure replays from the printed seed alone.
        let mut expected = Vec::new();
        for t in &mut tenants {
            let tseed = derive_seed(seed, &format!("tenant-{}", t.id));
            let len = 1 + (tseed % 8) as usize;
            let subset: Vec<Value> = (0..len)
                .map(|k| {
                    let idx = derive_seed(tseed, &format!("q{k}")) as usize % t.workload.len();
                    t.workload[idx].clone()
                })
                .collect();
            t.workload = subset;
            let workload = t.workload.clone();
            let run = t
                .executor
                .run_workload_transported(
                    &mut t.owner,
                    &mut t.router,
                    &workload,
                    &BinTransport::Threaded,
                )
                .unwrap();
            expected.push(run.answers);
            t.executor.set_cache_capacity(32);
        }

        let daemons = spawn_daemons(&mut tenants, SHARDS, &ServiceConfig::with_workers(2));
        let addrs: Vec<SocketAddr> = daemons.iter().map(ShardDaemon::addr).collect();
        run_concurrently(&mut tenants, &addrs, &expected);
        reclaim_servers(daemons, &mut tenants);
    }
}
