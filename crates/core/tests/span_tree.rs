//! Seed-replayable (`PROPTEST_SEED`) span-tree well-formedness: under a
//! full three-tenant concurrent TCP run with tracing enabled, the drained
//! trace must form a forest — unique ids, every non-root parent recorded
//! on the same thread with a containing interval — and lose nothing to
//! ring overflow.
//!
//! Tracing is process-global state, so this property lives alone in its
//! own integration-test binary (proptest cases run sequentially within
//! the single `#[test]`).

use std::collections::HashMap;
use std::net::SocketAddr;

use pds_cloud::{
    BinRoutedCloud, BinTransport, CloudServer, DbOwner, NetworkModel, ServiceConfig, ShardDaemon,
    ShardRouter, TcpCloudClient,
};
use pds_common::rng::derive_seed;
use pds_common::Value;
use pds_core::{BinningConfig, QbExecutor, QueryBinning};
use pds_obs::TraceEvent;
use pds_storage::Partitioner;
use pds_systems::DeterministicIndexEngine;
use pds_workload::{employee_relation, employee_sensitivity_policy};
use proptest::prelude::*;

struct Tenant {
    id: u64,
    owner: DbOwner,
    router: ShardRouter,
    executor: QbExecutor<DeterministicIndexEngine>,
    workload: Vec<Value>,
}

fn tenant_deployment(id: u64, shards: usize) -> Tenant {
    let rel = employee_relation();
    let policy = employee_sensitivity_policy(&rel).unwrap();
    let parts = Partitioner::new(policy).split(&rel).unwrap();
    let attr = parts.sensitive.schema().attr_id("EId").unwrap();
    let mut workload = parts.sensitive.distinct_values(attr);
    for v in parts.nonsensitive.distinct_values(attr) {
        if !workload.contains(&v) {
            workload.push(v);
        }
    }
    let binning = QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
    let mut executor = QbExecutor::new(binning, DeterministicIndexEngine::new()).with_tenant(id);
    let mut owner = DbOwner::new(1000 + id);
    let mut router = ShardRouter::new(shards, NetworkModel::paper_wan(), 11 + id).unwrap();
    executor.outsource(&mut owner, &mut router, &parts).unwrap();
    Tenant {
        id,
        owner,
        router,
        executor,
        workload,
    }
}

/// The forest property over one drained trace.
fn assert_well_formed(events: &[TraceEvent]) {
    let mut by_id: HashMap<u64, &TraceEvent> = HashMap::with_capacity(events.len());
    for e in events {
        assert_ne!(e.id, 0, "span ids are never 0 (0 is the root marker)");
        assert!(
            by_id.insert(e.id, e).is_none(),
            "duplicate span id {}",
            e.id
        );
        assert!(
            e.start_ns <= e.end_ns,
            "span {} ({}) ends before it starts",
            e.id,
            e.name
        );
        assert!(
            e.name.contains('.'),
            "span name `{}` has no phase prefix",
            e.name
        );
    }
    for e in events {
        if e.parent == 0 {
            continue;
        }
        let parent = by_id.get(&e.parent).unwrap_or_else(|| {
            panic!(
                "span {} ({}) names parent {} which was never recorded",
                e.id, e.name, e.parent
            )
        });
        assert_eq!(
            parent.thread, e.thread,
            "span {} ({}) crosses threads to parent {} ({})",
            e.id, e.name, parent.id, parent.name
        );
        assert!(
            parent.start_ns <= e.start_ns && e.end_ns <= parent.end_ns,
            "span {} ({}) [{}, {}] escapes parent {} ({}) [{}, {}]",
            e.id,
            e.name,
            e.start_ns,
            e.end_ns,
            parent.id,
            parent.name,
            parent.start_ns,
            parent.end_ns
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn concurrent_traced_runs_produce_a_well_formed_span_forest(
        seed in proptest::arbitrary::any::<u64>()
    ) {
        const TENANTS: u64 = 3;
        const SHARDS: usize = 2;

        pds_obs::set_tracing(true);
        // Clean slate per case: earlier cases' spans must not bleed in.
        pds_obs::drain();

        let mut tenants: Vec<_> = (1..=TENANTS)
            .map(|id| tenant_deployment(id, SHARDS))
            .collect();

        // Seed-derived workload subsets, as in the equivalence property.
        for t in &mut tenants {
            let tseed = derive_seed(seed, &format!("tenant-{}", t.id));
            let len = 1 + (tseed % 6) as usize;
            t.workload = (0..len)
                .map(|k| {
                    let idx = derive_seed(tseed, &format!("q{k}")) as usize % t.workload.len();
                    t.workload[idx].clone()
                })
                .collect();
        }

        // Lift shard servers into daemons and run all tenants concurrently.
        let mut per_shard: Vec<Vec<(u64, CloudServer)>> =
            (0..SHARDS).map(|_| Vec::new()).collect();
        for t in tenants.iter_mut() {
            for (s, server) in t.router.shards_mut().iter_mut().enumerate() {
                per_shard[s].push((t.id, std::mem::take(server)));
            }
        }
        let daemons: Vec<ShardDaemon> = per_shard
            .into_iter()
            .enumerate()
            .map(|(s, hosted)| {
                ShardDaemon::spawn(
                    hosted,
                    ServiceConfig::with_workers(2).with_shard(s as u64),
                )
                .unwrap()
            })
            .collect();
        let addrs: Vec<SocketAddr> = daemons.iter().map(ShardDaemon::addr).collect();

        std::thread::scope(|scope| {
            for t in tenants.iter_mut() {
                let addrs = addrs.clone();
                scope.spawn(move || {
                    let workload = t.workload.clone();
                    let transport = BinTransport::Tcp(TcpCloudClient::new(t.id, addrs));
                    t.executor
                        .run_workload_transported(&mut t.owner, &mut t.router, &workload, &transport)
                        .unwrap();
                });
            }
        });
        for d in daemons {
            d.shutdown();
        }

        let drained = pds_obs::drain();
        pds_obs::set_tracing(false);
        prop_assert_eq!(drained.dropped, 0);
        prop_assert!(!drained.events.is_empty(), "a traced run records spans");
        assert_well_formed(&drained.events);
    }
}
