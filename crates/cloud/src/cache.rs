//! Owner-side hot-bin cache.
//!
//! Query Binning always retrieves *whole bins*: the same sensitive bin is
//! fetched (and decrypted) again for every value it contains, and popular
//! values under a skewed workload hammer the same bin pair over and over.
//! [`BinCache`] is a small bounded LRU the **trusted owner** keeps over
//! already-retrieved, already-decrypted bin contents, keyed by
//! [`BinKey`] — `(bin kind, bin index)`.
//!
//! ## Security
//!
//! The cache lives entirely owner-side, so it never *adds* data to the
//! cloud's view — the cloud only ever sees *fewer* episodes.  Two shape
//! constraints keep what it *does* see indistinguishable from an uncached
//! execution:
//!
//! 1. A query is served from cache only when **both** bins of its pair are
//!    cached.  Serving half a pair would make the cloud fetch a lone bin,
//!    producing an episode whose sensitive output size differs from every
//!    other episode's and breaking count indistinguishability (§III
//!    condition 2).
//! 2. The pair must have been **observed together** by the cloud at least
//!    once ([`BinCache::get_pair`] checks the seen-pair set filled by
//!    [`BinCache::store_pair`]).  Bins are shared across pairs — pair
//!    `(i, j)` could assemble from `(i, j')`'s sensitive bin and
//!    `(i', j)`'s non-sensitive bin — but serving a never-co-observed pair
//!    would permanently *remove* that edge from the cloud's co-occurrence
//!    graph, and an incomplete bipartite graph is exactly the Figure 4b
//!    shape `check_partitioned_security` rejects.  Requiring one joint
//!    observation first makes the cached view a *prefix-preserving
//!    subsequence* of the uncached one: same distinct episodes, lower
//!    multiplicities, identical security verdict.
//!
//! ## Consistency
//!
//! Cached entries are snapshots; an insert into a bin makes its entry
//! stale.  [`BinCache::invalidate`] drops one bin, [`BinCache::clear`] the
//! lot.  Invalidation is **not** automatic: the insert path lives outside
//! the executor (`InsertPlanner` plans, the engine re-uploads), so whoever
//! applies an insert plan must call
//! `QbExecutor::invalidate_cache_on_insert` before the next select, or
//! cached bins will serve answers missing the new tuple.

use std::collections::{HashMap, HashSet};

use pds_storage::Tuple;

/// Which side of the deployment a cached bin belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinKind {
    /// A sensitive bin: decrypted real-and-fake tuples as the engine
    /// returned them (fakes are filtered by the executor, not the cache).
    Sensitive,
    /// A non-sensitive bin: clear-text tuples as the cloud returned them.
    NonSensitive,
}

/// Cache key: one bin of one side, in one tenant's bin namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BinKey {
    /// The side the bin belongs to.
    pub kind: BinKind,
    /// The bin index on that side.
    pub index: usize,
    /// Tenant whose namespace the bin index lives in.  Single-tenant
    /// deployments use the default tenant 0; under the multi-tenant TCP
    /// service each owner's executor stamps its tenant id here so bin
    /// indices of different tenants can never alias in shared tooling.
    pub tenant: u64,
}

impl BinKey {
    /// Key of a sensitive bin (default tenant 0).
    pub fn sensitive(index: usize) -> Self {
        BinKey {
            kind: BinKind::Sensitive,
            index,
            tenant: 0,
        }
    }

    /// Key of a non-sensitive bin (default tenant 0).
    pub fn nonsensitive(index: usize) -> Self {
        BinKey {
            kind: BinKind::NonSensitive,
            index,
            tenant: 0,
        }
    }

    /// The same bin key in `tenant`'s namespace.
    pub fn for_tenant(mut self, tenant: u64) -> Self {
        self.tenant = tenant;
        self
    }
}

/// Cumulative hit/miss accounting of a [`BinCache`].
///
/// One *fetch* is one whole bin-pair lookup (`hits + misses == fetches`
/// always holds); a *hit* means both bins of the pair were cached and no
/// cloud interaction happened at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BinCacheStats {
    /// Pair lookups answered entirely from cache.
    pub hits: u64,
    /// Pair lookups that had to go to the cloud.
    pub misses: u64,
}

impl BinCacheStats {
    /// Total pair lookups performed.
    pub fn fetches(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of pair lookups served from cache (0.0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        if self.fetches() == 0 {
            0.0
        } else {
            self.hits as f64 / self.fetches() as f64
        }
    }
}

/// A bounded LRU over retrieved bin contents, keyed by [`BinKey`].
///
/// Capacity is counted in *bins* (entries), not tuples; capacity 0 disables
/// caching entirely (every lookup is a miss, every store a no-op), which
/// keeps the uncached code path byte-identical for tests and baselines.
#[derive(Debug, Clone, Default)]
pub struct BinCache {
    capacity: usize,
    /// Tenant namespace stamped onto every key this cache forms.
    tenant: u64,
    entries: HashMap<BinKey, (u64, Vec<Tuple>)>,
    /// Bin pairs the cloud has observed co-retrieved at least once — the
    /// precondition for serving that pair from cache (module docs, rule 2).
    /// Unbounded but tiny: at most `sensitive bins × non-sensitive bins`.
    seen_pairs: HashSet<(usize, usize)>,
    clock: u64,
    stats: BinCacheStats,
}

impl BinCache {
    /// Creates a cache holding at most `capacity` bins (tenant 0).
    pub fn new(capacity: usize) -> Self {
        BinCache {
            capacity,
            tenant: 0,
            entries: HashMap::new(),
            seen_pairs: HashSet::new(),
            clock: 0,
            stats: BinCacheStats::default(),
        }
    }

    /// Maximum number of bins retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The tenant namespace this cache stamps onto its keys.
    pub fn tenant(&self) -> u64 {
        self.tenant
    }

    /// Moves the cache into `tenant`'s namespace.  Existing entries keyed
    /// under another tenant become unreachable by the pair methods, so set
    /// this before the first fetch (the executor does, at build time).
    pub fn set_tenant(&mut self, tenant: u64) {
        self.tenant = tenant;
    }

    /// Number of bins currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cumulative hit/miss counters.
    pub fn stats(&self) -> BinCacheStats {
        self.stats
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Looks up a whole bin pair.  Returns `(sensitive, nonsensitive)`
    /// tuple streams only when **both** bins are cached *and* the pair has
    /// been co-observed by the cloud before (see the module docs for why
    /// neither half-pairs nor never-co-observed pairs are ever served),
    /// counting one hit; otherwise counts one miss and returns `None`.
    pub fn get_pair(
        &mut self,
        sensitive_bin: usize,
        nonsensitive_bin: usize,
    ) -> Option<(Vec<Tuple>, Vec<Tuple>)> {
        let _span = pds_obs::obs_span("cache.get_pair");
        let s_key = BinKey::sensitive(sensitive_bin).for_tenant(self.tenant);
        let ns_key = BinKey::nonsensitive(nonsensitive_bin).for_tenant(self.tenant);
        let servable = self.seen_pairs.contains(&(sensitive_bin, nonsensitive_bin))
            && self.entries.contains_key(&s_key)
            && self.entries.contains_key(&ns_key);
        let tenant_label = self.tenant.to_string();
        if !servable {
            self.stats.misses += 1;
            pds_obs::global().counter_add(
                "pds_bin_cache_events_total",
                &[("result", "miss"), ("tenant", &tenant_label)],
                1,
            );
            return None;
        }
        self.stats.hits += 1;
        pds_obs::global().counter_add(
            "pds_bin_cache_events_total",
            &[("result", "hit"), ("tenant", &tenant_label)],
            1,
        );
        let stamp = self.tick();
        let s = {
            let e = self.entries.get_mut(&s_key).expect("checked above");
            e.0 = stamp;
            e.1.clone()
        };
        let stamp = self.tick();
        let ns = {
            let e = self.entries.get_mut(&ns_key).expect("checked above");
            e.0 = stamp;
            e.1.clone()
        };
        Some((s, ns))
    }

    /// Records one completed pair fetch: the cloud has now co-observed the
    /// pair (making it eligible for future hits) and both bins' contents
    /// are cached individually — so they remain reusable by *other* pairs
    /// sharing one of the bins, once those pairs have been co-observed too.
    /// No-op at capacity 0.
    pub fn store_pair(
        &mut self,
        sensitive_bin: usize,
        sensitive_tuples: Vec<Tuple>,
        nonsensitive_bin: usize,
        nonsensitive_tuples: Vec<Tuple>,
    ) {
        if self.capacity == 0 {
            return;
        }
        let _span = pds_obs::obs_span("cache.store_pair");
        self.seen_pairs.insert((sensitive_bin, nonsensitive_bin));
        self.store(
            BinKey::sensitive(sensitive_bin).for_tenant(self.tenant),
            sensitive_tuples,
        );
        self.store(
            BinKey::nonsensitive(nonsensitive_bin).for_tenant(self.tenant),
            nonsensitive_tuples,
        );
    }

    /// Stores (or refreshes) one bin, evicting the least-recently-used
    /// entry when the cache is full.  No-op at capacity 0.
    fn store(&mut self, key: BinKey, tuples: Vec<Tuple>) {
        if self.capacity == 0 {
            return;
        }
        let stamp = self.tick();
        if let Some(entry) = self.entries.get_mut(&key) {
            *entry = (stamp, tuples);
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (stamp, tuples));
    }

    /// Drops one bin's entry (if present).  Returns whether it was cached.
    pub fn invalidate(&mut self, key: BinKey) -> bool {
        self.entries.remove(&key).is_some()
    }

    /// Drops every cached bin.  Counters are kept (they describe the
    /// session) and so is the seen-pair set: the cloud's past observations
    /// do not un-happen, and serving a re-fetched pair later is still
    /// sound — only the stale *contents* must go.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Whether one bin is currently cached (does not touch recency or
    /// counters; for tests and introspection).
    pub fn contains(&self, key: BinKey) -> bool {
        self.entries.contains_key(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_common::{TupleId, Value};

    fn tuples(base: u64, n: u64) -> Vec<Tuple> {
        (0..n)
            .map(|i| Tuple::new(TupleId::new(base + i), vec![Value::Int((base + i) as i64)]))
            .collect()
    }

    #[test]
    fn pair_hit_requires_a_completed_pair_fetch() {
        let mut c = BinCache::new(4);
        assert!(c.get_pair(0, 0).is_none(), "cold cache misses");
        c.store_pair(0, tuples(10, 2), 0, tuples(20, 3));
        let (s, ns) = c.get_pair(0, 0).expect("completed pair serves");
        assert_eq!(s.len(), 2);
        assert_eq!(ns.len(), 3);
        let stats = c.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.fetches(), 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn never_co_observed_pair_is_not_served_from_shared_bins() {
        // Pairs (0,0) and (1,1) were fetched, so all four bins are cached —
        // but the cross pairs (0,1)/(1,0) were never co-observed by the
        // cloud.  Serving them would drop the cross edges from the cloud's
        // co-occurrence graph forever (Figure 4b), so they must miss until
        // fetched once.
        let mut c = BinCache::new(8);
        c.store_pair(0, tuples(0, 1), 0, tuples(10, 1));
        c.store_pair(1, tuples(20, 1), 1, tuples(30, 1));
        assert!(c.contains(BinKey::sensitive(0)));
        assert!(c.contains(BinKey::nonsensitive(1)));
        assert!(c.get_pair(0, 1).is_none(), "cross pair never co-observed");
        assert!(c.get_pair(1, 0).is_none(), "cross pair never co-observed");
        // Once fetched once, the cross pair becomes servable — and bin
        // contents are genuinely shared across pairs.
        c.store_pair(0, tuples(0, 1), 1, tuples(30, 1));
        assert!(c.get_pair(0, 1).is_some());
        assert!(c.get_pair(0, 0).is_some(), "original pair still serves");
    }

    #[test]
    fn sensitive_and_nonsensitive_indices_do_not_collide() {
        let mut c = BinCache::new(4);
        c.store_pair(1, tuples(1, 1), 1, tuples(2, 2));
        assert!(c.contains(BinKey::sensitive(1)));
        assert!(c.contains(BinKey::nonsensitive(1)));
        let (s, ns) = c.get_pair(1, 1).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(ns.len(), 2);
    }

    #[test]
    fn lru_evicts_the_coldest_bin() {
        let mut c = BinCache::new(2);
        c.store_pair(0, tuples(0, 1), 0, tuples(10, 1));
        // Touch the pair so both entries are warm, then add another pair
        // (capacity 2, so both of its bins push out the older pair's).
        assert!(c.get_pair(0, 0).is_some());
        c.store_pair(9, tuples(90, 1), 9, tuples(91, 1));
        assert_eq!(c.len(), 2);
        assert!(!c.contains(BinKey::sensitive(0)));
        assert!(!c.contains(BinKey::nonsensitive(0)));
        assert!(c.contains(BinKey::sensitive(9)));
        assert!(c.contains(BinKey::nonsensitive(9)));
        assert!(
            c.get_pair(0, 0).is_none(),
            "evicted pair misses even though it was co-observed"
        );
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let mut c = BinCache::new(0);
        c.store_pair(0, tuples(0, 5), 0, tuples(5, 5));
        assert!(c.is_empty());
        assert!(c.get_pair(0, 0).is_none());
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c = BinCache::new(4);
        c.store_pair(0, tuples(0, 1), 0, tuples(1, 1));
        assert!(c.invalidate(BinKey::sensitive(0)));
        assert!(!c.invalidate(BinKey::sensitive(0)), "already gone");
        assert!(c.get_pair(0, 0).is_none(), "invalidated bin forces a miss");
        // Re-fetching restores servability (the pair stays co-observed).
        c.store_pair(0, tuples(0, 1), 0, tuples(1, 1));
        assert!(c.get_pair(0, 0).is_some());
        c.clear();
        assert!(c.is_empty());
        assert!(c.get_pair(0, 0).is_none(), "cleared contents cannot serve");
        assert!(c.stats().fetches() > 0, "counters survive clear");
    }

    #[test]
    fn store_pair_refreshes_existing_entries_without_eviction() {
        let mut c = BinCache::new(2);
        c.store_pair(0, tuples(0, 1), 0, tuples(1, 1));
        c.store_pair(0, tuples(2, 3), 0, tuples(1, 1));
        assert_eq!(c.len(), 2);
        let (s, _) = c.get_pair(0, 0).unwrap();
        assert_eq!(s.len(), 3, "refreshed contents are served");
    }

    #[test]
    fn tenant_namespaces_do_not_alias() {
        let mut c = BinCache::new(4);
        c.set_tenant(7);
        assert_eq!(c.tenant(), 7);
        c.store_pair(0, tuples(0, 1), 0, tuples(1, 1));
        // The entries are keyed in tenant 7's namespace, invisible through
        // tenant-0 keys and visible through tenant-7 keys.
        assert!(!c.contains(BinKey::sensitive(0)));
        assert!(c.contains(BinKey::sensitive(0).for_tenant(7)));
        assert!(c.get_pair(0, 0).is_some(), "same-tenant lookup serves");
        // Switching the cache's namespace strands the old entries.
        c.set_tenant(8);
        assert!(c.get_pair(0, 0).is_none());
        // Tenant-stamped invalidation works on the stamped key.
        c.set_tenant(7);
        assert!(c.invalidate(BinKey::sensitive(0).for_tenant(7)));
        assert!(!c.invalidate(BinKey::sensitive(0)), "unstamped key misses");
    }
}
