//! The adversarial view (§II of the paper).
//!
//! "When executing a query, an adversary knows which encrypted sensitive
//! tuples and cleartext non-sensitive tuples are sent in response to a query.
//! We refer this as the adversarial view, AV = Inc ∪ Opc."
//!
//! Every query the DB owner runs against the [`crate::CloudServer`] produces
//! one [`QueryEpisode`]: what arrived at the cloud (the clear-text
//! non-sensitive request and the *number* of opaque encrypted request
//! values) and what was returned (ids of encrypted tuples, and ids plus
//! clear-text searchable values of non-sensitive tuples).  The adversary
//! crate mounts all of its attacks on this structure alone.

use pds_common::{QueryId, TupleId, Value};
use serde::{Deserialize, Serialize};

/// Everything the honest-but-curious cloud observes for a single query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryEpisode {
    /// Identifier of the query episode.
    pub id: QueryId,
    /// Clear-text values requested on the non-sensitive relation
    /// (`q(Wns)(Rns)` — visible to the adversary in full).
    pub plaintext_request: Vec<Value>,
    /// Number of encrypted values requested on the sensitive relation
    /// (`|Ws|`); the values themselves are ciphertexts and carry no content.
    pub encrypted_request_size: usize,
    /// Ids of non-sensitive tuples returned.
    pub nonsensitive_returned: Vec<TupleId>,
    /// Clear-text searchable-attribute values of the returned non-sensitive
    /// tuples (the adversary sees the full tuples; the searchable value is
    /// what the attacks need).
    pub nonsensitive_values: Vec<Value>,
    /// Ids (storage addresses) of encrypted sensitive tuples returned.
    pub sensitive_returned: Vec<TupleId>,
}

impl QueryEpisode {
    fn new(id: QueryId) -> Self {
        QueryEpisode {
            id,
            plaintext_request: Vec::new(),
            encrypted_request_size: 0,
            nonsensitive_returned: Vec::new(),
            nonsensitive_values: Vec::new(),
            sensitive_returned: Vec::new(),
        }
    }

    /// Total number of tuples (both kinds) returned in this episode — the
    /// quantity a size attack observes.
    pub fn output_size(&self) -> usize {
        self.nonsensitive_returned.len() + self.sensitive_returned.len()
    }

    /// Number of sensitive tuples returned.
    pub fn sensitive_output_size(&self) -> usize {
        self.sensitive_returned.len()
    }

    /// Number of non-sensitive tuples returned.
    pub fn nonsensitive_output_size(&self) -> usize {
        self.nonsensitive_returned.len()
    }
}

/// The accumulated adversarial view across all queries of a session.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdversarialView {
    episodes: Vec<QueryEpisode>,
    in_progress: Option<QueryEpisode>,
    next_id: u64,
}

impl AdversarialView {
    /// Creates an empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts recording a new query episode and returns its id.
    pub fn begin_episode(&mut self) -> QueryId {
        // A dangling in-progress episode (owner never called `end`) is
        // committed first so nothing observed is ever dropped.
        if let Some(ep) = self.in_progress.take() {
            self.episodes.push(ep);
        }
        let id = QueryId::new(self.next_id);
        self.next_id += 1;
        self.in_progress = Some(QueryEpisode::new(id));
        id
    }

    /// Finishes the episode in progress (no-op when none is active).
    pub fn end_episode(&mut self) {
        if let Some(ep) = self.in_progress.take() {
            self.episodes.push(ep);
        }
    }

    fn current(&mut self) -> &mut QueryEpisode {
        if self.in_progress.is_none() {
            // Observations outside an explicit episode still get recorded.
            let id = QueryId::new(self.next_id);
            self.next_id += 1;
            self.in_progress = Some(QueryEpisode::new(id));
        }
        self.in_progress.as_mut().expect("episode just ensured")
    }

    /// Records the clear-text request values observed on the plaintext side.
    pub fn observe_plaintext_request(&mut self, values: &[Value]) {
        self.current().plaintext_request.extend_from_slice(values);
    }

    /// Records the number of opaque encrypted request values observed.
    pub fn observe_encrypted_request(&mut self, count: usize) {
        self.current().encrypted_request_size += count;
    }

    /// Records non-sensitive tuples returned to the owner.
    pub fn observe_nonsensitive_result(&mut self, ids: &[TupleId], values: &[Value]) {
        let ep = self.current();
        ep.nonsensitive_returned.extend_from_slice(ids);
        ep.nonsensitive_values.extend_from_slice(values);
    }

    /// Records encrypted sensitive tuples returned to the owner.
    pub fn observe_sensitive_result(&mut self, ids: &[TupleId]) {
        self.current().sensitive_returned.extend_from_slice(ids);
    }

    /// Appends clones of another view's completed episodes, re-numbered so
    /// episode ids stay unique.  Used to compose several shards' views into
    /// the joint view a coalition of shard-adversaries would hold.
    pub fn absorb(&mut self, other: &AdversarialView) {
        for ep in other.episodes() {
            let id = QueryId::new(self.next_id);
            self.next_id += 1;
            let mut ep = ep.clone();
            ep.id = id;
            self.episodes.push(ep);
        }
    }

    /// All completed episodes, in order.
    pub fn episodes(&self) -> &[QueryEpisode] {
        &self.episodes
    }

    /// Number of completed episodes.
    pub fn len(&self) -> usize {
        self.episodes.len()
    }

    /// Whether no episode has completed yet.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// Renders the view as the paper renders its tables (one row per query):
    /// `query -> {encrypted ids} | {clear-text values}`.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        for ep in &self.episodes {
            let enc: Vec<String> = ep
                .sensitive_returned
                .iter()
                .map(|t| format!("E({t})"))
                .collect();
            let ns: Vec<String> = ep
                .nonsensitive_values
                .iter()
                .map(|v| v.to_string())
                .collect();
            let req: Vec<String> = ep.plaintext_request.iter().map(|v| v.to_string()).collect();
            out.push_str(&format!(
                "{}: request[{}] -> sensitive[{}] nonsensitive[{}]\n",
                ep.id,
                req.join(", "),
                if enc.is_empty() {
                    "null".to_string()
                } else {
                    enc.join(", ")
                },
                if ns.is_empty() {
                    "null".to_string()
                } else {
                    ns.join(", ")
                },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episode_lifecycle() {
        let mut av = AdversarialView::new();
        assert!(av.is_empty());
        let q0 = av.begin_episode();
        av.observe_plaintext_request(&[Value::from("E259")]);
        av.observe_encrypted_request(2);
        av.observe_nonsensitive_result(&[TupleId::new(2)], &[Value::from("E259")]);
        av.observe_sensitive_result(&[TupleId::new(4)]);
        av.end_episode();
        assert_eq!(av.len(), 1);
        let ep = &av.episodes()[0];
        assert_eq!(ep.id, q0);
        assert_eq!(ep.output_size(), 2);
        assert_eq!(ep.sensitive_output_size(), 1);
        assert_eq!(ep.nonsensitive_output_size(), 1);
        assert_eq!(ep.encrypted_request_size, 2);
    }

    #[test]
    fn dangling_episode_is_committed_on_next_begin() {
        let mut av = AdversarialView::new();
        av.begin_episode();
        av.observe_sensitive_result(&[TupleId::new(1)]);
        // No end_episode; the next begin flushes it.
        av.begin_episode();
        av.end_episode();
        assert_eq!(av.len(), 2);
        assert_eq!(av.episodes()[0].sensitive_returned.len(), 1);
    }

    #[test]
    fn observations_without_episode_are_not_lost() {
        let mut av = AdversarialView::new();
        av.observe_plaintext_request(&[Value::from("x")]);
        av.end_episode();
        assert_eq!(av.len(), 1);
        assert_eq!(av.episodes()[0].plaintext_request.len(), 1);
    }

    #[test]
    fn render_table_mentions_null_for_empty_sides() {
        let mut av = AdversarialView::new();
        av.begin_episode();
        av.observe_plaintext_request(&[Value::from("E199")]);
        av.observe_nonsensitive_result(&[TupleId::new(3)], &[Value::from("E199")]);
        av.end_episode();
        let table = av.render_table();
        assert!(table.contains("sensitive[null]"));
        assert!(table.contains("E199"));
    }

    #[test]
    fn episode_ids_are_unique_and_increasing() {
        let mut av = AdversarialView::new();
        let a = av.begin_episode();
        av.end_episode();
        let b = av.begin_episode();
        av.end_episode();
        assert!(b > a);
    }
}
