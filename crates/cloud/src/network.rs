//! Communication cost model.
//!
//! The paper's experimental setup uses a 30 Mbps downlink between the cloud
//! and the DB owner and reasons about the per-tuple transfer cost `Ccom`
//! (≈ 4 µs for a 200-byte TPC-H Customer row, giving γ = Ce/Ccom ≈ 25 000
//! for secret-sharing whose per-predicate search cost Ce ≈ 10 ms).
//! [`NetworkModel`] converts bytes moved into simulated seconds.

use serde::{Deserialize, Serialize};

/// A simple bandwidth + per-request latency network model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed latency charged per request (round trip), in seconds.
    pub latency_sec: f64,
}

impl NetworkModel {
    /// The paper's experimental setup: an average 30 Mbps download link.
    /// The paper's cost model charges communication purely per byte
    /// (`Ccom` per tuple), so no fixed per-request latency is added here;
    /// use [`NetworkModel::lan`] or a custom model to study latency effects.
    pub fn paper_wan() -> Self {
        NetworkModel {
            bandwidth_bytes_per_sec: 30.0e6 / 8.0,
            latency_sec: 0.0,
        }
    }

    /// A fast datacenter-style link (used in ablations).
    pub fn lan() -> Self {
        NetworkModel {
            bandwidth_bytes_per_sec: 1.0e9 / 8.0,
            latency_sec: 0.000_5,
        }
    }

    /// An idealised infinite-bandwidth, zero-latency link (isolates
    /// computation costs in ablations).
    pub fn free() -> Self {
        NetworkModel {
            bandwidth_bytes_per_sec: f64::INFINITY,
            latency_sec: 0.0,
        }
    }

    /// Time to transfer `bytes` in one request.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency_sec + bytes as f64 / self.bandwidth_bytes_per_sec
    }

    /// Time to transfer `bytes` split over `requests` requests.
    pub fn transfer_time_requests(&self, bytes: usize, requests: usize) -> f64 {
        self.latency_sec * requests as f64 + bytes as f64 / self.bandwidth_bytes_per_sec
    }

    /// Per-tuple transfer cost `Ccom` for tuples of `tuple_bytes` bytes
    /// (excluding latency, matching the paper's amortised figure).
    pub fn ccom_per_tuple(&self, tuple_bytes: usize) -> f64 {
        tuple_bytes as f64 / self.bandwidth_bytes_per_sec
    }

    /// The event-simulator link with the same latency and bandwidth
    /// (`pds_proto::NetSim` charges each round trip exactly what
    /// [`NetworkModel::transfer_time`] would, but on an event loop that
    /// overlaps links).
    pub fn link_spec(&self) -> pds_proto::LinkSpec {
        pds_proto::LinkSpec {
            latency_sec: self.latency_sec,
            bandwidth_bytes_per_sec: self.bandwidth_bytes_per_sec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_wan_matches_reported_ccom() {
        // ~200 byte tuple at 30 Mbps ≈ 53 µs; the paper quotes ≈ 4 µs for a
        // faster effective link, so we just sanity-check the order of
        // magnitude is microseconds-to-tens-of-microseconds.
        let net = NetworkModel::paper_wan();
        let ccom = net.ccom_per_tuple(200);
        assert!(ccom > 1e-6 && ccom < 1e-3, "ccom = {ccom}");
    }

    #[test]
    fn transfer_time_includes_latency() {
        let net = NetworkModel {
            bandwidth_bytes_per_sec: 1000.0,
            latency_sec: 1.0,
        };
        assert!((net.transfer_time(500) - 1.5).abs() < 1e-12);
        assert!((net.transfer_time_requests(500, 3) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn free_network_costs_nothing() {
        let net = NetworkModel::free();
        assert_eq!(net.transfer_time(1 << 30), 0.0);
    }

    #[test]
    fn lan_faster_than_wan() {
        assert!(
            NetworkModel::lan().transfer_time(10_000)
                < NetworkModel::paper_wan().transfer_time(10_000)
        );
    }
}
