//! Sharded multi-server cloud deployments with bin routing.
//!
//! One [`crate::CloudServer`] per deployment caps the system at a single
//! simulated machine.  A [`ShardRouter`] lifts that limit: it owns `N`
//! independent `CloudServer` shards and routes every Query Binning episode —
//! one (sensitive-bin, non-sensitive-bin) pair — to exactly one shard, so a
//! workload's episodes spread across shards and the per-query encrypted work
//! shrinks with the shard count (each shard stores only its own sensitive
//! bins).
//!
//! ## Placement and security
//!
//! The [`BinPlacement`] map is deterministic and seeded: sensitive bins are
//! secretly shuffled and dealt round-robin over the shards, and a pair
//! `(sensitive bin i, non-sensitive bin j)` is routed to the shard hosting
//! `i`.  The placement deliberately depends **only on the sensitive bin**:
//! each shard is itself an honest-but-curious adversary observing its own
//! [`AdversarialView`], and partitioned data security must hold on every
//! shard's view as well as on the composed view.  Routing by sensitive bin
//! means shard `s` observes the complete bipartite sub-view
//! `{bins on s} × {all non-sensitive bins}` once a workload covers every
//! value — no surviving match is dropped on any shard.  A placement that
//! split a sensitive bin's episodes across shards by non-sensitive bin would
//! instead show each shard an *incomplete* pairing (a Figure 4b view) and
//! leak associations to that shard.
//!
//! The clear-text non-sensitive relation is replicated to every shard (it is
//! non-sensitive by definition, and replication keeps every episode local to
//! one shard).  Encrypted sensitive data is never replicated: each sensitive
//! bin lives on exactly one shard.
//!
//! [`BinRoutedCloud`] abstracts over "one server" and "many shards" so the
//! Query Binning executor (`pds-core`) works unchanged against either.

use pds_common::{PdsError, Result, Value};
use pds_storage::{Relation, Tuple};

use crate::metrics::Metrics;
use crate::network::NetworkModel;
use crate::server::CloudServer;
use crate::store::EncryptedRow;
use crate::view::AdversarialView;

/// Deterministic seeded assignment of sensitive bins to shards.
///
/// Built once per deployment (the executor installs it at outsourcing time,
/// when the sensitive bin count is known).  Bins are secretly shuffled with
/// the placement seed and dealt round-robin, so shard loads differ by at
/// most one bin and the layout is reproducible from `(seed, bins, shards)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinPlacement {
    shard_of_bin: Vec<usize>,
    shards: usize,
}

impl BinPlacement {
    /// Builds the placement map for `sensitive_bins` bins over `shards`
    /// shards from `seed`.
    pub fn build(sensitive_bins: usize, shards: usize, seed: u64) -> Result<Self> {
        if shards == 0 {
            return Err(PdsError::Config("shard count must be at least 1".into()));
        }
        let mut order: Vec<usize> = (0..sensitive_bins).collect();
        let mut rng =
            pds_common::rng::seeded_rng(pds_common::rng::derive_seed(seed, "bin-placement"));
        pds_common::rng::shuffle(&mut order, &mut rng);
        let mut shard_of_bin = vec![0usize; sensitive_bins];
        for (i, bin) in order.into_iter().enumerate() {
            shard_of_bin[bin] = i % shards;
        }
        Ok(BinPlacement {
            shard_of_bin,
            shards,
        })
    }

    /// The shard hosting a sensitive bin.
    pub fn shard_of_sensitive_bin(&self, bin: usize) -> usize {
        self.shard_of_bin.get(bin).copied().unwrap_or(0)
    }

    /// The shard an episode for `(sensitive bin, non-sensitive bin)` is
    /// routed to.  Depends only on the sensitive bin — see the module docs
    /// for why per-shard security forbids routing by the non-sensitive bin.
    pub fn shard_for_pair(&self, sensitive_bin: usize, _nonsensitive_bin: usize) -> usize {
        self.shard_of_sensitive_bin(sensitive_bin)
    }

    /// Number of shards the placement spans.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Number of sensitive bins placed.
    pub fn bin_count(&self) -> usize {
        self.shard_of_bin.len()
    }

    /// The sensitive bins hosted by one shard.
    pub fn bins_on_shard(&self, shard: usize) -> Vec<usize> {
        self.shard_of_bin
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == shard)
            .map(|(bin, _)| bin)
            .collect()
    }
}

/// A cloud deployment the QB executor can outsource to and select through:
/// either a single [`CloudServer`] or a [`ShardRouter`] over many.
///
/// The executor drives the trait in three steps: [`prepare_routing`] with
/// the sensitive bin count, [`upload_plaintext`] for the clear-text side,
/// then per-shard engine outsourcing via [`shard_mut`]; at query time it
/// routes each bin pair with [`route_sensitive_bin`] and runs the whole
/// episode against that one shard.
///
/// [`prepare_routing`]: BinRoutedCloud::prepare_routing
/// [`upload_plaintext`]: BinRoutedCloud::upload_plaintext
/// [`shard_mut`]: BinRoutedCloud::shard_mut
/// [`route_sensitive_bin`]: BinRoutedCloud::route_sensitive_bin
pub trait BinRoutedCloud {
    /// Number of shards in the deployment (1 for a single server).
    fn shard_count(&self) -> usize;

    /// Installs the bin-to-shard placement for a deployment of
    /// `sensitive_bins` bins (no-op on a single server).
    fn prepare_routing(&mut self, sensitive_bins: usize) -> Result<()>;

    /// The shard hosting a sensitive bin (always 0 on a single server).
    fn route_sensitive_bin(&self, sensitive_bin: usize) -> usize;

    /// Shared read access to one shard.
    fn shard(&self, idx: usize) -> &CloudServer;

    /// Exclusive access to one shard (engines outsource/select through it).
    fn shard_mut(&mut self, idx: usize) -> &mut CloudServer;

    /// Exclusive access to **all** shard slots at once, in shard order.
    /// This is what [`crate::BinTransport`] fans out over: each per-shard
    /// task takes the disjoint `&mut` borrow of its own slot, so shards can
    /// be driven from separate OS threads without locks.
    fn shards_mut(&mut self) -> &mut [CloudServer];

    /// Uploads the clear-text non-sensitive relation (replicated to every
    /// shard in a sharded deployment).
    fn upload_plaintext(&mut self, relation: Relation, searchable_attr: &str) -> Result<()>;
}

impl BinRoutedCloud for CloudServer {
    fn shard_count(&self) -> usize {
        1
    }

    fn prepare_routing(&mut self, _sensitive_bins: usize) -> Result<()> {
        Ok(())
    }

    fn route_sensitive_bin(&self, _sensitive_bin: usize) -> usize {
        0
    }

    fn shard(&self, _idx: usize) -> &CloudServer {
        self
    }

    fn shard_mut(&mut self, _idx: usize) -> &mut CloudServer {
        self
    }

    fn shards_mut(&mut self) -> &mut [CloudServer] {
        std::slice::from_mut(self)
    }

    fn upload_plaintext(&mut self, relation: Relation, searchable_attr: &str) -> Result<()> {
        CloudServer::upload_plaintext(self, relation, searchable_attr)
    }
}

/// A multi-server cloud: `N` independent [`CloudServer`] shards plus the
/// seeded [`BinPlacement`] routing bin pairs across them.
///
/// The router exposes the same upload / select / adversarial-view / metrics
/// surface as a single server, aggregated over shards, plus per-shard
/// accessors and a max-over-shards parallel wall-clock estimate (shards are
/// independent machines, so a workload's communication time is bounded by
/// its busiest shard, not by the sum).
#[derive(Debug, Clone)]
pub struct ShardRouter {
    shards: Vec<CloudServer>,
    placement: Option<BinPlacement>,
    seed: u64,
}

impl ShardRouter {
    /// Creates a router over `shard_count` fresh shards, all using the same
    /// network model; `seed` drives the bin placement.
    pub fn new(shard_count: usize, network: NetworkModel, seed: u64) -> Result<Self> {
        if shard_count == 0 {
            return Err(PdsError::Config("shard count must be at least 1".into()));
        }
        Ok(ShardRouter {
            shards: (0..shard_count)
                .map(|_| CloudServer::new(network))
                .collect(),
            placement: None,
            seed,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// All shards, in index order.
    pub fn shards(&self) -> &[CloudServer] {
        &self.shards
    }

    /// The installed placement map, if outsourcing has happened.
    pub fn placement(&self) -> Option<&BinPlacement> {
        self.placement.as_ref()
    }

    /// Installs (or re-installs) the placement map for `sensitive_bins`.
    pub fn install_placement(&mut self, sensitive_bins: usize) -> Result<()> {
        self.placement = Some(BinPlacement::build(
            sensitive_bins,
            self.shards.len(),
            self.seed,
        )?);
        Ok(())
    }

    /// Uploads the clear-text non-sensitive relation, replicated to every
    /// shard so any episode can run locally on its shard.
    pub fn upload_plaintext(&mut self, relation: Relation, searchable_attr: &str) -> Result<()> {
        for shard in &mut self.shards {
            shard.upload_plaintext(relation.clone(), searchable_attr)?;
        }
        Ok(())
    }

    /// Uploads encrypted rows to one specific shard (the caller has already
    /// grouped rows by their bins' shard).
    pub fn upload_encrypted(&mut self, shard: usize, rows: Vec<EncryptedRow>) -> Result<()> {
        self.shard_checked(shard)?.upload_encrypted(rows)
    }

    /// Runs a clear-text `IN` selection on the shard hosting
    /// `sensitive_bin`'s episodes.
    pub fn plain_select_in(
        &mut self,
        sensitive_bin: usize,
        values: &[Value],
    ) -> Result<Vec<Tuple>> {
        let idx = self.route_bin(sensitive_bin);
        self.shards[idx].plain_select_in(values)
    }

    fn route_bin(&self, sensitive_bin: usize) -> usize {
        self.placement
            .as_ref()
            .map_or(0, |p| p.shard_of_sensitive_bin(sensitive_bin))
    }

    fn shard_checked(&mut self, idx: usize) -> Result<&mut CloudServer> {
        let n = self.shards.len();
        self.shards
            .get_mut(idx)
            .ok_or_else(|| PdsError::Cloud(format!("shard {idx} out of range ({n} shards)")))
    }

    // ----- observability ----------------------------------------------------

    /// Per-shard adversarial views (what each shard-adversary observed).
    pub fn adversarial_views(&self) -> Vec<&AdversarialView> {
        self.shards
            .iter()
            .map(CloudServer::adversarial_view)
            .collect()
    }

    /// The composed adversarial view: every shard's episodes merged, i.e.
    /// what a coalition of all shard-adversaries observes jointly.
    pub fn composed_view(&self) -> AdversarialView {
        let mut composed = AdversarialView::new();
        for shard in &self.shards {
            composed.absorb(shard.adversarial_view());
        }
        composed
    }

    /// Aggregated work counters over all shards.
    pub fn metrics(&self) -> Metrics {
        let mut m = Metrics::new();
        for shard in &self.shards {
            m.absorb(shard.metrics());
        }
        m
    }

    /// Per-shard work counters, in shard order.
    pub fn shard_metrics(&self) -> Vec<Metrics> {
        self.shards.iter().map(|s| *s.metrics()).collect()
    }

    /// Total simulated communication seconds summed over shards (the
    /// sequential / total-bytes view).
    pub fn comm_time(&self) -> f64 {
        self.shards.iter().map(CloudServer::comm_time).sum()
    }

    /// Max-over-shards communication seconds: the parallel wall-clock
    /// estimate when the shards are independent machines serving disjoint
    /// episode streams concurrently.
    pub fn parallel_comm_time(&self) -> f64 {
        self.shards
            .iter()
            .map(CloudServer::comm_time)
            .fold(0.0_f64, f64::max)
    }

    /// Total encrypted rows stored across shards.
    pub fn encrypted_len(&self) -> usize {
        self.shards.iter().map(CloudServer::encrypted_len).sum()
    }

    /// Plaintext tuples stored per replica (every shard holds the same
    /// clear-text relation).
    pub fn plain_len(&self) -> usize {
        self.shards.first().map_or(0, CloudServer::plain_len)
    }

    /// Resets metrics and communication time on every shard (adversarial
    /// views are kept — the adversaries never forget).
    pub fn reset_metrics(&mut self) {
        for shard in &mut self.shards {
            shard.reset_metrics();
        }
    }
}

impl BinRoutedCloud for ShardRouter {
    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn prepare_routing(&mut self, sensitive_bins: usize) -> Result<()> {
        self.install_placement(sensitive_bins)
    }

    fn route_sensitive_bin(&self, sensitive_bin: usize) -> usize {
        self.route_bin(sensitive_bin)
    }

    fn shard(&self, idx: usize) -> &CloudServer {
        &self.shards[idx]
    }

    fn shard_mut(&mut self, idx: usize) -> &mut CloudServer {
        &mut self.shards[idx]
    }

    fn shards_mut(&mut self) -> &mut [CloudServer] {
        &mut self.shards
    }

    fn upload_plaintext(&mut self, relation: Relation, searchable_attr: &str) -> Result<()> {
        ShardRouter::upload_plaintext(self, relation, searchable_attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_common::{TupleId, Value};
    use pds_crypto::NonDetCipher;
    use pds_storage::{DataType, Schema};

    fn plain_relation() -> Relation {
        let schema =
            Schema::from_pairs(&[("EId", DataType::Text), ("Dept", DataType::Text)]).unwrap();
        let mut r = Relation::new("Employee", schema);
        for (e, d) in [("E259", "Design"), ("E199", "Design"), ("E254", "Sales")] {
            r.insert(vec![Value::from(e), Value::from(d)]).unwrap();
        }
        r
    }

    fn encrypted_rows(base: u64, n: u64) -> Vec<EncryptedRow> {
        let cipher = NonDetCipher::from_seed(9);
        let mut rng = pds_common::rng::seeded_rng(1);
        (0..n)
            .map(|i| EncryptedRow {
                id: TupleId::new(base + i),
                attr_ct: cipher.encrypt(format!("v{i}").as_bytes(), &mut rng),
                tuple_ct: cipher.encrypt(format!("tuple{i}").as_bytes(), &mut rng),
                search_tags: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn placement_is_deterministic_and_balanced() {
        let a = BinPlacement::build(10, 4, 7).unwrap();
        let b = BinPlacement::build(10, 4, 7).unwrap();
        for bin in 0..10 {
            assert_eq!(
                a.shard_of_sensitive_bin(bin),
                b.shard_of_sensitive_bin(bin),
                "same seed reproduces the placement"
            );
        }
        let loads: Vec<usize> = (0..4).map(|s| a.bins_on_shard(s).len()).collect();
        assert_eq!(loads.iter().sum::<usize>(), 10);
        assert!(loads.iter().all(|&l| l == 2 || l == 3), "{loads:?}");
        // The pair routing ignores the non-sensitive bin.
        for bin in 0..10 {
            assert_eq!(a.shard_for_pair(bin, 0), a.shard_for_pair(bin, 99));
        }
    }

    #[test]
    fn placement_depends_on_seed() {
        let a = BinPlacement::build(32, 4, 1).unwrap();
        let b = BinPlacement::build(32, 4, 2).unwrap();
        let layout = |p: &BinPlacement| {
            (0..32)
                .map(|i| p.shard_of_sensitive_bin(i))
                .collect::<Vec<_>>()
        };
        assert_ne!(layout(&a), layout(&b));
    }

    #[test]
    fn zero_shards_is_rejected() {
        assert!(BinPlacement::build(4, 0, 1).is_err());
        assert!(ShardRouter::new(0, NetworkModel::paper_wan(), 1).is_err());
    }

    #[test]
    fn router_replicates_plaintext_and_routes_selects() {
        let mut router = ShardRouter::new(3, NetworkModel::paper_wan(), 5).unwrap();
        router.install_placement(6).unwrap();
        router.upload_plaintext(plain_relation(), "EId").unwrap();
        assert_eq!(router.plain_len(), 3);
        for shard in router.shards() {
            assert_eq!(shard.plain_len(), 3, "every shard holds the replica");
        }
        let out = router.plain_select_in(2, &[Value::from("E259")]).unwrap();
        assert_eq!(out.len(), 1);
        // Exactly one shard observed the request (the other views are empty).
        let views = router.adversarial_views();
        assert_eq!(views.len(), 3);
    }

    #[test]
    fn router_aggregates_metrics_and_comm_time() {
        let mut router = ShardRouter::new(2, NetworkModel::paper_wan(), 5).unwrap();
        router.upload_encrypted(0, encrypted_rows(100, 4)).unwrap();
        router.upload_encrypted(1, encrypted_rows(200, 2)).unwrap();
        assert_eq!(router.encrypted_len(), 6);
        assert_eq!(router.shard(0).encrypted_len(), 4);
        assert_eq!(router.shard(1).encrypted_len(), 2);
        let total = router.metrics();
        assert!(total.bytes_uploaded > 0);
        assert!(router.comm_time() >= router.parallel_comm_time());
        assert!(router.parallel_comm_time() > 0.0);
        router.reset_metrics();
        assert_eq!(router.metrics().total_bytes(), 0);
        assert!(router.upload_encrypted(7, Vec::new()).is_err());
    }

    #[test]
    fn composed_view_merges_all_shards() {
        let mut router = ShardRouter::new(2, NetworkModel::paper_wan(), 5).unwrap();
        router.install_placement(2).unwrap();
        router.upload_plaintext(plain_relation(), "EId").unwrap();
        for bin in 0..2 {
            let shard = BinRoutedCloud::route_sensitive_bin(&router, bin);
            router.shard_mut(shard).begin_query();
            router.plain_select_in(bin, &[Value::from("E199")]).unwrap();
            router.shard_mut(shard).end_query();
        }
        let composed = router.composed_view();
        assert_eq!(composed.len(), 2);
        // Episode ids in the composed view are unique.
        let mut ids: Vec<_> = composed.episodes().iter().map(|e| e.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn single_server_implements_the_trait_trivially() {
        let mut server = CloudServer::new(NetworkModel::paper_wan());
        assert_eq!(BinRoutedCloud::shard_count(&server), 1);
        BinRoutedCloud::prepare_routing(&mut server, 99).unwrap();
        assert_eq!(BinRoutedCloud::route_sensitive_bin(&server, 42), 0);
        BinRoutedCloud::upload_plaintext(&mut server, plain_relation(), "EId").unwrap();
        assert_eq!(BinRoutedCloud::shard(&server, 0).plain_len(), 3);
        assert_eq!(BinRoutedCloud::shard_mut(&mut server, 0).plain_len(), 3);
        assert_eq!(BinRoutedCloud::shards_mut(&mut server).len(), 1);
    }

    #[test]
    fn shards_mut_exposes_every_slot_in_order() {
        let mut router = ShardRouter::new(3, NetworkModel::paper_wan(), 5).unwrap();
        router.upload_encrypted(2, encrypted_rows(500, 1)).unwrap();
        let slots = BinRoutedCloud::shards_mut(&mut router);
        assert_eq!(slots.len(), 3);
        assert_eq!(slots[2].encrypted_len(), 1);
        assert_eq!(slots[0].encrypted_len(), 0);
    }
}
