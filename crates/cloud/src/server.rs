//! The untrusted public cloud server.
//!
//! One [`CloudServer`] hosts the outsourced pair of relations for one
//! partitioned relation: `Rns` in clear-text (with a hash index on the
//! searchable attribute, as the paper's cloud-side indexes allow) and `Rs`
//! as an [`EncryptedStore`].  Every interaction is recorded in the
//! [`AdversarialView`] and counted in [`Metrics`].

//! ## Byte accounting is measured off the wire
//!
//! Every owner↔cloud interaction builds the actual [`pds_proto`] message
//! it represents, encodes it into a wire frame, and charges the **encoded
//! frame length** (header + payload + CRC trailer) to [`Metrics`] and the
//! communication clock — not a `size_bytes` estimate.  Each interaction is
//! also appended to a [`pds_proto::RoundTrip`] log so the event-driven
//! network simulator ([`crate::BinTransport::Simulated`]) can replay the
//! exact per-shard traffic.  In debug builds every encoded frame is decoded
//! back and compared, so the test suite proves the wire format really
//! carries the traffic it accounts for.

use pds_common::{AttrId, PdsError, QueryId, Result, TupleId, Value};
use pds_crypto::Ciphertext;
use pds_proto::{
    msg_tag, Ack, BinPairRequest, BinPayload, FetchBinRequest, InsertRequest, RoundTrip,
    WireMessage, WireRow,
};
use pds_storage::{HashIndex, Relation, Tuple};

use crate::metrics::Metrics;
use crate::network::NetworkModel;
use crate::store::{EncryptedRow, EncryptedStore};
use crate::view::AdversarialView;

/// The resolved clear-text side of a composed episode: matching tuples,
/// their ids, the values they matched, and how many tuples the pushed-down
/// residual filtered out cloud-side.
type ResolvedPlain = (Vec<Tuple>, Vec<TupleId>, Vec<Value>, usize);

/// Encodes a message and returns its frame length, round-trip-verifying the
/// codec in debug builds (the test suite runs unoptimised, so every frame
/// the simulator accounts for is proven to decode back to its message).
fn frame_len(msg: &WireMessage) -> usize {
    let frame = msg.encode().expect("in-range wire message");
    debug_assert_eq!(
        &WireMessage::decode(&frame).expect("encoded frame decodes"),
        msg,
        "wire frame must roundtrip"
    );
    frame.len()
}

/// One wire frame as the accounting layer sees it: its type tag and its
/// measured encoded length.
type Frame = (u8, usize);

/// The two result streams of one composed bin-pair episode as the cloud
/// returns them: clear-text non-sensitive tuples and `(address, ciphertext)`
/// rows from the sensitive side.
pub type BinPairResult = (Vec<Tuple>, Vec<(TupleId, Ciphertext)>);

/// Builds the accounting form of a message (tag + measured frame length).
fn frame(msg: &WireMessage) -> Frame {
    (msg.msg_type(), frame_len(msg))
}

/// The wire form of an [`EncryptedRow`]: ciphertexts become opaque bytes.
fn wire_row(row: &EncryptedRow) -> WireRow {
    WireRow {
        id: row.id.raw(),
        attr_ct: row.attr_ct.as_bytes().to_vec(),
        tuple_ct: row.tuple_ct.as_bytes().to_vec(),
        search_tags: row.search_tags.clone(),
    }
}

/// Wire rows for a response that carries only full-tuple ciphertexts.
fn tuple_ct_rows(out: &[(TupleId, Ciphertext)]) -> Vec<WireRow> {
    out.iter()
        .map(|(id, ct)| WireRow {
            id: id.raw(),
            attr_ct: Vec::new(),
            tuple_ct: ct.as_bytes().to_vec(),
            search_tags: Vec::new(),
        })
        .collect()
}

/// The plaintext (non-sensitive) side of the deployment.
#[derive(Debug, Clone)]
struct PlainSide {
    relation: Relation,
    attr: AttrId,
    index: HashIndex,
}

/// The simulated untrusted public cloud.
#[derive(Debug, Clone)]
pub struct CloudServer {
    plain: Option<PlainSide>,
    encrypted: EncryptedStore,
    view: AdversarialView,
    metrics: Metrics,
    network: NetworkModel,
    comm_time: f64,
    /// Measured frame lengths of every owner↔cloud exchange, in order —
    /// the traffic the event-driven network simulator replays.
    wire_log: Vec<RoundTrip>,
    /// Index into [`CloudServer::wire_log`] at the last
    /// [`CloudServer::reset_metrics`]: exchanges before the cursor belong to
    /// an earlier measurement window (e.g. outsourcing) and must not be
    /// replayed as part of the current one.
    wire_cursor: usize,
}

impl Default for CloudServer {
    fn default() -> Self {
        Self::new(NetworkModel::paper_wan())
    }
}

impl CloudServer {
    /// Creates a cloud with the given network model.
    pub fn new(network: NetworkModel) -> Self {
        CloudServer {
            plain: None,
            encrypted: EncryptedStore::new(),
            view: AdversarialView::new(),
            metrics: Metrics::new(),
            network,
            comm_time: 0.0,
            wire_log: Vec::new(),
            wire_cursor: 0,
        }
    }

    /// Charges one owner↔cloud exchange: `up`/`down` are typed wire frames
    /// whose lengths are **measured encoded frame lengths** (`None` when no
    /// frame travels in that direction).  Updates byte counters, the total
    /// and per-type frame counters, the simulated communication clock, and
    /// the wire log.
    fn record_exchange(&mut self, up: Option<Frame>, down: Option<Frame>) {
        let up_len = up.map_or(0, |(_, len)| len);
        let down_len = down.map_or(0, |(_, len)| len);
        self.metrics.bytes_uploaded += up_len as u64;
        self.metrics.bytes_downloaded += down_len as u64;
        if let Some((tag, _)) = up {
            self.metrics.count_frame(tag);
        }
        if let Some((tag, _)) = down {
            self.metrics.count_frame(tag);
        }
        self.comm_time += self.network.transfer_time(up_len + down_len);
        self.wire_log.push(RoundTrip {
            up_bytes: up_len as u64,
            down_bytes: down_len as u64,
        });
    }

    // ----- outsourcing -----------------------------------------------------

    /// Uploads the clear-text non-sensitive relation and builds the
    /// cloud-side index on `searchable_attr`.
    pub fn upload_plaintext(&mut self, relation: Relation, searchable_attr: &str) -> Result<()> {
        let attr = relation.schema().attr_id(searchable_attr)?;
        let index = HashIndex::build(&relation, attr);
        let up = frame(&WireMessage::InsertRequest(InsertRequest {
            plain_tuples: relation.tuples().to_vec(),
            encrypted_rows: Vec::new(),
        }));
        let down = frame(&WireMessage::Ack(Ack {
            items: relation.len() as u64,
        }));
        self.record_exchange(Some(up), Some(down));
        self.plain = Some(PlainSide {
            relation,
            attr,
            index,
        });
        Ok(())
    }

    /// Uploads encrypted sensitive rows.
    pub fn upload_encrypted(&mut self, rows: Vec<EncryptedRow>) -> Result<()> {
        let up = frame(&WireMessage::InsertRequest(InsertRequest {
            plain_tuples: Vec::new(),
            encrypted_rows: rows.iter().map(wire_row).collect(),
        }));
        let down = frame(&WireMessage::Ack(Ack {
            items: rows.len() as u64,
        }));
        self.record_exchange(Some(up), Some(down));
        self.encrypted.insert_many(rows)
    }

    /// Inserts one clear-text tuple into the outsourced non-sensitive
    /// relation, keeping the cloud-side index current.  This is the live
    /// form of an owner→cloud [`InsertRequest`] after outsourcing (the
    /// read/write-mix workloads drive it), so the exchange is charged like
    /// any other: one typed request frame up, one [`Ack`] down.
    pub fn insert_plaintext(&mut self, tuple: Tuple) -> Result<()> {
        let plain = self
            .plain
            .as_mut()
            .ok_or_else(|| PdsError::Cloud("no plaintext relation outsourced".into()))?;
        let value = tuple.value(plain.attr).clone();
        plain
            .relation
            .insert_with_id(tuple.id, tuple.values.clone())?;
        plain.index.insert(value, tuple.id);
        let up = frame(&WireMessage::InsertRequest(InsertRequest {
            plain_tuples: vec![tuple],
            encrypted_rows: Vec::new(),
        }));
        let down = frame(&WireMessage::Ack(Ack { items: 1 }));
        self.record_exchange(Some(up), Some(down));
        Ok(())
    }

    // ----- query episode management ----------------------------------------

    /// Starts a new query episode in the adversarial view.
    pub fn begin_query(&mut self) -> QueryId {
        self.view.begin_episode()
    }

    /// Ends the current query episode.
    pub fn end_query(&mut self) {
        self.view.end_episode();
    }

    /// Notes that the owner sent `count` encrypted (opaque) search values as
    /// part of the current query (QB sends |SB| of them).  The token bytes
    /// travel as one opaque frame, so the charged size is the engine's
    /// payload estimate plus the real framing overhead.
    pub fn note_encrypted_request(&mut self, count: usize, bytes: usize) {
        self.view.observe_encrypted_request(count);
        self.record_exchange(Some((msg_tag::OPAQUE, pds_proto::encoded_len(bytes))), None);
        self.metrics.round_trips += 1;
    }

    // ----- plaintext side ---------------------------------------------------

    /// Executes a clear-text `IN` selection on the non-sensitive relation.
    pub fn plain_select_in(&mut self, values: &[Value]) -> Result<Vec<Tuple>> {
        self.plain_select_filtered(values, None)
    }

    /// Clear-text `IN` selection with an optional **residual predicate
    /// pushed below the bin fetch**: the index resolves `values` as usual,
    /// then the residual filters the matching tuples *before* the downlink,
    /// so non-matching tuples never travel.  The uplink frame carries the
    /// predicate (it is part of the request), which is why residuals must
    /// only mention non-sensitive, non-searchable attributes — the planner
    /// enforces that owner-side before anything reaches this wire path.
    pub fn plain_select_filtered(
        &mut self,
        values: &[Value],
        residual: Option<&pds_storage::Predicate>,
    ) -> Result<Vec<Tuple>> {
        let plain = self
            .plain
            .as_ref()
            .ok_or_else(|| PdsError::Cloud("no plaintext relation outsourced".into()))?;
        let ids = plain.index.lookup_many(values);
        let matched: Vec<Tuple> = ids
            .iter()
            .filter_map(|&id| plain.relation.get(id).cloned())
            .collect();
        let scanned = matched.len();
        let tuples: Vec<Tuple> = match residual {
            Some(p) => matched.into_iter().filter(|t| p.matches(t)).collect(),
            None => matched,
        };
        let attr = plain.attr;

        // Adversarial view: the request values arrive in clear-text, and the
        // (residual-filtered) matching tuples go back in clear-text.  The
        // request side still names the whole bin, so bin-level anonymity is
        // exactly what it is without pushdown.
        self.view.observe_plaintext_request(values);
        let returned_ids: Vec<TupleId> = tuples.iter().map(|t| t.id).collect();
        let returned_values: Vec<Value> = tuples.iter().map(|t| t.value(attr).clone()).collect();
        self.view
            .observe_nonsensitive_result(&returned_ids, &returned_values);

        // Metrics: index lookups, measured frame bytes for request and
        // response.
        let up = frame(&WireMessage::FetchBinRequest(FetchBinRequest {
            values: values.to_vec(),
            ids: Vec::new(),
            tags: Vec::new(),
            predicate: residual.cloned(),
        }));
        let down = frame(&WireMessage::BinPayload(BinPayload {
            plain_tuples: tuples.clone(),
            encrypted_rows: Vec::new(),
        }));
        self.metrics.plaintext_index_lookups += values.len() as u64;
        self.metrics.plaintext_tuples_scanned += scanned as u64;
        self.metrics.tuples_returned += tuples.len() as u64;
        self.metrics.round_trips += 1;
        self.record_exchange(Some(up), Some(down));
        Ok(tuples)
    }

    /// Full scan of the plaintext relation with an arbitrary predicate
    /// (used by baselines that do not exploit the index).
    pub fn plain_select_scan(&mut self, predicate: &pds_storage::Predicate) -> Result<Vec<Tuple>> {
        let plain = self
            .plain
            .as_ref()
            .ok_or_else(|| PdsError::Cloud("no plaintext relation outsourced".into()))?;
        let query = pds_storage::SelectionQuery::new(predicate.clone());
        let tuples = plain.relation.select(&query);
        let attr = plain.attr;
        let ids: Vec<TupleId> = tuples.iter().map(|t| t.id).collect();
        let returned_values: Vec<Value> = tuples.iter().map(|t| t.value(attr).clone()).collect();
        self.view
            .observe_nonsensitive_result(&ids, &returned_values);
        // The predicate travels in the request frame, so the uplink charge
        // is the real encoded size of the pushed-down selection.
        let up = frame(&WireMessage::FetchBinRequest(FetchBinRequest {
            values: Vec::new(),
            ids: Vec::new(),
            tags: Vec::new(),
            predicate: Some(predicate.clone()),
        }));
        let down = frame(&WireMessage::BinPayload(BinPayload {
            plain_tuples: tuples.clone(),
            encrypted_rows: Vec::new(),
        }));
        self.metrics.plaintext_tuples_scanned += plain.relation.len() as u64;
        self.metrics.tuples_returned += tuples.len() as u64;
        self.metrics.round_trips += 1;
        self.record_exchange(Some(up), Some(down));
        Ok(tuples)
    }

    /// The outsourced plaintext relation, if any.
    pub fn plain_relation(&self) -> Option<&Relation> {
        self.plain.as_ref().map(|p| &p.relation)
    }

    /// The searchable attribute of the plaintext relation.
    pub fn plain_searchable_attr(&self) -> Option<AttrId> {
        self.plain.as_ref().map(|p| p.attr)
    }

    // ----- encrypted side ---------------------------------------------------

    /// Downloads the encrypted searchable-attribute column (id, ciphertext)
    /// — the first step of the paper's §V-B search procedure.
    pub fn download_encrypted_attr_column(&mut self) -> Vec<(TupleId, Ciphertext)> {
        let out: Vec<(TupleId, Ciphertext)> = self
            .encrypted
            .rows()
            .iter()
            .map(|r| (r.id, r.attr_ct.clone()))
            .collect();
        let up = frame(&WireMessage::Opaque(Vec::new()));
        let down = frame(&WireMessage::BinPayload(BinPayload {
            plain_tuples: Vec::new(),
            encrypted_rows: out
                .iter()
                .map(|(id, ct)| WireRow {
                    id: id.raw(),
                    attr_ct: ct.as_bytes().to_vec(),
                    tuple_ct: Vec::new(),
                    search_tags: Vec::new(),
                })
                .collect(),
        }));
        self.metrics.encrypted_tuples_scanned += out.len() as u64;
        self.metrics.round_trips += 1;
        self.record_exchange(Some(up), Some(down));
        out
    }

    /// Fetches full encrypted tuples by storage address.  The addresses are
    /// what access-pattern leakage reveals, so they enter the adversarial
    /// view as the sensitive side of the episode.
    pub fn fetch_encrypted(&mut self, ids: &[TupleId]) -> Result<Vec<(TupleId, Ciphertext)>> {
        let rows = self.encrypted.fetch(ids)?;
        let out: Vec<(TupleId, Ciphertext)> =
            rows.iter().map(|r| (r.id, r.tuple_ct.clone())).collect();
        self.view.observe_sensitive_result(ids);
        let up = frame(&WireMessage::FetchBinRequest(FetchBinRequest {
            values: Vec::new(),
            ids: ids.iter().map(|id| id.raw()).collect(),
            tags: Vec::new(),
            predicate: None,
        }));
        let down = frame(&WireMessage::BinPayload(BinPayload {
            plain_tuples: Vec::new(),
            encrypted_rows: tuple_ct_rows(&out),
        }));
        self.metrics.tuples_returned += out.len() as u64;
        self.metrics.round_trips += 1;
        self.record_exchange(Some(up), Some(down));
        Ok(out)
    }

    /// Returns every encrypted tuple (full scan), as strongly secure
    /// back-ends that hide access patterns effectively do.
    pub fn scan_encrypted(&mut self) -> Vec<(TupleId, Ciphertext)> {
        let out: Vec<(TupleId, Ciphertext)> = self
            .encrypted
            .rows()
            .iter()
            .map(|r| (r.id, r.tuple_ct.clone()))
            .collect();
        let ids: Vec<TupleId> = out.iter().map(|(id, _)| *id).collect();
        self.view.observe_sensitive_result(&ids);
        let up = frame(&WireMessage::Opaque(Vec::new()));
        let down = frame(&WireMessage::BinPayload(BinPayload {
            plain_tuples: Vec::new(),
            encrypted_rows: tuple_ct_rows(&out),
        }));
        self.metrics.encrypted_tuples_scanned += out.len() as u64;
        self.metrics.tuples_returned += out.len() as u64;
        self.metrics.round_trips += 1;
        self.record_exchange(Some(up), Some(down));
        out
    }

    /// Notes that a cloud-side secure execution environment (an SGX enclave
    /// or an MPC committee) obliviously processed `tuples` encrypted tuples
    /// without shipping them to the owner.  Only work counters move; no
    /// data is returned and nothing enters the adversarial view beyond the
    /// fact that a query arrived.
    pub fn note_oblivious_scan(&mut self, tuples: usize, request_bytes: usize) {
        self.metrics.encrypted_tuples_scanned += tuples as u64;
        self.record_exchange(
            Some((msg_tag::OPAQUE, pds_proto::encoded_len(request_bytes))),
            None,
        );
        self.metrics.round_trips += 1;
    }

    /// Cloud-side search by opaque tags (deterministic tags or Arx counter
    /// tokens).  The cloud matches tags against its index without learning
    /// plaintext values.
    pub fn tag_select(&mut self, tags: &[Vec<u8>]) -> Vec<(TupleId, Ciphertext)> {
        let mut ids: Vec<TupleId> = Vec::new();
        for tag in tags {
            ids.extend_from_slice(self.encrypted.lookup_tag(tag));
        }
        ids.sort_unstable();
        ids.dedup();
        let out: Vec<(TupleId, Ciphertext)> = ids
            .iter()
            .filter_map(|&id| self.encrypted.get(id).map(|r| (r.id, r.tuple_ct.clone())))
            .collect();
        self.view.observe_encrypted_request(tags.len());
        self.view.observe_sensitive_result(&ids);
        let up = frame(&WireMessage::FetchBinRequest(FetchBinRequest {
            values: Vec::new(),
            ids: Vec::new(),
            tags: tags.to_vec(),
            predicate: None,
        }));
        let down = frame(&WireMessage::BinPayload(BinPayload {
            plain_tuples: Vec::new(),
            encrypted_rows: tuple_ct_rows(&out),
        }));
        self.metrics.plaintext_index_lookups += tags.len() as u64;
        self.metrics.tuples_returned += out.len() as u64;
        self.metrics.round_trips += 1;
        self.record_exchange(Some(up), Some(down));
        out
    }

    // ----- composed bin-pair episodes ---------------------------------------

    /// Resolves the clear-text side of a composed bin-pair episode without
    /// touching metrics or the view (the caller charges the one exchange).
    /// Empty value sets resolve to an empty result even before outsourcing,
    /// mirroring the fine-grained path which skips the plaintext sub-query
    /// entirely in that case.
    fn resolve_plain(
        &self,
        values: &[Value],
        residual: Option<&pds_storage::Predicate>,
    ) -> Result<ResolvedPlain> {
        if values.is_empty() {
            return Ok((Vec::new(), Vec::new(), Vec::new(), 0));
        }
        let plain = self
            .plain
            .as_ref()
            .ok_or_else(|| PdsError::Cloud("no plaintext relation outsourced".into()))?;
        let ids = plain.index.lookup_many(values);
        let matched: Vec<Tuple> = ids
            .iter()
            .filter_map(|&id| plain.relation.get(id).cloned())
            .collect();
        let scanned = matched.len();
        let tuples: Vec<Tuple> = match residual {
            Some(p) => matched.into_iter().filter(|t| p.matches(t)).collect(),
            None => matched,
        };
        let ids: Vec<TupleId> = tuples.iter().map(|t| t.id).collect();
        let returned: Vec<Value> = tuples.iter().map(|t| t.value(plain.attr).clone()).collect();
        Ok((tuples, ids, returned, scanned))
    }

    /// Serves one **composed** Query Binning episode in a single round
    /// trip: the owner's [`BinPairRequest`] carries the encrypted search
    /// tokens of the sensitive bin (matched against the cloud-side tag
    /// index) together with the clear-text values of the non-sensitive bin,
    /// and one [`BinPayload`] answers both sides.  Exactly one request and
    /// one response frame move, and `round_trips` advances by one — this is
    /// what makes the composed path strictly cheaper in rounds than the
    /// fine-grained multi-message episode.
    pub fn bin_pair_by_tags(&mut self, request: &BinPairRequest) -> Result<BinPairResult> {
        let (plain_tuples, ns_ids, ns_values, ns_scanned) =
            self.resolve_plain(&request.nonsensitive_values, request.predicate.as_ref())?;

        // Sensitive side: match the opaque tokens against the tag index,
        // exactly as `tag_select` would.
        let mut ids: Vec<TupleId> = Vec::new();
        for tag in &request.encrypted_values {
            ids.extend_from_slice(self.encrypted.lookup_tag(tag));
        }
        ids.sort_unstable();
        ids.dedup();
        let rows: Vec<(TupleId, Ciphertext)> = ids
            .iter()
            .filter_map(|&id| self.encrypted.get(id).map(|r| (r.id, r.tuple_ct.clone())))
            .collect();

        self.record_bin_pair_exchange(
            request,
            &plain_tuples,
            ns_scanned,
            &ns_ids,
            &ns_values,
            &ids,
            &rows,
        );
        self.metrics.plaintext_index_lookups += request.encrypted_values.len() as u64;
        Ok((plain_tuples, rows))
    }

    /// Serves one composed episode whose sensitive side was resolved by a
    /// cloud-side secure execution environment (an SGX enclave or an MPC
    /// committee) that obliviously scanned `scanned` encrypted tuples and
    /// selected `matching`.  As with [`CloudServer::bin_pair_by_tags`],
    /// exactly one round trip moves: the composed request up, the combined
    /// payload down.
    pub fn bin_pair_oblivious(
        &mut self,
        request: &BinPairRequest,
        matching: &[TupleId],
        scanned: usize,
    ) -> Result<BinPairResult> {
        let (plain_tuples, ns_ids, ns_values, ns_scanned) =
            self.resolve_plain(&request.nonsensitive_values, request.predicate.as_ref())?;
        let fetched = self.encrypted.fetch(matching)?;
        let rows: Vec<(TupleId, Ciphertext)> =
            fetched.iter().map(|r| (r.id, r.tuple_ct.clone())).collect();
        self.record_bin_pair_exchange(
            request,
            &plain_tuples,
            ns_scanned,
            &ns_ids,
            &ns_values,
            matching,
            &rows,
        );
        self.metrics.encrypted_tuples_scanned += scanned as u64;
        Ok((plain_tuples, rows))
    }

    /// Shared accounting of one composed episode: adversarial view, work
    /// counters, and the single request/response exchange off the wire.
    #[allow(clippy::too_many_arguments)]
    fn record_bin_pair_exchange(
        &mut self,
        request: &BinPairRequest,
        plain_tuples: &[Tuple],
        ns_scanned: usize,
        ns_ids: &[TupleId],
        ns_values: &[Value],
        sensitive_ids: &[TupleId],
        rows: &[(TupleId, Ciphertext)],
    ) {
        self.view
            .observe_plaintext_request(&request.nonsensitive_values);
        self.view
            .observe_encrypted_request(request.encrypted_values.len());
        self.view.observe_nonsensitive_result(ns_ids, ns_values);
        self.view.observe_sensitive_result(sensitive_ids);
        let up = frame(&WireMessage::BinPairRequest(request.clone()));
        let down = frame(&WireMessage::BinPayload(BinPayload {
            plain_tuples: plain_tuples.to_vec(),
            encrypted_rows: tuple_ct_rows(rows),
        }));
        self.metrics.plaintext_index_lookups += request.nonsensitive_values.len() as u64;
        self.metrics.plaintext_tuples_scanned += ns_scanned as u64;
        self.metrics.tuples_returned += (plain_tuples.len() + rows.len()) as u64;
        self.metrics.round_trips += 1;
        self.record_exchange(Some(up), Some(down));
    }

    /// Number of encrypted rows stored.
    pub fn encrypted_len(&self) -> usize {
        self.encrypted.len()
    }

    /// The raw encrypted store.  The honest-but-curious adversary *is* the
    /// cloud, so everything stored here (ciphertexts, search tags, storage
    /// addresses) is adversary-visible; `pds-adversary` reads it through this
    /// accessor.
    pub fn encrypted_store(&self) -> &EncryptedStore {
        &self.encrypted
    }

    /// Number of plaintext tuples stored.
    pub fn plain_len(&self) -> usize {
        self.plain.as_ref().map_or(0, |p| p.relation.len())
    }

    // ----- observability ----------------------------------------------------

    /// The adversarial view accumulated so far.
    pub fn adversarial_view(&self) -> &AdversarialView {
        &self.view
    }

    /// Work counters accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Simulated communication time accumulated so far, in seconds.
    pub fn comm_time(&self) -> f64 {
        self.comm_time
    }

    /// The measured wire traffic, in exchange order: one [`RoundTrip`] per
    /// owner↔cloud interaction, each length an encoded frame size.  The
    /// log is append-only (like the adversarial view); callers interested
    /// in a window record the length before and slice afterwards.
    pub fn wire_log(&self) -> &[RoundTrip] {
        &self.wire_log
    }

    /// The wire traffic recorded since the last
    /// [`CloudServer::reset_metrics`].  Replay windows that start "from the
    /// reset" must use this slice: the full [`CloudServer::wire_log`] keeps
    /// pre-reset exchanges (outsourcing uploads, earlier measurement
    /// windows) whose replay would double-count traffic the byte counters
    /// no longer report.
    pub fn wire_log_since_reset(&self) -> &[RoundTrip] {
        &self.wire_log[self.wire_cursor..]
    }

    /// The network model in force.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Resets metrics and communication time and advances the wire-log
    /// cursor so [`CloudServer::wire_log_since_reset`] starts empty (the
    /// adversarial view and the full wire log are *not* cleared — the
    /// adversary never forgets).
    pub fn reset_metrics(&mut self) {
        self.metrics = Metrics::new();
        self.comm_time = 0.0;
        self.wire_cursor = self.wire_log.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_crypto::NonDetCipher;
    use pds_storage::{DataType, Schema};

    fn plain_relation() -> Relation {
        let schema =
            Schema::from_pairs(&[("EId", DataType::Text), ("Dept", DataType::Text)]).unwrap();
        let mut r = Relation::new("Employee3", schema);
        for (e, d) in [
            ("E259", "Design"),
            ("E199", "Design"),
            ("E254", "Design"),
            ("E152", "Design"),
        ] {
            r.insert(vec![Value::from(e), Value::from(d)]).unwrap();
        }
        r
    }

    fn encrypted_rows(n: u64) -> Vec<EncryptedRow> {
        let cipher = NonDetCipher::from_seed(9);
        let mut rng = pds_common::rng::seeded_rng(1);
        (0..n)
            .map(|i| EncryptedRow {
                id: TupleId::new(100 + i),
                attr_ct: cipher.encrypt(format!("v{i}").as_bytes(), &mut rng),
                tuple_ct: cipher.encrypt(format!("tuple{i}").as_bytes(), &mut rng),
                search_tags: vec![vec![i as u8]],
            })
            .collect()
    }

    fn server() -> CloudServer {
        let mut s = CloudServer::new(NetworkModel::paper_wan());
        s.upload_plaintext(plain_relation(), "EId").unwrap();
        s.upload_encrypted(encrypted_rows(4)).unwrap();
        s
    }

    #[test]
    fn upload_counts_bytes() {
        let s = server();
        assert!(s.metrics().bytes_uploaded > 0);
        assert_eq!(s.plain_len(), 4);
        assert_eq!(s.encrypted_len(), 4);
        assert!(s.comm_time() > 0.0);
    }

    #[test]
    fn plain_select_records_view() {
        let mut s = server();
        s.begin_query();
        let out = s
            .plain_select_in(&[Value::from("E259"), Value::from("E254")])
            .unwrap();
        s.end_query();
        assert_eq!(out.len(), 2);
        let ep = &s.adversarial_view().episodes()[0];
        assert_eq!(ep.plaintext_request.len(), 2);
        assert_eq!(ep.nonsensitive_returned.len(), 2);
        assert_eq!(ep.nonsensitive_values.len(), 2);
        assert!(ep.sensitive_returned.is_empty());
    }

    #[test]
    fn plain_select_without_upload_errors() {
        let mut s = CloudServer::default();
        assert!(s.plain_select_in(&[Value::from("x")]).is_err());
    }

    #[test]
    fn fetch_encrypted_records_access_pattern() {
        let mut s = server();
        s.begin_query();
        s.note_encrypted_request(2, 64);
        let out = s
            .fetch_encrypted(&[TupleId::new(101), TupleId::new(103)])
            .unwrap();
        s.end_query();
        assert_eq!(out.len(), 2);
        let ep = &s.adversarial_view().episodes()[0];
        assert_eq!(ep.encrypted_request_size, 2);
        assert_eq!(
            ep.sensitive_returned,
            vec![TupleId::new(101), TupleId::new(103)]
        );
        assert!(s.fetch_encrypted(&[TupleId::new(999)]).is_err());
    }

    #[test]
    fn attr_column_download_scans_everything() {
        let mut s = server();
        let col = s.download_encrypted_attr_column();
        assert_eq!(col.len(), 4);
        assert_eq!(s.metrics().encrypted_tuples_scanned, 4);
    }

    #[test]
    fn scan_encrypted_returns_all() {
        let mut s = server();
        s.begin_query();
        let all = s.scan_encrypted();
        s.end_query();
        assert_eq!(all.len(), 4);
        assert_eq!(
            s.adversarial_view().episodes()[0].sensitive_returned.len(),
            4
        );
    }

    #[test]
    fn tag_select_uses_index() {
        let mut s = server();
        s.begin_query();
        let out = s.tag_select(&[vec![0u8], vec![2u8], vec![77u8]]);
        s.end_query();
        assert_eq!(out.len(), 2);
        let ep = &s.adversarial_view().episodes()[0];
        assert_eq!(ep.encrypted_request_size, 3);
        assert_eq!(ep.sensitive_returned.len(), 2);
    }

    #[test]
    fn wire_measured_bytes_stay_within_a_sane_factor_of_the_old_estimate() {
        // Regression guard for the estimate → wire-measurement switch: the
        // pre-wire model charged `sum(Value::size_bytes)` for a request and
        // `sum(Tuple::size_bytes)` for a response.  The measured frame can
        // only add (headers, CRC, length prefixes, value tags), and the
        // framing never inflates a message beyond a small factor plus a
        // constant.
        let mut s = server();
        let before = *s.metrics();
        s.begin_query();
        let values = [Value::from("E259"), Value::from("E254")];
        let tuples = s.plain_select_in(&values).unwrap();
        s.end_query();
        let d = s.metrics().delta_since(&before);
        let est_up: usize = values.iter().map(Value::size_bytes).sum();
        let est_down: usize = tuples.iter().map(Tuple::size_bytes).sum();
        assert!(
            d.bytes_uploaded as usize >= est_up,
            "wire adds framing, never removes payload: {} < {est_up}",
            d.bytes_uploaded
        );
        assert!(
            d.bytes_downloaded as usize >= est_down,
            "wire adds framing, never removes payload: {} < {est_down}",
            d.bytes_downloaded
        );
        assert!(
            d.bytes_uploaded as usize <= 4 * est_up + 64,
            "measured request {} bytes vs estimate {est_up}: framing blew up",
            d.bytes_uploaded
        );
        assert!(
            d.bytes_downloaded as usize <= 4 * est_down + 64,
            "measured response {} bytes vs estimate {est_down}: framing blew up",
            d.bytes_downloaded
        );
    }

    #[test]
    fn wire_log_records_every_exchange() {
        let mut s = server(); // two uploads = two logged exchanges
        assert_eq!(s.wire_log().len(), 2);
        let before = *s.metrics();
        let log_start = s.wire_log().len();
        s.begin_query();
        s.plain_select_in(&[Value::from("E259")]).unwrap();
        s.note_encrypted_request(2, 64);
        s.fetch_encrypted(&[TupleId::new(101)]).unwrap();
        s.end_query();
        let d = s.metrics().delta_since(&before);
        let window = &s.wire_log()[log_start..];
        assert_eq!(window.len(), 3, "one round trip per exchange");
        let up: u64 = window.iter().map(|rt| rt.up_bytes).sum();
        let down: u64 = window.iter().map(|rt| rt.down_bytes).sum();
        assert_eq!(up, d.bytes_uploaded, "log and metrics agree on upload");
        assert_eq!(
            down, d.bytes_downloaded,
            "log and metrics agree on download"
        );
        let frames: u64 = window
            .iter()
            .map(|rt| u64::from(rt.up_bytes > 0) + u64::from(rt.down_bytes > 0))
            .sum();
        assert_eq!(frames, d.wire_frames);
        // Every frame includes the fixed wire overhead.
        for rt in window {
            assert!(rt.up_bytes >= pds_proto::FRAME_OVERHEAD as u64);
        }
    }

    #[test]
    fn reset_metrics_keeps_view() {
        let mut s = server();
        s.begin_query();
        s.plain_select_in(&[Value::from("E259")]).unwrap();
        s.end_query();
        s.reset_metrics();
        assert_eq!(s.metrics().total_bytes(), 0);
        assert_eq!(s.adversarial_view().len(), 1);
    }

    #[test]
    fn reset_metrics_advances_the_wire_cursor() {
        // Regression: `reset_metrics` used to zero the byte counters while
        // leaving the wire log intact with no cursor, so a replay window
        // anchored at "the reset" would double-count pre-reset traffic.
        let mut s = server(); // two uploads = two pre-reset exchanges
        assert_eq!(s.wire_log().len(), 2);
        s.reset_metrics();
        assert!(s.wire_log_since_reset().is_empty(), "window starts empty");
        assert_eq!(s.wire_log().len(), 2, "full log keeps history");

        s.begin_query();
        s.plain_select_in(&[Value::from("E259")]).unwrap();
        s.end_query();
        let window = s.wire_log_since_reset();
        assert_eq!(window.len(), 1, "only post-reset traffic in the window");
        let bytes: u64 = window.iter().map(|rt| rt.up_bytes + rt.down_bytes).sum();
        assert_eq!(
            bytes,
            s.metrics().total_bytes(),
            "window and post-reset counters agree"
        );
    }

    #[test]
    fn frame_counters_break_down_by_message_type() {
        use pds_proto::msg_tag;
        let mut s = server();
        let before = *s.metrics();
        s.begin_query();
        s.plain_select_in(&[Value::from("E259")]).unwrap();
        s.note_encrypted_request(2, 64);
        s.fetch_encrypted(&[TupleId::new(101)]).unwrap();
        s.end_query();
        let d = s.metrics().delta_since(&before);
        assert_eq!(d.frames_of_type(msg_tag::FETCH_BIN_REQUEST), 2);
        assert_eq!(d.frames_of_type(msg_tag::BIN_PAYLOAD), 2);
        assert_eq!(d.frames_of_type(msg_tag::OPAQUE), 1);
        assert_eq!(d.frames_of_type(msg_tag::BIN_PAIR_REQUEST), 0);
        assert_eq!(d.wire_frames_by_type.iter().sum::<u64>(), d.wire_frames);
    }

    #[test]
    fn composed_bin_pair_by_tags_is_one_round() {
        use pds_proto::msg_tag;
        let mut s = server();
        let before = *s.metrics();
        s.begin_query();
        let (plain, rows) = s
            .bin_pair_by_tags(&BinPairRequest {
                sensitive_bin: 0,
                nonsensitive_bin: 0,
                encrypted_values: vec![vec![0u8], vec![2u8]],
                nonsensitive_values: vec![Value::from("E259"), Value::from("E254")],
                predicate: None,
            })
            .unwrap();
        s.end_query();
        assert_eq!(plain.len(), 2);
        assert_eq!(rows.len(), 2);
        let d = s.metrics().delta_since(&before);
        assert_eq!(d.round_trips, 1, "composed episode is one round");
        assert_eq!(d.wire_frames, 2, "one request frame, one response frame");
        assert_eq!(d.frames_of_type(msg_tag::BIN_PAIR_REQUEST), 1);
        assert_eq!(d.frames_of_type(msg_tag::BIN_PAYLOAD), 1);
        let ep = s.adversarial_view().episodes().last().unwrap();
        assert_eq!(ep.plaintext_request.len(), 2);
        assert_eq!(ep.encrypted_request_size, 2);
        assert_eq!(ep.sensitive_returned.len(), 2);
        assert_eq!(ep.nonsensitive_returned.len(), 2);
    }

    #[test]
    fn composed_bin_pair_oblivious_charges_the_scan() {
        let mut s = server();
        let before = *s.metrics();
        s.begin_query();
        let (plain, rows) = s
            .bin_pair_oblivious(
                &BinPairRequest {
                    sensitive_bin: 1,
                    nonsensitive_bin: 2,
                    encrypted_values: vec![vec![9u8; 32]],
                    nonsensitive_values: vec![Value::from("E199")],
                    predicate: None,
                },
                &[TupleId::new(100), TupleId::new(102)],
                4,
            )
            .unwrap();
        s.end_query();
        assert_eq!(plain.len(), 1);
        assert_eq!(rows.len(), 2);
        let d = s.metrics().delta_since(&before);
        assert_eq!(d.round_trips, 1);
        assert_eq!(d.encrypted_tuples_scanned, 4);
        // Unknown ids surface as an error, not a partial payload.
        assert!(s
            .bin_pair_oblivious(&BinPairRequest::default(), &[TupleId::new(999)], 0)
            .is_err());
    }

    #[test]
    fn insert_plaintext_updates_relation_and_index() {
        let mut s = server();
        let before = *s.metrics();
        let tuple = Tuple::new(
            TupleId::new(900),
            vec![Value::from("E300"), Value::from("Sales")],
        );
        s.insert_plaintext(tuple).unwrap();
        assert_eq!(s.plain_len(), 5);
        let out = s.plain_select_in(&[Value::from("E300")]).unwrap();
        assert_eq!(out.len(), 1, "index serves the inserted tuple");
        let d = s.metrics().delta_since(&before);
        assert!(d.frames_of_type(pds_proto::msg_tag::INSERT_REQUEST) >= 1);
        assert!(d.frames_of_type(pds_proto::msg_tag::ACK) >= 1);
        // No plaintext relation outsourced: the insert is rejected.
        let mut empty = CloudServer::default();
        assert!(empty
            .insert_plaintext(Tuple::new(TupleId::new(1), vec![Value::Int(1)]))
            .is_err());
    }
}
