//! A real TCP daemon serving one cloud shard to concurrent tenant owners.
//!
//! Until this module existed every byte-accurate `pds-proto` frame still
//! travelled through an in-process function call; [`ShardDaemon`] puts the
//! same [`crate::CloudSession::dispatch`] seam behind a loopback socket so
//! the failure modes of a real network — partial reads, dead peers,
//! hostile bytes, concurrent tenants — exist and are tested.
//!
//! Architecture (one daemon per shard):
//!
//! ```text
//!   TcpListener ── acceptor thread
//!        │   one reader thread per connection (I/O only):
//!        │     Hello handshake → FrameReader loop → job queue
//!        ▼
//!   mpsc job queue ── worker pool (N compute threads)
//!        │     catch_unwind( lock tenant shard → dispatch → response )
//!        ▼
//!   per-connection write mutex → response frame back on the same socket
//! ```
//!
//! Robustness rules, each covered by `tests/hostile_client.rs`:
//!
//! * **framing errors** (garbage bytes, truncated frame, kill-mid-frame)
//!   close that connection and nothing else — the acceptor keeps accepting;
//! * **oversized declared lengths** are rejected *before* any payload
//!   allocation ([`pds_proto::FrameReader`] with the daemon's configurable
//!   [`ServiceConfig::max_payload`]) and answered with a typed
//!   [`WireMessage::Error`] frame, then the connection closes — the 1 GiB
//!   protocol-level [`pds_proto::MAX_PAYLOAD_LEN`] is not a listening
//!   socket's memory-DoS budget;
//! * **a panicking handler** is caught ([`std::panic::catch_unwind`]), the
//!   client gets an `Error` frame, the connection drops, the poisoned
//!   tenant lock is recovered, and every other connection keeps getting
//!   byte-identical answers.
//!
//! Multi-tenancy: the daemon holds one independent [`CloudServer`] per
//! tenant id, so tenants have disjoint keyspaces, bin namespaces,
//! adversarial views and metrics windows.  Every connection must open with
//! a [`pds_proto::Hello`] naming its tenant; the daemon validates the id
//! and echoes the `Hello` back.
//!
//! Every lock in this module is an [`OrderedMutex`] with a named class
//! (`service.tenant`, `service.jobs`, `service.conns`, `service.writer`).
//! Built with the `lockcheck` feature, each acquisition is checked against
//! the process-wide order graph and panics on an inversion, so the
//! hostile-client matrix and the concurrency proptests double as a dynamic
//! deadlock detector; `pds-analyze`'s static lock-order pass proves the
//! same nesting graph acyclic from the source text on every commit.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use pds_common::{OrderedMutex, PdsError, Result};
use pds_proto::{error_frame, msg_tag, FrameReader, ReadFrame, WireMessage};

use crate::server::CloudServer;
use crate::session::CloudSession;

/// Tuning knobs of one [`ShardDaemon`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Compute threads in the worker pool.
    pub workers: usize,
    /// Per-connection ceiling on a frame's declared payload length.  A
    /// header declaring more is answered with a typed `Error` frame and a
    /// closed connection — *without* allocating the declared amount.
    pub max_payload: usize,
    /// Fault-injection hook for the unwind-isolation regression test: an
    /// `Opaque` frame whose body equals this trigger panics the worker
    /// mid-request (while it holds the tenant lock).  `None` in production.
    pub panic_trigger: Option<Vec<u8>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            max_payload: pds_proto::MAX_PAYLOAD_LEN,
            panic_trigger: None,
        }
    }
}

impl ServiceConfig {
    /// A config with the given worker-pool size and default limits.
    pub fn with_workers(workers: usize) -> Self {
        ServiceConfig {
            workers,
            ..Default::default()
        }
    }
}

/// One unit of compute work: a decoded request plus where to answer.
struct Job {
    tenant: u64,
    msg: WireMessage,
    writer: Arc<OrderedMutex<TcpStream>>,
    /// Set by a worker whose handler panicked, *before* it writes the
    /// Error frame: the reader checks it before enqueuing, so nothing the
    /// client sends after reading that frame can reach another worker.
    dead: Arc<AtomicBool>,
}

/// State shared by the acceptor, the readers and the worker pool.
struct SharedState {
    tenants: HashMap<u64, OrderedMutex<CloudServer>>,
    config: ServiceConfig,
    /// Duplicate handles of every accepted connection, so shutdown can
    /// unblock reader threads that are parked in a blocking read.
    conns: OrderedMutex<Vec<TcpStream>>,
}

/// A TCP daemon serving one shard's tenant servers on a loopback address.
pub struct ShardDaemon {
    addr: SocketAddr,
    state: Arc<SharedState>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    workers: Vec<JoinHandle<()>>,
    jobs: Option<Sender<Job>>,
}

impl std::fmt::Debug for ShardDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardDaemon")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ShardDaemon {
    /// Binds a fresh loopback port and starts serving the given per-tenant
    /// shard servers.
    pub fn spawn(tenants: Vec<(u64, CloudServer)>, config: ServiceConfig) -> Result<ShardDaemon> {
        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| PdsError::Cloud(format!("shard daemon bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| PdsError::Cloud(format!("shard daemon local_addr failed: {e}")))?;
        let state = Arc::new(SharedState {
            tenants: tenants
                .into_iter()
                .map(|(id, server)| (id, OrderedMutex::new("service.tenant", server)))
                .collect(),
            config,
            conns: OrderedMutex::new("service.conns", Vec::new()),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(OrderedMutex::new("service.jobs", rx));
        let workers = (0..state.config.workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || run_worker(&state, &rx))
            })
            .collect();
        let acceptor = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let tx = tx.clone();
            std::thread::spawn(move || run_acceptor(listener, &state, &stop, &tx))
        };
        Ok(ShardDaemon {
            addr,
            state,
            stop,
            acceptor: Some(acceptor),
            workers,
            jobs: Some(tx),
        })
    }

    /// The loopback address this daemon listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains every thread, and returns the per-tenant
    /// shard servers (sorted by tenant id) with everything they recorded —
    /// adversarial views, metrics windows — so callers can run the
    /// security checks the in-process path runs.
    pub fn shutdown(mut self) -> Vec<(u64, CloudServer)> {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept with a throwaway dial.
        let _ = TcpStream::connect(self.addr);
        let readers = self
            .acceptor
            .take()
            .map(|h| h.join().unwrap_or_default())
            .unwrap_or_default();
        // Unblock reader threads parked in a blocking read.
        for conn in self.state.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for reader in readers {
            let _ = reader.join();
        }
        // With acceptor and readers gone, ours is the last job sender:
        // dropping it drains the worker pool.
        drop(self.jobs.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Every daemon thread has been joined, so ours is the last handle;
        // were it somehow not (a leaked clone), losing the recorded views
        // beats aborting the caller mid-shutdown.
        let Ok(state) = Arc::try_unwrap(self.state) else {
            return Vec::new();
        };
        let mut tenants: Vec<(u64, CloudServer)> = state
            .tenants
            .into_iter()
            .map(|(id, m)| (id, m.into_inner()))
            .collect();
        tenants.sort_by_key(|(id, _)| *id);
        tenants
    }
}

fn run_acceptor(
    listener: TcpListener,
    state: &Arc<SharedState>,
    stop: &AtomicBool,
    jobs: &Sender<Job>,
) -> Vec<JoinHandle<()>> {
    let mut readers = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        if let Ok(dup) = stream.try_clone() {
            state.conns.lock().push(dup);
        }
        let state = Arc::clone(state);
        let jobs = jobs.clone();
        readers.push(std::thread::spawn(move || {
            run_connection(stream, &state, &jobs)
        }));
    }
    readers
}

/// One connection's I/O loop: handshake, then read frames and enqueue jobs.
fn run_connection(stream: TcpStream, state: &SharedState, jobs: &Sender<Job>) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = std::io::BufReader::new(read_half);
    let writer = Arc::new(OrderedMutex::new("service.writer", stream));
    let dead = Arc::new(AtomicBool::new(false));
    let frames = FrameReader::new(state.config.max_payload);

    // Handshake: the first frame must be a Hello naming a known tenant.
    let tenant = match frames.read(&mut reader) {
        Ok(ReadFrame::Frame(bytes)) => match WireMessage::decode(&bytes) {
            Ok(WireMessage::Hello(hello)) => {
                if state.tenants.contains_key(&hello.tenant) {
                    if write_msg(&writer, &WireMessage::Hello(hello)).is_err() {
                        close(&writer);
                        return;
                    }
                    hello.tenant
                } else {
                    refuse(
                        &writer,
                        &PdsError::Cloud(format!("unknown tenant {}", hello.tenant)),
                    );
                    return;
                }
            }
            Ok(other) => {
                refuse(
                    &writer,
                    &PdsError::Wire(format!(
                        "connection must open with a Hello handshake, got {}",
                        other.name()
                    )),
                );
                return;
            }
            // Checksummed-but-malformed first frame: hostile peer, no reply.
            Err(_) => {
                close(&writer);
                return;
            }
        },
        Ok(ReadFrame::Oversized { msg_type, declared }) => {
            refuse(&writer, &oversized_error(state, msg_type, declared));
            return;
        }
        // Garbage bytes, truncation, or immediate close: just drop it.
        _ => {
            close(&writer);
            return;
        }
    };

    loop {
        match frames.read(&mut reader) {
            Ok(ReadFrame::Eof) => break,
            Ok(ReadFrame::Frame(bytes)) => match WireMessage::decode(&bytes) {
                Ok(msg) => {
                    // A panicked handler condemned this connection; the flag
                    // was raised before its Error frame went out, so any
                    // frame arriving after the client read it lands here.
                    if dead.load(Ordering::SeqCst) {
                        break;
                    }
                    let job = Job {
                        tenant,
                        msg,
                        writer: Arc::clone(&writer),
                        dead: Arc::clone(&dead),
                    };
                    if jobs.send(job).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    refuse(&writer, &e);
                    return;
                }
            },
            Ok(ReadFrame::Oversized { msg_type, declared }) => {
                refuse(&writer, &oversized_error(state, msg_type, declared));
                return;
            }
            // Truncated mid-frame or the peer died: nothing to answer.
            Err(_) => break,
        }
    }
    close(&writer);
}

fn oversized_error(state: &SharedState, msg_type: u8, declared: usize) -> PdsError {
    PdsError::Wire(format!(
        "declared payload of {declared} bytes on a {} frame exceeds this \
         daemon's {}-byte limit",
        msg_tag::name(msg_type),
        state.config.max_payload
    ))
}

/// One worker-pool thread: drain jobs until every sender is gone.
fn run_worker(state: &SharedState, jobs: &OrderedMutex<Receiver<Job>>) {
    loop {
        let job = {
            let rx = jobs.lock();
            match rx.recv() {
                Ok(job) => job,
                Err(_) => break,
            }
        };
        // A panicking handler must not take the daemon down with it: catch
        // the unwind, answer the client with a typed Error frame, and drop
        // only that connection.  The tenant lock the handler held is
        // poisoned by the unwind; every lock site recovers because
        // [`OrderedMutex::lock`] resolves poison to the inner value.
        match catch_unwind(AssertUnwindSafe(|| serve(state, job.tenant, &job.msg))) {
            Ok(Ok(resp)) => {
                let _ = write_msg(&job.writer, &resp);
            }
            Ok(Err(e)) => {
                let _ = write_msg(&job.writer, &WireMessage::Error(error_frame(&e)));
            }
            Err(_) => {
                // Condemn the connection *before* the Error frame goes out:
                // the moment the client reads it, nothing it sends afterwards
                // may reach a worker, or a fast client could race one more
                // request past the close below and get it served.
                job.dead.store(true, Ordering::SeqCst);
                let _ = write_msg(
                    &job.writer,
                    &WireMessage::Error(error_frame(&PdsError::Cloud(
                        "request handler panicked; dropping this connection".into(),
                    ))),
                );
                close(&job.writer);
            }
        }
    }
}

/// Serves one decoded request against the tenant's shard server.
fn serve(state: &SharedState, tenant: u64, msg: &WireMessage) -> Result<WireMessage> {
    let server = state
        .tenants
        .get(&tenant)
        .ok_or_else(|| PdsError::Cloud(format!("unknown tenant {tenant}")))?;
    let mut server = server.lock();
    if let (Some(trigger), WireMessage::Opaque(body)) = (&state.config.panic_trigger, msg) {
        // Panic while holding the tenant lock, so the regression test
        // proves poison recovery, not just unwind catching.
        if body == trigger {
            // pds-allow: panic-path(fault injection for the unwind-isolation regression test; never armed in production configs)
            panic!("injected handler panic");
        }
    }
    let mut session = CloudSession::new(&mut server);
    // Query messages are bracketed as one adversarial-view episode each —
    // exactly how the in-process executor brackets a composed episode — so
    // a daemon-served workload records the same view as a local one.
    let episodic = matches!(
        msg,
        WireMessage::FetchBinRequest(_) | WireMessage::BinPairRequest(_)
    );
    if episodic {
        session.begin_episode();
    }
    let resp = session.dispatch(msg);
    if episodic {
        session.end_episode();
    }
    resp
}

fn write_msg(writer: &OrderedMutex<TcpStream>, msg: &WireMessage) -> Result<()> {
    let frame = msg.encode()?;
    let mut stream = writer.lock();
    stream
        .write_all(&frame)
        .map_err(|e| PdsError::Wire(format!("response write failed: {e}")))
}

/// Best-effort typed refusal: Error frame out, then close.
fn refuse(writer: &OrderedMutex<TcpStream>, err: &PdsError) {
    let _ = write_msg(writer, &WireMessage::Error(error_frame(err)));
    close(writer);
}

fn close(writer: &OrderedMutex<TcpStream>) {
    let stream = writer.lock();
    let _ = stream.shutdown(Shutdown::Both);
}
