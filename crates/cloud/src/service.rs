//! A real TCP daemon serving one cloud shard to concurrent tenant owners.
//!
//! Until this module existed every byte-accurate `pds-proto` frame still
//! travelled through an in-process function call; [`ShardDaemon`] puts the
//! same [`crate::CloudSession::dispatch`] seam behind a loopback socket so
//! the failure modes of a real network — partial reads, dead peers,
//! hostile bytes, concurrent tenants — exist and are tested.
//!
//! Architecture (one daemon per shard):
//!
//! ```text
//!   TcpListener ── acceptor thread
//!        │   one reader thread per connection (I/O only):
//!        │     Hello handshake → FrameReader loop → job queue
//!        ▼
//!   mpsc job queue ── worker pool (N compute threads)
//!        │     catch_unwind( lock tenant shard → dispatch → response )
//!        ▼
//!   per-connection write mutex → response frame back on the same socket
//! ```
//!
//! Robustness rules, each covered by `tests/hostile_client.rs`:
//!
//! * **framing errors** (garbage bytes, truncated frame, kill-mid-frame)
//!   close that connection and nothing else — the acceptor keeps accepting;
//! * **oversized declared lengths** are rejected *before* any payload
//!   allocation ([`pds_proto::FrameReader`] with the daemon's configurable
//!   [`ServiceConfig::max_payload`]) and answered with a typed
//!   [`WireMessage::Error`] frame, then the connection closes — the 1 GiB
//!   protocol-level [`pds_proto::MAX_PAYLOAD_LEN`] is not a listening
//!   socket's memory-DoS budget;
//! * **a panicking handler** is caught ([`std::panic::catch_unwind`]), the
//!   client gets an `Error` frame, the connection drops, the poisoned
//!   tenant lock is recovered, and every other connection keeps getting
//!   byte-identical answers.
//!
//! Multi-tenancy: the daemon holds one independent [`CloudServer`] per
//! tenant id, so tenants have disjoint keyspaces, bin namespaces,
//! adversarial views and metrics windows.  Every connection must open with
//! a [`pds_proto::Hello`] naming its tenant; the daemon validates the id
//! and echoes the `Hello` back.
//!
//! Every lock in this module is an [`OrderedMutex`] with a named class
//! (`service.tenant`, `service.jobs`, `service.conns`, `service.writer`).
//! Built with the `lockcheck` feature, each acquisition is checked against
//! the process-wide order graph and panics on an inversion, so the
//! hostile-client matrix and the concurrency proptests double as a dynamic
//! deadlock detector; `pds-analyze`'s static lock-order pass proves the
//! same nesting graph acyclic from the source text on every commit.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use pds_common::{OrderedMutex, PdsError, Result};
use pds_obs::{obs_span, record_manual, Registry, StatsScope};
use pds_proto::{error_frame, msg_tag, FrameReader, ReadFrame, WireMessage};

use crate::server::CloudServer;
use crate::session::CloudSession;

/// Tuning knobs of one [`ShardDaemon`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Compute threads in the worker pool.
    pub workers: usize,
    /// Per-connection ceiling on a frame's declared payload length.  A
    /// header declaring more is answered with a typed `Error` frame and a
    /// closed connection — *without* allocating the declared amount.
    pub max_payload: usize,
    /// Fault-injection hook for the unwind-isolation regression test: an
    /// `Opaque` frame whose body equals this trigger panics the worker
    /// mid-request (while it holds the tenant lock).  `None` in production.
    pub panic_trigger: Option<Vec<u8>>,
    /// Shard id stamped on every metric series this daemon records.
    pub shard: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            max_payload: pds_proto::MAX_PAYLOAD_LEN,
            panic_trigger: None,
            shard: 0,
        }
    }
}

impl ServiceConfig {
    /// A config with the given worker-pool size and default limits.
    pub fn with_workers(workers: usize) -> Self {
        ServiceConfig {
            workers,
            ..Default::default()
        }
    }

    /// The same config with a different shard id for metric labels.
    pub fn with_shard(mut self, shard: u64) -> Self {
        self.shard = shard;
        self
    }
}

/// One unit of compute work: a decoded request plus where to answer.
struct Job {
    tenant: u64,
    /// Correlation id from the request frame's header, stamped verbatim on
    /// the response frame so a pipelining client can demux out-of-order
    /// answers (0 for legacy v1 requests).
    corr: u64,
    msg: WireMessage,
    writer: Arc<OrderedMutex<TcpStream>>,
    /// Set by a worker whose handler panicked, *before* it writes the
    /// Error frame: the reader checks it before enqueuing, so nothing the
    /// client sends after reading that frame can reach another worker.
    dead: Arc<AtomicBool>,
    /// Trace timestamp at enqueue, so the dequeuing worker can record the
    /// time this job spent queued (0 when tracing is disabled).
    enqueued_ns: u64,
}

/// State shared by the acceptor, the readers and the worker pool.
struct SharedState {
    tenants: HashMap<u64, OrderedMutex<CloudServer>>,
    config: ServiceConfig,
    /// Duplicate handles of every accepted connection, so shutdown can
    /// unblock reader threads that are parked in a blocking read.
    conns: OrderedMutex<Vec<TcpStream>>,
    /// Live metric series for this daemon (request/connection counters,
    /// flushed tenant work counters, leakage gauges). Deterministic-only:
    /// nothing timing-derived goes in, so `StatsRequest` snapshots are
    /// byte-stable across identical runs.
    registry: Arc<Registry>,
    /// `config.shard` pre-rendered for label slices.
    shard_label: String,
}

/// A TCP daemon serving one shard's tenant servers on a loopback address.
pub struct ShardDaemon {
    addr: SocketAddr,
    state: Arc<SharedState>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    workers: Vec<JoinHandle<()>>,
    jobs: Option<Sender<Job>>,
}

impl std::fmt::Debug for ShardDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardDaemon")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ShardDaemon {
    /// Binds a fresh loopback port and starts serving the given per-tenant
    /// shard servers.
    pub fn spawn(tenants: Vec<(u64, CloudServer)>, config: ServiceConfig) -> Result<ShardDaemon> {
        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| PdsError::Cloud(format!("shard daemon bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| PdsError::Cloud(format!("shard daemon local_addr failed: {e}")))?;
        let shard_label = config.shard.to_string();
        let state = Arc::new(SharedState {
            tenants: tenants
                .into_iter()
                .map(|(id, server)| (id, OrderedMutex::new("service.tenant", server)))
                .collect(),
            config,
            conns: OrderedMutex::new("service.conns", Vec::new()),
            registry: Arc::new(Registry::new()),
            shard_label,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(OrderedMutex::new("service.jobs", rx));
        let workers = (0..state.config.workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || run_worker(&state, &rx))
            })
            .collect();
        let acceptor = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let tx = tx.clone();
            std::thread::spawn(move || run_acceptor(listener, &state, &stop, &tx))
        };
        Ok(ShardDaemon {
            addr,
            state,
            stop,
            acceptor: Some(acceptor),
            workers,
            jobs: Some(tx),
        })
    }

    /// The loopback address this daemon listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This daemon's metric registry. The returned handle stays valid
    /// after [`ShardDaemon::shutdown`], which flushes every tenant's
    /// final work counters and leakage gauges into it.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.state.registry)
    }

    /// Stops accepting, drains every thread, and returns the per-tenant
    /// shard servers (sorted by tenant id) with everything they recorded —
    /// adversarial views, metrics windows — so callers can run the
    /// security checks the in-process path runs.
    pub fn shutdown(mut self) -> Vec<(u64, CloudServer)> {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept with a throwaway dial.
        let _ = TcpStream::connect(self.addr);
        let readers = self
            .acceptor
            .take()
            .map(|h| h.join().unwrap_or_default())
            .unwrap_or_default();
        // Unblock reader threads parked in a blocking read.
        for conn in self.state.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for reader in readers {
            let _ = reader.join();
        }
        // With acceptor and readers gone, ours is the last job sender:
        // dropping it drains the worker pool.
        drop(self.jobs.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Every in-flight request has now been answered and its spans
        // recorded (worker ring buffers outlive their threads in the
        // global trace registry); flush each tenant's final work counters
        // and leakage gauges so nothing recorded by a served request is
        // lost to the shutdown race.
        for (&tenant, server) in &self.state.tenants {
            let server = server.lock();
            flush_tenant_stats(&self.state, tenant, &server);
        }
        // Every daemon thread has been joined, so ours is the last handle;
        // were it somehow not (a leaked clone), losing the recorded views
        // beats aborting the caller mid-shutdown.
        let Ok(state) = Arc::try_unwrap(self.state) else {
            return Vec::new();
        };
        let mut tenants: Vec<(u64, CloudServer)> = state
            .tenants
            .into_iter()
            .map(|(id, m)| (id, m.into_inner()))
            .collect();
        tenants.sort_by_key(|(id, _)| *id);
        tenants
    }
}

fn run_acceptor(
    listener: TcpListener,
    state: &Arc<SharedState>,
    stop: &AtomicBool,
    jobs: &Sender<Job>,
) -> Vec<JoinHandle<()>> {
    let mut readers = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let _span = obs_span("daemon.accept");
        state.registry.counter_add(
            "pds_daemon_connections_total",
            &[("shard", &state.shard_label)],
            1,
        );
        if let Ok(dup) = stream.try_clone() {
            state.conns.lock().push(dup);
        }
        let state = Arc::clone(state);
        let jobs = jobs.clone();
        readers.push(std::thread::spawn(move || {
            run_connection(stream, &state, &jobs)
        }));
    }
    readers
}

/// One connection's I/O loop: handshake, then read frames and enqueue jobs.
fn run_connection(stream: TcpStream, state: &SharedState, jobs: &Sender<Job>) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = std::io::BufReader::new(read_half);
    let writer = Arc::new(OrderedMutex::new("service.writer", stream));
    let dead = Arc::new(AtomicBool::new(false));
    let frames = FrameReader::new(state.config.max_payload);

    // Handshake: the first frame must be a Hello naming a known tenant.
    let tenant = match frames.read(&mut reader) {
        Ok(ReadFrame::Frame(bytes)) => match WireMessage::decode_corr(&bytes) {
            Ok((corr, WireMessage::Hello(hello))) => {
                if state.tenants.contains_key(&hello.tenant) {
                    if write_msg(&writer, corr, &WireMessage::Hello(hello)).is_err() {
                        close(&writer);
                        return;
                    }
                    hello.tenant
                } else {
                    refuse(
                        &writer,
                        corr,
                        &PdsError::Cloud(format!("unknown tenant {}", hello.tenant)),
                    );
                    return;
                }
            }
            Ok((corr, other)) => {
                refuse(
                    &writer,
                    corr,
                    &PdsError::Wire(format!(
                        "connection must open with a Hello handshake, got {}",
                        other.name()
                    )),
                );
                return;
            }
            // Checksummed-but-malformed first frame: hostile peer, no reply.
            Err(_) => {
                close(&writer);
                return;
            }
        },
        Ok(ReadFrame::Oversized {
            msg_type,
            corr,
            declared,
        }) => {
            refuse(&writer, corr, &oversized_error(state, msg_type, declared));
            return;
        }
        // Garbage bytes, truncation, or immediate close: just drop it.
        _ => {
            close(&writer);
            return;
        }
    };

    loop {
        match frames.read(&mut reader) {
            Ok(ReadFrame::Eof) => break,
            Ok(ReadFrame::Frame(bytes)) => {
                // Covers decode + enqueue, not the blocking wait for bytes:
                // idle socket time is not daemon work.
                let read_span = obs_span("daemon.read");
                match WireMessage::decode_corr(&bytes) {
                    Ok((corr, msg)) => {
                        // A panicked handler condemned this connection; the flag
                        // was raised before its Error frame went out, so any
                        // frame arriving after the client read it lands here.
                        if dead.load(Ordering::SeqCst) {
                            break;
                        }
                        let job = Job {
                            tenant,
                            corr,
                            msg,
                            writer: Arc::clone(&writer),
                            dead: Arc::clone(&dead),
                            // Clock reads are not free: only stamp when the
                            // dequeuing worker will actually record the wait.
                            enqueued_ns: if pds_obs::tracing_enabled() {
                                pds_obs::now_ns()
                            } else {
                                0
                            },
                        };
                        if jobs.send(job).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        drop(read_span);
                        refuse(&writer, 0, &e);
                        return;
                    }
                }
            }
            Ok(ReadFrame::Oversized {
                msg_type,
                corr,
                declared,
            }) => {
                refuse(&writer, corr, &oversized_error(state, msg_type, declared));
                return;
            }
            // Truncated mid-frame or the peer died: nothing to answer.
            Err(_) => break,
        }
    }
    close(&writer);
}

fn oversized_error(state: &SharedState, msg_type: u8, declared: usize) -> PdsError {
    PdsError::Wire(format!(
        "declared payload of {declared} bytes on a {} frame exceeds this \
         daemon's {}-byte limit",
        msg_tag::name(msg_type),
        state.config.max_payload
    ))
}

/// One worker-pool thread: drain jobs until every sender is gone.
fn run_worker(state: &SharedState, jobs: &OrderedMutex<Receiver<Job>>) {
    loop {
        let job = {
            let rx = jobs.lock();
            match rx.recv() {
                Ok(job) => job,
                Err(_) => break,
            }
        };
        // Queue wait: stamped by the reader at enqueue, recorded here as a
        // root span because it crosses threads. A zero stamp means the job
        // was enqueued before tracing was enabled — nothing to record.
        if job.enqueued_ns != 0 {
            record_manual("daemon.queue", job.enqueued_ns, pds_obs::now_ns());
        }
        let _worker_span = obs_span("daemon.worker");
        // Stats requests are observability plumbing, not tenant work: they
        // are answered outside the tenant lock, the episode bracketing,
        // and the request counters, so asking for a snapshot never
        // perturbs the snapshot.
        if matches!(job.msg, WireMessage::StatsRequest) {
            let text = stats_snapshot(state, job.tenant);
            let _ = write_msg(&job.writer, job.corr, &WireMessage::StatsSnapshot(text));
            continue;
        }
        let tenant_label = job.tenant.to_string();
        state.registry.counter_add(
            "pds_daemon_requests_total",
            &[
                ("shard", &state.shard_label),
                ("tenant", &tenant_label),
                ("type", job.msg.name()),
            ],
            1,
        );
        // A panicking handler must not take the daemon down with it: catch
        // the unwind, answer the client with a typed Error frame, and drop
        // only that connection.  The tenant lock the handler held is
        // poisoned by the unwind; every lock site recovers because
        // [`OrderedMutex::lock`] resolves poison to the inner value.
        match catch_unwind(AssertUnwindSafe(|| serve(state, job.tenant, &job.msg))) {
            Ok(Ok(resp)) => {
                let _ = write_msg(&job.writer, job.corr, &resp);
            }
            Ok(Err(e)) => {
                state.registry.counter_add(
                    "pds_daemon_request_errors_total",
                    &[("shard", &state.shard_label), ("tenant", &tenant_label)],
                    1,
                );
                let _ = write_msg(&job.writer, job.corr, &WireMessage::Error(error_frame(&e)));
            }
            Err(_) => {
                state.registry.counter_add(
                    "pds_daemon_handler_panics_total",
                    &[("shard", &state.shard_label), ("tenant", &tenant_label)],
                    1,
                );
                // Condemn the connection *before* the Error frame goes out:
                // the moment the client reads it, nothing it sends afterwards
                // may reach a worker, or a fast client could race one more
                // request past the close below and get it served.
                job.dead.store(true, Ordering::SeqCst);
                let _ = write_msg(
                    &job.writer,
                    job.corr,
                    &WireMessage::Error(error_frame(&PdsError::Cloud(
                        "request handler panicked; dropping this connection".into(),
                    ))),
                );
                close(&job.writer);
            }
        }
    }
}

/// Serves one decoded request against the tenant's shard server.
fn serve(state: &SharedState, tenant: u64, msg: &WireMessage) -> Result<WireMessage> {
    let _span = obs_span("daemon.dispatch");
    let server = state
        .tenants
        .get(&tenant)
        .ok_or_else(|| PdsError::Cloud(format!("unknown tenant {tenant}")))?;
    let mut server = server.lock();
    if let (Some(trigger), WireMessage::Opaque(body)) = (&state.config.panic_trigger, msg) {
        // Panic while holding the tenant lock, so the regression test
        // proves poison recovery, not just unwind catching.
        if body == trigger {
            // pds-allow: panic-path(fault injection for the unwind-isolation regression test; never armed in production configs)
            panic!("injected handler panic");
        }
    }
    let mut session = CloudSession::new(&mut server);
    // Query messages are bracketed as one adversarial-view episode each —
    // exactly how the in-process executor brackets a composed episode — so
    // a daemon-served workload records the same view as a local one.
    let episodic = matches!(
        msg,
        WireMessage::FetchBinRequest(_) | WireMessage::BinPairRequest(_)
    );
    if episodic {
        session.begin_episode();
    }
    let resp = session.dispatch(msg);
    if episodic {
        session.end_episode();
    }
    resp
}

/// Writes one response frame stamped with the request's correlation id.
/// The pooled frame buffer is recycled once the bytes are on the socket.
fn write_msg(writer: &OrderedMutex<TcpStream>, corr: u64, msg: &WireMessage) -> Result<()> {
    let frame = msg.encode_framed(corr)?;
    let mut stream = writer.lock();
    stream
        .write_all(&frame)
        .map_err(|e| PdsError::Wire(format!("response write failed: {e}")))
}

/// Best-effort typed refusal: Error frame out, then close.
fn refuse(writer: &OrderedMutex<TcpStream>, corr: u64, err: &PdsError) {
    let _ = write_msg(writer, corr, &WireMessage::Error(error_frame(err)));
    close(writer);
}

fn close(writer: &OrderedMutex<TcpStream>) {
    let stream = writer.lock();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Answers a [`WireMessage::StatsRequest`]: flush the asking tenant's work
/// counters and leakage gauges, then render the registry scoped to that
/// tenant (own series plus series carrying no tenant label — global shard
/// health).
///
/// Only deterministic counters and gauges live in the daemon registry, so
/// two identical seeded runs produce byte-identical snapshots.
fn stats_snapshot(state: &SharedState, tenant: u64) -> String {
    if let Some(server) = state.tenants.get(&tenant) {
        let server = server.lock();
        flush_tenant_stats(state, tenant, &server);
    }
    state.registry.render(StatsScope::Tenant(tenant))
}

/// Copies one tenant's accumulated [`crate::Metrics`] work counters and
/// leakage gauges into the daemon registry. Counter flushes use
/// `counter_set` (monotonic absolute values), so flushing is idempotent
/// and repeat snapshots never double-count.
fn flush_tenant_stats(state: &SharedState, tenant: u64, server: &CloudServer) {
    let registry = &state.registry;
    let tenant_label = tenant.to_string();
    let labels: &[(&str, &str)] = &[("shard", &state.shard_label), ("tenant", &tenant_label)];
    let m = server.metrics();
    for (slot, &count) in m.wire_frames_by_type.iter().enumerate() {
        let tag = (slot + 1) as u8;
        registry.counter_set(
            "pds_wire_frames_total",
            &[
                ("shard", &state.shard_label),
                ("tenant", &tenant_label),
                ("type", msg_tag::name(tag)),
            ],
            count,
        );
    }
    registry.counter_set("pds_wire_bytes_uploaded_total", labels, m.bytes_uploaded);
    registry.counter_set(
        "pds_wire_bytes_downloaded_total",
        labels,
        m.bytes_downloaded,
    );
    registry.counter_set("pds_round_trips_total", labels, m.round_trips);
    registry.counter_set("pds_tuples_returned_total", labels, m.tuples_returned);
    registry.counter_set(
        "pds_fake_tuples_returned_total",
        labels,
        m.fake_tuples_returned,
    );
    registry.counter_set(
        "pds_plaintext_tuples_scanned_total",
        labels,
        m.plaintext_tuples_scanned,
    );
    registry.counter_set(
        "pds_encrypted_tuples_scanned_total",
        labels,
        m.encrypted_tuples_scanned,
    );
    // Leakage telemetry: how uniform the per-episode encrypted result
    // loads the adversary observed are (1.0 = indistinguishable loads,
    // → 0 = one episode sticks out). Computed over sizes only — the
    // tuple contents never reach the registry.
    let episode_loads: Vec<f64> = server
        .adversarial_view()
        .episodes()
        .iter()
        .map(|ep| ep.sensitive_returned.len() as f64)
        .collect();
    registry.gauge_set(
        "pds_bin_load_uniformity",
        labels,
        load_uniformity(&episode_loads),
    );
    registry.counter_set(
        "pds_observed_episodes_total",
        labels,
        episode_loads.len() as u64,
    );
}

/// Mean/max uniformity of observed per-episode loads: 1.0 when every
/// episode returns the same number of encrypted rows (or there is nothing
/// to observe), approaching 0 as one episode dominates.
fn load_uniformity(loads: &[f64]) -> f64 {
    let max = loads.iter().copied().fold(0.0f64, f64::max);
    if loads.is_empty() || max <= 0.0 {
        return 1.0;
    }
    let mean = loads.iter().sum::<f64>() / loads.len() as f64;
    mean / max
}
