//! Work counters for cost accounting.
//!
//! The experiment harness never times Opaque- or Jana-class back-ends
//! directly (the real systems take minutes to hours per query); instead each
//! component increments these counters and the cost models in
//! `pds-systems`/`pds-core` convert counts and bytes into simulated seconds.

use serde::{Deserialize, Serialize};

/// Counters of work performed during one or more query executions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Tuples examined by plaintext predicate evaluation on the cloud.
    pub plaintext_tuples_scanned: u64,
    /// Plaintext index lookups performed on the cloud.
    pub plaintext_index_lookups: u64,
    /// Encrypted tuples scanned/processed by a cryptographic back-end.
    pub encrypted_tuples_scanned: u64,
    /// Ciphertexts decrypted at the DB owner.
    pub owner_decryptions: u64,
    /// Values encrypted at the DB owner (query tokens + outsourcing).
    pub owner_encryptions: u64,
    /// Bytes sent from the owner to the cloud (queries, uploads).  Since
    /// the `pds-proto` wire format landed these are **measured** encoded
    /// frame lengths, not payload estimates.
    pub bytes_uploaded: u64,
    /// Bytes sent from the cloud to the owner (results).  Measured encoded
    /// frame lengths, like [`Metrics::bytes_uploaded`].
    pub bytes_downloaded: u64,
    /// Wire frames moved in either direction (each request and each
    /// response is one frame).
    pub wire_frames: u64,
    /// Wire frames broken down by message type, indexed by
    /// `pds_proto::msg_tag - 1` (FetchBinRequest, BinPairRequest,
    /// BinPayload, InsertRequest, Ack, Error, Opaque).  Every frame the
    /// cloud charges carries a known tag, so the sum over all slots equals
    /// [`Metrics::wire_frames`] and protocol-level properties (e.g. "the
    /// composed path really moved `BinPairRequest` frames") are assertable
    /// from metrics alone.
    pub wire_frames_by_type: [u64; pds_proto::msg_tag::COUNT],
    /// Number of request round trips between owner and cloud.
    pub round_trips: u64,
    /// Tuples returned to the owner (sensitive + non-sensitive).
    pub tuples_returned: u64,
    /// Fake tuples returned (QB general case padding).
    pub fake_tuples_returned: u64,
    /// Bin-pair retrievals answered from the owner-side hot-bin cache
    /// (no cloud interaction at all).
    pub bin_cache_hits: u64,
    /// Bin-pair retrievals that went to the cloud because at least one of
    /// the pair's bins was not cached.
    pub bin_cache_misses: u64,
}

impl Metrics {
    /// A zeroed metrics object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another metrics object into this one.
    pub fn absorb(&mut self, other: &Metrics) {
        self.plaintext_tuples_scanned += other.plaintext_tuples_scanned;
        self.plaintext_index_lookups += other.plaintext_index_lookups;
        self.encrypted_tuples_scanned += other.encrypted_tuples_scanned;
        self.owner_decryptions += other.owner_decryptions;
        self.owner_encryptions += other.owner_encryptions;
        self.bytes_uploaded += other.bytes_uploaded;
        self.bytes_downloaded += other.bytes_downloaded;
        self.wire_frames += other.wire_frames;
        for (mine, theirs) in self
            .wire_frames_by_type
            .iter_mut()
            .zip(other.wire_frames_by_type)
        {
            *mine += theirs;
        }
        self.round_trips += other.round_trips;
        self.tuples_returned += other.tuples_returned;
        self.fake_tuples_returned += other.fake_tuples_returned;
        self.bin_cache_hits += other.bin_cache_hits;
        self.bin_cache_misses += other.bin_cache_misses;
    }

    /// Difference `self - baseline`, useful to isolate the cost of one query
    /// when counters accumulate across a session.
    pub fn delta_since(&self, baseline: &Metrics) -> Metrics {
        Metrics {
            plaintext_tuples_scanned: self.plaintext_tuples_scanned
                - baseline.plaintext_tuples_scanned,
            plaintext_index_lookups: self.plaintext_index_lookups
                - baseline.plaintext_index_lookups,
            encrypted_tuples_scanned: self.encrypted_tuples_scanned
                - baseline.encrypted_tuples_scanned,
            owner_decryptions: self.owner_decryptions - baseline.owner_decryptions,
            owner_encryptions: self.owner_encryptions - baseline.owner_encryptions,
            bytes_uploaded: self.bytes_uploaded - baseline.bytes_uploaded,
            bytes_downloaded: self.bytes_downloaded - baseline.bytes_downloaded,
            wire_frames: self.wire_frames - baseline.wire_frames,
            wire_frames_by_type: std::array::from_fn(|i| {
                self.wire_frames_by_type[i] - baseline.wire_frames_by_type[i]
            }),
            round_trips: self.round_trips - baseline.round_trips,
            tuples_returned: self.tuples_returned - baseline.tuples_returned,
            fake_tuples_returned: self.fake_tuples_returned - baseline.fake_tuples_returned,
            bin_cache_hits: self.bin_cache_hits - baseline.bin_cache_hits,
            bin_cache_misses: self.bin_cache_misses - baseline.bin_cache_misses,
        }
    }

    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_uploaded + self.bytes_downloaded
    }

    /// Records one wire frame of the given `pds_proto::msg_tag` type in
    /// both the total and the per-type counter.
    pub fn count_frame(&mut self, msg_type: u8) {
        self.wire_frames += 1;
        if msg_type >= 1 {
            if let Some(slot) = self.wire_frames_by_type.get_mut(msg_type as usize - 1) {
                *slot += 1;
            }
        }
    }

    /// Frames moved carrying the given `pds_proto::msg_tag` message type
    /// (0 for an unknown tag).
    pub fn frames_of_type(&self, msg_type: u8) -> u64 {
        if msg_type == 0 {
            return 0;
        }
        self.wire_frames_by_type
            .get(msg_type as usize - 1)
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = Metrics {
            plaintext_tuples_scanned: 1,
            bytes_uploaded: 10,
            ..Default::default()
        };
        let b = Metrics {
            plaintext_tuples_scanned: 2,
            bytes_downloaded: 5,
            wire_frames: 2,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.plaintext_tuples_scanned, 3);
        assert_eq!(a.total_bytes(), 15);
        assert_eq!(a.wire_frames, 2);
        let d = a.delta_since(&b);
        assert_eq!(d.wire_frames, 0);
    }

    #[test]
    fn cache_counters_absorb_and_delta() {
        let mut a = Metrics {
            bin_cache_hits: 2,
            bin_cache_misses: 5,
            ..Default::default()
        };
        a.absorb(&Metrics {
            bin_cache_hits: 1,
            bin_cache_misses: 1,
            ..Default::default()
        });
        assert_eq!(a.bin_cache_hits, 3);
        assert_eq!(a.bin_cache_misses, 6);
        let d = a.delta_since(&Metrics {
            bin_cache_hits: 2,
            bin_cache_misses: 5,
            ..Default::default()
        });
        assert_eq!(d.bin_cache_hits, 1);
        assert_eq!(d.bin_cache_misses, 1);
    }

    #[test]
    fn delta_isolates_one_query() {
        let before = Metrics {
            owner_decryptions: 5,
            round_trips: 2,
            ..Default::default()
        };
        let after = Metrics {
            owner_decryptions: 9,
            round_trips: 3,
            ..Default::default()
        };
        let d = after.delta_since(&before);
        assert_eq!(d.owner_decryptions, 4);
        assert_eq!(d.round_trips, 1);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Metrics::new().total_bytes(), 0);
    }

    #[test]
    fn per_type_frame_counters_track_the_total() {
        use pds_proto::msg_tag;
        let mut m = Metrics::new();
        m.count_frame(msg_tag::BIN_PAIR_REQUEST);
        m.count_frame(msg_tag::BIN_PAYLOAD);
        m.count_frame(msg_tag::BIN_PAYLOAD);
        assert_eq!(m.wire_frames, 3);
        assert_eq!(m.frames_of_type(msg_tag::BIN_PAIR_REQUEST), 1);
        assert_eq!(m.frames_of_type(msg_tag::BIN_PAYLOAD), 2);
        assert_eq!(m.frames_of_type(msg_tag::ACK), 0);
        assert_eq!(m.wire_frames_by_type.iter().sum::<u64>(), m.wire_frames);

        // Unknown tags touch nothing (neither panic nor misattribution).
        m.count_frame(0);
        m.count_frame(200);
        assert_eq!(m.wire_frames, 5);
        assert_eq!(m.wire_frames_by_type.iter().sum::<u64>(), 3);
        assert_eq!(m.frames_of_type(99), 0);

        let mut sum = Metrics::new();
        sum.absorb(&m);
        sum.absorb(&m);
        assert_eq!(sum.frames_of_type(msg_tag::BIN_PAYLOAD), 4);
        let d = sum.delta_since(&m);
        assert_eq!(d.frames_of_type(msg_tag::BIN_PAYLOAD), 2);
        assert_eq!(d.frames_of_type(msg_tag::BIN_PAIR_REQUEST), 1);
    }
}
