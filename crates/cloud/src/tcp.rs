//! Client side of the TCP shard service: pooled connections and the
//! remote [`EpisodeChannel`].
//!
//! [`TcpCloudClient`] is one tenant's handle to a sharded deployment of
//! [`crate::service::ShardDaemon`]s — one daemon address per shard, one
//! lazily-grown connection pool per shard.  The handle is cheap to clone
//! (shared pools behind an `Arc`), which is what lets it ride inside
//! [`crate::BinTransport::Tcp`] and be captured by per-shard worker
//! threads.
//!
//! [`RemoteSession`] is the socket twin of [`crate::CloudSession`]: it
//! implements [`EpisodeChannel`] by framing each call as one `pds-proto`
//! message, so the same engine code drives either side of the wire.  Every
//! exchange counts as one owner↔cloud round, mirroring the in-process
//! session's `round_trips` delta accounting.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use pds_common::{OrderedMutex, PdsError, Result, TupleId, Value};
use pds_crypto::Ciphertext;
use pds_proto::{FetchBinRequest, FrameReader, Hello, ReadFrame, WireMessage};
use pds_storage::Tuple;

use crate::server::{BinPairResult, CloudServer};
use crate::session::{BinEpisodeRequest, EpisodeChannel};

/// One authenticated connection to one shard daemon.
#[derive(Debug)]
pub struct TcpShardConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    frames: FrameReader,
}

impl TcpShardConn {
    /// Dials the daemon and performs the tenant handshake (a [`Hello`]
    /// that the daemon must echo back).
    pub fn connect(addr: SocketAddr, tenant: u64) -> Result<TcpShardConn> {
        let writer = TcpStream::connect(addr).map_err(|e| {
            PdsError::Wire(format!("connect to shard daemon at {addr} failed: {e}"))
        })?;
        let _ = writer.set_nodelay(true);
        let read_half = writer
            .try_clone()
            .map_err(|e| PdsError::Wire(format!("socket clone failed: {e}")))?;
        let mut conn = TcpShardConn {
            writer,
            reader: BufReader::new(read_half),
            frames: FrameReader::default(),
        };
        match conn.call(&WireMessage::Hello(Hello { tenant }))? {
            WireMessage::Hello(echo) if echo.tenant == tenant => Ok(conn),
            WireMessage::Error(e) => Err(e.into_error()),
            other => Err(PdsError::Wire(format!(
                "handshake expected a Hello echo, got {}",
                other.name()
            ))),
        }
    }

    /// One request/response exchange: write the encoded frame, read and
    /// decode exactly one response frame.
    pub fn call(&mut self, msg: &WireMessage) -> Result<WireMessage> {
        let _span = pds_obs::obs_span("wire.call");
        let frame = msg.encode()?;
        self.writer
            .write_all(&frame)
            .map_err(|e| PdsError::Wire(format!("request write failed: {e}")))?;
        match self.frames.read(&mut self.reader)? {
            ReadFrame::Frame(bytes) => WireMessage::decode(&bytes),
            ReadFrame::Eof => Err(PdsError::Wire(
                "daemon closed the connection mid-call".into(),
            )),
            ReadFrame::Oversized { declared, .. } => Err(PdsError::Wire(format!(
                "daemon response declares {declared} payload bytes, over this client's limit"
            ))),
        }
    }
}

#[derive(Debug)]
struct ClientInner {
    tenant: u64,
    addrs: Vec<SocketAddr>,
    pools: Vec<OrderedMutex<Vec<TcpShardConn>>>,
}

/// One tenant's pooled client to a sharded daemon deployment.  Cloning is
/// cheap and shares the per-shard pools.
#[derive(Debug, Clone)]
pub struct TcpCloudClient {
    inner: Arc<ClientInner>,
}

impl TcpCloudClient {
    /// A client for the given tenant over one daemon address per shard.
    /// Connections are dialed lazily on first checkout.
    pub fn new(tenant: u64, addrs: Vec<SocketAddr>) -> TcpCloudClient {
        let pools = addrs
            .iter()
            .map(|_| OrderedMutex::new("tcp.pool", Vec::new()))
            .collect();
        TcpCloudClient {
            inner: Arc::new(ClientInner {
                tenant,
                addrs,
                pools,
            }),
        }
    }

    /// The tenant this client authenticates as.
    pub fn tenant(&self) -> u64 {
        self.inner.tenant
    }

    /// Number of shard daemons this client spans.
    pub fn shard_count(&self) -> usize {
        self.inner.addrs.len()
    }

    /// Takes a pooled connection to `shard`, dialing a fresh one when the
    /// pool is empty.
    pub fn checkout(&self, shard: usize) -> Result<TcpShardConn> {
        let pool = self.inner.pools.get(shard).ok_or_else(|| {
            PdsError::Cloud(format!(
                "no shard {shard} in a {}-shard deployment",
                self.inner.addrs.len()
            ))
        })?;
        if let Some(conn) = pool.lock().pop() {
            return Ok(conn);
        }
        TcpShardConn::connect(self.inner.addrs[shard], self.inner.tenant)
    }

    /// Returns a healthy connection to the pool.  Callers must *drop*
    /// connections whose last call errored instead — the stream may be
    /// desynchronised.
    pub fn checkin(&self, shard: usize, conn: TcpShardConn) {
        if let Some(pool) = self.inner.pools.get(shard) {
            pool.lock().push(conn);
        }
    }

    /// Whether two handles share the same pools (identity, not config).
    pub fn same_client(&self, other: &TcpCloudClient) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Fetches a tenant-scoped Prometheus-text metrics snapshot from one
    /// shard daemon via a [`WireMessage::StatsRequest`] exchange.
    pub fn fetch_stats(&self, shard: usize) -> Result<String> {
        let mut conn = self.checkout(shard)?;
        let resp = conn.call(&WireMessage::StatsRequest)?;
        match resp {
            WireMessage::StatsSnapshot(text) => {
                self.checkin(shard, conn);
                Ok(text)
            }
            WireMessage::Error(e) => Err(e.into_error()),
            other => Err(PdsError::Wire(format!(
                "StatsRequest expected a StatsSnapshot, got {}",
                other.name()
            ))),
        }
    }
}

/// The remote twin of [`crate::CloudSession`]: an [`EpisodeChannel`] whose
/// calls travel as `pds-proto` frames over one shard connection.
#[derive(Debug)]
pub struct RemoteSession<'a> {
    conn: &'a mut TcpShardConn,
    episode_rounds: Vec<u64>,
    current: u64,
    episode_open: bool,
}

impl<'a> RemoteSession<'a> {
    /// Wraps one checked-out shard connection.
    pub fn new(conn: &'a mut TcpShardConn) -> RemoteSession<'a> {
        RemoteSession {
            conn,
            episode_rounds: Vec::new(),
            current: 0,
            episode_open: false,
        }
    }

    /// Starts one episode's round counting (the daemon brackets the
    /// server-side adversarial-view episode itself, per query message).
    pub fn begin_episode(&mut self) {
        self.current = 0;
        self.episode_open = true;
    }

    /// Ends the episode, returning how many owner↔cloud rounds it took.
    pub fn end_episode(&mut self) -> u64 {
        if !self.episode_open {
            return 0;
        }
        self.episode_open = false;
        self.episode_rounds.push(self.current);
        self.current
    }

    /// Total rounds over every completed episode of this session.
    pub fn total_rounds(&self) -> u64 {
        self.episode_rounds.iter().sum()
    }

    /// One framed exchange = one round; transported errors come back typed.
    fn exchange(&mut self, msg: &WireMessage) -> Result<WireMessage> {
        let resp = self.conn.call(msg)?;
        self.current += 1;
        match resp {
            WireMessage::Error(e) => Err(e.into_error()),
            other => Ok(other),
        }
    }
}

impl EpisodeChannel for RemoteSession<'_> {
    fn plain_select_in(&mut self, values: &[Value]) -> Result<Vec<Tuple>> {
        self.plain_select_filtered(values, None)
    }

    fn plain_select_filtered(
        &mut self,
        values: &[Value],
        residual: Option<&pds_storage::Predicate>,
    ) -> Result<Vec<Tuple>> {
        let resp = self.exchange(&WireMessage::FetchBinRequest(FetchBinRequest {
            values: values.to_vec(),
            ids: Vec::new(),
            tags: Vec::new(),
            predicate: residual.cloned(),
        }))?;
        match resp {
            WireMessage::BinPayload(p) => Ok(p.plain_tuples),
            other => Err(PdsError::Wire(format!(
                "expected a BinPayload answer, got {}",
                other.name()
            ))),
        }
    }

    fn bin_pair_by_tags(
        &mut self,
        request: &BinEpisodeRequest,
        tags: Vec<Vec<u8>>,
    ) -> Result<BinPairResult> {
        let resp = self.exchange(&WireMessage::BinPairRequest(request.to_wire(tags)))?;
        match resp {
            WireMessage::BinPayload(p) => Ok((
                p.plain_tuples,
                p.encrypted_rows
                    .into_iter()
                    .map(|row| (TupleId::new(row.id), Ciphertext(row.tuple_ct)))
                    .collect(),
            )),
            other => Err(PdsError::Wire(format!(
                "expected a BinPayload answer, got {}",
                other.name()
            ))),
        }
    }

    fn bin_pair_oblivious(
        &mut self,
        _request: &BinEpisodeRequest,
        _tokens: Vec<Vec<u8>>,
        _matching: &[TupleId],
        _scanned: usize,
    ) -> Result<BinPairResult> {
        Err(PdsError::Wire(
            "enclave/MPC back-ends resolve their tokens engine-side; their \
             composed episodes cannot be served over a bare socket"
                .into(),
        ))
    }

    fn local_server(&mut self) -> Option<&mut CloudServer> {
        None
    }
}
