//! Client side of the TCP shard service: pooled connections and the
//! remote [`EpisodeChannel`].
//!
//! [`TcpCloudClient`] is one tenant's handle to a sharded deployment of
//! [`crate::service::ShardDaemon`]s — one daemon address per shard, one
//! lazily-grown connection pool per shard.  The handle is cheap to clone
//! (shared pools behind an `Arc`), which is what lets it ride inside
//! [`crate::BinTransport::Tcp`] and be captured by per-shard worker
//! threads.
//!
//! [`RemoteSession`] is the socket twin of [`crate::CloudSession`]: it
//! implements [`EpisodeChannel`] by framing each call as one `pds-proto`
//! message, so the same engine code drives either side of the wire.  Every
//! exchange counts as one owner↔cloud round, mirroring the in-process
//! session's `round_trips` delta accounting.
//!
//! Connections support two dispatch disciplines.  The classic lock-step
//! [`TcpShardConn::call`] writes one frame and awaits its response.  The
//! pipelined path splits that into [`TcpShardConn::enqueue`] (frame the
//! request under a fresh correlation id, buffer it), [`TcpShardConn::flush`]
//! (put the whole batch on the socket with vectored writes), and
//! [`TcpShardConn::recv_response`] (read one response frame, returning the
//! correlation id its header carries).  [`CorrelationWindow`] matches those
//! possibly-out-of-order responses back to request slots with typed errors
//! on duplicate or unknown ids.

use std::collections::HashMap;
use std::io::{BufReader, IoSlice, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pds_common::{OrderedMutex, PdsError, Result, TupleId, Value};
use pds_crypto::Ciphertext;
use pds_proto::{FetchBinRequest, FrameReader, Hello, PooledBuf, ReadFrame, WireMessage};
use pds_storage::Tuple;

use crate::server::{BinPairResult, CloudServer};
use crate::session::{BinEpisodeRequest, EpisodeChannel};

/// One authenticated connection to one shard daemon.
#[derive(Debug)]
pub struct TcpShardConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    frames: FrameReader,
    /// Next correlation id; starts at 1 so 0 stays "uncorrelated" (the v1
    /// wire value), and never repeats within a connection's lifetime.
    next_corr: u64,
    /// Frames enqueued but not yet flushed to the socket (pooled buffers —
    /// flushing returns them to the codec pool).
    outbox: Vec<PooledBuf>,
}

impl TcpShardConn {
    /// Dials the daemon and performs the tenant handshake (a [`Hello`]
    /// that the daemon must echo back).
    pub fn connect(addr: SocketAddr, tenant: u64) -> Result<TcpShardConn> {
        let writer = TcpStream::connect(addr).map_err(|e| {
            PdsError::Wire(format!("connect to shard daemon at {addr} failed: {e}"))
        })?;
        let _ = writer.set_nodelay(true);
        let read_half = writer
            .try_clone()
            .map_err(|e| PdsError::Wire(format!("socket clone failed: {e}")))?;
        let mut conn = TcpShardConn {
            writer,
            reader: BufReader::new(read_half),
            frames: FrameReader::default(),
            next_corr: 1,
            outbox: Vec::new(),
        };
        match conn.call(&WireMessage::Hello(Hello { tenant }))? {
            WireMessage::Hello(echo) if echo.tenant == tenant => Ok(conn),
            WireMessage::Error(e) => Err(e.into_error()),
            other => Err(PdsError::Wire(format!(
                "handshake expected a Hello echo, got {}",
                other.name()
            ))),
        }
    }

    /// Frames `msg` under a fresh correlation id and buffers it for the
    /// next [`Self::flush`].  Returns the id the response will carry.
    pub fn enqueue(&mut self, msg: &WireMessage) -> Result<u64> {
        let corr = self.next_corr;
        self.next_corr += 1;
        self.outbox.push(msg.encode_framed(corr)?);
        Ok(corr)
    }

    /// Puts every buffered frame on the socket back-to-back with vectored
    /// writes (header + payload of many requests coalesced into few
    /// syscalls), then recycles the buffers.  No response is read here.
    pub fn flush(&mut self) -> Result<()> {
        if self.outbox.is_empty() {
            return Ok(());
        }
        let _span = pds_obs::obs_span("wire.flush");
        let slices: Vec<&[u8]> = self.outbox.iter().map(|b| b.as_ref()).collect();
        // Hand-rolled advance loop over (slice index, offset): write_vectored
        // may stop anywhere, including mid-slice.
        let mut idx = 0;
        let mut off = 0;
        while idx < slices.len() {
            let mut iov: Vec<IoSlice<'_>> = Vec::with_capacity(slices.len() - idx);
            iov.push(IoSlice::new(&slices[idx][off..]));
            iov.extend(slices[idx + 1..].iter().map(|s| IoSlice::new(s)));
            let mut wrote = match self.writer.write_vectored(&iov) {
                Ok(0) => {
                    return Err(PdsError::Wire(
                        "batch write stalled: socket accepted 0 bytes".into(),
                    ))
                }
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(PdsError::Wire(format!("batch write failed: {e}"))),
            };
            while idx < slices.len() && wrote >= slices[idx].len() - off {
                wrote -= slices[idx].len() - off;
                idx += 1;
                off = 0;
            }
            off += wrote;
        }
        self.outbox.clear();
        Ok(())
    }

    /// Reads and decodes exactly one response frame, returning the
    /// correlation id its header carries alongside the message.  This is
    /// the blocking wait of both dispatch disciplines, so its `wire.call`
    /// span measures genuine time-waiting-on-the-cloud either way.
    pub fn recv_response(&mut self) -> Result<(u64, WireMessage)> {
        let _span = pds_obs::obs_span("wire.call");
        match self.frames.read(&mut self.reader)? {
            ReadFrame::Frame(bytes) => WireMessage::decode_corr(&bytes),
            ReadFrame::Eof => Err(PdsError::Wire(
                "daemon closed the connection mid-call".into(),
            )),
            ReadFrame::Oversized { declared, .. } => Err(PdsError::Wire(format!(
                "daemon response declares {declared} payload bytes, over this client's limit"
            ))),
        }
    }

    /// One lock-step request/response exchange: write the encoded frame,
    /// read exactly one response frame, and check it answers this request.
    pub fn call(&mut self, msg: &WireMessage) -> Result<WireMessage> {
        let sent = self.enqueue(msg)?;
        self.flush()?;
        let (corr, resp) = self.recv_response()?;
        // A v1 daemon answers with corr 0; only a *different* request's id
        // is a protocol violation.
        if corr != sent && corr != 0 {
            return Err(PdsError::Wire(format!(
                "response correlation id {corr} does not answer request {sent}"
            )));
        }
        Ok(resp)
    }

    /// Frames one composed bin-pair episode under a fresh correlation id
    /// and buffers it for the next [`Self::flush`] — the typed uplink half
    /// of the pipelined dispatch discipline.
    pub fn enqueue_bin_pair(
        &mut self,
        request: &BinEpisodeRequest,
        tags: Vec<Vec<u8>>,
    ) -> Result<u64> {
        self.enqueue(&WireMessage::BinPairRequest(request.to_wire(tags)))
    }

    /// Reads one pipelined response frame and interprets it as a composed
    /// episode answer.  The two error levels are deliberate:
    ///
    /// * **outer `Err`** — the stream itself failed (EOF mid-call, I/O
    ///   error, corrupt frame): the connection is unusable and the caller
    ///   may reconnect and replay its unanswered window;
    /// * **inner `Err`** — the daemon answered *this* correlation id with
    ///   a typed error frame: the connection is still healthy, but the
    ///   episode was refused and replaying it would be refused again.
    pub fn recv_bin_pair(&mut self) -> Result<(u64, Result<BinPairResult>)> {
        let (corr, resp) = self.recv_response()?;
        let result = match resp {
            WireMessage::BinPayload(p) => Ok((
                p.plain_tuples,
                p.encrypted_rows
                    .into_iter()
                    .map(|row| (TupleId::new(row.id), Ciphertext(row.tuple_ct)))
                    .collect(),
            )),
            WireMessage::Error(e) => Err(e.into_error()),
            other => Err(PdsError::Wire(format!(
                "expected a BinPayload answer, got {}",
                other.name()
            ))),
        };
        Ok((corr, result))
    }

    /// Tears down both socket halves, so the next read or write on this
    /// connection errors immediately.  Used by fault-injection tests to
    /// simulate a daemon dying mid-batch.
    pub fn shutdown(&self) {
        let _ = self.writer.shutdown(Shutdown::Both);
    }
}

/// Tracks the in-flight requests of one pipelined batch: correlation id →
/// caller-chosen slot.  Resolving a response id not in the window (stale
/// after a reconnect, forged, or delivered twice) is a typed error — demux
/// never guesses.
#[derive(Debug, Default)]
pub struct CorrelationWindow {
    pending: HashMap<u64, usize>,
}

impl CorrelationWindow {
    /// An empty window.
    pub fn new() -> CorrelationWindow {
        CorrelationWindow::default()
    }

    /// Registers an in-flight request under `corr`.  Enqueuing the same id
    /// twice is a local bookkeeping bug and comes back as a typed error.
    pub fn track(&mut self, corr: u64, slot: usize) -> Result<()> {
        match self.pending.entry(corr) {
            std::collections::hash_map::Entry::Occupied(_) => Err(PdsError::Wire(format!(
                "correlation id {corr} enqueued twice in one window"
            ))),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(slot);
                Ok(())
            }
        }
    }

    /// Resolves a response id to its request slot, removing it from the
    /// window.  Unknown ids (stale after reconnect, duplicate delivery,
    /// forged) are typed errors.
    pub fn resolve(&mut self, corr: u64) -> Result<usize> {
        self.pending.remove(&corr).ok_or_else(|| {
            PdsError::Wire(format!(
                "response carries unknown correlation id {corr} \
                 (stale, duplicate, or never sent)"
            ))
        })
    }

    /// Abandons the window, returning the unanswered slots in ascending
    /// order — the replay list after a connection is torn down.
    pub fn drain_slots(&mut self) -> Vec<usize> {
        let mut slots: Vec<usize> = self.pending.drain().map(|(_, slot)| slot).collect();
        slots.sort_unstable();
        slots
    }

    /// In-flight request count.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no request is awaiting its response.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[derive(Debug)]
struct ClientInner {
    tenant: u64,
    addrs: Vec<SocketAddr>,
    pools: Vec<OrderedMutex<Vec<TcpShardConn>>>,
    reconnects: AtomicU64,
}

/// One tenant's pooled client to a sharded daemon deployment.  Cloning is
/// cheap and shares the per-shard pools.
#[derive(Debug, Clone)]
pub struct TcpCloudClient {
    inner: Arc<ClientInner>,
}

impl TcpCloudClient {
    /// A client for the given tenant over one daemon address per shard.
    /// Connections are dialed lazily on first checkout.
    pub fn new(tenant: u64, addrs: Vec<SocketAddr>) -> TcpCloudClient {
        let pools = addrs
            .iter()
            .map(|_| OrderedMutex::new("tcp.pool", Vec::new()))
            .collect();
        TcpCloudClient {
            inner: Arc::new(ClientInner {
                tenant,
                addrs,
                pools,
                reconnects: AtomicU64::new(0),
            }),
        }
    }

    /// The tenant this client authenticates as.
    pub fn tenant(&self) -> u64 {
        self.inner.tenant
    }

    /// Number of shard daemons this client spans.
    pub fn shard_count(&self) -> usize {
        self.inner.addrs.len()
    }

    /// Takes a pooled connection to `shard`, dialing a fresh one when the
    /// pool is empty.
    pub fn checkout(&self, shard: usize) -> Result<TcpShardConn> {
        let pool = self.inner.pools.get(shard).ok_or_else(|| {
            PdsError::Cloud(format!(
                "no shard {shard} in a {}-shard deployment",
                self.inner.addrs.len()
            ))
        })?;
        if let Some(conn) = pool.lock().pop() {
            return Ok(conn);
        }
        TcpShardConn::connect(self.inner.addrs[shard], self.inner.tenant)
    }

    /// Returns a healthy connection to the pool.  Callers must *drop*
    /// connections whose last call errored instead — the stream may be
    /// desynchronised.
    pub fn checkin(&self, shard: usize, conn: TcpShardConn) {
        if let Some(pool) = self.inner.pools.get(shard) {
            pool.lock().push(conn);
        }
    }

    /// Replaces a dead connection to `shard` with a freshly dialed one —
    /// eagerly, so a mid-batch failure costs one reconnect now instead of a
    /// full dial on the next unrelated call.  Retries the dial once (two
    /// attempts total) before giving up with a typed wire error; the pool
    /// is bypassed, since its idle connections may share the failed
    /// daemon's fate and the caller needs a stream that is provably fresh.
    pub fn reconnect(&self, shard: usize) -> Result<TcpShardConn> {
        let addr = *self.inner.addrs.get(shard).ok_or_else(|| {
            PdsError::Cloud(format!(
                "no shard {shard} in a {}-shard deployment",
                self.inner.addrs.len()
            ))
        })?;
        self.inner.reconnects.fetch_add(1, Ordering::Relaxed);
        let first = match TcpShardConn::connect(addr, self.inner.tenant) {
            Ok(conn) => return Ok(conn),
            Err(e) => e,
        };
        TcpShardConn::connect(addr, self.inner.tenant).map_err(|e| {
            PdsError::Wire(format!(
                "shard {shard} daemon at {addr} unreachable after retry: \
                 first attempt: {first}; retry: {e}"
            ))
        })
    }

    /// How many eager reconnects this client has performed (regression
    /// hook for the kill-mid-batch recovery tests).
    pub fn reconnects(&self) -> u64 {
        self.inner.reconnects.load(Ordering::Relaxed)
    }

    /// Whether two handles share the same pools (identity, not config).
    pub fn same_client(&self, other: &TcpCloudClient) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Fetches a tenant-scoped Prometheus-text metrics snapshot from one
    /// shard daemon via a [`WireMessage::StatsRequest`] exchange.
    pub fn fetch_stats(&self, shard: usize) -> Result<String> {
        let mut conn = self.checkout(shard)?;
        let resp = conn.call(&WireMessage::StatsRequest)?;
        match resp {
            WireMessage::StatsSnapshot(text) => {
                self.checkin(shard, conn);
                Ok(text)
            }
            WireMessage::Error(e) => Err(e.into_error()),
            other => Err(PdsError::Wire(format!(
                "StatsRequest expected a StatsSnapshot, got {}",
                other.name()
            ))),
        }
    }
}

/// The remote twin of [`crate::CloudSession`]: an [`EpisodeChannel`] whose
/// calls travel as `pds-proto` frames over one shard connection.
#[derive(Debug)]
pub struct RemoteSession<'a> {
    conn: &'a mut TcpShardConn,
    episode_rounds: Vec<u64>,
    current: u64,
    episode_open: bool,
}

impl<'a> RemoteSession<'a> {
    /// Wraps one checked-out shard connection.
    pub fn new(conn: &'a mut TcpShardConn) -> RemoteSession<'a> {
        RemoteSession {
            conn,
            episode_rounds: Vec::new(),
            current: 0,
            episode_open: false,
        }
    }

    /// Starts one episode's round counting (the daemon brackets the
    /// server-side adversarial-view episode itself, per query message).
    pub fn begin_episode(&mut self) {
        self.current = 0;
        self.episode_open = true;
    }

    /// Ends the episode, returning how many owner↔cloud rounds it took.
    pub fn end_episode(&mut self) -> u64 {
        if !self.episode_open {
            return 0;
        }
        self.episode_open = false;
        self.episode_rounds.push(self.current);
        self.current
    }

    /// Total rounds over every completed episode of this session.
    pub fn total_rounds(&self) -> u64 {
        self.episode_rounds.iter().sum()
    }

    /// One framed exchange = one round; transported errors come back typed.
    fn exchange(&mut self, msg: &WireMessage) -> Result<WireMessage> {
        let resp = self.conn.call(msg)?;
        self.current += 1;
        match resp {
            WireMessage::Error(e) => Err(e.into_error()),
            other => Ok(other),
        }
    }
}

impl EpisodeChannel for RemoteSession<'_> {
    fn plain_select_in(&mut self, values: &[Value]) -> Result<Vec<Tuple>> {
        self.plain_select_filtered(values, None)
    }

    fn plain_select_filtered(
        &mut self,
        values: &[Value],
        residual: Option<&pds_storage::Predicate>,
    ) -> Result<Vec<Tuple>> {
        let resp = self.exchange(&WireMessage::FetchBinRequest(FetchBinRequest {
            values: values.to_vec(),
            ids: Vec::new(),
            tags: Vec::new(),
            predicate: residual.cloned(),
        }))?;
        match resp {
            WireMessage::BinPayload(p) => Ok(p.plain_tuples),
            other => Err(PdsError::Wire(format!(
                "expected a BinPayload answer, got {}",
                other.name()
            ))),
        }
    }

    fn bin_pair_by_tags(
        &mut self,
        request: &BinEpisodeRequest,
        tags: Vec<Vec<u8>>,
    ) -> Result<BinPairResult> {
        let resp = self.exchange(&WireMessage::BinPairRequest(request.to_wire(tags)))?;
        match resp {
            WireMessage::BinPayload(p) => Ok((
                p.plain_tuples,
                p.encrypted_rows
                    .into_iter()
                    .map(|row| (TupleId::new(row.id), Ciphertext(row.tuple_ct)))
                    .collect(),
            )),
            other => Err(PdsError::Wire(format!(
                "expected a BinPayload answer, got {}",
                other.name()
            ))),
        }
    }

    fn bin_pair_oblivious(
        &mut self,
        _request: &BinEpisodeRequest,
        _tokens: Vec<Vec<u8>>,
        _matching: &[TupleId],
        _scanned: usize,
    ) -> Result<BinPairResult> {
        Err(PdsError::Wire(
            "enclave/MPC back-ends resolve their tokens engine-side; their \
             composed episodes cannot be served over a bare socket"
                .into(),
        ))
    }

    fn local_server(&mut self) -> Option<&mut CloudServer> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::CorrelationWindow;

    #[test]
    fn window_resolves_out_of_order() {
        let mut w = CorrelationWindow::new();
        for (corr, slot) in [(10u64, 0usize), (11, 1), (12, 2)] {
            w.track(corr, slot).unwrap();
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.resolve(12).unwrap(), 2);
        assert_eq!(w.resolve(10).unwrap(), 0);
        assert_eq!(w.resolve(11).unwrap(), 1);
        assert!(w.is_empty());
    }

    #[test]
    fn duplicate_track_and_unknown_resolve_are_typed_errors() {
        let mut w = CorrelationWindow::new();
        w.track(5, 0).unwrap();
        assert!(w.track(5, 1).is_err(), "double-enqueue must be rejected");
        assert!(w.resolve(99).is_err(), "unknown id must be rejected");
        // A delivered-then-replayed id is unknown the second time.
        assert_eq!(w.resolve(5).unwrap(), 0);
        assert!(w.resolve(5).is_err(), "duplicate delivery must be rejected");
    }

    #[test]
    fn drain_returns_unanswered_slots_sorted() {
        let mut w = CorrelationWindow::new();
        for (corr, slot) in [(3u64, 7usize), (1, 2), (2, 9)] {
            w.track(corr, slot).unwrap();
        }
        w.resolve(1).unwrap();
        assert_eq!(w.drain_slots(), vec![7, 9]);
        assert!(w.is_empty());
        assert!(w.drain_slots().is_empty());
    }
}
