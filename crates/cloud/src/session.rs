//! The owner-facing cloud session: typed wire messages on the live path,
//! with per-episode round accounting.
//!
//! A [`CloudSession`] wraps one [`CloudServer`] shard for the duration of a
//! query stream.  It is the layer the Query Binning executor talks to when
//! it executes a [`pds_core`-compiled] plan:
//!
//! * **episode lifecycle** — [`CloudSession::begin_episode`] /
//!   [`CloudSession::end_episode`] bracket one adversarial-view episode and
//!   measure how many owner↔cloud **rounds** it took (the `round_trips`
//!   delta), which is the quantity the paper's cost model charges as
//!   `rounds × latency`;
//! * **composed episodes** — [`CloudSession::bin_pair_by_tags`] and
//!   [`CloudSession::bin_pair_oblivious`] carry one whole QB episode as a
//!   single typed [`BinPairRequest`] frame answered by a single
//!   [`pds_proto::BinPayload`] frame (one round), for back-ends that can
//!   resolve a bin-set request cloud-side;
//! * **message dispatch** — [`CloudSession::dispatch`] accepts any
//!   [`WireMessage`] and routes it onto the underlying server, returning
//!   the typed response message.  This is the entry point a remote (socket)
//!   transport would feed decoded frames into; the in-process executor uses
//!   the typed methods directly and the test suite proves both agree.
//!
//! Multi-round back-ends keep working unchanged: the session exposes the
//! raw server through [`CloudSession::server_mut`], so a fine-grained
//! episode (attribute-column download, address fetch, …) runs exactly as
//! before while the session still counts its rounds.
//!
//! [`pds_core`-compiled]: CloudSession

use pds_common::{PdsError, Result, TupleId, Value};
use pds_crypto::Ciphertext;
use pds_proto::{error_frame, Ack, BinPairRequest, BinPayload, WireMessage, WireRow};
use pds_storage::{Predicate, Tuple};

use crate::server::{BinPairResult, CloudServer};
use crate::store::EncryptedRow;

/// One Query Binning bin-pair episode as the executor hands it to a
/// back-end: both bin indices plus the value sets of both sides.
///
/// The engine decides how the sensitive side crosses the wire (opaque
/// tokens for composed one-round back-ends; engine-specific sub-requests
/// for multi-round ones); the clear-text side always travels as the
/// non-sensitive values themselves.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BinEpisodeRequest {
    /// Index of the sensitive bin being retrieved.
    pub sensitive_bin: usize,
    /// Index of the non-sensitive bin being retrieved.
    pub nonsensitive_bin: usize,
    /// Clear-text values of the sensitive bin (owner-side only — never on
    /// the wire in this form).
    pub sensitive_values: Vec<Value>,
    /// Clear-text values of the non-sensitive bin.
    pub nonsensitive_values: Vec<Value>,
    /// Residual predicate the planner pushed below the bin fetch, applied
    /// cloud-side to the clear-text (non-sensitive) result stream before the
    /// downlink.  Must only reference non-sensitive, non-searchable
    /// attributes — the planner validates that before it reaches a request.
    pub pushdown: Option<Predicate>,
}

impl BinEpisodeRequest {
    /// Builds the wire form of this episode for the given opaque sensitive
    /// tokens: the composed [`BinPairRequest`] message.
    pub fn to_wire(&self, encrypted_values: Vec<Vec<u8>>) -> BinPairRequest {
        BinPairRequest {
            sensitive_bin: self.sensitive_bin as u32,
            nonsensitive_bin: self.nonsensitive_bin as u32,
            encrypted_values,
            nonsensitive_values: self.nonsensitive_values.clone(),
            predicate: self.pushdown.clone(),
        }
    }
}

/// A session over one cloud shard: typed message dispatch plus per-episode
/// round accounting.
#[derive(Debug)]
pub struct CloudSession<'a> {
    server: &'a mut CloudServer,
    episode_start_rounds: u64,
    episode_open: bool,
    episode_rounds: Vec<u64>,
}

impl<'a> CloudSession<'a> {
    /// Opens a session over one shard.
    pub fn new(server: &'a mut CloudServer) -> Self {
        CloudSession {
            server,
            episode_start_rounds: 0,
            episode_open: false,
            episode_rounds: Vec::new(),
        }
    }

    /// Starts one adversarial-view episode and begins counting its rounds.
    pub fn begin_episode(&mut self) {
        self.server.begin_query();
        self.episode_start_rounds = self.server.metrics().round_trips;
        self.episode_open = true;
    }

    /// Ends the episode and returns the number of owner↔cloud rounds it
    /// took (0 when no episode was open).
    pub fn end_episode(&mut self) -> u64 {
        if !self.episode_open {
            return 0;
        }
        self.server.end_query();
        self.episode_open = false;
        let rounds = self.server.metrics().round_trips - self.episode_start_rounds;
        self.episode_rounds.push(rounds);
        rounds
    }

    /// Round counts of every completed episode of this session, in order.
    pub fn episode_rounds(&self) -> &[u64] {
        &self.episode_rounds
    }

    /// Total rounds over every completed episode of this session.
    pub fn total_rounds(&self) -> u64 {
        self.episode_rounds.iter().sum()
    }

    /// The underlying shard, for multi-round back-ends that drive the
    /// fine-grained server methods directly (every such call still counts
    /// toward the open episode's rounds).
    pub fn server_mut(&mut self) -> &mut CloudServer {
        self.server
    }

    /// Read access to the underlying shard.
    pub fn server(&self) -> &CloudServer {
        self.server
    }

    /// Clear-text `IN` selection on the non-sensitive side (one round).
    pub fn plain_select_in(&mut self, values: &[Value]) -> Result<Vec<Tuple>> {
        self.server.plain_select_in(values)
    }

    /// Clear-text `IN` selection with an optional residual predicate pushed
    /// below the bin fetch (one round; see
    /// [`CloudServer::plain_select_filtered`]).
    pub fn plain_select_filtered(
        &mut self,
        values: &[Value],
        residual: Option<&Predicate>,
    ) -> Result<Vec<Tuple>> {
        self.server.plain_select_filtered(values, residual)
    }

    /// One composed episode whose sensitive side is resolved by the
    /// cloud-side tag index (deterministic tags, Arx counter tokens):
    /// a single [`BinPairRequest`] frame up, a single payload frame down.
    pub fn bin_pair_by_tags(
        &mut self,
        request: &BinEpisodeRequest,
        tags: Vec<Vec<u8>>,
    ) -> Result<BinPairResult> {
        self.server.bin_pair_by_tags(&request.to_wire(tags))
    }

    /// One composed episode whose sensitive side was resolved by a
    /// cloud-side secure execution environment that obliviously scanned
    /// `scanned` tuples and selected `matching` — still a single round.
    pub fn bin_pair_oblivious(
        &mut self,
        request: &BinEpisodeRequest,
        tokens: Vec<Vec<u8>>,
        matching: &[TupleId],
        scanned: usize,
    ) -> Result<BinPairResult> {
        self.server
            .bin_pair_oblivious(&request.to_wire(tokens), matching, scanned)
    }

    /// Dispatches one typed wire message onto the shard and returns the
    /// typed response.  Unsupported message kinds come back as
    /// [`WireMessage::Error`] rather than panicking — a remote peer can
    /// send anything that decodes.
    ///
    /// Two caveats distinguish this message-level adapter from the typed
    /// methods the in-process executor uses:
    ///
    /// * **accounting granularity** — the underlying server charges one
    ///   exchange per *operation*, so a `FetchBinRequest` combining values,
    ///   ids and tags (or an `InsertRequest` mixing plain tuples and
    ///   encrypted rows) is charged as several exchanges even though a
    ///   remote peer would frame it once.  The live episode path never
    ///   combines flavours in one message, so its accounting stays
    ///   frame-accurate; a future socket transport should split combined
    ///   requests (or teach the server a combined endpoint) before relying
    ///   on these counters.
    /// * **sensitive-side resolution** — a `BinPairRequest`'s opaque tokens
    ///   are resolved against the cloud-side tag index.  Back-ends whose
    ///   tokens are *not* tags (the Opaque/Jana enclave simulators) cannot
    ///   be served from a bare message: the secure execution environment
    ///   lives engine-side, which is why their composed episodes go through
    ///   [`CloudSession::bin_pair_oblivious`].  Dispatching such a request
    ///   at an untagged deployment returns a typed [`WireMessage::Error`]
    ///   instead of a silently empty payload.
    pub fn dispatch(&mut self, msg: &WireMessage) -> Result<WireMessage> {
        let _span = pds_obs::obs_span("cloud.dispatch");
        match msg {
            WireMessage::FetchBinRequest(req) => {
                let mut payload = BinPayload::default();
                if !req.values.is_empty() {
                    payload.plain_tuples = self
                        .server
                        .plain_select_filtered(&req.values, req.predicate.as_ref())?;
                }
                if !req.ids.is_empty() {
                    let ids: Vec<TupleId> = req.ids.iter().map(|&id| TupleId::new(id)).collect();
                    payload
                        .encrypted_rows
                        .extend(rows_to_wire(&self.server.fetch_encrypted(&ids)?));
                }
                if !req.tags.is_empty() {
                    payload
                        .encrypted_rows
                        .extend(rows_to_wire(&self.server.tag_select(&req.tags)));
                }
                Ok(WireMessage::BinPayload(payload))
            }
            WireMessage::BinPairRequest(req) => {
                if !req.encrypted_values.is_empty() && !self.server.encrypted_store().has_tags() {
                    return Ok(WireMessage::Error(error_frame(&PdsError::Wire(
                        "composed request carries search tokens but this deployment has no \
                         cloud-side tag index (enclave/MPC back-ends resolve tokens engine-side)"
                            .into(),
                    ))));
                }
                let (plain_tuples, rows) = self.server.bin_pair_by_tags(req)?;
                Ok(WireMessage::BinPayload(BinPayload {
                    plain_tuples,
                    encrypted_rows: rows_to_wire(&rows),
                }))
            }
            WireMessage::InsertRequest(req) => {
                let mut items = 0u64;
                for tuple in &req.plain_tuples {
                    self.server.insert_plaintext(tuple.clone())?;
                    items += 1;
                }
                if !req.encrypted_rows.is_empty() {
                    let rows: Vec<EncryptedRow> = req
                        .encrypted_rows
                        .iter()
                        .map(|row| EncryptedRow {
                            id: TupleId::new(row.id),
                            attr_ct: Ciphertext(row.attr_ct.clone()),
                            tuple_ct: Ciphertext(row.tuple_ct.clone()),
                            search_tags: row.search_tags.clone(),
                        })
                        .collect();
                    items += rows.len() as u64;
                    self.server.upload_encrypted(rows)?;
                }
                Ok(WireMessage::Ack(Ack { items }))
            }
            other => Ok(WireMessage::Error(error_frame(&PdsError::Wire(format!(
                "cloud session cannot serve a {} message",
                other.name()
            ))))),
        }
    }
}

/// The episode-scoped operations a selection back-end needs from its cloud
/// connection — the seam that lets one engine implementation serve both the
/// in-process [`CloudSession`] and a remote socket transport.
///
/// The trait is object-safe so engines can take `&mut dyn EpisodeChannel`
/// without knowing which side of a socket they are on:
///
/// * [`CloudSession`] implements it by calling the shard directly;
/// * `pds-cloud::tcp`'s `RemoteSession` implements it by framing each call
///   as one `pds-proto` message to a `ShardDaemon`.
///
/// Multi-round (fine-grained) back-ends need raw server access, which a
/// remote channel cannot grant — [`EpisodeChannel::local_server`] returns
/// `None` there, and the caller degrades to a typed error instead of a
/// protocol violation.  Likewise enclave/MPC back-ends resolve their tokens
/// engine-side, so a remote channel answers
/// [`EpisodeChannel::bin_pair_oblivious`] with a typed error.
pub trait EpisodeChannel {
    /// Clear-text `IN` selection on the non-sensitive side (one round).
    fn plain_select_in(&mut self, values: &[Value]) -> Result<Vec<Tuple>>;

    /// Clear-text `IN` selection with an optional residual predicate pushed
    /// below the bin fetch, evaluated cloud-side before the downlink.  Not
    /// defaulted on purpose: a local fallback that filtered after the wire
    /// would silently mis-account the bytes pushdown exists to save.
    fn plain_select_filtered(
        &mut self,
        values: &[Value],
        residual: Option<&Predicate>,
    ) -> Result<Vec<Tuple>>;

    /// One composed episode resolved by the cloud-side tag index.
    fn bin_pair_by_tags(
        &mut self,
        request: &BinEpisodeRequest,
        tags: Vec<Vec<u8>>,
    ) -> Result<BinPairResult>;

    /// One composed episode resolved by a cloud-side secure execution
    /// environment (enclave/MPC simulators).
    fn bin_pair_oblivious(
        &mut self,
        request: &BinEpisodeRequest,
        tokens: Vec<Vec<u8>>,
        matching: &[TupleId],
        scanned: usize,
    ) -> Result<BinPairResult>;

    /// The underlying shard when the channel is in-process, `None` when the
    /// shard lives behind a socket (fine-grained episodes need this).
    fn local_server(&mut self) -> Option<&mut CloudServer>;
}

impl EpisodeChannel for CloudSession<'_> {
    fn plain_select_in(&mut self, values: &[Value]) -> Result<Vec<Tuple>> {
        CloudSession::plain_select_in(self, values)
    }

    fn plain_select_filtered(
        &mut self,
        values: &[Value],
        residual: Option<&Predicate>,
    ) -> Result<Vec<Tuple>> {
        CloudSession::plain_select_filtered(self, values, residual)
    }

    fn bin_pair_by_tags(
        &mut self,
        request: &BinEpisodeRequest,
        tags: Vec<Vec<u8>>,
    ) -> Result<BinPairResult> {
        CloudSession::bin_pair_by_tags(self, request, tags)
    }

    fn bin_pair_oblivious(
        &mut self,
        request: &BinEpisodeRequest,
        tokens: Vec<Vec<u8>>,
        matching: &[TupleId],
        scanned: usize,
    ) -> Result<BinPairResult> {
        CloudSession::bin_pair_oblivious(self, request, tokens, matching, scanned)
    }

    fn local_server(&mut self) -> Option<&mut CloudServer> {
        Some(self.server_mut())
    }
}

/// Converts `(id, tuple ciphertext)` results to their wire rows.
fn rows_to_wire(rows: &[(TupleId, Ciphertext)]) -> Vec<WireRow> {
    rows.iter()
        .map(|(id, ct)| WireRow {
            id: id.raw(),
            attr_ct: Vec::new(),
            tuple_ct: ct.as_bytes().to_vec(),
            search_tags: Vec::new(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkModel;
    use pds_crypto::NonDetCipher;
    use pds_proto::FetchBinRequest;
    use pds_storage::{DataType, Relation, Schema};

    fn server() -> CloudServer {
        let schema =
            Schema::from_pairs(&[("EId", DataType::Text), ("Dept", DataType::Text)]).unwrap();
        let mut r = Relation::new("Employee", schema);
        for (e, d) in [("E259", "Design"), ("E199", "Design"), ("E254", "Sales")] {
            r.insert(vec![Value::from(e), Value::from(d)]).unwrap();
        }
        let mut s = CloudServer::new(NetworkModel::paper_wan());
        s.upload_plaintext(r, "EId").unwrap();
        let cipher = NonDetCipher::from_seed(9);
        let mut rng = pds_common::rng::seeded_rng(1);
        let rows: Vec<EncryptedRow> = (0..3u64)
            .map(|i| EncryptedRow {
                id: TupleId::new(100 + i),
                attr_ct: cipher.encrypt(format!("v{i}").as_bytes(), &mut rng),
                tuple_ct: cipher.encrypt(format!("tuple{i}").as_bytes(), &mut rng),
                search_tags: vec![vec![i as u8]],
            })
            .collect();
        s.upload_encrypted(rows).unwrap();
        s
    }

    #[test]
    fn episode_round_counting_tracks_round_trips() {
        let mut cloud = server();
        let mut session = CloudSession::new(&mut cloud);
        session.begin_episode();
        session.plain_select_in(&[Value::from("E259")]).unwrap();
        session
            .server_mut()
            .fetch_encrypted(&[TupleId::new(101)])
            .unwrap();
        let rounds = session.end_episode();
        assert_eq!(rounds, 2, "one plaintext round, one fetch round");

        session.begin_episode();
        let composed = session
            .bin_pair_by_tags(
                &BinEpisodeRequest {
                    sensitive_bin: 0,
                    nonsensitive_bin: 0,
                    sensitive_values: vec![Value::from("x")],
                    nonsensitive_values: vec![Value::from("E259")],
                    pushdown: None,
                },
                vec![vec![0u8]],
            )
            .unwrap();
        let composed_rounds = session.end_episode();
        assert_eq!(composed.0.len(), 1);
        assert_eq!(composed.1.len(), 1);
        assert_eq!(composed_rounds, 1, "composed episode is one round");
        assert_eq!(session.episode_rounds(), &[2, 1]);
        assert_eq!(session.total_rounds(), 3);
        assert_eq!(session.end_episode(), 0, "no episode open");
    }

    #[test]
    fn dispatch_serves_typed_messages() {
        let mut cloud = server();
        let mut session = CloudSession::new(&mut cloud);

        // Fetch by clear-text values.
        let resp = session
            .dispatch(&WireMessage::FetchBinRequest(FetchBinRequest {
                values: vec![Value::from("E259")],
                ids: Vec::new(),
                tags: Vec::new(),
                predicate: None,
            }))
            .unwrap();
        match resp {
            WireMessage::BinPayload(p) => assert_eq!(p.plain_tuples.len(), 1),
            other => panic!("unexpected response {other:?}"),
        }

        // Fetch by tags and by ids in one message.
        let resp = session
            .dispatch(&WireMessage::FetchBinRequest(FetchBinRequest {
                values: Vec::new(),
                ids: vec![100],
                tags: vec![vec![1u8]],
                predicate: None,
            }))
            .unwrap();
        match resp {
            WireMessage::BinPayload(p) => assert_eq!(p.encrypted_rows.len(), 2),
            other => panic!("unexpected response {other:?}"),
        }

        // Composed bin pair.
        let resp = session
            .dispatch(&WireMessage::BinPairRequest(BinPairRequest {
                sensitive_bin: 0,
                nonsensitive_bin: 0,
                encrypted_values: vec![vec![2u8]],
                nonsensitive_values: vec![Value::from("E199")],
                predicate: None,
            }))
            .unwrap();
        match resp {
            WireMessage::BinPayload(p) => {
                assert_eq!(p.plain_tuples.len(), 1);
                assert_eq!(p.encrypted_rows.len(), 1);
            }
            other => panic!("unexpected response {other:?}"),
        }

        // Inserts (plain + encrypted) are acknowledged with an item count.
        let cipher = NonDetCipher::from_seed(4);
        let mut rng = pds_common::rng::seeded_rng(7);
        let ct = cipher.encrypt(b"z", &mut rng);
        let resp = session
            .dispatch(&WireMessage::InsertRequest(pds_proto::InsertRequest {
                plain_tuples: vec![Tuple::new(
                    TupleId::new(500),
                    vec![Value::from("E500"), Value::from("Ops")],
                )],
                encrypted_rows: vec![WireRow {
                    id: 900,
                    attr_ct: ct.as_bytes().to_vec(),
                    tuple_ct: ct.as_bytes().to_vec(),
                    search_tags: vec![vec![9u8]],
                }],
            }))
            .unwrap();
        assert_eq!(resp, WireMessage::Ack(Ack { items: 2 }));
        assert_eq!(session.server().plain_len(), 4);
        assert_eq!(session.server().encrypted_len(), 4);

        // Unsupported kinds come back as typed errors.
        let resp = session
            .dispatch(&WireMessage::Ack(Ack { items: 1 }))
            .unwrap();
        assert!(matches!(resp, WireMessage::Error(_)));
    }

    #[test]
    fn composed_dispatch_rejects_tokens_at_untagged_deployments() {
        // A deployment whose encrypted rows carry no cloud-side tags
        // (enclave/MPC back-ends) cannot resolve opaque tokens from a bare
        // message: the dispatch must answer with a typed error, never a
        // silently empty payload.
        let cipher = NonDetCipher::from_seed(3);
        let mut rng = pds_common::rng::seeded_rng(5);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        cloud
            .upload_encrypted(vec![EncryptedRow {
                id: TupleId::new(1),
                attr_ct: cipher.encrypt(b"a", &mut rng),
                tuple_ct: cipher.encrypt(b"t", &mut rng),
                search_tags: Vec::new(),
            }])
            .unwrap();
        let mut session = CloudSession::new(&mut cloud);
        let resp = session
            .dispatch(&WireMessage::BinPairRequest(BinPairRequest {
                sensitive_bin: 0,
                nonsensitive_bin: 0,
                encrypted_values: vec![vec![1, 2, 3]],
                nonsensitive_values: Vec::new(),
                predicate: None,
            }))
            .unwrap();
        assert!(matches!(resp, WireMessage::Error(_)), "{resp:?}");
    }

    #[test]
    fn pushdown_filters_cloud_side_and_shrinks_the_downlink() {
        // Residual predicate on the non-search attribute: the filtered
        // episode must return exactly the matching subset and move fewer
        // downlink bytes than the unfiltered one.
        let dept = pds_common::AttrId::new(1);
        let residual = Predicate::Eq {
            attr: dept,
            value: Value::from("Design"),
        };
        let bin = [Value::from("E259"), Value::from("E254")];

        let mut plain_cloud = server();
        let unfiltered = plain_cloud.plain_select_in(&bin).unwrap();
        let plain_down: u64 = plain_cloud.metrics().bytes_downloaded;

        let mut cloud = server();
        let filtered = cloud.plain_select_filtered(&bin, Some(&residual)).unwrap();
        let filtered_down: u64 = cloud.metrics().bytes_downloaded;

        assert_eq!(unfiltered.len(), 2);
        assert_eq!(filtered.len(), 1, "E254 is in Sales and must be dropped");
        assert!(filtered.iter().all(|t| residual.matches(t)));
        assert!(
            filtered_down < plain_down,
            "pushdown must shrink the downlink ({filtered_down} vs {plain_down})"
        );
        // Uplink pays for carrying the predicate; scan counters still see
        // both index matches.
        assert_eq!(cloud.metrics().plaintext_tuples_scanned, 2);
        assert_eq!(cloud.metrics().tuples_returned, 1);

        // The message-level adapter serves the same filtered episode.
        let mut dispatch_cloud = server();
        let mut session = CloudSession::new(&mut dispatch_cloud);
        let resp = session
            .dispatch(&WireMessage::FetchBinRequest(FetchBinRequest {
                values: bin.to_vec(),
                ids: Vec::new(),
                tags: Vec::new(),
                predicate: Some(residual.clone()),
            }))
            .unwrap();
        match resp {
            WireMessage::BinPayload(p) => assert_eq!(p.plain_tuples, filtered),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn dispatch_matches_the_direct_method_byte_for_byte() {
        // The message-level adapter and the typed method must serve the
        // same composed episode identically (same rows, same plain tuples).
        let request = BinPairRequest {
            sensitive_bin: 0,
            nonsensitive_bin: 0,
            encrypted_values: vec![vec![0u8], vec![1u8]],
            nonsensitive_values: vec![Value::from("E259"), Value::from("E254")],
            predicate: None,
        };
        let mut direct_cloud = server();
        let (plain, rows) = direct_cloud.bin_pair_by_tags(&request).unwrap();

        let mut cloud = server();
        let mut session = CloudSession::new(&mut cloud);
        let resp = session
            .dispatch(&WireMessage::BinPairRequest(request))
            .unwrap();
        match resp {
            WireMessage::BinPayload(p) => {
                assert_eq!(p.plain_tuples, plain);
                let ids: Vec<u64> = p.encrypted_rows.iter().map(|r| r.id).collect();
                let direct_ids: Vec<u64> = rows.iter().map(|(id, _)| id.raw()).collect();
                assert_eq!(ids, direct_ids);
                for (wire, (_, ct)) in p.encrypted_rows.iter().zip(&rows) {
                    assert_eq!(wire.tuple_ct, ct.as_bytes());
                }
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
}
