//! Cloud-side storage of the encrypted sensitive relation.
//!
//! Each sensitive tuple is stored as an [`EncryptedRow`]:
//!
//! * `tuple_ct` — the whole tuple under non-deterministic encryption;
//! * `attr_ct` — the searchable attribute value alone, also under
//!   non-deterministic encryption (the "No-Ind" search procedure of §V-B
//!   downloads this column, decrypts it owner-side and selects addresses);
//! * `search_tags` — optional cloud-side searchable tags (deterministic
//!   equality tags for the CryptDB-style back-end, per-occurrence counter
//!   tokens for the Arx-style back-end). Absent for strongly secure
//!   back-ends.
//!
//! Fake tuples injected by QB's general case are ordinary encrypted rows
//! flagged server-side only in the sense that the *owner* knows their ids;
//! to the cloud and the adversary they are indistinguishable from real rows.

use std::collections::HashMap;

use pds_common::{PdsError, Result, TupleId};
use pds_crypto::Ciphertext;

/// One encrypted sensitive tuple as stored by the cloud.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncryptedRow {
    /// Storage address / tuple id (what access-pattern leakage reveals).
    pub id: TupleId,
    /// Encryption of the searchable attribute value.
    pub attr_ct: Ciphertext,
    /// Encryption of the full tuple.
    pub tuple_ct: Ciphertext,
    /// Cloud-side searchable tags (empty for non-indexable back-ends).
    pub search_tags: Vec<Vec<u8>>,
}

impl EncryptedRow {
    /// Total stored size in bytes.
    pub fn size_bytes(&self) -> usize {
        8 + self.attr_ct.len()
            + self.tuple_ct.len()
            + self.search_tags.iter().map(Vec::len).sum::<usize>()
    }
}

/// The encrypted store: rows plus an (optional) tag index.
#[derive(Debug, Clone, Default)]
pub struct EncryptedStore {
    rows: Vec<EncryptedRow>,
    by_id: HashMap<TupleId, usize>,
    tag_index: HashMap<Vec<u8>, Vec<TupleId>>,
}

impl EncryptedStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a row; ids must be unique.
    pub fn insert(&mut self, row: EncryptedRow) -> Result<()> {
        if self.by_id.contains_key(&row.id) {
            return Err(PdsError::Cloud(format!(
                "duplicate encrypted tuple id {}",
                row.id
            )));
        }
        self.by_id.insert(row.id, self.rows.len());
        for tag in &row.search_tags {
            self.tag_index.entry(tag.clone()).or_default().push(row.id);
        }
        self.rows.push(row);
        Ok(())
    }

    /// Bulk insert.
    pub fn insert_many(&mut self, rows: Vec<EncryptedRow>) -> Result<()> {
        for row in rows {
            self.insert(row)?;
        }
        Ok(())
    }

    /// Number of stored rows (including any fake rows).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows, in storage order.
    pub fn rows(&self) -> &[EncryptedRow] {
        &self.rows
    }

    /// Fetches one row by id.
    pub fn get(&self, id: TupleId) -> Option<&EncryptedRow> {
        self.by_id.get(&id).map(|&i| &self.rows[i])
    }

    /// Fetches rows by id, erroring on unknown ids.
    pub fn fetch(&self, ids: &[TupleId]) -> Result<Vec<&EncryptedRow>> {
        ids.iter()
            .map(|&id| {
                self.get(id)
                    .ok_or_else(|| PdsError::Cloud(format!("unknown encrypted tuple id {id}")))
            })
            .collect()
    }

    /// Ids of rows carrying the given searchable tag (empty when the tag is
    /// unknown or the store is not tag-indexed).
    pub fn lookup_tag(&self, tag: &[u8]) -> &[TupleId] {
        self.tag_index.get(tag).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether any stored row carries cloud-side searchable tags — i.e.
    /// whether this deployment's back-end can be served by tag lookups at
    /// all (deterministic tags, Arx counter tokens).
    pub fn has_tags(&self) -> bool {
        !self.tag_index.is_empty()
    }

    /// Total size of the attribute-ciphertext column in bytes.
    pub fn attr_column_bytes(&self) -> usize {
        self.rows.iter().map(|r| 8 + r.attr_ct.len()).sum()
    }

    /// Total stored size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.rows.iter().map(EncryptedRow::size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_crypto::NonDetCipher;

    fn row(id: u64, tags: Vec<Vec<u8>>) -> EncryptedRow {
        let cipher = NonDetCipher::from_seed(1);
        let mut rng = pds_common::rng::seeded_rng(id);
        EncryptedRow {
            id: TupleId::new(id),
            attr_ct: cipher.encrypt(b"attr", &mut rng),
            tuple_ct: cipher.encrypt(b"tuple-payload", &mut rng),
            search_tags: tags,
        }
    }

    #[test]
    fn insert_get_fetch() {
        let mut store = EncryptedStore::new();
        store.insert(row(0, vec![])).unwrap();
        store.insert(row(1, vec![])).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.get(TupleId::new(1)).is_some());
        assert!(store.get(TupleId::new(9)).is_none());
        assert_eq!(
            store
                .fetch(&[TupleId::new(0), TupleId::new(1)])
                .unwrap()
                .len(),
            2
        );
        assert!(store.fetch(&[TupleId::new(7)]).is_err());
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut store = EncryptedStore::new();
        store.insert(row(0, vec![])).unwrap();
        assert!(store.insert(row(0, vec![])).is_err());
    }

    #[test]
    fn tag_index_lookup() {
        let mut store = EncryptedStore::new();
        store.insert(row(0, vec![vec![1, 2, 3]])).unwrap();
        store.insert(row(1, vec![vec![1, 2, 3], vec![9]])).unwrap();
        store.insert(row(2, vec![])).unwrap();
        assert_eq!(store.lookup_tag(&[1, 2, 3]).len(), 2);
        assert_eq!(store.lookup_tag(&[9]).len(), 1);
        assert_eq!(store.lookup_tag(&[0]).len(), 0);
    }

    #[test]
    fn sizes_are_positive() {
        let mut store = EncryptedStore::new();
        store
            .insert_many(vec![row(0, vec![]), row(1, vec![vec![5; 16]])])
            .unwrap();
        assert!(store.attr_column_bytes() > 0);
        assert!(store.size_bytes() > store.attr_column_bytes());
    }
}
