//! # pds-cloud
//!
//! The simulated **untrusted public cloud** of the paper's system model
//! (§II), together with the trusted **DB owner** client.
//!
//! The cloud stores two things for a partitioned relation:
//!
//! * the non-sensitive part `Rns` in clear-text (a [`pds_storage::Relation`]
//!   plus a hash index on the searchable attribute), and
//! * the sensitive part `Rs` as non-deterministically encrypted tuples
//!   (an [`store::EncryptedStore`]), optionally with cloud-side searchable
//!   tags for the indexable back-ends (CryptDB-style deterministic tags,
//!   Arx-style counter tokens).
//!
//! Every request the owner sends and every tuple the cloud returns is
//! recorded in an [`view::AdversarialView`], which is exactly the information
//! the honest-but-curious adversary of §II observes.  The adversary crate
//! (`pds-adversary`) and the security tests consume that view.
//!
//! The crate also provides:
//!
//! * [`network::NetworkModel`] — a byte-accurate communication cost model
//!   (the `Ccom` of the paper's §V-A analysis),
//! * [`metrics::Metrics`] — counters of plaintext work, cryptographic work
//!   and bytes moved, from which the experiment harness derives simulated
//!   wall-clock times for back-ends (Opaque, Jana) that would be too slow to
//!   run for real, and
//! * [`shard::ShardRouter`] — a sharded multi-server deployment: `N`
//!   independent `CloudServer` shards behind a seeded bin-to-shard placement
//!   map, with per-shard *and* composed adversarial views,
//! * [`transport::BinTransport`] — dispatch of per-shard bin fetches
//!   sequentially, on scoped OS threads (measured compute overlap), or
//!   through [`pds_proto::NetSim`]'s event loop
//!   ([`transport::BinTransport::Simulated`]): the wire frames each shard
//!   moved are replayed over per-shard links so the reported makespan shows
//!   network latency genuinely overlapping, and
//! * [`cache::BinCache`] — the owner-side hot-bin LRU: whole decrypted bins
//!   cached at the trusted owner, so repeated (skewed) queries skip the
//!   cloud round-trip entirely, and
//! * [`session::CloudSession`] — the typed-message session layer: per-episode
//!   round counting, composed one-round `BinPairRequest` episodes, and
//!   `WireMessage` dispatch onto the server (the live execution path of the
//!   plan→session pipeline in `pds-core`), and
//! * [`service::ShardDaemon`] / [`tcp::TcpCloudClient`] — the same dispatch
//!   seam behind a real loopback TCP socket: a per-shard daemon (acceptor +
//!   reader threads + worker pool) serving concurrent multi-tenant owners,
//!   and the pooled client whose [`tcp::RemoteSession`] implements
//!   [`session::EpisodeChannel`] so engines run unchanged on either side of
//!   the wire ([`transport::BinTransport::Tcp`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod metrics;
pub mod network;
pub mod owner;
pub mod server;
pub mod service;
pub mod session;
pub mod shard;
pub mod store;
pub mod tcp;
pub mod transport;
pub mod view;

pub use cache::{BinCache, BinCacheStats, BinKey, BinKind};
pub use metrics::Metrics;
pub use network::NetworkModel;
pub use owner::DbOwner;
pub use pds_proto::{msg_tag, LinkSpec, RoundTrip, SimReport};
pub use server::{BinPairResult, CloudServer};
pub use service::{ServiceConfig, ShardDaemon};
pub use session::{BinEpisodeRequest, CloudSession, EpisodeChannel};
pub use shard::{BinPlacement, BinRoutedCloud, ShardRouter};
pub use store::{EncryptedRow, EncryptedStore};
pub use tcp::{CorrelationWindow, RemoteSession, TcpCloudClient, TcpShardConn};
pub use transport::{simulate_wire_traffic, BinTransport, DispatchReport};
pub use view::{AdversarialView, QueryEpisode};
