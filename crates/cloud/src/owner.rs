//! The trusted DB owner.
//!
//! The owner (§II) is the only party holding keys.  It encrypts sensitive
//! tuples before outsourcing, issues queries, decrypts returned ciphertexts,
//! filters out padding/fake tuples and merges the sensitive and
//! non-sensitive result streams.  The owner also keeps the metadata QB needs
//! (searchable values and their frequency counts) — that metadata lives in
//! `pds-core::metadata`, built on [`pds_storage::AttributeStats`].

use pds_common::{AttrId, PdsError, Result, TupleId, Value};
use pds_crypto::{Ciphertext, DeterministicTagger, Key128, NonDetCipher};
use pds_storage::{Relation, Tuple};
use rand::rngs::StdRng;

use crate::metrics::Metrics;
use crate::store::EncryptedRow;

/// The trusted client that owns the data and the keys.
pub struct DbOwner {
    seed: u64,
    cipher: NonDetCipher,
    tagger: DeterministicTagger,
    rng: StdRng,
    metrics: Metrics,
}

impl DbOwner {
    /// Creates an owner whose keys and randomness derive from `seed`.
    pub fn new(seed: u64) -> Self {
        DbOwner {
            seed,
            cipher: NonDetCipher::new(
                Key128::derive(seed, "owner-enc"),
                Key128::derive(seed, "owner-mac"),
            ),
            tagger: DeterministicTagger::new(Key128::derive(seed, "owner-det")),
            rng: pds_common::rng::seeded_rng(pds_common::rng::derive_seed(seed, "owner-rng")),
            metrics: Metrics::new(),
        }
    }

    /// A worker owner holding the **same keys** but an independent
    /// randomness stream and zeroed counters.
    ///
    /// The threaded shard fan-out hands one fork to every shard task: keys
    /// must match (the fork has to decrypt what the original encrypted and
    /// produce identical deterministic tags) while the encryption
    /// randomness and the work counters must not be shared across threads.
    /// Fold the fork's counters back with [`DbOwner::absorb_metrics`].
    pub fn fork(&self, salt: u64) -> Self {
        DbOwner {
            seed: self.seed,
            cipher: self.cipher.clone(),
            tagger: self.tagger.clone(),
            rng: pds_common::rng::seeded_rng(
                pds_common::rng::derive_seed(self.seed, "owner-fork").wrapping_add(salt),
            ),
            metrics: Metrics::new(),
        }
    }

    /// Adds a forked owner's (or any other) counters into this owner's.
    pub fn absorb_metrics(&mut self, other: &Metrics) {
        self.metrics.absorb(other);
    }

    /// Records the outcome of one owner-side hot-bin cache lookup (a hit
    /// skipped the cloud entirely; a miss went on to fetch the pair).
    pub fn note_bin_cache(&mut self, hit: bool) {
        if hit {
            self.metrics.bin_cache_hits += 1;
        } else {
            self.metrics.bin_cache_misses += 1;
        }
    }

    // ----- value-level primitives -------------------------------------------

    /// Non-deterministically encrypts a single value.
    pub fn encrypt_value(&mut self, value: &Value) -> Ciphertext {
        self.metrics.owner_encryptions += 1;
        self.cipher.encrypt(&value.encode(), &mut self.rng)
    }

    /// Decrypts a value ciphertext.
    pub fn decrypt_value(&mut self, ct: &Ciphertext) -> Result<Value> {
        self.metrics.owner_decryptions += 1;
        let bytes = self.cipher.decrypt(ct)?;
        Value::decode(&bytes)
            .ok_or_else(|| PdsError::Crypto("decrypted bytes are not a valid value".into()))
    }

    /// Deterministic equality tag of a value (for indexable back-ends).
    pub fn det_tag(&mut self, value: &Value) -> Vec<u8> {
        self.metrics.owner_encryptions += 1;
        self.tagger.tag_vec(&value.encode())
    }

    /// Arx-style per-occurrence tag of `(value, occurrence)`.
    pub fn counter_tag(&mut self, value: &Value, occurrence: u64) -> Vec<u8> {
        self.metrics.owner_encryptions += 1;
        let mut input = value.encode();
        input.extend_from_slice(&occurrence.to_be_bytes());
        self.tagger.tag_vec(&input)
    }

    // ----- tuple-level primitives --------------------------------------------

    /// Non-deterministically encrypts a whole tuple.
    pub fn encrypt_tuple(&mut self, tuple: &Tuple) -> Ciphertext {
        self.metrics.owner_encryptions += 1;
        self.cipher.encrypt(&tuple.encode(), &mut self.rng)
    }

    /// Decrypts a tuple ciphertext.
    pub fn decrypt_tuple(&mut self, ct: &Ciphertext) -> Result<Tuple> {
        self.metrics.owner_decryptions += 1;
        let bytes = self.cipher.decrypt(ct)?;
        Tuple::decode(&bytes)
            .ok_or_else(|| PdsError::Crypto("decrypted bytes are not a valid tuple".into()))
    }

    /// Encrypts one sensitive tuple into the row format the cloud stores:
    /// the searchable attribute value and the full tuple are encrypted
    /// separately; `tags` carry optional cloud-side searchable tags.
    pub fn encrypt_row(&mut self, tuple: &Tuple, attr: AttrId, tags: Vec<Vec<u8>>) -> EncryptedRow {
        let attr_ct = self.encrypt_value(tuple.value(attr));
        let tuple_ct = self.encrypt_tuple(tuple);
        EncryptedRow {
            id: tuple.id,
            attr_ct,
            tuple_ct,
            search_tags: tags,
        }
    }

    /// Encrypts an entire sensitive relation (no cloud-side tags).
    pub fn encrypt_relation(&mut self, relation: &Relation, attr: AttrId) -> Vec<EncryptedRow> {
        relation
            .tuples()
            .iter()
            .map(|t| self.encrypt_row(t, attr, Vec::new()))
            .collect()
    }

    /// Builds the plaintext form of a fake tuple (QB general-case padding).
    ///
    /// The fake tuple carries a *real* searchable value at position `attr`
    /// so that the cloud — which matches on that value (or on its tag) —
    /// returns the padding row alongside the real ones; every other position
    /// holds the reserved marker so the owner (and only the owner, after
    /// decryption) can recognise and drop it.
    pub fn make_fake_tuple(id: TupleId, attr: AttrId, attr_value: &Value, arity: usize) -> Tuple {
        let arity = arity.max(2);
        let mut values = vec![Self::fake_marker(); arity];
        let idx = attr.index().min(arity - 1);
        values[idx] = attr_value.clone();
        Tuple::new(id, values)
    }

    /// Encrypts a fake padding row directly (convenience over
    /// [`DbOwner::make_fake_tuple`] + [`DbOwner::encrypt_row`]).
    pub fn encrypt_fake_row(
        &mut self,
        id: TupleId,
        attr: AttrId,
        attr_value: &Value,
        arity: usize,
    ) -> EncryptedRow {
        let tuple = Self::make_fake_tuple(id, attr, attr_value, arity);
        let attr_ct = self.encrypt_value(attr_value);
        let tuple_ct = self.encrypt_tuple(&tuple);
        EncryptedRow {
            id,
            attr_ct,
            tuple_ct,
            search_tags: Vec::new(),
        }
    }

    /// The reserved marker value stored inside fake tuples.
    pub fn fake_marker() -> Value {
        Value::Text("__PDS_FAKE__".to_string())
    }

    /// Whether a decrypted tuple is a padding row (any position holds the
    /// reserved marker).
    pub fn is_fake(tuple: &Tuple) -> bool {
        let marker = Self::fake_marker();
        tuple.values.iter().any(|v| v == &marker)
    }

    // ----- observability ------------------------------------------------------

    /// Owner-side work counters (encryptions/decryptions performed).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Resets owner-side work counters.
    pub fn reset_metrics(&mut self) {
        self.metrics = Metrics::new();
    }
}

impl std::fmt::Debug for DbOwner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbOwner")
            .field("metrics", &self.metrics)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_storage::{DataType, Schema};

    fn sample_tuple() -> Tuple {
        Tuple::new(
            TupleId::new(4),
            vec![Value::from("E259"), Value::Int(6), Value::from("Defense")],
        )
    }

    #[test]
    fn value_roundtrip_and_nondeterminism() {
        let mut owner = DbOwner::new(7);
        let v = Value::from("E152");
        let c1 = owner.encrypt_value(&v);
        let c2 = owner.encrypt_value(&v);
        assert_ne!(c1, c2, "non-deterministic encryption");
        assert_eq!(owner.decrypt_value(&c1).unwrap(), v);
        assert_eq!(owner.decrypt_value(&c2).unwrap(), v);
        assert_eq!(owner.metrics().owner_encryptions, 2);
        assert_eq!(owner.metrics().owner_decryptions, 2);
    }

    #[test]
    fn tuple_roundtrip() {
        let mut owner = DbOwner::new(7);
        let t = sample_tuple();
        let ct = owner.encrypt_tuple(&t);
        assert_eq!(owner.decrypt_tuple(&ct).unwrap(), t);
    }

    #[test]
    fn det_tags_are_deterministic_counter_tags_are_not_equal_across_occurrences() {
        let mut owner = DbOwner::new(7);
        let v = Value::from("E259");
        assert_eq!(owner.det_tag(&v), owner.det_tag(&v));
        assert_ne!(owner.counter_tag(&v, 0), owner.counter_tag(&v, 1));
        assert_ne!(owner.det_tag(&v), owner.det_tag(&Value::from("E101")));
    }

    #[test]
    fn encrypt_row_and_relation() {
        let mut owner = DbOwner::new(7);
        let schema =
            Schema::from_pairs(&[("EId", DataType::Text), ("Office", DataType::Int)]).unwrap();
        let mut r = Relation::new("Emp", schema);
        r.insert(vec![Value::from("E101"), Value::Int(1)]).unwrap();
        r.insert(vec![Value::from("E259"), Value::Int(6)]).unwrap();
        let attr = r.schema().attr_id("EId").unwrap();
        let rows = owner.encrypt_relation(&r, attr);
        assert_eq!(rows.len(), 2);
        // Decrypting the attribute ciphertext recovers the searchable value.
        assert_eq!(
            owner.decrypt_value(&rows[1].attr_ct).unwrap(),
            Value::from("E259")
        );
        let t = owner.decrypt_tuple(&rows[0].tuple_ct).unwrap();
        assert_eq!(t.id, r.tuples()[0].id);
    }

    #[test]
    fn fake_rows_are_recognised_by_owner_only() {
        let mut owner = DbOwner::new(7);
        let attr = AttrId::new(0);
        let fake = owner.encrypt_fake_row(TupleId::new(77), attr, &Value::from("E259"), 3);
        let decrypted = owner.decrypt_tuple(&fake.tuple_ct).unwrap();
        assert!(DbOwner::is_fake(&decrypted));
        // The fake carries the real searchable value so the cloud matches it.
        assert_eq!(decrypted.value(attr), &Value::from("E259"));
        assert_eq!(
            owner.decrypt_value(&fake.attr_ct).unwrap(),
            Value::from("E259")
        );
        assert!(!DbOwner::is_fake(&sample_tuple()));
        assert!(!fake.tuple_ct.is_empty());
    }

    #[test]
    fn fake_tuple_marker_survives_nonzero_attr_position() {
        let t = DbOwner::make_fake_tuple(TupleId::new(1), AttrId::new(2), &Value::Int(9), 4);
        assert_eq!(t.value(AttrId::new(2)), &Value::Int(9));
        assert!(DbOwner::is_fake(&t));
        // Arity of one is promoted to two so the marker is always present.
        let t1 = DbOwner::make_fake_tuple(TupleId::new(2), AttrId::new(0), &Value::Int(9), 1);
        assert!(DbOwner::is_fake(&t1));
        assert_eq!(t1.values.len(), 2);
    }

    #[test]
    fn wrong_owner_cannot_decrypt() {
        let mut owner = DbOwner::new(7);
        let mut other = DbOwner::new(8);
        let ct = owner.encrypt_value(&Value::from("secret"));
        assert!(other.decrypt_value(&ct).is_err());
    }

    #[test]
    fn reset_metrics() {
        let mut owner = DbOwner::new(7);
        owner.encrypt_value(&Value::Int(1));
        owner.reset_metrics();
        assert_eq!(owner.metrics().owner_encryptions, 0);
    }

    #[test]
    fn fork_shares_keys_but_not_counters() {
        let mut owner = DbOwner::new(7);
        let ct = owner.encrypt_value(&Value::from("secret"));
        let mut fork = owner.fork(1);
        assert_eq!(fork.metrics().owner_encryptions, 0, "fresh counters");
        assert_eq!(
            fork.decrypt_value(&ct).unwrap(),
            Value::from("secret"),
            "forks decrypt the original's ciphertexts"
        );
        assert_eq!(
            owner.det_tag(&Value::from("E259")),
            fork.det_tag(&Value::from("E259")),
            "deterministic tags agree across forks"
        );
        // Forked randomness streams are independent of each other.
        let mut fork2 = owner.fork(2);
        assert_ne!(
            fork.encrypt_value(&Value::Int(1)),
            fork2.encrypt_value(&Value::Int(1))
        );
        // Counters fold back into the parent.
        owner.reset_metrics();
        owner.absorb_metrics(fork.metrics());
        assert_eq!(
            owner.metrics().owner_decryptions + owner.metrics().owner_encryptions,
            fork.metrics().owner_decryptions + fork.metrics().owner_encryptions
        );
    }

    #[test]
    fn bin_cache_notes_count_hits_and_misses() {
        let mut owner = DbOwner::new(7);
        owner.note_bin_cache(true);
        owner.note_bin_cache(false);
        owner.note_bin_cache(false);
        assert_eq!(owner.metrics().bin_cache_hits, 1);
        assert_eq!(owner.metrics().bin_cache_misses, 2);
    }
}
