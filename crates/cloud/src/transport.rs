//! Dispatch of per-shard bin fetches — sequential or on real OS threads.
//!
//! The [`crate::ShardRouter`]'s `parallel_comm_time` is a *model*: the
//! max-over-shards simulated seconds a workload would take if the shards
//! were independent machines.  [`BinTransport`] turns that estimate into a
//! *measurement*: each shard's stream of bin fetches runs as one task with
//! exclusive access to its shard slot, and [`BinTransport::Threaded`] fans
//! the tasks out on scoped `std::thread`s so genuinely overlapped work can
//! be timed with a wall clock.
//!
//! The dispatcher is deliberately engine-agnostic: tasks are plain `Send`
//! closures over `&mut CloudServer`, so `pds-core` can capture each shard's
//! forked engine and a forked owner without this crate knowing either type.
//! Shard slots are handed out via disjoint `&mut` borrows (one per task),
//! which is exactly the "per-shard mutable state behind the router's shard
//! slots" layout the rest of the workspace already maintains — no locks, no
//! shared mutability.

use std::time::Instant;

use pds_common::Result;
use pds_proto::{NetSim, RoundTrip, SimReport};

use crate::network::NetworkModel;
use crate::server::CloudServer;
use crate::tcp::TcpCloudClient;

/// How per-shard work is dispatched to the shards of a deployment.
#[derive(Debug, Clone, Default)]
pub enum BinTransport {
    /// One shard after another on the calling thread.  Useful as a
    /// baseline and for deterministic debugging.
    Sequential,
    /// One scoped OS thread per shard that has work: fetches genuinely
    /// overlap, so the measured wall-clock reflects real parallelism.
    #[default]
    Threaded,
    /// Deterministic single-threaded execution plus an **event-driven
    /// network simulation**: every wire frame the tasks move is replayed
    /// through [`pds_proto::NetSim`] over one link per shard with the given
    /// latency/bandwidth, and the report's
    /// [`DispatchReport::sim_wall_clock_sec`] is the simulated makespan —
    /// per-shard latency genuinely overlaps, unlike the thread-based
    /// transport which only overlaps compute.
    Simulated(NetworkModel),
    /// Real sockets: every episode travels as `pds-proto` frames to the
    /// per-shard [`crate::service::ShardDaemon`]s behind this pooled
    /// client.  The shards live in the daemons' address space, so this
    /// variant is executed by `QbExecutor::run_workload_transported`'s
    /// remote fan-out, not by [`BinTransport::dispatch`] (which needs the
    /// shards in-process and panics on this variant).
    Tcp(TcpCloudClient),
}

impl PartialEq for BinTransport {
    fn eq(&self, other: &BinTransport) -> bool {
        match (self, other) {
            (BinTransport::Sequential, BinTransport::Sequential) => true,
            (BinTransport::Threaded, BinTransport::Threaded) => true,
            (BinTransport::Simulated(a), BinTransport::Simulated(b)) => a == b,
            // Client handles are equal when they share the same pools.
            (BinTransport::Tcp(a), BinTransport::Tcp(b)) => a.same_client(b),
            _ => false,
        }
    }
}

/// The outcome of one fan-out: per-shard task outputs (`None` for shards
/// that had no task) plus the measured wall-clock of the whole dispatch.
#[derive(Debug)]
pub struct DispatchReport<T> {
    /// One slot per shard, aligned with the shard slice passed in.
    pub per_shard: Vec<Option<T>>,
    /// Measured wall-clock seconds from first spawn to last join.
    pub wall_clock_sec: f64,
    /// Simulated-network wall-clock of the fan-out's wire traffic
    /// (`Some` for [`BinTransport::Simulated`], `None` otherwise).
    pub sim_wall_clock_sec: Option<f64>,
    /// Owner↔cloud rounds each shard served during the dispatch (the
    /// `round_trips` delta of that shard's metrics), aligned with the
    /// shard slice.  The cost model charges `rounds × latency`, so the
    /// executor threads these up into its run-level reporting.
    pub rounds_per_shard: Vec<u64>,
}

impl<T> DispatchReport<T> {
    /// Total owner↔cloud rounds over every shard of the dispatch.
    pub fn total_rounds(&self) -> u64 {
        self.rounds_per_shard.iter().sum()
    }
}

/// Replays per-shard wire traffic through the event-driven simulator over
/// identical `link` links (one per traffic stream) and returns the
/// simulation report.  This is how a *recorded* run — whatever transport
/// executed it — gets its simulated-network wall-clock.
pub fn simulate_wire_traffic(
    link: NetworkModel,
    per_shard: &[Vec<RoundTrip>],
) -> Result<SimReport> {
    NetSim::uniform(per_shard.len().max(1), link.link_spec())?.run(per_shard)
}

impl BinTransport {
    /// Runs at most one task per shard, each with exclusive `&mut` access
    /// to its shard slot, and measures the elapsed wall-clock.
    ///
    /// `tasks` must be no longer than `shards`; missing trailing entries
    /// are treated as `None`.  A panicking task propagates the panic after
    /// all other tasks have joined (scoped threads guarantee the join).
    pub fn dispatch<T, F>(
        &self,
        shards: &mut [CloudServer],
        tasks: Vec<Option<F>>,
    ) -> DispatchReport<T>
    where
        F: FnOnce(&mut CloudServer) -> T + Send,
        T: Send,
    {
        assert!(
            tasks.len() <= shards.len(),
            "got {} tasks for {} shards",
            tasks.len(),
            shards.len()
        );
        let shard_count = shards.len();
        let rounds_before: Vec<u64> = shards.iter().map(|s| s.metrics().round_trips).collect();
        let start = Instant::now();
        let mut sim_wall_clock_sec = None;
        let mut per_shard: Vec<Option<T>> = match self {
            BinTransport::Sequential => shards
                .iter_mut()
                .zip(tasks)
                .map(|(shard, task)| task.map(|f| f(shard)))
                .collect(),
            BinTransport::Threaded => std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter_mut()
                    .zip(tasks)
                    .map(|(shard, task)| task.map(|f| scope.spawn(move || f(shard))))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.map(|h| h.join().expect("shard task panicked")))
                    .collect()
            }),
            BinTransport::Simulated(link) => {
                // Validate the link config up front, before any shard task
                // runs: a bad NetworkModel is a caller bug and must fail
                // with its own message, not a mislabeled one afterwards.
                let sim = NetSim::uniform(shards.len(), link.link_spec()).expect(
                    "BinTransport::Simulated needs a valid link: latency >= 0, bandwidth > 0",
                );
                // Deterministic sequential execution; the *network* overlap
                // comes from replaying the wire frames each task moved
                // through the event simulator afterwards.
                let wire_start: Vec<usize> = shards.iter().map(|s| s.wire_log().len()).collect();
                let out: Vec<Option<T>> = shards
                    .iter_mut()
                    .zip(tasks)
                    .map(|(shard, task)| task.map(|f| f(shard)))
                    .collect();
                let traffic: Vec<Vec<RoundTrip>> = shards
                    .iter()
                    .zip(&wire_start)
                    .map(|(s, &from)| s.wire_log()[from..].to_vec())
                    .collect();
                let report = sim
                    .run(&traffic)
                    .expect("one traffic stream per shard link, by construction");
                sim_wall_clock_sec = Some(report.makespan_sec);
                out
            }
            BinTransport::Tcp(_) => panic!(
                "BinTransport::Tcp episodes are executed by \
                 QbExecutor::run_workload_transported's remote fan-out; \
                 dispatch() needs the shards in this process"
            ),
        };
        per_shard.resize_with(shard_count, || None);
        let rounds_per_shard: Vec<u64> = shards
            .iter()
            .zip(&rounds_before)
            .map(|(s, &before)| s.metrics().round_trips - before)
            .collect();
        DispatchReport {
            per_shard,
            wall_clock_sec: start.elapsed().as_secs_f64(),
            sim_wall_clock_sec,
            rounds_per_shard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkModel;
    use crate::store::EncryptedRow;
    use pds_common::TupleId;
    use pds_crypto::NonDetCipher;

    fn shards(n: usize) -> Vec<CloudServer> {
        (0..n)
            .map(|_| CloudServer::new(NetworkModel::paper_wan()))
            .collect()
    }

    fn rows(base: u64, n: u64) -> Vec<EncryptedRow> {
        let cipher = NonDetCipher::from_seed(3);
        let mut rng = pds_common::rng::seeded_rng(base);
        (0..n)
            .map(|i| EncryptedRow {
                id: TupleId::new(base + i),
                attr_ct: cipher.encrypt(b"attr", &mut rng),
                tuple_ct: cipher.encrypt(b"tuple", &mut rng),
                search_tags: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn both_transports_mutate_their_own_shard_slot() {
        for transport in [BinTransport::Sequential, BinTransport::Threaded] {
            let mut servers = shards(3);
            let tasks: Vec<Option<_>> = (0..3u64)
                .map(|i| {
                    Some(move |shard: &mut CloudServer| {
                        shard.upload_encrypted(rows(i * 100, i + 1)).unwrap();
                        shard.encrypted_len()
                    })
                })
                .collect();
            let report = transport.dispatch(&mut servers, tasks);
            assert_eq!(report.per_shard, vec![Some(1), Some(2), Some(3)]);
            for (i, shard) in servers.iter().enumerate() {
                assert_eq!(shard.encrypted_len(), i + 1, "{transport:?}");
            }
            assert!(report.wall_clock_sec >= 0.0);
        }
    }

    type BoxedTask = Box<dyn FnOnce(&mut CloudServer) -> usize + Send>;

    #[test]
    fn shards_without_tasks_are_untouched() {
        let mut servers = shards(4);
        // Only shard 1 gets work; trailing shards get implicit None.
        let tasks: Vec<Option<BoxedTask>> = vec![
            None,
            Some(Box::new(|shard: &mut CloudServer| {
                shard.upload_encrypted(rows(0, 2)).unwrap();
                2
            })),
        ];
        let report = BinTransport::Threaded.dispatch(&mut servers, tasks);
        assert_eq!(report.per_shard, vec![None, Some(2), None, None]);
        assert_eq!(servers[0].encrypted_len(), 0);
        assert_eq!(servers[1].encrypted_len(), 2);
    }

    #[test]
    fn threaded_overlap_beats_or_matches_sequential_on_sleeps() {
        // Four tasks sleeping 20ms each: sequential needs ~80ms, threaded
        // ~20ms per batch (on a single-core box the threads still overlap
        // their sleeps).  Generous bounds keep this robust under CI noise.
        let sleep_task =
            |_: &mut CloudServer| std::thread::sleep(std::time::Duration::from_millis(20));
        let mut servers = shards(4);
        let seq = BinTransport::Sequential
            .dispatch(&mut servers, (0..4).map(|_| Some(sleep_task)).collect());
        let thr = BinTransport::Threaded
            .dispatch(&mut servers, (0..4).map(|_| Some(sleep_task)).collect());
        assert!(seq.wall_clock_sec >= 0.079, "{}", seq.wall_clock_sec);
        assert!(
            thr.wall_clock_sec < seq.wall_clock_sec,
            "threaded {} must overlap the sleeps, sequential was {}",
            thr.wall_clock_sec,
            seq.wall_clock_sec
        );
    }

    #[test]
    fn simulated_transport_reports_an_overlapped_makespan() {
        // Each shard task fetches its own rows, moving real wire frames.
        let link = NetworkModel {
            bandwidth_bytes_per_sec: 1.0e6,
            latency_sec: 0.02,
        };
        let run = |n: usize| {
            let mut servers = shards(4);
            let tasks: Vec<Option<_>> = (0..n as u64)
                .map(|i| {
                    Some(move |shard: &mut CloudServer| {
                        shard.upload_encrypted(rows(i * 100, 3)).unwrap();
                        shard.scan_encrypted().len()
                    })
                })
                .collect();
            BinTransport::Simulated(link).dispatch(&mut servers, tasks)
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(four.per_shard, vec![Some(3); 4]);
        let one_sim = one.sim_wall_clock_sec.expect("simulated");
        let four_sim = four.sim_wall_clock_sec.expect("simulated");
        assert!(one_sim > 0.0);
        // Four shards moving 4x the traffic of one shard finish in far
        // less than 4x the single-shard simulated time: latency and
        // transfer genuinely overlap across links.
        assert!(
            four_sim < 4.0 * one_sim,
            "simulated {four_sim} must overlap vs serial {}",
            4.0 * one_sim
        );
        // Sequential/Threaded transports report no simulated clock.
        let mut servers = shards(1);
        let report = BinTransport::Sequential
            .dispatch::<usize, _>(&mut servers, vec![Some(|_: &mut CloudServer| 1)]);
        assert!(report.sim_wall_clock_sec.is_none());
    }

    #[test]
    fn simulate_wire_traffic_matches_the_network_model_on_one_link() {
        let link = NetworkModel {
            bandwidth_bytes_per_sec: 1000.0,
            latency_sec: 0.5,
        };
        let traffic = vec![vec![
            pds_proto::RoundTrip {
                up_bytes: 250,
                down_bytes: 250,
            },
            pds_proto::RoundTrip {
                up_bytes: 0,
                down_bytes: 500,
            },
        ]];
        let report = simulate_wire_traffic(link, &traffic).unwrap();
        // Two round trips of (latency 0.5 + 500B/1000Bps) = 1.0s each.
        assert!((report.makespan_sec - 2.0).abs() < 1e-12, "{report:?}");
        assert_eq!(report.total_bytes, 1000);
    }

    #[test]
    fn dispatch_reports_per_shard_rounds() {
        for transport in [BinTransport::Sequential, BinTransport::Threaded] {
            let mut servers = shards(3);
            for (i, s) in servers.iter_mut().enumerate() {
                s.upload_encrypted(rows(i as u64 * 100, 2)).unwrap();
            }
            // Shard 0: two round trips; shard 1: one; shard 2: none.
            let tasks: Vec<Option<BoxedTask>> = vec![
                Some(Box::new(|shard: &mut CloudServer| {
                    shard.scan_encrypted();
                    shard.scan_encrypted();
                    0
                })),
                Some(Box::new(|shard: &mut CloudServer| {
                    shard.scan_encrypted();
                    0
                })),
                None,
            ];
            let report = transport.dispatch(&mut servers, tasks);
            assert_eq!(report.rounds_per_shard, vec![2, 1, 0], "{transport:?}");
            assert_eq!(report.total_rounds(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "tasks for")]
    fn more_tasks_than_shards_is_a_bug() {
        let mut servers = shards(1);
        let tasks: Vec<Option<fn(&mut CloudServer)>> = vec![Some(|_| {}), Some(|_| {})];
        let _ = BinTransport::Sequential.dispatch(&mut servers, tasks);
    }
}
