//! The shutdown-drain guarantee: [`ShardDaemon::shutdown`] must flush
//! every buffered observation before it returns — every request the
//! daemon dispatched has its `daemon.dispatch` span in the drained trace,
//! and the span count equals the registry's request total exactly (no
//! span lost in a worker's thread-local ring, no request half-counted).
//!
//! This test owns the process-global tracing switch, so it lives in its
//! own integration-test binary with a single `#[test]`.

use pds_cloud::{
    CloudServer, EncryptedRow, NetworkModel, ServiceConfig, ShardDaemon, TcpShardConn,
};
use pds_common::{TupleId, Value};
use pds_crypto::NonDetCipher;
use pds_obs::StatsScope;
use pds_proto::{FetchBinRequest, WireMessage};
use pds_storage::{DataType, Relation, Schema};

fn server(seed: u64) -> CloudServer {
    let schema = Schema::from_pairs(&[("EId", DataType::Text), ("Dept", DataType::Text)]).unwrap();
    let mut r = Relation::new("Employee", schema);
    for (e, d) in [("E259", "Design"), ("E199", "Design"), ("E254", "Sales")] {
        r.insert(vec![Value::from(e), Value::from(d)]).unwrap();
    }
    let mut s = CloudServer::new(NetworkModel::paper_wan());
    s.upload_plaintext(r, "EId").unwrap();
    let cipher = NonDetCipher::from_seed(seed);
    let mut rng = pds_common::rng::seeded_rng(seed);
    let rows: Vec<EncryptedRow> = (0..3u64)
        .map(|i| EncryptedRow {
            id: TupleId::new(100 + i),
            attr_ct: cipher.encrypt(format!("v{i}").as_bytes(), &mut rng),
            tuple_ct: cipher.encrypt(format!("tuple{i}").as_bytes(), &mut rng),
            search_tags: vec![vec![i as u8]],
        })
        .collect();
    s.upload_encrypted(rows).unwrap();
    s
}

fn fetch(value: &str) -> WireMessage {
    WireMessage::FetchBinRequest(FetchBinRequest {
        values: vec![Value::from(value)],
        ids: Vec::new(),
        tags: Vec::new(),
        predicate: None,
    })
}

/// Sums every `pds_daemon_requests_total` sample in a rendered registry.
fn requests_total(rendered: &str) -> u64 {
    rendered
        .lines()
        .filter(|l| l.starts_with("pds_daemon_requests_total"))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<u64>().ok())
        .sum()
}

#[test]
fn shutdown_drains_every_dispatch_span() {
    pds_obs::set_tracing(true);
    // Start from a clean slate: whatever earlier spans this process
    // recorded are drained away before the measured run.
    pds_obs::drain();

    let daemon = ShardDaemon::spawn(
        vec![(7, server(1)), (8, server(2))],
        ServiceConfig::with_workers(4).with_shard(0),
    )
    .unwrap();
    let registry = daemon.registry();

    // Two tenants hammer the daemon from four connections.
    let addr = daemon.addr();
    std::thread::scope(|scope| {
        for tenant in [7u64, 8, 7, 8] {
            scope.spawn(move || {
                let mut conn = TcpShardConn::connect(addr, tenant).unwrap();
                for value in ["E259", "E199", "E254", "E259", "E199"] {
                    conn.call(&fetch(value)).unwrap();
                }
            });
        }
    });

    // Shutdown joins the workers and flushes every tenant's counters;
    // afterwards the global trace drain must hold every dispatch span.
    let servers = daemon.shutdown();
    assert_eq!(servers.len(), 2, "both tenants' servers come back");

    let drained = pds_obs::drain();
    pds_obs::set_tracing(false);
    assert_eq!(drained.dropped, 0, "no span may be lost to ring overflow");
    let dispatch_spans = drained
        .events
        .iter()
        .filter(|e| e.name == "daemon.dispatch")
        .count() as u64;
    let counted = requests_total(&registry.render(StatsScope::All));
    assert_eq!(
        dispatch_spans, counted,
        "drained dispatch spans must equal the registry's request total \
         (4 connections x 5 calls = 20 expected)"
    );
    assert_eq!(counted, 20, "every issued request is counted exactly once");
}
