//! Hostile-client matrix for the shard daemon: garbage bytes, truncated
//! and abandoned frames, oversized declared lengths, handshake
//! violations, and a panicking handler — none of which may wedge the
//! daemon or disturb a well-behaved neighbour, whose answers must stay
//! byte-identical to the in-process dispatch path throughout.

use std::io::Write;
use std::net::{Shutdown, TcpStream};

use pds_cloud::{
    CloudServer, CloudSession, EncryptedRow, NetworkModel, ServiceConfig, ShardDaemon, TcpShardConn,
};
use pds_common::{TupleId, Value};
use pds_crypto::NonDetCipher;
use pds_proto::{read_frame, FetchBinRequest, Hello, ReadFrame, WireMessage};
use pds_storage::{DataType, Relation, Schema};

/// A deterministic shard server: three clear-text employees plus three
/// encrypted rows.  Two calls with the same seed build byte-identical
/// servers, which is what lets the tests compare daemon answers against a
/// local in-process reference.
fn server(seed: u64) -> CloudServer {
    let schema = Schema::from_pairs(&[("EId", DataType::Text), ("Dept", DataType::Text)]).unwrap();
    let mut r = Relation::new("Employee", schema);
    for (e, d) in [("E259", "Design"), ("E199", "Design"), ("E254", "Sales")] {
        r.insert(vec![Value::from(e), Value::from(d)]).unwrap();
    }
    let mut s = CloudServer::new(NetworkModel::paper_wan());
    s.upload_plaintext(r, "EId").unwrap();
    let cipher = NonDetCipher::from_seed(seed);
    let mut rng = pds_common::rng::seeded_rng(seed);
    let rows: Vec<EncryptedRow> = (0..3u64)
        .map(|i| EncryptedRow {
            id: TupleId::new(100 + i),
            attr_ct: cipher.encrypt(format!("v{i}").as_bytes(), &mut rng),
            tuple_ct: cipher.encrypt(format!("tuple{i}").as_bytes(), &mut rng),
            search_tags: vec![vec![i as u8]],
        })
        .collect();
    s.upload_encrypted(rows).unwrap();
    s
}

fn fetch(values: &[&str]) -> WireMessage {
    WireMessage::FetchBinRequest(FetchBinRequest {
        values: values.iter().map(|v| Value::from(*v)).collect(),
        ids: Vec::new(),
        tags: Vec::new(),
        predicate: None,
    })
}

/// The encoded response the in-process dispatch seam gives for `msg` on an
/// identically-built server — the byte-identical reference every daemon
/// answer is held against.
fn reference_bytes(seed: u64, msg: &WireMessage) -> Vec<u8> {
    let mut local = server(seed);
    let mut session = CloudSession::new(&mut local);
    session.dispatch(msg).unwrap().encode().unwrap()
}

#[test]
fn garbage_bytes_close_only_that_connection() {
    let daemon = ShardDaemon::spawn(vec![(7, server(1))], ServiceConfig::default()).unwrap();

    let mut hostile = TcpStream::connect(daemon.addr()).unwrap();
    hostile.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    // A frame that never starts with the magic gets no reply, just a close.
    match read_frame(&mut hostile) {
        Ok(ReadFrame::Eof) | Err(_) => {}
        other => panic!("expected a silent close, got {other:?}"),
    }

    // The daemon keeps serving well-behaved clients afterwards.
    let mut conn = TcpShardConn::connect(daemon.addr(), 7).unwrap();
    let msg = fetch(&["E259"]);
    let resp = conn.call(&msg).unwrap();
    assert_eq!(resp.encode().unwrap(), reference_bytes(1, &msg));
    daemon.shutdown();
}

#[test]
fn truncated_frame_then_reconnect_is_served() {
    let daemon = ShardDaemon::spawn(vec![(7, server(1))], ServiceConfig::default()).unwrap();

    // Handshake properly, then abandon a frame halfway through.
    let mut half = TcpStream::connect(daemon.addr()).unwrap();
    let hello = WireMessage::Hello(Hello { tenant: 7 }).encode().unwrap();
    half.write_all(&hello).unwrap();
    match read_frame(&mut half).unwrap() {
        ReadFrame::Frame(bytes) => match WireMessage::decode(&bytes).unwrap() {
            WireMessage::Hello(echo) => assert_eq!(echo.tenant, 7),
            other => panic!("expected the Hello echo, got {other:?}"),
        },
        other => panic!("expected the Hello echo frame, got {other:?}"),
    }
    let full = fetch(&["E259"]).encode().unwrap();
    half.write_all(&full[..full.len() / 2]).unwrap();
    half.shutdown(Shutdown::Write).unwrap();
    // The daemon sees EOF mid-frame and drops the connection without a
    // response — and without wedging.
    match read_frame(&mut half) {
        Ok(ReadFrame::Eof) | Err(_) => {}
        other => panic!("expected a close after the truncated frame, got {other:?}"),
    }

    // The same client reconnecting gets full service.
    let mut conn = TcpShardConn::connect(daemon.addr(), 7).unwrap();
    let msg = fetch(&["E199"]);
    let resp = conn.call(&msg).unwrap();
    assert_eq!(resp.encode().unwrap(), reference_bytes(1, &msg));
    daemon.shutdown();
}

#[test]
fn killing_the_socket_mid_frame_does_not_wedge_the_daemon() {
    let daemon = ShardDaemon::spawn(vec![(7, server(1))], ServiceConfig::default()).unwrap();

    for _ in 0..3 {
        let mut dying = TcpStream::connect(daemon.addr()).unwrap();
        let hello = WireMessage::Hello(Hello { tenant: 7 }).encode().unwrap();
        dying.write_all(&hello).unwrap();
        let frame = fetch(&["E254"]).encode().unwrap();
        dying.write_all(&frame[..5]).unwrap();
        drop(dying); // no shutdown handshake, the peer just dies
    }

    let mut conn = TcpShardConn::connect(daemon.addr(), 7).unwrap();
    let msg = fetch(&["E254"]);
    let resp = conn.call(&msg).unwrap();
    assert_eq!(resp.encode().unwrap(), reference_bytes(1, &msg));
    daemon.shutdown();
}

#[test]
fn oversized_declared_length_gets_a_typed_error_then_close() {
    let config = ServiceConfig {
        max_payload: 4096,
        ..ServiceConfig::default()
    };
    let daemon = ShardDaemon::spawn(vec![(7, server(1))], config).unwrap();

    let mut conn = TcpStream::connect(daemon.addr()).unwrap();
    let hello = WireMessage::Hello(Hello { tenant: 7 }).encode().unwrap();
    conn.write_all(&hello).unwrap();
    assert!(matches!(
        read_frame(&mut conn).unwrap(),
        ReadFrame::Frame(_)
    ));

    // A hand-rolled v2 header declaring 16 MiB on a 4 KiB-limit daemon.
    // No payload follows — the daemon must answer from the header alone.
    let mut header = Vec::new();
    header.extend_from_slice(b"PD");
    header.push(pds_proto::VERSION);
    header.push(7); // Opaque
    header.extend_from_slice(&77u64.to_be_bytes()); // correlation id
    header.extend_from_slice(&(16u32 << 20).to_be_bytes());
    conn.write_all(&header).unwrap();

    match read_frame(&mut conn).unwrap() {
        ReadFrame::Frame(bytes) => match WireMessage::decode(&bytes).unwrap() {
            WireMessage::Error(e) => {
                assert!(
                    e.message.contains("4096"),
                    "error must name the daemon's limit: {e:?}"
                );
            }
            other => panic!("expected a typed Error frame, got {other:?}"),
        },
        other => panic!("expected a typed Error frame, got {other:?}"),
    }
    match read_frame(&mut conn) {
        Ok(ReadFrame::Eof) | Err(_) => {}
        other => panic!("connection must close after the refusal, got {other:?}"),
    }

    // Other connections are unaffected.
    let mut ok = TcpShardConn::connect(daemon.addr(), 7).unwrap();
    let msg = fetch(&["E259"]);
    assert_eq!(
        ok.call(&msg).unwrap().encode().unwrap(),
        reference_bytes(1, &msg)
    );
    daemon.shutdown();
}

#[test]
fn one_byte_dribble_cannot_force_per_read_reallocation() {
    let daemon = ShardDaemon::spawn(vec![(7, server(1))], ServiceConfig::default()).unwrap();
    let mut conn = TcpStream::connect(daemon.addr()).unwrap();
    let hello = WireMessage::Hello(Hello { tenant: 7 }).encode().unwrap();
    conn.write_all(&hello).unwrap();
    assert!(matches!(
        read_frame(&mut conn).unwrap(),
        ReadFrame::Frame(_)
    ));

    // A large but valid frame (~96 KiB of never-matching tags), dribbled
    // one byte per write.  The daemon's pooled chunked reader must grow
    // its buffer per 64 KiB chunk, not per received byte — the global
    // reader-grow counter may move by at most a handful of chunks (plus
    // whatever concurrent tests contribute), never by anything near the
    // tens of thousands of reads this connection forces.
    let frame = WireMessage::FetchBinRequest(FetchBinRequest {
        values: Vec::new(),
        ids: Vec::new(),
        tags: (0..3000u32).map(|i| i.to_be_bytes().repeat(8)).collect(),
        predicate: None,
    })
    .encode()
    .unwrap();
    assert!(frame.len() > 90_000, "frame is {} bytes", frame.len());
    let grows_before = pds_proto::pool_stats().reader_grows;
    for chunk in frame.chunks(1) {
        conn.write_all(chunk).unwrap();
    }
    match read_frame(&mut conn).unwrap() {
        ReadFrame::Frame(bytes) => {
            assert!(matches!(
                WireMessage::decode(&bytes).unwrap(),
                WireMessage::BinPayload(_)
            ));
        }
        other => panic!("expected a BinPayload answer, got {other:?}"),
    }
    let grows = pds_proto::pool_stats().reader_grows - grows_before;
    assert!(
        grows <= 64,
        "reader grew {grows} times for a {}-byte frame dribbled in \
         {}-odd single-byte reads — growth must track frame size, not \
         read count",
        frame.len(),
        frame.len()
    );
    daemon.shutdown();
}

#[test]
fn handshake_violations_are_refused_with_typed_errors() {
    let daemon = ShardDaemon::spawn(vec![(7, server(1))], ServiceConfig::default()).unwrap();

    // First frame is not a Hello.
    let mut wrong_opener = TcpStream::connect(daemon.addr()).unwrap();
    wrong_opener
        .write_all(&fetch(&["E259"]).encode().unwrap())
        .unwrap();
    match read_frame(&mut wrong_opener).unwrap() {
        ReadFrame::Frame(bytes) => match WireMessage::decode(&bytes).unwrap() {
            WireMessage::Error(e) => assert!(e.message.contains("Hello"), "{e:?}"),
            other => panic!("expected an Error frame, got {other:?}"),
        },
        other => panic!("expected an Error frame, got {other:?}"),
    }

    // Unknown tenant id.
    match TcpShardConn::connect(daemon.addr(), 99) {
        Err(e) => assert!(e.to_string().contains("99"), "{e}"),
        Ok(_) => panic!("tenant 99 is not hosted and must be refused"),
    }
    daemon.shutdown();
}

#[test]
fn tenants_are_served_from_disjoint_namespaces() {
    // Tenant 1 and tenant 2 hold *different* encrypted stores (different
    // seeds), so mixing them up would be visible in the answer bytes.
    let daemon = ShardDaemon::spawn(
        vec![(1, server(10)), (2, server(20))],
        ServiceConfig::default(),
    )
    .unwrap();
    let msg = WireMessage::FetchBinRequest(FetchBinRequest {
        values: Vec::new(),
        ids: vec![100, 101, 102],
        tags: Vec::new(),
        predicate: None,
    });
    let mut one = TcpShardConn::connect(daemon.addr(), 1).unwrap();
    let mut two = TcpShardConn::connect(daemon.addr(), 2).unwrap();
    let one_bytes = one.call(&msg).unwrap().encode().unwrap();
    let two_bytes = two.call(&msg).unwrap().encode().unwrap();
    assert_eq!(one_bytes, reference_bytes(10, &msg));
    assert_eq!(two_bytes, reference_bytes(20, &msg));
    assert_ne!(one_bytes, two_bytes, "tenants must not share ciphertexts");

    // Shutdown hands every tenant's server back, sorted by id, with the
    // served episodes recorded in their adversarial views.
    let servers = daemon.shutdown();
    let ids: Vec<u64> = servers.iter().map(|(id, _)| *id).collect();
    assert_eq!(ids, vec![1, 2]);
    for (id, server) in &servers {
        assert_eq!(
            server.adversarial_view().episodes().len(),
            1,
            "tenant {id} served one bracketed episode"
        );
    }
}

#[test]
fn a_panicking_handler_does_not_wedge_the_daemon_or_its_neighbours() {
    let trigger = b"boom".to_vec();
    let config = ServiceConfig {
        panic_trigger: Some(trigger.clone()),
        ..ServiceConfig::default()
    };
    let daemon = ShardDaemon::spawn(vec![(7, server(1))], config).unwrap();
    let addr = daemon.addr();

    // Client B hammers the daemon from its own thread while client A
    // panics a worker; every one of B's answers must stay byte-identical
    // to the in-process reference.
    let msg = fetch(&["E259"]);
    let expected = reference_bytes(1, &msg);
    let b_msg = msg.clone();
    let b_expected = expected.clone();
    let neighbour = std::thread::spawn(move || {
        let mut conn = TcpShardConn::connect(addr, 7).unwrap();
        for _ in 0..50 {
            let resp = conn.call(&b_msg).unwrap();
            assert_eq!(resp.encode().unwrap(), b_expected);
        }
    });

    // Client A trips the injected panic (while the worker holds the tenant
    // lock) and must get a typed Error frame, then a closed connection.
    let mut victim = TcpShardConn::connect(addr, 7).unwrap();
    match victim.call(&WireMessage::Opaque(trigger)).unwrap() {
        WireMessage::Error(e) => assert!(e.message.contains("panicked"), "{e:?}"),
        other => panic!("expected the panic Error frame, got {other:?}"),
    }
    assert!(
        victim.call(&msg).is_err(),
        "the panicked connection must be dropped"
    );

    neighbour.join().unwrap();

    // The poisoned tenant lock was recovered: fresh connections are still
    // accepted and answered byte-identically.
    let mut fresh = TcpShardConn::connect(addr, 7).unwrap();
    assert_eq!(fresh.call(&msg).unwrap().encode().unwrap(), expected);
    daemon.shutdown();
}
