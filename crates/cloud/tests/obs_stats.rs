//! `StatsRequest` over the wire: a tenant can ask its shard daemon for a
//! Prometheus-text snapshot of its own counters, the snapshot is
//! **byte-stable** across two identical fixed-seed runs (only
//! deterministic counters and gauges live in the daemon registry — never
//! timing data), and it is **tenant-scoped**: one tenant's snapshot never
//! mentions another tenant's series.

use pds_cloud::{
    CloudServer, EncryptedRow, NetworkModel, ServiceConfig, ShardDaemon, TcpShardConn,
};
use pds_common::{TupleId, Value};
use pds_crypto::NonDetCipher;
use pds_proto::{FetchBinRequest, WireMessage};
use pds_storage::{DataType, Relation, Schema};

/// A deterministic shard server (same construction as the hostile-client
/// suite): three clear-text employees plus three encrypted rows.
fn server(seed: u64) -> CloudServer {
    let schema = Schema::from_pairs(&[("EId", DataType::Text), ("Dept", DataType::Text)]).unwrap();
    let mut r = Relation::new("Employee", schema);
    for (e, d) in [("E259", "Design"), ("E199", "Design"), ("E254", "Sales")] {
        r.insert(vec![Value::from(e), Value::from(d)]).unwrap();
    }
    let mut s = CloudServer::new(NetworkModel::paper_wan());
    s.upload_plaintext(r, "EId").unwrap();
    let cipher = NonDetCipher::from_seed(seed);
    let mut rng = pds_common::rng::seeded_rng(seed);
    let rows: Vec<EncryptedRow> = (0..3u64)
        .map(|i| EncryptedRow {
            id: TupleId::new(100 + i),
            attr_ct: cipher.encrypt(format!("v{i}").as_bytes(), &mut rng),
            tuple_ct: cipher.encrypt(format!("tuple{i}").as_bytes(), &mut rng),
            search_tags: vec![vec![i as u8]],
        })
        .collect();
    s.upload_encrypted(rows).unwrap();
    s
}

fn fetch(values: &[&str]) -> WireMessage {
    WireMessage::FetchBinRequest(FetchBinRequest {
        values: values.iter().map(|v| Value::from(*v)).collect(),
        ids: Vec::new(),
        tags: Vec::new(),
        predicate: None,
    })
}

/// One fixed-seed run: two tenants do deterministic work against one
/// daemon, then tenant 7 asks for its stats over the same TCP connection.
fn run_once() -> String {
    let daemon = ShardDaemon::spawn(
        vec![(7, server(1)), (8, server(2))],
        ServiceConfig::default().with_shard(3),
    )
    .unwrap();

    let mut seven = TcpShardConn::connect(daemon.addr(), 7).unwrap();
    let mut eight = TcpShardConn::connect(daemon.addr(), 8).unwrap();
    for values in [&["E259"][..], &["E199", "E254"][..], &["E259"][..]] {
        seven.call(&fetch(values)).unwrap();
    }
    eight.call(&fetch(&["E254"])).unwrap();

    let snapshot = match seven.call(&WireMessage::StatsRequest).unwrap() {
        WireMessage::StatsSnapshot(text) => text,
        other => panic!("expected a StatsSnapshot, got {other:?}"),
    };
    daemon.shutdown();
    snapshot
}

#[test]
fn stats_snapshot_is_byte_stable_and_tenant_scoped() {
    let first = run_once();
    let second = run_once();
    assert_eq!(
        first, second,
        "two identical fixed-seed runs must render byte-identical snapshots"
    );

    // The snapshot carries the tenant's own work counters under this
    // daemon's shard label...
    assert!(first.contains("pds_daemon_requests_total"), "{first}");
    assert!(first.contains("shard=\"3\""), "{first}");
    assert!(first.contains("tenant=\"7\""), "{first}");
    assert!(first.contains("pds_round_trips_total"), "{first}");
    assert!(first.contains("pds_bin_load_uniformity"), "{first}");
    // ...plus unlabelled shard-health series...
    assert!(first.contains("pds_daemon_connections_total"), "{first}");
    // ...and nothing about the neighbouring tenant.
    assert!(
        !first.contains("tenant=\"8\""),
        "tenant 7's snapshot leaks tenant 8 series:\n{first}"
    );
}

#[test]
fn stats_request_is_not_counted_as_tenant_work() {
    let daemon =
        ShardDaemon::spawn(vec![(7, server(1))], ServiceConfig::default().with_shard(0)).unwrap();
    let mut conn = TcpShardConn::connect(daemon.addr(), 7).unwrap();
    conn.call(&fetch(&["E259"])).unwrap();

    let a = match conn.call(&WireMessage::StatsRequest).unwrap() {
        WireMessage::StatsSnapshot(text) => text,
        other => panic!("expected a StatsSnapshot, got {other:?}"),
    };
    // Asking again without doing any work must return the identical
    // snapshot: the stats request itself never perturbs the counters.
    let b = match conn.call(&WireMessage::StatsRequest).unwrap() {
        WireMessage::StatsSnapshot(text) => text,
        other => panic!("expected a StatsSnapshot, got {other:?}"),
    };
    assert_eq!(a, b, "a StatsRequest must not count as tenant work");
    // Neither the request counter nor the server's wire-frame counters
    // ever record a stats exchange (the zero-valued wire-frame slot for
    // the tag is flushed, but stays zero).
    for line in a.lines().filter(|l| l.contains("type=\"StatsRequest\"")) {
        assert!(
            line.ends_with(" 0"),
            "a stats exchange was counted as tenant work: {line}"
        );
    }
    assert!(
        !a.lines()
            .any(|l| l.starts_with("pds_daemon_requests_total") && l.contains("StatsRequest")),
        "{a}"
    );
    daemon.shutdown();
}
