//! Pseudo-TPC-H data generation.
//!
//! The paper's performance experiments (§V-B) use the TPC-H benchmark
//! generator: the LINEITEM table at sizes of 150 K, 1.5 M, 4.5 M and 6 M
//! tuples, searching on `L_PARTKEY` / `L_SUPPKEY`, and the CUSTOMER table
//! (≈200-byte tuples) for the communication cost calibration.  `dbgen` is
//! not available here, so [`TpchGenerator`] produces relations with the same
//! structural properties the experiments depend on: tuple counts, distinct
//! key cardinalities (and therefore selectivities), optional skew, and
//! realistic tuple widths.  DESIGN.md §5 records the substitution.

use pds_common::Value;
use pds_storage::{DataType, Relation, Schema};
use rand::Rng;

use crate::zipf::Zipf;

/// Configuration of the pseudo-TPC-H generator.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Number of LINEITEM-like tuples to generate.
    pub lineitem_tuples: usize,
    /// Number of distinct part keys (TPC-H SF1 has 200 000; the paper's
    /// L_PARTKEY metadata of 13.6 MB corresponds to that order).
    pub distinct_partkeys: usize,
    /// Number of distinct supplier keys (TPC-H SF1 has 10 000).
    pub distinct_suppkeys: usize,
    /// Zipf exponent for key popularity (0 = uniform, as TPC-H itself is).
    pub skew: f64,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            lineitem_tuples: 150_000,
            distinct_partkeys: 20_000,
            distinct_suppkeys: 1_000,
            skew: 0.0,
            seed: 42,
        }
    }
}

impl TpchConfig {
    /// The three dataset sizes of Figure 6b, scaled by `scale` so tests and
    /// benches can run quickly (`scale = 1.0` reproduces the paper's counts).
    pub fn figure6b_sizes(scale: f64) -> Vec<TpchConfig> {
        [150_000usize, 1_500_000, 4_500_000]
            .iter()
            .map(|&n| {
                let tuples = ((n as f64 * scale).round() as usize).max(100);
                TpchConfig {
                    lineitem_tuples: tuples,
                    distinct_partkeys: (tuples / 8).max(10),
                    distinct_suppkeys: (tuples / 150).max(5),
                    skew: 0.0,
                    seed: 42,
                }
            })
            .collect()
    }
}

/// The pseudo-TPC-H generator.
#[derive(Debug, Clone)]
pub struct TpchGenerator {
    config: TpchConfig,
}

impl TpchGenerator {
    /// Creates a generator for the given configuration.
    pub fn new(config: TpchConfig) -> Self {
        TpchGenerator { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &TpchConfig {
        &self.config
    }

    /// Generates a LINEITEM-like relation with attributes
    /// `L_ORDERKEY, L_PARTKEY, L_SUPPKEY, L_QUANTITY, L_EXTENDEDPRICE,
    /// L_SHIPMODE`.
    pub fn lineitem(&self) -> Relation {
        let schema = Schema::from_pairs(&[
            ("L_ORDERKEY", DataType::Int),
            ("L_PARTKEY", DataType::Int),
            ("L_SUPPKEY", DataType::Int),
            ("L_QUANTITY", DataType::Int),
            ("L_EXTENDEDPRICE", DataType::Int),
            ("L_SHIPMODE", DataType::Text),
        ])
        .expect("lineitem schema is valid");
        let mut rel = Relation::new("LINEITEM", schema);
        let mut rng = pds_common::rng::seeded_rng(self.config.seed);
        // The generator is infallible by contract and its config is
        // programmatic (never CLI-reachable), so a bad skew or an empty key
        // domain is a caller bug: fail fast with a clear message rather than
        // silently degrading to uniform data and letting a skew experiment
        // report meaningless results.
        let part_zipf = Zipf::new(self.config.distinct_partkeys, self.config.skew)
            .expect("TpchConfig.distinct_partkeys must be > 0 and skew finite and >= 0");
        let supp_zipf = Zipf::new(self.config.distinct_suppkeys, self.config.skew)
            .expect("TpchConfig.distinct_suppkeys must be > 0 and skew finite and >= 0");
        let ship_modes = ["AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"];
        for i in 0..self.config.lineitem_tuples {
            let partkey = part_zipf.sample(&mut rng) as i64 + 1;
            let suppkey = supp_zipf.sample(&mut rng) as i64 + 1;
            let quantity = rng.gen_range(1..=50);
            let price = quantity * rng.gen_range(900..=100_000);
            let mode = ship_modes[rng.gen_range(0..ship_modes.len())];
            rel.insert(vec![
                Value::Int((i / 4) as i64 + 1),
                Value::Int(partkey),
                Value::Int(suppkey),
                Value::Int(quantity),
                Value::Int(price),
                Value::from(mode),
            ])
            .expect("generated row conforms to schema");
        }
        rel
    }

    /// Generates a CUSTOMER-like relation (≈200-byte tuples) with attributes
    /// `C_CUSTKEY, C_NAME, C_ADDRESS, C_NATIONKEY, C_PHONE, C_ACCTBAL,
    /// C_COMMENT`.
    pub fn customer(&self, tuples: usize) -> Relation {
        let schema = Schema::from_pairs(&[
            ("C_CUSTKEY", DataType::Int),
            ("C_NAME", DataType::Text),
            ("C_ADDRESS", DataType::Text),
            ("C_NATIONKEY", DataType::Int),
            ("C_PHONE", DataType::Text),
            ("C_ACCTBAL", DataType::Int),
            ("C_COMMENT", DataType::Text),
        ])
        .expect("customer schema is valid");
        let mut rel = Relation::new("CUSTOMER", schema);
        let mut rng = pds_common::rng::seeded_rng(self.config.seed.wrapping_add(1));
        for i in 0..tuples {
            let comment_len = rng.gen_range(60..=110);
            let comment: String = (0..comment_len)
                .map(|_| (b'a' + rng.gen_range(0..26)) as char)
                .collect();
            rel.insert(vec![
                Value::Int(i as i64 + 1),
                Value::from(format!("Customer#{i:09}")),
                Value::from(format!(
                    "{} Market Street Apt {}",
                    rng.gen_range(1..999),
                    i % 97
                )),
                Value::Int(rng.gen_range(0..25)),
                Value::from(format!(
                    "{}-{:03}-{:03}-{:04}",
                    rng.gen_range(10..35),
                    i % 999,
                    (i * 7) % 999,
                    (i * 13) % 9999
                )),
                Value::Int(rng.gen_range(-99_999..999_999)),
                Value::from(comment),
            ])
            .expect("generated row conforms to schema");
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineitem_respects_config() {
        let cfg = TpchConfig {
            lineitem_tuples: 2_000,
            distinct_partkeys: 100,
            distinct_suppkeys: 10,
            skew: 0.0,
            seed: 7,
        };
        let rel = TpchGenerator::new(cfg).lineitem();
        assert_eq!(rel.len(), 2_000);
        let attr = rel.schema().attr_id("L_PARTKEY").unwrap();
        let distinct = rel.distinct_values(attr).len();
        assert!(distinct <= 100);
        assert!(
            distinct > 80,
            "with 2000 tuples over 100 keys nearly all keys appear"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TpchConfig {
            lineitem_tuples: 500,
            ..Default::default()
        };
        let a = TpchGenerator::new(cfg.clone()).lineitem();
        let b = TpchGenerator::new(cfg).lineitem();
        assert_eq!(a, b);
    }

    #[test]
    fn skewed_generation_concentrates_mass() {
        let cfg = TpchConfig {
            lineitem_tuples: 5_000,
            distinct_partkeys: 100,
            distinct_suppkeys: 10,
            skew: 1.2,
            seed: 9,
        };
        let rel = TpchGenerator::new(cfg).lineitem();
        let attr = rel.schema().attr_id("L_PARTKEY").unwrap();
        let stats = rel.attribute_stats(attr);
        // The most frequent key should hold far more than the mean share.
        assert!(stats.max_count() as f64 > 5.0 * (5_000.0 / 100.0));
    }

    #[test]
    fn customer_tuples_are_about_200_bytes() {
        let rel = TpchGenerator::new(TpchConfig::default()).customer(200);
        assert_eq!(rel.len(), 200);
        let avg = rel.avg_tuple_bytes();
        assert!(
            (150..=300).contains(&avg),
            "avg customer tuple bytes = {avg}"
        );
    }

    #[test]
    fn figure6b_sizes_scale() {
        let sizes = TpchConfig::figure6b_sizes(0.001);
        assert_eq!(sizes.len(), 3);
        assert_eq!(sizes[0].lineitem_tuples, 150);
        assert_eq!(sizes[2].lineitem_tuples, 4_500);
    }
}
