//! Selection-query workload generation.
//!
//! Experiments issue sequences of point-selection queries over the
//! searchable attribute.  Two shapes matter:
//!
//! * **uniform** — every distinct value equally likely (the paper's η model
//!   assumes ρ ≈ 1/|distinct values|);
//! * **skewed** — Zipf-distributed query popularity, the setting in which
//!   the workload-skew attack becomes meaningful.

use pds_common::{AttrId, PdsError, Result, Value};
use pds_storage::Relation;
use rand::Rng;

use crate::zipf::Zipf;

/// A generator of point-query values over a relation's attribute.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    values: Vec<Value>,
    zipf: Option<Zipf>,
    seed: u64,
}

impl QueryWorkload {
    /// Uniform workload over the distinct values of `attr` in `relation`.
    pub fn uniform(relation: &Relation, attr: AttrId, seed: u64) -> Result<Self> {
        let values = relation.distinct_values(attr);
        if values.is_empty() {
            return Err(PdsError::Config(
                "cannot build a workload over an empty relation".into(),
            ));
        }
        Ok(QueryWorkload {
            values,
            zipf: None,
            seed,
        })
    }

    /// Zipf-skewed workload over the distinct values of `attr` (the most
    /// frequent value in the data is also the most frequently queried —
    /// rank order follows data frequency, which is the worst case for the
    /// workload-skew attack).
    pub fn zipf(relation: &Relation, attr: AttrId, exponent: f64, seed: u64) -> Result<Self> {
        let stats = relation.attribute_stats(attr);
        if stats.is_empty() {
            return Err(PdsError::Config(
                "cannot build a workload over an empty relation".into(),
            ));
        }
        let values: Vec<Value> = stats
            .values_by_descending_count()
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        let zipf = Zipf::new(values.len(), exponent)?;
        Ok(QueryWorkload {
            values,
            zipf: Some(zipf),
            seed,
        })
    }

    /// Explicit workload over a fixed list of values (queried uniformly).
    pub fn explicit(values: Vec<Value>, seed: u64) -> Result<Self> {
        if values.is_empty() {
            return Err(PdsError::Config(
                "explicit workload needs at least one value".into(),
            ));
        }
        Ok(QueryWorkload {
            values,
            zipf: None,
            seed,
        })
    }

    /// The distinct values the workload draws from, most popular first.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Draws a sequence of `n` query values.
    pub fn draw(&self, n: usize) -> Vec<Value> {
        let mut rng = pds_common::rng::seeded_rng(self.seed);
        (0..n)
            .map(|_| {
                let idx = match &self.zipf {
                    Some(z) => z.sample(&mut rng),
                    None => rng.gen_range(0..self.values.len()),
                };
                self.values[idx].clone()
            })
            .collect()
    }

    /// One query for every distinct value, in a deterministic shuffled
    /// order — the "ask everything once" workload the surviving-matches
    /// analysis needs.
    pub fn exhaustive(&self) -> Vec<Value> {
        let mut values = self.values.clone();
        let mut rng = pds_common::rng::seeded_rng(self.seed.wrapping_add(1));
        pds_common::rng::shuffle(&mut values, &mut rng);
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::{TpchConfig, TpchGenerator};

    fn rel() -> Relation {
        TpchGenerator::new(TpchConfig {
            lineitem_tuples: 500,
            distinct_partkeys: 40,
            distinct_suppkeys: 10,
            skew: 0.8,
            seed: 11,
        })
        .lineitem()
    }

    #[test]
    fn uniform_draw_covers_domain() {
        let r = rel();
        let attr = r.schema().attr_id("L_PARTKEY").unwrap();
        let w = QueryWorkload::uniform(&r, attr, 1).unwrap();
        let qs = w.draw(2_000);
        assert_eq!(qs.len(), 2_000);
        let distinct: std::collections::HashSet<_> = qs.iter().collect();
        assert!(distinct.len() as f64 > 0.8 * w.values().len() as f64);
    }

    #[test]
    fn zipf_draw_is_skewed() {
        let r = rel();
        let attr = r.schema().attr_id("L_PARTKEY").unwrap();
        let w = QueryWorkload::zipf(&r, attr, 1.2, 2).unwrap();
        let qs = w.draw(3_000);
        let top = w.values()[0].clone();
        let top_count = qs.iter().filter(|&v| *v == top).count();
        assert!(top_count as f64 > 3_000.0 / w.values().len() as f64 * 3.0);
    }

    #[test]
    fn exhaustive_hits_every_value_once() {
        let r = rel();
        let attr = r.schema().attr_id("L_SUPPKEY").unwrap();
        let w = QueryWorkload::uniform(&r, attr, 3).unwrap();
        let all = w.exhaustive();
        assert_eq!(all.len(), w.values().len());
        let distinct: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(distinct.len(), all.len());
    }

    #[test]
    fn explicit_and_errors() {
        let w = QueryWorkload::explicit(vec![Value::Int(1), Value::Int(2)], 0).unwrap();
        assert!(w
            .draw(10)
            .iter()
            .all(|v| v == &Value::Int(1) || v == &Value::Int(2)));
        assert!(QueryWorkload::explicit(vec![], 0).is_err());
        let empty = Relation::new(
            "E",
            pds_storage::Schema::from_pairs(&[("A", pds_storage::DataType::Int)]).unwrap(),
        );
        let attr = empty.schema().attr_id("A").unwrap();
        assert!(QueryWorkload::uniform(&empty, attr, 0).is_err());
        assert!(QueryWorkload::zipf(&empty, attr, 1.0, 0).is_err());
        // Invalid exponents propagate the Zipf error instead of panicking.
        let r = rel();
        let attr = r.schema().attr_id("L_PARTKEY").unwrap();
        assert!(QueryWorkload::zipf(&r, attr, -1.0, 0).is_err());
        assert!(QueryWorkload::zipf(&r, attr, f64::NAN, 0).is_err());
    }

    #[test]
    fn draws_are_deterministic() {
        let r = rel();
        let attr = r.schema().attr_id("L_PARTKEY").unwrap();
        let w = QueryWorkload::uniform(&r, attr, 7).unwrap();
        assert_eq!(w.draw(50), w.draw(50));
    }
}
