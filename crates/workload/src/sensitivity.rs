//! Sensitivity assigners: marking an α-fraction of a relation sensitive.
//!
//! The paper's experiments sweep the sensitivity ratio α (1 %, 5 %, 20 %,
//! 40 %, 60 %, …).  How data gets classified is outside the paper's scope,
//! so the assigners here simply pick which tuples are sensitive:
//!
//! * **by value** — whole value groups become sensitive (every tuple holding
//!   a chosen searchable value); this keeps the value-level structure QB
//!   bins over clean, and is how a real policy ("department X is
//!   sensitive") behaves;
//! * **by tuple** — individual tuples become sensitive regardless of value,
//!   producing values that have both sensitive and non-sensitive tuples
//!   (the general association case of §IV-B).

use pds_common::{AttrId, PdsError, Result, Value};
use pds_storage::{Predicate, Relation, SensitivityPolicy};
use rand::Rng;

/// Picks sensitive subsets of a relation to hit a target sensitivity ratio.
#[derive(Debug, Clone)]
pub struct SensitivityAssigner {
    seed: u64,
}

impl SensitivityAssigner {
    /// Creates an assigner with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        SensitivityAssigner { seed }
    }

    /// Marks whole value groups of `attr` sensitive until roughly an
    /// `alpha` fraction of *tuples* is sensitive.  Returns the policy.
    pub fn by_value_fraction(
        &self,
        relation: &Relation,
        attr: AttrId,
        alpha: f64,
    ) -> Result<SensitivityPolicy> {
        if !(0.0..=1.0).contains(&alpha) {
            return Err(PdsError::Config(format!(
                "alpha must be in [0,1], got {alpha}"
            )));
        }
        if alpha == 0.0 {
            return Ok(SensitivityPolicy::nothing_sensitive());
        }
        if alpha >= 1.0 {
            return Ok(SensitivityPolicy::everything_sensitive());
        }
        let stats = relation.attribute_stats(attr);
        let mut values: Vec<Value> = relation.distinct_values(attr);
        let mut rng = pds_common::rng::seeded_rng(self.seed);
        pds_common::rng::shuffle(&mut values, &mut rng);

        let target = (alpha * relation.len() as f64).round() as u64;
        let mut chosen = Vec::new();
        let mut covered = 0u64;
        for v in values {
            if covered >= target {
                break;
            }
            covered += stats.count(&v);
            chosen.push(v);
        }
        Ok(SensitivityPolicy::rows(Predicate::InSet {
            attr,
            values: chosen,
        }))
    }

    /// Marks individual tuples sensitive with probability `alpha` (Bernoulli
    /// sampling), returning the explicit set of sensitive tuple ids as a
    /// predicate over a synthetic "row number" — implemented by listing the
    /// chosen tuples' searchable values *and* offices cannot work row-level,
    /// so this variant instead returns the list of chosen tuple ids for the
    /// caller to split manually via [`split_by_tuple_ids`].
    pub fn by_tuple_fraction(
        &self,
        relation: &Relation,
        alpha: f64,
    ) -> Result<Vec<pds_common::TupleId>> {
        if !(0.0..=1.0).contains(&alpha) {
            return Err(PdsError::Config(format!(
                "alpha must be in [0,1], got {alpha}"
            )));
        }
        let mut rng = pds_common::rng::seeded_rng(self.seed);
        Ok(relation
            .tuples()
            .iter()
            .filter(|_| rng.gen::<f64>() < alpha)
            .map(|t| t.id)
            .collect())
    }
}

/// Splits a relation into (sensitive, non-sensitive) by an explicit list of
/// sensitive tuple ids, preserving ids (the tuple-level variant of the
/// assigner).
pub fn split_by_tuple_ids(
    relation: &Relation,
    sensitive_ids: &[pds_common::TupleId],
) -> Result<(Relation, Relation)> {
    let id_set: std::collections::HashSet<_> = sensitive_ids.iter().copied().collect();
    let mut sensitive = Relation::new(format!("{}_s", relation.name()), relation.schema().clone());
    let mut nonsensitive =
        Relation::new(format!("{}_ns", relation.name()), relation.schema().clone());
    for t in relation.tuples() {
        if id_set.contains(&t.id) {
            sensitive.insert_with_id(t.id, t.values.clone())?;
        } else {
            nonsensitive.insert_with_id(t.id, t.values.clone())?;
        }
    }
    Ok((sensitive, nonsensitive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::{TpchConfig, TpchGenerator};
    use pds_storage::Partitioner;

    fn small_lineitem() -> Relation {
        TpchGenerator::new(TpchConfig {
            lineitem_tuples: 1_000,
            distinct_partkeys: 50,
            distinct_suppkeys: 10,
            skew: 0.0,
            seed: 3,
        })
        .lineitem()
    }

    #[test]
    fn by_value_fraction_hits_target_roughly() {
        let rel = small_lineitem();
        let attr = rel.schema().attr_id("L_PARTKEY").unwrap();
        for alpha in [0.1, 0.3, 0.6] {
            let policy = SensitivityAssigner::new(1)
                .by_value_fraction(&rel, attr, alpha)
                .unwrap();
            let parts = Partitioner::new(policy).split(&rel).unwrap();
            let measured = parts.alpha();
            assert!(
                (measured - alpha).abs() < 0.08,
                "alpha target {alpha}, measured {measured}"
            );
        }
    }

    #[test]
    fn extreme_alphas() {
        let rel = small_lineitem();
        let attr = rel.schema().attr_id("L_PARTKEY").unwrap();
        let p0 = SensitivityAssigner::new(1)
            .by_value_fraction(&rel, attr, 0.0)
            .unwrap();
        assert_eq!(Partitioner::new(p0).split(&rel).unwrap().sensitive.len(), 0);
        let p1 = SensitivityAssigner::new(1)
            .by_value_fraction(&rel, attr, 1.0)
            .unwrap();
        assert_eq!(
            Partitioner::new(p1).split(&rel).unwrap().nonsensitive.len(),
            0
        );
        assert!(SensitivityAssigner::new(1)
            .by_value_fraction(&rel, attr, 1.5)
            .is_err());
    }

    #[test]
    fn by_tuple_fraction_and_split() {
        let rel = small_lineitem();
        let ids = SensitivityAssigner::new(2)
            .by_tuple_fraction(&rel, 0.25)
            .unwrap();
        let frac = ids.len() as f64 / rel.len() as f64;
        assert!((frac - 0.25).abs() < 0.06, "frac = {frac}");
        let (s, ns) = split_by_tuple_ids(&rel, &ids).unwrap();
        assert_eq!(s.len() + ns.len(), rel.len());
        assert_eq!(s.len(), ids.len());
        assert!(SensitivityAssigner::new(2)
            .by_tuple_fraction(&rel, -0.1)
            .is_err());
    }

    #[test]
    fn assignment_is_deterministic_per_seed() {
        let rel = small_lineitem();
        let attr = rel.schema().attr_id("L_PARTKEY").unwrap();
        let a = SensitivityAssigner::new(9)
            .by_value_fraction(&rel, attr, 0.3)
            .unwrap();
        let b = SensitivityAssigner::new(9)
            .by_value_fraction(&rel, attr, 0.3)
            .unwrap();
        let pa = Partitioner::new(a).split(&rel).unwrap();
        let pb = Partitioner::new(b).split(&rel).unwrap();
        assert_eq!(pa.sensitive.len(), pb.sensitive.len());
    }
}
