//! Zipf-distributed sampling.
//!
//! The workload-skew attack and the skewed-data experiments need a
//! heavy-tailed distribution over values / query targets.  This is a simple
//! inverse-CDF Zipf sampler over ranks `0..n`.

use pds_common::{PdsError, Result};
use rand::Rng;

/// A Zipf distribution over `0..n` with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with skew exponent `s`
    /// (`s = 0` is uniform; `s ≈ 1` is classic Zipf).
    ///
    /// Returns an error when `n == 0` or `s` is negative or not finite
    /// (NaN included) — both parameters are CLI-reachable through
    /// `experiments zipf --skew`, so bad input must surface as a
    /// [`PdsError`], not a panic.
    pub fn new(n: usize, s: f64) -> Result<Self> {
        if n == 0 {
            return Err(PdsError::Config("Zipf needs a non-empty domain".into()));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(PdsError::Config(format!(
                "Zipf exponent must be a finite value >= 0, got {s}"
            )));
        }
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        // Guard against floating point drift.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Zipf { cdf })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n` (rank 0 is the most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN in cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability mass of a rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_common::rng::seeded_rng;

    #[test]
    fn pmf_sums_to_one_and_is_monotone() {
        let z = Zipf::new(100, 1.0).unwrap();
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..100 {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
        assert_eq!(z.pmf(100), 0.0);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0).unwrap();
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_respects_skew() {
        let z = Zipf::new(50, 1.2).unwrap();
        let mut rng = seeded_rng(5);
        let mut counts = [0u32; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 must be sampled much more often than rank 49.
        assert!(counts[0] > counts[49] * 5);
        assert!(counts.iter().sum::<u32>() == 20_000);
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 2.0).unwrap();
        let mut rng = seeded_rng(6);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn invalid_parameters_are_errors_not_panics() {
        // Regression: these used to be `assert!`s, which became CLI-reachable
        // panics once `experiments zipf --skew` existed; NaN was silently
        // accepted and poisoned the CDF.
        assert!(Zipf::new(0, 1.0).is_err(), "empty domain");
        assert!(Zipf::new(10, -0.1).is_err(), "negative exponent");
        assert!(Zipf::new(10, f64::NAN).is_err(), "NaN exponent");
        assert!(Zipf::new(10, f64::INFINITY).is_err(), "infinite exponent");
        assert!(Zipf::new(1, 0.0).is_ok(), "minimal valid domain");
    }
}
