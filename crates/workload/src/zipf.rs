//! Zipf-distributed sampling.
//!
//! The workload-skew attack and the skewed-data experiments need a
//! heavy-tailed distribution over values / query targets.  This is a simple
//! inverse-CDF Zipf sampler over ranks `0..n`.

use rand::Rng;

/// A Zipf distribution over `0..n` with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with skew exponent `s`
    /// (`s = 0` is uniform; `s ≈ 1` is classic Zipf).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        // Guard against floating point drift.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n` (rank 0 is the most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN in cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability mass of a rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_common::rng::seeded_rng;

    #[test]
    fn pmf_sums_to_one_and_is_monotone() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..100 {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
        assert_eq!(z.pmf(100), 0.0);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_respects_skew() {
        let z = Zipf::new(50, 1.2);
        let mut rng = seeded_rng(5);
        let mut counts = [0u32; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 must be sampled much more often than rank 49.
        assert!(counts[0] > counts[49] * 5);
        assert!(counts.iter().sum::<u32>() == 20_000);
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = seeded_rng(6);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
