//! The paper's running Employee example (Figure 1, Example 1).

use pds_common::{Result, Value};
use pds_storage::{DataType, Predicate, Relation, Schema, SensitivityPolicy};

/// Builds the Employee relation of Figure 1 (8 tuples, 6 attributes).
///
/// Tuple ids 0..7 correspond to the paper's t1..t8.
pub fn employee_relation() -> Relation {
    let schema = Schema::from_pairs(&[
        ("EId", DataType::Text),
        ("FirstName", DataType::Text),
        ("LastName", DataType::Text),
        ("SSN", DataType::Int),
        ("Office", DataType::Int),
        ("Dept", DataType::Text),
    ])
    .expect("employee schema is valid");
    let mut r = Relation::new("Employee", schema);
    let rows: [(&str, &str, &str, i64, i64, &str); 8] = [
        ("E101", "Adam", "Smith", 111, 1, "Defense"),
        ("E259", "John", "Williams", 222, 2, "Design"),
        ("E199", "Eve", "Smith", 333, 2, "Design"),
        ("E259", "John", "Williams", 222, 6, "Defense"),
        ("E152", "Clark", "Cook", 444, 1, "Defense"),
        ("E254", "David", "Watts", 555, 4, "Design"),
        ("E159", "Lisa", "Ross", 666, 2, "Defense"),
        ("E152", "Clark", "Cook", 444, 3, "Design"),
    ];
    for (eid, first, last, ssn, office, dept) in rows {
        r.insert(vec![
            Value::from(eid),
            Value::from(first),
            Value::from(last),
            Value::Int(ssn),
            Value::Int(office),
            Value::from(dept),
        ])
        .expect("employee rows conform to the schema");
    }
    r
}

/// The sensitivity policy of Example 1: the `SSN` attribute is sensitive for
/// every tuple (vertical split keyed by `EId`), and every tuple of the
/// Defense department is sensitive (row-level split).
pub fn employee_sensitivity_policy(relation: &Relation) -> Result<SensitivityPolicy> {
    Ok(
        SensitivityPolicy::rows(Predicate::eq(relation.schema(), "Dept", "Defense")?)
            .with_sensitive_attributes("EId", vec!["SSN".to_string()]),
    )
}

/// The EIds of the sensitive (Defense) tuples, in paper order.
pub fn sensitive_eids() -> Vec<Value> {
    ["E101", "E259", "E152", "E159"]
        .iter()
        .map(|&s| Value::from(s))
        .collect()
}

/// The EIds of the non-sensitive (Design) tuples, in paper order.
pub fn nonsensitive_eids() -> Vec<Value> {
    ["E259", "E199", "E254", "E152"]
        .iter()
        .map(|&s| Value::from(s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_storage::Partitioner;

    #[test]
    fn figure1_shape() {
        let r = employee_relation();
        assert_eq!(r.len(), 8);
        assert_eq!(r.schema().arity(), 6);
    }

    #[test]
    fn example1_partition_matches_figure2() {
        let r = employee_relation();
        let policy = employee_sensitivity_policy(&r).unwrap();
        let parts = Partitioner::new(policy).split(&r).unwrap();
        // Employee2 (sensitive rows): 4 Defense tuples t1, t4, t5, t7.
        assert_eq!(parts.sensitive.len(), 4);
        // Employee3 (non-sensitive rows): 4 Design tuples.
        assert_eq!(parts.nonsensitive.len(), 4);
        // Employee1 (EId, SSN): all 8 tuples, 2 attributes.
        let cols = parts.sensitive_columns.as_ref().unwrap();
        assert_eq!(cols.len(), 8);
        assert_eq!(cols.schema().arity(), 2);
        // α = 0.5 for the row-level split.
        assert!((parts.alpha() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eid_lists_match_figure2() {
        let r = employee_relation();
        let policy = employee_sensitivity_policy(&r).unwrap();
        let parts = Partitioner::new(policy).split(&r).unwrap();
        let attr = parts.sensitive.schema().attr_id("EId").unwrap();
        let s_eids: Vec<Value> = parts
            .sensitive
            .tuples()
            .iter()
            .map(|t| t.value(attr).clone())
            .collect();
        assert_eq!(s_eids, sensitive_eids());
        let ns_eids: Vec<Value> = parts
            .nonsensitive
            .tuples()
            .iter()
            .map(|t| t.value(attr).clone())
            .collect();
        assert_eq!(ns_eids, nonsensitive_eids());
    }

    #[test]
    fn eid_association_is_one_to_one() {
        // Base-case precondition of §IV-A: a sensitive tuple is associated
        // with at most one non-sensitive tuple and vice versa.
        let s = sensitive_eids();
        let ns = nonsensitive_eids();
        for v in &s {
            assert!(s.iter().filter(|&x| x == v).count() == 1);
        }
        for v in &ns {
            assert!(ns.iter().filter(|&x| x == v).count() == 1);
        }
    }
}
