//! # pds-workload
//!
//! Workload generation for the experiments:
//!
//! * [`employee`] — the paper's running Employee example (Figure 1 and the
//!   three derived relations of Figure 2).
//! * [`tpch`] — a deterministic pseudo-TPC-H generator producing
//!   LINEITEM-like and CUSTOMER-like relations with the tuple counts, key
//!   domains and selectivities the paper's experiments use (150 K / 1.5 M /
//!   4.5 M / 6 M tuples).
//! * [`zipf`] — a Zipf sampler for skewed data and skewed query workloads.
//! * [`queries`] — selection-query workload generators (uniform and skewed).
//! * [`sensitivity`] — assigners that mark an α-fraction of a relation
//!   sensitive, by tuple or by value, producing the
//!   [`pds_storage::SensitivityPolicy`] the partitioner consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod employee;
pub mod queries;
pub mod sensitivity;
pub mod tpch;
pub mod zipf;

pub use employee::{employee_relation, employee_sensitivity_policy};
pub use queries::QueryWorkload;
pub use sensitivity::SensitivityAssigner;
pub use tpch::{TpchConfig, TpchGenerator};
pub use zipf::Zipf;
