//! Cost-based planner experiment: choose the engine per shard, don't obey it.
//!
//! Every earlier experiment *obeyed* its deployment: whichever engine a
//! shard was outsourced through served every episode.  This experiment runs
//! the optimizer end to end over a mixed suite — the paper's Employee
//! relation (exhaustive workload), a uniform pseudo-TPC-H workload, and a
//! Zipf-skewed one — and gates on the planner *earning* its keep:
//!
//! 1. every one of the six homogeneous deployments runs the suite with the
//!    residual applied owner-side (pushdown off); their per-(engine, shard)
//!    metric deltas and measured wall-clocks calibrate a
//!    [`pds_core::CostModel`];
//! 2. a per-value pilot mounts the workload-skew attack against every
//!    shard's episode stream, yielding the per-shard linkage advantage;
//! 3. [`pds_core::choose_engines`] picks each shard's back-end — oblivious
//!    where the advantage exceeds the threshold, the cheapest calibrated
//!    engine elsewhere — and the planner deployment runs the same suite
//!    with the residual pushed below the bin fetch;
//! 4. the gate: planner answers are **byte-identical** to the homogeneous
//!    baselines', partitioned data security holds per shard and composed,
//!    and against every homogeneous deployment meeting the same security
//!    bar the planner wins on rounds (≤), bytes (<), modelled seconds (<)
//!    and measured wall-clock (within [`WALL_SLACK`]).
//!
//! A homogeneous deployment whose back-end does not hide the access
//! pattern is **disqualified** (not a fair competitor) on suites where any
//! shard's measured linkage advantage exceeds the threshold: the planner
//! only races deployments offering equal attack-checked security.

use std::collections::BTreeMap;

use pds_adversary::{check_sharded_partitioned_security, WorkloadSkewAttack};
use pds_cloud::{BinTransport, Metrics, NetworkModel};
use pds_common::{PdsError, Result, Value};
use pds_core::{choose_engines, CostModel, EngineCandidate, PlannerConfig};
use pds_storage::{PartitionedRelation, Partitioner, Predicate, Tuple};
use pds_systems::{
    oblivious, ArxEngine, DeterministicIndexEngine, DpfEngine, NonDetScanEngine,
    SecretSharingEngine, SecureSelectionEngine,
};
use pds_workload::{employee_relation, employee_sensitivity_policy, QueryWorkload};

use crate::deploy::{
    hetero_qb_deployment_over, lineitem, partition_at_alpha, ShardedQbDeployment, SEARCH_ATTR,
};

/// The six homogeneous deployments the planner must beat.
pub const HOMOGENEOUS: [&str; 6] = [
    "det-index",
    "nondet-scan",
    "arx-index",
    "secret-sharing",
    "dpf",
    "opaque-sim",
];

/// Measured wall-clock slack the planner is allowed over each baseline.
/// The modelled axes (rounds, bytes, simulated seconds) are exact and
/// gated strictly; the measured fan-out of these micro-batches sits in the
/// tens of microseconds on a debug build, where scheduler noise swamps the
/// signal, so the wall-clock gate only rejects pathological slowdowns.
pub const WALL_SLACK: f64 = 2.0;

/// Nominal owner↔cloud round-trip latency the cost model charges per
/// round when ranking back-ends (10 ms — a WAN figure).  The paper's
/// communication model prices bytes only, but round-trip latency is
/// exactly why composed one-round episodes exist, so the planner must see
/// it to prefer them over cheap-but-chatty fine-grained procedures.
pub const ROUND_TRIP_SEC: f64 = 0.010;

/// One suite scenario: a partitioned relation, its searchable attribute,
/// the query batch, and the residual predicate constraining every query.
struct Scenario {
    name: &'static str,
    parts: PartitionedRelation,
    attr: &'static str,
    shards: usize,
    workload: Vec<Value>,
    residual: Predicate,
}

/// The planner's decision for one (scenario, shard), as printed by
/// `experiments planner`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedShard {
    /// Scenario the decision belongs to.
    pub scenario: &'static str,
    /// Shard index within the scenario.
    pub shard: usize,
    /// Measured workload-skew linkage advantage against this shard.
    pub advantage: f64,
    /// Whether the advantage forced the oblivious pool.
    pub oblivious_required: bool,
    /// The chosen back-end.
    pub engine: String,
    /// Whether the chosen back-end answers composed one-round episodes.
    pub composed: bool,
    /// Whether the residual rides the wire to this shard.
    pub pushdown: bool,
    /// The calibrated cost estimate the choice minimised, seconds.
    pub estimated_sec: f64,
}

/// Suite-total cost of one deployment (planner or homogeneous).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeploymentCost {
    /// Engine name, or `"planner"` for the optimized deployment.
    pub engine: String,
    /// Owner↔cloud rounds over the whole suite.
    pub rounds: u64,
    /// Bytes moved over the whole suite (measured frame lengths).
    pub bytes: u64,
    /// Modelled seconds (computation under the per-shard engine profiles
    /// plus simulated communication) over the whole suite.
    pub modelled_sec: f64,
    /// Measured wall-clock seconds of the shard fan-outs.
    pub measured_wall_sec: f64,
    /// Whether partitioned data security held per shard and composed on
    /// every scenario **and** the back-end meets the suite's advantage
    /// bar (hides the access pattern wherever advantage > threshold).
    pub secure: bool,
    /// Whether every answer was byte-identical to the reference.
    pub exact: bool,
}

/// The outcome `experiments planner` prints and gates on.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerOutcome {
    /// Per-(scenario, shard) planner decisions.
    pub plans: Vec<PlannedShard>,
    /// Suite totals of the planner deployment.
    pub planner: DeploymentCost,
    /// Suite totals of the six homogeneous deployments.
    pub homogeneous: Vec<DeploymentCost>,
    /// The advantage threshold the suite planned under.
    pub advantage_threshold: f64,
}

impl PlannerOutcome {
    /// Whether the planner beat one specific homogeneous deployment on
    /// every cost axis.
    pub fn beats(&self, h: &DeploymentCost) -> bool {
        self.planner.rounds <= h.rounds
            && self.planner.bytes < h.bytes
            && self.planner.modelled_sec < h.modelled_sec
            && self.planner.measured_wall_sec <= h.measured_wall_sec * WALL_SLACK
    }

    /// The gate `experiments planner` enforces: the planner deployment is
    /// secure and exact, at least one homogeneous competitor met the same
    /// security bar, and the planner beats every one that did.
    pub fn holds(&self) -> bool {
        self.planner.secure
            && self.planner.exact
            && self.homogeneous.iter().any(|h| h.secure)
            && self
                .homogeneous
                .iter()
                .all(|h| h.exact && (!h.secure || self.beats(h)))
    }
}

/// One back-end by registry name (the same names
/// [`pds_systems::cost::CostProfile::for_engine`] seeds the model from).
fn engine_named(name: &str, seed: u64) -> Result<Box<dyn SecureSelectionEngine>> {
    Ok(match name {
        "det-index" => Box::new(DeterministicIndexEngine::new()),
        "nondet-scan" => Box::new(NonDetScanEngine::new()),
        "arx-index" => Box::new(ArxEngine::new()),
        "secret-sharing" => Box::new(SecretSharingEngine::new(3, 5)),
        "dpf" => Box::new(DpfEngine::new(seed)),
        "opaque-sim" => Box::new(oblivious::opaque_sim()),
        other => {
            return Err(PdsError::Config(format!(
                "unknown planner engine {other:?}"
            )))
        }
    })
}

/// Answers as sorted encoded tuples, for byte-level comparison.
fn answer_bytes(answers: &[Vec<Tuple>]) -> Vec<Vec<Vec<u8>>> {
    answers
        .iter()
        .map(|ts| {
            let mut out: Vec<Vec<u8>> = ts.iter().map(Tuple::encode).collect();
            out.sort();
            out
        })
        .collect()
}

/// The union of both partitions' distinct values of `attr`.
fn distinct_union(parts: &PartitionedRelation, attr: &str) -> Result<Vec<Value>> {
    let id = parts.nonsensitive.schema().attr_id(attr)?;
    let mut all = parts.nonsensitive.distinct_values(id);
    for v in parts.sensitive.distinct_values(id) {
        if !all.contains(&v) {
            all.push(v);
        }
    }
    Ok(all)
}

/// The mixed suite: Employee (exhaustive), TPC-H uniform, TPC-H Zipf.
fn scenarios(tuples: usize, seed: u64) -> Result<Vec<Scenario>> {
    let employee = employee_relation();
    let policy = employee_sensitivity_policy(&employee)?;
    let employee_parts = Partitioner::new(policy).split(&employee)?;
    let employee_workload =
        QueryWorkload::explicit(distinct_union(&employee_parts, "EId")?, seed)?.exhaustive();
    // Offices 1–3 keep most of both streams but drop tuples on each side,
    // so pushdown genuinely filters the clear-text stream *and* the owner
    // genuinely filters the sensitive one.
    let employee_residual = Predicate::range(employee.schema(), "Office", 1i64, 3i64)?;

    let relation = lineitem(tuples, seed);
    let tpch_parts = partition_at_alpha(&relation, 0.3, seed)?;
    let attr = relation.schema().attr_id(SEARCH_ATTR)?;
    // Both TPC-H workloads cover every distinct value: the adversary's
    // association-indistinguishability check needs the full bin overlap
    // structure exercised, and a partial draw is (rightly) flagged as
    // distinguishable.  The Zipf scenario layers skewed repeats *on top*
    // of the exhaustive pass, so hot values repeat while coverage holds.
    let uniform =
        QueryWorkload::explicit(distinct_union(&tpch_parts, SEARCH_ATTR)?, seed)?.exhaustive();
    let mut zipf = QueryWorkload::explicit(
        distinct_union(&tpch_parts, SEARCH_ATTR)?,
        seed.wrapping_add(2),
    )?
    .exhaustive();
    zipf.extend(QueryWorkload::zipf(&relation, attr, 1.2, seed.wrapping_add(3))?.draw(tuples / 25));
    // L_QUANTITY is uniform on 1..=50, so the residual halves each answer.
    let tpch_residual = Predicate::range(relation.schema(), "L_QUANTITY", 1i64, 25i64)?;

    Ok(vec![
        Scenario {
            name: "employee",
            parts: employee_parts,
            attr: "EId",
            shards: 2,
            workload: employee_workload,
            residual: employee_residual,
        },
        Scenario {
            name: "tpch-uniform",
            parts: tpch_parts.clone(),
            attr: SEARCH_ATTR,
            shards: 4,
            workload: uniform,
            residual: tpch_residual.clone(),
        },
        Scenario {
            name: "tpch-zipf",
            parts: tpch_parts,
            attr: SEARCH_ATTR,
            shards: 4,
            workload: zipf,
            residual: tpch_residual,
        },
    ])
}

/// Builds a deployment of `engines` over a scenario with the given planner
/// configuration installed.
fn deploy(
    sc: &Scenario,
    engines: Vec<Box<dyn SecureSelectionEngine>>,
    config: PlannerConfig,
    seed: u64,
) -> Result<ShardedQbDeployment<Box<dyn SecureSelectionEngine>>> {
    let mut dep = hetero_qb_deployment_over(
        sc.parts.clone(),
        sc.attr,
        engines,
        NetworkModel::paper_wan(),
        seed,
    )?;
    dep.executor.set_planner(config)?;
    Ok(dep)
}

/// One measured suite-scenario run of a deployment.
struct RunMeasure {
    rounds: u64,
    bytes: u64,
    modelled_sec: f64,
    wall_sec: f64,
    pds_secure: bool,
    answers: Vec<Vec<Vec<u8>>>,
    per_shard_delta: Vec<Metrics>,
}

fn measure(
    dep: &mut ShardedQbDeployment<Box<dyn SecureSelectionEngine>>,
    workload: &[Value],
) -> Result<RunMeasure> {
    let before = dep.router.shard_metrics();
    let (breakdown, answers) = dep.run_and_cost_answers(workload, BinTransport::Sequential)?;
    let per_shard_delta: Vec<Metrics> = dep
        .router
        .shards()
        .iter()
        .enumerate()
        .map(|(idx, shard)| shard.metrics().delta_since(&before[idx]))
        .collect();
    let bytes = per_shard_delta.iter().map(Metrics::total_bytes).sum();
    let pds_secure =
        check_sharded_partitioned_security(&dep.router.adversarial_views()).is_secure();
    Ok(RunMeasure {
        rounds: breakdown.rounds,
        bytes,
        modelled_sec: breakdown.aggregate.total_sec(),
        wall_sec: breakdown.measured_wall_sec,
        pds_secure,
        answers: answer_bytes(&answers),
        per_shard_delta,
    })
}

/// Mounts the workload-skew attack against every shard of a pilot
/// deployment run value-by-value (one episode per query, so per-shard
/// ground truth is exact), returning each shard's linkage advantage.
fn shard_advantages(sc: &Scenario, seed: u64) -> Result<Vec<f64>> {
    let engines: Vec<Box<dyn SecureSelectionEngine>> = (0..sc.shards)
        .map(|_| engine_named("det-index", seed))
        .collect::<Result<_>>()?;
    let mut dep = deploy(sc, engines, PlannerConfig::default(), seed)?;
    let mut truth: Vec<Vec<Value>> = vec![Vec::new(); sc.shards];
    let mut seen: Vec<usize> = vec![0; sc.shards];
    for value in &sc.workload {
        dep.executor
            .select(&mut dep.owner, &mut dep.router, value)?;
        for (idx, shard) in dep.router.shards().iter().enumerate() {
            let len = shard.adversarial_view().len();
            if len > seen[idx] {
                truth[idx].push(value.clone());
                seen[idx] = len;
            }
        }
    }
    let mut advantages = Vec::with_capacity(sc.shards);
    for (idx, shard) in dep.router.shards().iter().enumerate() {
        let mut counts: BTreeMap<Value, usize> = BTreeMap::new();
        for v in &truth[idx] {
            *counts.entry(v.clone()).or_insert(0) += 1;
        }
        let mut ranked: Vec<(Value, usize)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let popularity: Vec<Value> = ranked.into_iter().map(|(v, _)| v).collect();
        let outcome = WorkloadSkewAttack::run(shard.adversarial_view(), &popularity, &truth[idx]);
        let advantage = outcome.advantage();
        // Leakage telemetry: the measured adversary advantage per shard,
        // live in the global registry next to the daemons' bin-load
        // uniformity gauges.
        let shard_label = idx.to_string();
        pds_obs::global().gauge_set(
            "pds_adversary_advantage",
            &[("attack", "workload_skew"), ("shard", &shard_label)],
            advantage,
        );
        advantages.push(advantage);
    }
    Ok(advantages)
}

impl DeploymentCost {
    fn absorb(&mut self, m: &RunMeasure, advantage_ok: bool, exact: bool) {
        self.rounds += m.rounds;
        self.bytes += m.bytes;
        self.modelled_sec += m.modelled_sec;
        self.measured_wall_sec += m.wall_sec;
        self.secure &= m.pds_secure && advantage_ok;
        self.exact &= exact;
    }
}

/// Runs the full planner experiment over the mixed suite.
pub fn run(tuples: usize, seed: u64) -> Result<PlannerOutcome> {
    let suite = scenarios(tuples, seed)?;
    let threshold = PlannerConfig::default().advantage_threshold;

    let mut plans_out = Vec::new();
    let mut planner_total = DeploymentCost {
        engine: "planner".into(),
        secure: true,
        exact: true,
        ..DeploymentCost::default()
    };
    let mut homo_totals: Vec<DeploymentCost> = HOMOGENEOUS
        .iter()
        .map(|name| DeploymentCost {
            engine: (*name).to_string(),
            secure: true,
            exact: true,
            ..DeploymentCost::default()
        })
        .collect();

    for sc in &suite {
        let advantages = shard_advantages(sc, seed)?;
        let hot = advantages.iter().any(|&a| a > threshold);

        // Homogeneous baselines: residual owner-side, no pushdown.  Their
        // measured per-(engine, shard) deltas calibrate the cost model.
        let baseline_config = PlannerConfig {
            residual: Some(sc.residual.clone()),
            pushdown: false,
            ..PlannerConfig::default()
        };
        let mut model = CostModel::seeded(&HOMOGENEOUS);
        model.set_round_trip_cost(ROUND_TRIP_SEC);
        let mut candidates = Vec::with_capacity(HOMOGENEOUS.len());
        let mut reference: Option<Vec<Vec<Vec<u8>>>> = None;
        for (slot, name) in HOMOGENEOUS.iter().enumerate() {
            let engines: Vec<Box<dyn SecureSelectionEngine>> = (0..sc.shards)
                .map(|_| engine_named(name, seed))
                .collect::<Result<_>>()?;
            candidates.push(EngineCandidate::of(engines[0].as_ref()));
            let hides = engines[0].hides_access_pattern();
            let mut dep = deploy(sc, engines, baseline_config.clone(), seed)?;
            let m = measure(&mut dep, &sc.workload)?;
            for (shard, delta) in m.per_shard_delta.iter().enumerate() {
                model.observe(name, shard, delta, m.wall_sec);
            }
            let exact = reference.as_ref().map_or(true, |r| *r == m.answers);
            if reference.is_none() {
                reference = Some(m.answers.clone());
            }
            // Non-hiding back-ends are not fair competitors on a suite
            // whose measured advantage demands oblivious service.
            homo_totals[slot].absorb(&m, hides || !hot, exact);
        }

        // The optimizer's choice, deployed with pushdown on.
        let plans = choose_engines(&model, &candidates, &advantages, threshold)?;
        let engines: Vec<Box<dyn SecureSelectionEngine>> = plans
            .iter()
            .map(|p| engine_named(&p.engine, seed))
            .collect::<Result<_>>()?;
        let planner_config = PlannerConfig {
            residual: Some(sc.residual.clone()),
            pushdown: true,
            ..PlannerConfig::default()
        };
        let mut dep = deploy(sc, engines, planner_config, seed)?;
        for plan in &plans {
            plans_out.push(PlannedShard {
                scenario: sc.name,
                shard: plan.shard,
                advantage: advantages[plan.shard],
                oblivious_required: plan.oblivious_required,
                engine: plan.engine.clone(),
                composed: dep.executor.shard_engines()[plan.shard].composes_episodes(),
                pushdown: true,
                estimated_sec: plan.estimated_sec,
            });
        }
        let m = measure(&mut dep, &sc.workload)?;
        let exact = reference.as_ref() == Some(&m.answers);
        planner_total.absorb(&m, true, exact);
    }

    Ok(PlannerOutcome {
        plans: plans_out,
        planner: planner_total,
        homogeneous: homo_totals,
        advantage_threshold: threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_beats_every_secure_homogeneous_deployment() {
        let outcome = run(600, 42).unwrap();
        assert!(outcome.planner.secure, "{outcome:?}");
        assert!(outcome.planner.exact, "{outcome:?}");
        // Decisions cover every (scenario, shard) of the suite.
        assert_eq!(outcome.plans.len(), 2 + 4 + 4);
        // Every baseline answered identically — the residual semantics are
        // engine-independent.
        assert!(outcome.homogeneous.iter().all(|h| h.exact), "{outcome:?}");
        // The oblivious baseline is always a fair (secure) competitor.
        assert!(
            outcome
                .homogeneous
                .iter()
                .any(|h| h.engine == "opaque-sim" && h.secure),
            "{outcome:?}"
        );
        assert!(outcome.holds(), "{outcome:?}");
        // Pushdown strictly shrinks the downlink against the cheapest
        // homogeneous index deployment, without extra rounds.
        let det = outcome
            .homogeneous
            .iter()
            .find(|h| h.engine == "det-index")
            .unwrap();
        assert!(
            outcome.planner.bytes < det.bytes,
            "pushdown must shrink the downlink: {} vs {}",
            outcome.planner.bytes,
            det.bytes
        );
        assert!(outcome.planner.rounds <= det.rounds);
    }

    #[test]
    fn unknown_engine_name_is_rejected() {
        assert!(engine_named("no-such-engine", 1).is_err());
    }
}
