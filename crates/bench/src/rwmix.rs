//! Read/write-mix experiment over the Employee workload: cache
//! invalidation on insert, under load.
//!
//! The owner-side hot-bin cache (`pds_cloud::BinCache`, PR 3) memoises
//! whole decrypted bins; [`pds_core::QbExecutor::invalidate_cache_on_insert`]
//! is its staleness guard for writes.  This experiment drives both under a
//! mixed read/write load and measures the three things that matter:
//!
//! * **freshness** — after each write, cached reads return the *inserted*
//!   tuple, byte-identical to an uncached deployment replaying the same
//!   operation sequence (the invalidation really dropped the stale bins);
//! * **teeth** — a control arm that *skips* invalidation serves stale
//!   answers (proving the check can fail, i.e. the experiment measures
//!   something real);
//! * **cost** — the warm-cache hit rate drops right after a write
//!   (sensitive inserts clear everything; non-sensitive inserts drop one
//!   bin) and recovers as the bins are re-fetched.

use pds_cloud::{CloudServer, DbOwner, NetworkModel};
use pds_common::{PdsError, Result, TupleId, Value};
use pds_core::extensions::{InsertPlan, InsertPlanner};
use pds_core::{BinningConfig, QbExecutor, QueryBinning};
use pds_storage::{Partitioner, Tuple};
use pds_systems::NonDetScanEngine;
use pds_workload::{employee_relation, employee_sensitivity_policy};

/// One operation of the mixed workload.
#[derive(Debug, Clone, PartialEq)]
enum Op {
    /// Point query for a value.
    Read(Value),
    /// Insert one tuple whose searchable value is `value`, on the
    /// sensitive (`true`) or non-sensitive side.
    Insert {
        value: Value,
        sensitive: bool,
        id: u64,
    },
}

/// The outcome of one read/write-mix run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RwMixOutcome {
    /// Point queries executed.
    pub reads: usize,
    /// Inserts applied (sensitive + non-sensitive).
    pub writes: usize,
    /// Cache hit rate over the warm window right before the first write.
    pub hit_rate_before_write: f64,
    /// Cache hit rate over the window right after the first (sensitive)
    /// write — the invalidation cleared the cache, so this must drop.
    pub hit_rate_after_write: f64,
    /// Hit rate over the whole run.
    pub hit_rate_overall: f64,
    /// Whether every cached answer matched the uncached deployment
    /// replaying the identical operation sequence, byte for byte.
    pub answers_exact: bool,
    /// Whether the no-invalidation control arm diverged (stale answers) —
    /// must be `true`, or the experiment is not testing anything.
    pub stale_without_invalidation: bool,
}

impl RwMixOutcome {
    /// The gate `experiments rwmix` enforces.
    pub fn holds(&self) -> bool {
        self.answers_exact
            && self.stale_without_invalidation
            && self.hit_rate_after_write < self.hit_rate_before_write
    }
}

/// One deployment under test: executor + owner + cloud + a mirror of the
/// ground truth (for generating fresh tuple ids).
struct Arm {
    owner: DbOwner,
    cloud: CloudServer,
    executor: QbExecutor<NonDetScanEngine>,
    attr: pds_common::AttrId,
    arity: usize,
}

impl Arm {
    fn build(cache_bins: usize, seed: u64) -> Result<Self> {
        let relation = employee_relation();
        let policy = employee_sensitivity_policy(&relation)?;
        let parts = Partitioner::new(policy).split(&relation)?;
        let binning = QueryBinning::build(&parts, "EId", BinningConfig::default())?;
        let mut executor =
            QbExecutor::new(binning, NonDetScanEngine::new()).with_cache_capacity(cache_bins);
        let mut owner = DbOwner::new(seed);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        executor.outsource(&mut owner, &mut cloud, &parts)?;
        let attr = parts.sensitive.schema().attr_id("EId")?;
        Ok(Arm {
            owner,
            cloud,
            executor,
            attr,
            arity: parts.sensitive.schema().arity(),
        })
    }

    /// Applies one operation; reads return the sorted encoded answer.
    fn apply(&mut self, op: &Op, invalidate: bool) -> Result<Option<Vec<Vec<u8>>>> {
        match op {
            Op::Read(value) => {
                let ts = self
                    .executor
                    .select(&mut self.owner, &mut self.cloud, value)?;
                let mut enc: Vec<Vec<u8>> = ts.iter().map(Tuple::encode).collect();
                enc.sort();
                Ok(Some(enc))
            }
            Op::Insert {
                value,
                sensitive,
                id,
            } => {
                // The new tuple carries the searchable value plus filler
                // attributes; the id is pre-assigned so every arm inserts
                // the identical tuple.
                let mut values = vec![Value::Null; self.arity];
                values[self.attr.index()] = value.clone();
                let tuple = Tuple::new(TupleId::new(*id), values);
                if *sensitive {
                    // Sensitive side: encrypt and upload one more row (the
                    // NonDetScan engine scans the whole column per query,
                    // so the new row is immediately searchable).
                    let row = self.owner.encrypt_row(&tuple, self.attr, Vec::new());
                    self.cloud.upload_encrypted(vec![row])?;
                } else {
                    // Non-sensitive side: live plaintext insert.
                    self.cloud.insert_plaintext(tuple)?;
                }
                if invalidate {
                    self.executor.invalidate_cache_on_insert(value, *sensitive);
                }
                Ok(None)
            }
        }
    }
}

/// The exhaustive Employee value workload.
fn employee_values() -> Result<Vec<Value>> {
    let relation = employee_relation();
    let policy = employee_sensitivity_policy(&relation)?;
    let parts = Partitioner::new(policy).split(&relation)?;
    let attr = parts.sensitive.schema().attr_id("EId")?;
    let mut values = parts.sensitive.distinct_values(attr);
    for v in parts.nonsensitive.distinct_values(attr) {
        if !values.contains(&v) {
            values.push(v);
        }
    }
    Ok(values)
}

/// Builds the mixed operation sequence: `warm_passes` read passes over the
/// exhaustive workload, then alternating (insert, read pass) windows —
/// first a sensitive insert (full cache clear), then a non-sensitive one
/// (single-bin drop) — then a final read pass.
fn build_ops(values: &[Value], warm_passes: usize, arm_seed: u64) -> Result<Vec<Op>> {
    // Pick insert values that keep their existing bin assignment so no
    // rebuild is needed mid-run (the planner's `ExistingAssignment` case).
    let relation = employee_relation();
    let policy = employee_sensitivity_policy(&relation)?;
    let parts = Partitioner::new(policy).split(&relation)?;
    let binning = QueryBinning::build(&parts, "EId", BinningConfig::default())?;
    let planner = InsertPlanner::new(&binning);
    let attr = parts.sensitive.schema().attr_id("EId")?;
    let pick = |sensitive: bool| -> Result<Value> {
        let side = if sensitive {
            &parts.sensitive
        } else {
            &parts.nonsensitive
        };
        side.distinct_values(attr)
            .into_iter()
            .find(|v| {
                matches!(
                    planner.plan(v, sensitive),
                    InsertPlan::ExistingAssignment { .. }
                )
            })
            .ok_or_else(|| PdsError::Config("no insertable value on that side".into()))
    };
    let sensitive_value = pick(true)?;
    let nonsensitive_value = pick(false)?;

    let mut ops = Vec::new();
    for _ in 0..warm_passes {
        ops.extend(values.iter().cloned().map(Op::Read));
    }
    ops.push(Op::Insert {
        value: sensitive_value,
        sensitive: true,
        id: 50_000_000 + arm_seed,
    });
    ops.extend(values.iter().cloned().map(Op::Read));
    ops.push(Op::Insert {
        value: nonsensitive_value,
        sensitive: false,
        id: 60_000_000 + arm_seed,
    });
    ops.extend(values.iter().cloned().map(Op::Read));
    Ok(ops)
}

/// Runs the read/write mix: a cached arm with invalidation (the system
/// under test), an uncached arm (ground truth), and a cached arm that
/// skips invalidation (the control proving staleness is observable).
pub fn run(cache_bins: usize, warm_passes: usize, seed: u64) -> Result<RwMixOutcome> {
    if cache_bins == 0 {
        return Err(PdsError::Config(
            "rwmix needs a nonzero cache (capacity 0 never hits)".into(),
        ));
    }
    let values = employee_values()?;
    let ops = build_ops(&values, warm_passes.max(1), 0)?;

    let mut cached = Arm::build(cache_bins, seed)?;
    let mut uncached = Arm::build(0, seed.wrapping_add(1))?;
    let mut no_invalidate = Arm::build(cache_bins, seed.wrapping_add(2))?;

    let pass = values.len();
    let mut reads = 0usize;
    let mut writes = 0usize;
    let mut answers_exact = true;
    let mut stale = false;
    // (hits, fetches) per window: the read pass before the first write and
    // the one right after it.
    let mut window_before = (0u64, 0u64);
    let mut window_after = (0u64, 0u64);
    let mut first_write_seen = false;
    let mut reads_since_write = usize::MAX;

    for op in &ops {
        let hits_before = cached.executor.cache_stats().hits;
        let fetches_before = cached.executor.cache_stats().fetches();
        let got = cached.apply(op, true)?;
        let expected = uncached.apply(op, true)?;
        let control = no_invalidate.apply(op, false)?;
        match op {
            Op::Read(_) => {
                reads += 1;
                answers_exact &= got == expected;
                stale |= control != expected;
                let hit = cached.executor.cache_stats().hits - hits_before;
                let fetch = cached.executor.cache_stats().fetches() - fetches_before;
                if !first_write_seen && reads > (warm_passes.max(1) - 1) * pass {
                    window_before.0 += hit;
                    window_before.1 += fetch;
                }
                if reads_since_write < pass {
                    window_after.0 += hit;
                    window_after.1 += fetch;
                    reads_since_write += 1;
                }
            }
            Op::Insert { .. } => {
                writes += 1;
                if !first_write_seen {
                    first_write_seen = true;
                    reads_since_write = 0;
                }
            }
        }
    }

    let stats = cached.executor.cache_stats();
    let rate = |(h, f): (u64, u64)| if f == 0 { 0.0 } else { h as f64 / f as f64 };
    Ok(RwMixOutcome {
        reads,
        writes,
        hit_rate_before_write: rate(window_before),
        hit_rate_after_write: rate(window_after),
        hit_rate_overall: stats.hit_rate(),
        answers_exact,
        stale_without_invalidation: stale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalidation_keeps_answers_fresh_and_costs_hits() {
        let outcome = run(32, 2, 42).unwrap();
        assert!(outcome.reads > 0 && outcome.writes == 2);
        assert!(outcome.answers_exact, "{outcome:?}");
        assert!(
            outcome.stale_without_invalidation,
            "the control arm must prove staleness is observable: {outcome:?}"
        );
        assert!(
            (outcome.hit_rate_before_write - 1.0).abs() < 1e-12,
            "warm window must be all hits: {outcome:?}"
        );
        assert!(
            outcome.hit_rate_after_write < outcome.hit_rate_before_write,
            "invalidation must cost hits: {outcome:?}"
        );
        assert!(outcome.holds());
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(run(0, 1, 42).is_err());
    }
}
